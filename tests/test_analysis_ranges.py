"""Unit and property tests for the interval domain."""

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import Interval, taken_partition
from repro.ir import RelOp

VALUES = st.integers(min_value=-1000, max_value=1000)


def test_top_contains_everything():
    top = Interval.top()
    assert top.contains(0)
    assert top.contains(-(10**12))
    assert top.is_top


def test_empty_interval():
    empty = Interval.empty()
    assert empty.is_empty
    assert not empty.contains(0)


def test_point_interval():
    p = Interval.point(5)
    assert p.contains(5)
    assert not p.contains(4)


def test_from_relop_lt_taken():
    interval = Interval.from_relop(RelOp.LT, 10, taken=True)
    assert interval.contains(9)
    assert not interval.contains(10)


def test_from_relop_lt_not_taken():
    interval = Interval.from_relop(RelOp.LT, 10, taken=False)
    assert interval.contains(10)
    assert not interval.contains(9)


def test_from_relop_eq_taken_is_point():
    interval = Interval.from_relop(RelOp.EQ, 3, taken=True)
    assert interval == Interval.point(3)


def test_from_relop_eq_not_taken_is_none():
    assert Interval.from_relop(RelOp.EQ, 3, taken=False) is None


def test_from_relop_ne_taken_is_none():
    assert Interval.from_relop(RelOp.NE, 3, taken=True) is None


def test_from_relop_ne_not_taken_is_point():
    assert Interval.from_relop(RelOp.NE, 3, taken=False) == Interval.point(3)


def test_subsumes_paper_example():
    # "range [0, 5] subsumes range [0, 10]" (§4).
    assert Interval(0, 5).subsumes(Interval(0, 10))
    assert not Interval(0, 10).subsumes(Interval(0, 5))


def test_subsumes_with_infinite_ends():
    assert Interval.at_most(4).subsumes(Interval.at_most(10))
    assert not Interval.at_most(11).subsumes(Interval.at_most(10))


def test_empty_subsumes_everything():
    assert Interval.empty().subsumes(Interval.point(1))
    assert not Interval.point(1).subsumes(Interval.empty())


def test_intersect():
    assert Interval(0, 10).intersect(Interval(5, 20)) == Interval(5, 10)
    assert Interval(0, 1).intersect(Interval(5, 6)).is_empty


def test_union_hull():
    assert Interval(0, 1).union_hull(Interval(5, 6)) == Interval(0, 6)
    assert Interval.empty().union_hull(Interval(2, 3)) == Interval(2, 3)


def test_shift():
    assert Interval(0, 5).shift(3) == Interval(3, 8)
    assert Interval.at_most(5).shift(-2) == Interval.at_most(3)


def test_negate():
    assert Interval(2, 5).negate() == Interval(-5, -2)
    assert Interval.at_least(1).negate() == Interval.at_most(-1)


def test_str_rendering():
    assert str(Interval.at_most(5)) == "[-inf, 5]"
    assert str(Interval.empty()) == "[empty]"


@given(
    op=st.sampled_from(list(RelOp)),
    bound=VALUES,
    value=VALUES,
)
def test_taken_partition_is_exact_partition(op, bound, value):
    """Every value falls in exactly one side of the partition, and the
    side it falls in matches the operator's truth value."""
    taken, not_taken = taken_partition(op, bound)
    in_taken = taken.contains(value) if taken is not None else value != bound
    in_not = not_taken.contains(value) if not_taken is not None else value != bound
    if op.evaluate(value, bound):
        assert in_taken and not in_not
    else:
        assert in_not and not in_taken


@given(
    lo1=VALUES, w1=st.integers(0, 100),
    lo2=VALUES, w2=st.integers(0, 100),
    probe=VALUES,
)
def test_subsumption_implies_membership(lo1, w1, lo2, w2, probe):
    """If A subsumes B, any point of A is a point of B."""
    a = Interval(lo1, lo1 + w1)
    b = Interval(lo2, lo2 + w2)
    if a.subsumes(b) and a.contains(probe):
        assert b.contains(probe)


@given(lo=VALUES, w=st.integers(0, 50), delta=VALUES, probe=VALUES)
def test_shift_consistency(lo, w, delta, probe):
    interval = Interval(lo, lo + w)
    assert interval.shift(delta).contains(probe + delta) == interval.contains(probe)


@given(op=st.sampled_from(list(RelOp)), a=VALUES, b=VALUES)
def test_relop_negate_is_complement(op, a, b):
    assert op.evaluate(a, b) != op.negate().evaluate(a, b)


@given(op=st.sampled_from(list(RelOp)), a=VALUES, b=VALUES)
def test_relop_swap_exchanges_operands(op, a, b):
    assert op.evaluate(a, b) == op.swap().evaluate(b, a)
