"""Regression: the full audit is clean on every workload.

This pins the PR's acceptance criterion — ``repro audit`` reports zero
error-severity diagnostics on all ten workloads at every optimization
level — so any future change to the builder, the optimizer, or the
auditor that breaks the zero-false-positive guarantee (or makes the
auditor over-strict) fails here.
"""

import pytest

from repro.pipeline import compile_program_cached
from repro.staticcheck import AUDIT_PASSES, errors_in, run_passes
from repro.workloads import get_workload, workload_names


@pytest.mark.parametrize("opt", [0, 1, 2, 3])
@pytest.mark.parametrize("name", workload_names())
def test_workload_audits_clean(name, opt):
    workload = get_workload(name)
    program = compile_program_cached(
        workload.source, name=workload.name, opt_level=opt
    )
    diagnostics = run_passes(program, names=AUDIT_PASSES)
    assert errors_in(diagnostics) == [], "\n".join(
        str(d) for d in diagnostics
    )


def test_there_are_ten_workloads():
    assert len(workload_names()) == 10
