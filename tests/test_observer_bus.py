"""Observer bus: protocol, fan-out, and single-pass equivalence.

The tentpole claim of the observer refactor is that one execution can
drive every consumer — IPDS checker, timing models, n-gram syscall
capture, trace recorder — and produce results *identical* to the old
one-consumer-per-run protocol.  These tests pin that equivalence
byte-for-byte.
"""

import io
import json
import random

import pytest

from repro.baselines.compare import SyscallTraceObserver, capture_trace
from repro.correlation.tables import ProgramTables
from repro.cpu.params import ProcessorParams
from repro.cpu.pipeline import TimingModel
from repro.cpu.simulator import TimingObserver, normalized_performance, timed_run
from repro.interp.interpreter import Interpreter, RunStatus, run_program
from repro.pipeline import compile_program, monitored_run, observed_run
from repro.runtime.events import BranchEvent, CallEvent, ReturnEvent
from repro.runtime.ipds import IPDS, IPDSError
from repro.runtime.observer import (
    CallbackObserver,
    ExecutionObserver,
    InstructionCallbackObserver,
    ObserverBus,
    as_observer,
    build_bus,
)
from repro.runtime.replay import TraceRecorder, dump_trace, replay
from repro.workloads.registry import get_workload

FIGURE1 = """
int user;
void main() {
  user = read_int();
  if (user == 0) { emit(100); } else { emit(200); }
  int someinput = read_int();
  if (user == 0) { emit(111); } else { emit(222); }
}
"""

WITH_HELPER = """
int user;
int helper(int x) {
  if (x > 3) { return x + 1; }
  return x;
}
void main() {
  user = read_int();
  if (user == 0) { emit(100); } else { emit(200); }
  int v = helper(read_int());
  emit(v);
  if (user == 0) { emit(111); } else { emit(222); }
}
"""


# ----------------------------------------------------------------------
# Protocol / bus unit behavior
# ----------------------------------------------------------------------


def test_as_observer_passthrough_wrap_and_reject():
    ipds_like = ExecutionObserver()
    assert as_observer(ipds_like) is ipds_like
    wrapped = as_observer(lambda event: None)
    assert isinstance(wrapped, CallbackObserver)
    with pytest.raises(TypeError):
        as_observer(42)


def test_bus_prefilters_instruction_subscribers():
    control_flow_only = ExecutionObserver()
    bus = ObserverBus([control_flow_only])
    assert len(bus) == 1
    assert not bus.wants_instructions

    instrs = []
    bus = ObserverBus(
        [control_flow_only, InstructionCallbackObserver(
            lambda instruction, touched: instrs.append(instruction)
        )]
    )
    assert bus.wants_instructions
    bus.emit_instruction("fake-insn", None)
    assert instrs == ["fake-insn"]


def test_bus_dispatches_each_event_kind_to_the_right_hook():
    class Spy(ExecutionObserver):
        def __init__(self):
            self.seen = []

        def on_call(self, event):
            self.seen.append(("call", event.function_name))

        def on_return(self, event):
            self.seen.append(("ret", event.function_name))

        def on_branch(self, event):
            self.seen.append(("br", event.pc, event.taken))

    spy = Spy()
    bus = ObserverBus([spy])
    bus.emit(CallEvent(function_name="f"))
    bus.emit(BranchEvent(function_name="f", pc=8, taken=True))
    bus.emit(ReturnEvent(function_name="f"))
    assert spy.seen == [("call", "f"), ("br", 8, True), ("ret", "f")]


def test_build_bus_preserves_legacy_listener_order():
    order = []

    class First(ExecutionObserver):
        def on_call(self, event):
            order.append("observer")

    bus = build_bus(
        observers=[First()],
        event_listeners=[lambda event: order.append("listener")],
    )
    bus.emit(CallEvent(function_name="f"))
    assert order == ["observer", "listener"]


def test_finish_reaches_every_observer_after_run():
    class Flusher(ExecutionObserver):
        def __init__(self):
            self.finished = False

        def finish(self):
            self.finished = True

    program = compile_program(FIGURE1, "fig1.c")
    flusher = Flusher()
    observed_run(program, observers=[flusher], inputs=[5, 1])
    assert flusher.finished


# ----------------------------------------------------------------------
# Single-pass equivalence: each consumer vs. its dedicated-run twin
# ----------------------------------------------------------------------


def test_single_pass_timing_matches_two_pass():
    workload = get_workload("telnetd")
    program = compile_program(workload.source, workload.name)
    inputs = workload.make_inputs(random.Random("equiv:timing"), 3)

    baseline = timed_run(program, inputs, with_ipds=False)
    protected = timed_run(program, inputs, with_ipds=True)
    comp = normalized_performance(program, inputs, workload.name)

    assert comp.baseline_cycles == baseline.cycles
    assert comp.ipds_cycles == protected.cycles
    assert comp.instructions == protected.timing.instructions
    assert comp.avg_check_latency == protected.ipds_stats.avg_check_latency


def test_single_pass_capture_trace_matches_legacy_listener():
    workload = get_workload("telnetd")
    program = compile_program(workload.source, workload.name)
    inputs = workload.make_inputs(random.Random("equiv:capture"))

    legacy_symbols = []
    legacy_interp = Interpreter(
        program.module,
        inputs=inputs,
        syscall_listener=lambda callee, pc: legacy_symbols.append(
            f"{callee}@{pc:x}"
        ),
    )
    legacy_result = legacy_interp.run()
    _, legacy_ipds = monitored_run(program, inputs=inputs)

    symbols, branch_trace, detected = capture_trace(program, inputs)
    assert symbols == legacy_symbols
    assert branch_trace == legacy_result.branch_trace
    assert detected == legacy_ipds.detected


def test_observer_recorder_matches_legacy_event_listener():
    program = compile_program(FIGURE1, "fig1.c")
    legacy = TraceRecorder()
    run_program(program.module, inputs=[5, 1], event_listeners=[legacy])

    recorder = TraceRecorder()
    observed_run(program, observers=[recorder], inputs=[5, 1])

    assert recorder.events == legacy.events
    old, new = io.StringIO(), io.StringIO()
    dump_trace(legacy.events, old)
    dump_trace(recorder.events, new)
    assert new.getvalue() == old.getvalue()


def test_one_execution_feeds_all_four_consumers():
    """IPDS + timing + n-gram capture + recorder on ONE observed_run."""
    workload = get_workload("telnetd")
    program = compile_program(workload.source, workload.name)
    inputs = workload.make_inputs(random.Random("equiv:all4"))

    ipds = program.new_ipds()
    model = TimingModel(ProcessorParams(), None)
    syscalls = SyscallTraceObserver()
    recorder = TraceRecorder()
    result = observed_run(
        program,
        observers=[ipds, TimingObserver(model), syscalls, recorder],
        inputs=inputs,
    )
    assert result.status is RunStatus.OK

    ref_result, ref_ipds = monitored_run(program, inputs=inputs)
    ref_timed = timed_run(program, inputs, with_ipds=False)
    ref_symbols, ref_branches, _ = capture_trace(program, inputs)

    assert [str(a) for a in ipds.alarms] == [str(a) for a in ref_ipds.alarms]
    assert ipds.stats == ref_ipds.stats
    assert model.stats.cycles == ref_timed.cycles
    assert syscalls.symbols == ref_symbols
    assert result.branch_trace == ref_branches
    assert len(recorder.events) == ipds.stats.events


def test_tampered_single_pass_alarms_match_and_replay_offline():
    from repro.interp import GLOBAL_BASE
    from repro.interp.interpreter import TamperSpec

    program = compile_program(FIGURE1, "fig1.c")
    tamper = TamperSpec("read", 2, GLOBAL_BASE, 0)

    ipds = program.new_ipds()
    recorder = TraceRecorder()
    observed_run(
        program, observers=[ipds, recorder], inputs=[5, 1], tamper=tamper
    )
    assert ipds.detected

    _, ref_ipds = monitored_run(program, inputs=[5, 1], tamper=tamper)
    assert [str(a) for a in ipds.alarms] == [str(a) for a in ref_ipds.alarms]

    offline = replay(program.tables, recorder.events)
    assert [str(a) for a in offline] == [str(a) for a in ipds.alarms]


# ----------------------------------------------------------------------
# Partial coverage (allow_unprotected)
# ----------------------------------------------------------------------


def _drop_function(tables: ProgramTables, name: str) -> ProgramTables:
    return ProgramTables(
        by_function={
            fn: t for fn, t in tables.by_function.items() if fn != name
        }
    )


def test_unprotected_call_raises_by_default():
    program = compile_program(WITH_HELPER, "helper.c")
    partial = _drop_function(program.tables, "helper")
    strict = IPDS(partial)
    with pytest.raises(IPDSError, match="unprotected"):
        observed_run(program, observers=[strict], inputs=[5, 9])


def test_allow_unprotected_counts_and_skips():
    program = compile_program(WITH_HELPER, "helper.c")
    partial = _drop_function(program.tables, "helper")
    tolerant = IPDS(partial, allow_unprotected=True)
    result = observed_run(program, observers=[tolerant], inputs=[5, 9])
    assert result.status is RunStatus.OK
    assert tolerant.stats.unprotected_calls == 1
    assert tolerant.stats.unprotected_branches >= 1
    assert not tolerant.detected

    # Protected functions around the gap are still fully checked.
    full = IPDS(program.tables)
    observed_run(program, observers=[full], inputs=[5, 9])
    assert tolerant.stats.checks == full.stats.checks


def test_replay_allow_unprotected():
    program = compile_program(WITH_HELPER, "helper.c")
    recorder = TraceRecorder()
    observed_run(program, observers=[recorder], inputs=[5, 9])
    partial = _drop_function(program.tables, "helper")
    with pytest.raises(IPDSError):
        replay(partial, recorder.events)
    assert replay(partial, recorder.events, allow_unprotected=True) == []


# ----------------------------------------------------------------------
# Campaign-level equivalence with metrics attached
# ----------------------------------------------------------------------


def test_campaign_cli_report_identical_at_jobs_1_and_2_with_metrics(
    tmp_path, capsys
):
    from repro.cli import main

    serial_manifest = tmp_path / "j1.json"
    sharded_manifest = tmp_path / "j2.json"
    assert main(
        ["campaign", "telnetd", "--attacks", "3",
         "--metrics-out", str(serial_manifest)]
    ) == 0
    serial_out = capsys.readouterr().out
    assert main(
        ["campaign", "telnetd", "--attacks", "3", "--jobs", "2",
         "--metrics-out", str(sharded_manifest)]
    ) == 0
    sharded_out = capsys.readouterr().out

    def report(text):
        return [
            line for line in text.splitlines()
            if not line.startswith("metrics:")
        ]

    assert report(serial_out) == report(sharded_out)

    def work_counters(path):
        counters = json.loads(path.read_text())["metrics"]["counters"]
        # jobs/shards describe the schedule, not the work.
        return {
            name: value for name, value in counters.items()
            if name not in ("campaign.jobs", "campaign.shards")
        }

    assert work_counters(serial_manifest) == work_counters(sharded_manifest)
