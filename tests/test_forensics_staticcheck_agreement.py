"""The forensics engine and the static auditor must agree.

Property: for every tampered-run alarm the engine fully explains, the
provenance record it names corresponds to the exact BAT action in the
emitted tables, and the correlation-audit pass — an independent
path-sensitive re-proof, not the builder's algorithm — derives that
same action as sound.  Hypothesis drives the attack selection across
all ten workloads and both opt levels.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.alias import analyze_aliases
from repro.analysis.defs import DefinitionMap
from repro.analysis.purity import analyze_purity
from repro.attacks import attack_rng, run_attack
from repro.correlation.actions import BranchAction
from repro.forensics import explain_alarms
from repro.interp.interpreter import TamperSpec
from repro.pipeline import compile_program_cached, monitored_run
from repro.runtime.flight_recorder import FlightRecorder
from repro.staticcheck.audit import _prove_entry
from repro.staticcheck.facts import summarize_function
from repro.workloads import get_workload, workload_names

#: (workload, attack index) pairs with a detected attack, found lazily
#: by scanning the registry's deterministic seeds (portmap's first
#: detection is index 29, hence the bound).
_DETECTED_CACHE = {}
MAX_SCAN = 36


def _detected_pairs(name):
    if name not in _DETECTED_CACHE:
        workload = get_workload(name)
        program = compile_program_cached(workload.source, name, 0)
        pairs = []
        for index in range(MAX_SCAN):
            outcome = run_attack(program, workload, index)
            if outcome.detected and outcome.fired:
                pairs.append((index, outcome))
                if len(pairs) >= 2:
                    break
        _DETECTED_CACHE[name] = pairs
    return _DETECTED_CACHE[name]


def _audit_context(program, fn_name):
    module = program.module
    analyze_aliases(module)
    purity = analyze_purity(module)
    fn = module.function(fn_name)
    def_map = DefinitionMap(fn, module, purity)
    summaries = summarize_function(fn, def_map)
    tables = program.tables.tables_for(fn_name)
    label_of_slot = {}
    for summary in summaries.values():
        if summary.branch_pc is not None:
            slot = tables.slot_of(summary.branch_pc)
            if slot is not None:
                label_of_slot[slot] = summary.label
    return summaries, label_of_slot


@settings(max_examples=30, deadline=None)
@given(
    name=st.sampled_from(workload_names()),
    pick=st.integers(0, 1),
    opt_level=st.integers(0, 1),
)
def test_explained_action_is_independently_derived(name, pick, opt_level):
    pairs = _detected_pairs(name)
    if not pairs:  # no detected attack for this draw — nothing to check
        return
    index, outcome = pairs[min(pick, len(pairs) - 1)]
    workload = get_workload(name)
    program = compile_program_cached(workload.source, name, opt_level)

    inputs = workload.make_inputs(attack_rng("", name, index))
    recorder = FlightRecorder(512)
    _, ipds = monitored_run(
        program,
        inputs=inputs,
        tamper=TamperSpec(
            "read", outcome.trigger_read, outcome.address, outcome.value
        ),
        step_limit=500_000,
        flight_recorder=recorder,
    )
    if not ipds.detected:  # this index may be opt0-specific
        return
    reports = explain_alarms(program.tables, recorder, ipds.alarms)
    for report in reports:
        if not report.explained:
            continue
        tables = program.tables.tables_for(report.function)
        source_slot = tables.slot_of(report.setter.pc)
        target_slot = tables.slot_of(report.alarm.pc)
        # 1. The engine names the exact BAT action that fired.
        bat_actions = [
            action
            for slot, action in tables.bat[(source_slot, report.setter.taken)]
            if slot == target_slot
        ]
        assert bat_actions == [BranchAction(report.provenance.action)]
        assert report.transition.action == bat_actions[0]
        # 2. The audit's independent range fixpoint proves that exact
        #    entry sound — no COR205 witness.
        summaries, label_of_slot = _audit_context(program, report.function)
        witness = _prove_entry(
            summaries,
            tables,
            source=summaries[label_of_slot[source_slot]],
            taken=report.setter.taken,
            target=summaries[label_of_slot[target_slot]],
            target_slot=target_slot,
            claimed_taken=bat_actions[0] is BranchAction.SET_T,
        )
        assert witness is None, (name, index, opt_level, witness)
