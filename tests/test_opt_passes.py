"""Tests for the optimization passes: correctness and effects."""

from hypothesis import HealthCheck, given, settings

from repro.lang import parse_program
from repro.ir import BinOp, CondBranch, Load, lower_program, verify_module
from repro.opt import optimize_module
from repro.pipeline import compile_program, monitored_run
from repro.interp import run_program


def optimized(source):
    module = lower_program(parse_program(source))
    stats = optimize_module(module)
    verify_module(module)
    return module, stats


def instructions_of(module, name="main"):
    return list(module.function(name).instructions())


# ----------------------------------------------------------------------
# Constant propagation
# ----------------------------------------------------------------------


def test_constants_fold_through_arithmetic():
    module, stats = optimized(
        "void main() { int x = 2; int y = x + 3; emit(y * 4); }"
    )
    # Everything folds; the emit argument becomes the constant 20.
    from repro.ir import Call

    (call,) = [i for i in instructions_of(module) if isinstance(i, Call) and i.callee == "emit"]
    assert call.args == [20]


def test_constant_branch_folds_to_jump():
    module, stats = optimized(
        "void main() { int x = 1; if (x < 5) { emit(1); } else { emit(2); } }"
    )
    fn = module.function("main")
    assert fn.cond_branches() == []
    from repro.ir import Call

    calls = [i for i in fn.instructions() if isinstance(i, Call) and i.callee == "emit"]
    assert [c.args for c in calls] == [[1]]


def test_division_by_zero_not_folded_away():
    module, _ = optimized("void main() { int z = 0; emit(1 / z); }")
    insns = instructions_of(module)
    assert any(isinstance(i, BinOp) and i.op == "/" for i in insns)
    result = run_program(module)
    assert result.status.value == "div_by_zero"


def test_input_dependent_values_not_folded():
    module, _ = optimized(
        "void main() { int x = read_int(); if (x < 5) { emit(1); } }"
    )
    assert len(module.function("main").cond_branches()) == 1


# ----------------------------------------------------------------------
# Store-to-load forwarding
# ----------------------------------------------------------------------


def test_redundant_load_removed():
    module, _ = optimized(
        "int g; void main() { int a = g + g; emit(a); }"
    )
    loads = [i for i in instructions_of(module) if isinstance(i, Load)]
    # Two loads of g collapse to one.
    assert len([l for l in loads if l.var.name == "g"]) == 1


def test_store_forwards_to_following_load():
    # x = read_int(); if (x < 5): the load of x forwards from the store.
    module, _ = optimized(
        "void main() { int x = read_int(); if (x < 5) { emit(1); } }"
    )
    loads = [i for i in instructions_of(module) if isinstance(i, Load)]
    assert loads == []  # the load of x is gone
    # The branch now tests the call result register directly.
    (branch,) = module.function("main").cond_branches()
    assert isinstance(branch, CondBranch)


def test_constant_store_forwards_as_const():
    module, _ = optimized("int g; void main() { g = 7; emit(g); }")
    from repro.ir import Call

    (call,) = [i for i in instructions_of(module) if isinstance(i, Call) and i.callee == "emit"]
    assert call.args == [7]


def test_forwarding_killed_by_user_call():
    module, _ = optimized(
        """
        int g;
        void clobber() { g = 9; }
        void main() { g = 1; clobber(); emit(g); }
        """
    )
    loads = [i for i in instructions_of(module) if isinstance(i, Load)]
    assert any(l.var.name == "g" for l in loads)
    result = run_program(module)
    assert result.outputs == [9]


def test_forwarding_killed_by_indirect_store():
    module, _ = optimized(
        """
        void main() {
          int x = 1;
          int *p = &x;
          *p = 2;
          emit(x);
        }
        """
    )
    result = run_program(module)
    assert result.outputs == [2]


def test_forwarding_survives_builtin_call():
    module, _ = optimized(
        "int g; void main() { g = 3; emit(0); emit(g); }"
    )
    result = run_program(module)
    assert result.outputs == [0, 3]
    loads = [i for i in instructions_of(module) if isinstance(i, Load)]
    assert not any(l.var.name == "g" for l in loads)


# ----------------------------------------------------------------------
# DCE
# ----------------------------------------------------------------------


def test_dead_arithmetic_removed():
    module, _ = optimized(
        "int g; void main() { int dead = g * 3 + 1; emit(5); }"
    )
    insns = instructions_of(module)
    assert not any(isinstance(i, BinOp) for i in insns)


def test_possibly_faulting_division_kept():
    module, _ = optimized(
        "int z; void main() { int d = read_int(); int dead = 7 / d; emit(1); }"
    )
    insns = instructions_of(module)
    assert any(isinstance(i, BinOp) and i.op == "/" for i in insns)


def test_emit_never_removed():
    module, _ = optimized("void main() { emit(1); emit(2); }")
    result = run_program(module)
    assert result.outputs == [1, 2]


# ----------------------------------------------------------------------
# Differential correctness on random programs
# ----------------------------------------------------------------------

from .test_zero_false_positives import INPUT_STREAMS, programs  # noqa: E402


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(source=programs(), inputs=INPUT_STREAMS)
def test_optimization_preserves_semantics(source, inputs):
    plain = lower_program(parse_program(source))
    opt = lower_program(parse_program(source))
    optimize_module(opt)
    verify_module(opt)
    a = run_program(plain, inputs=inputs, step_limit=20_000)
    b = run_program(opt, inputs=inputs, step_limit=20_000)
    if a.status.value == "step_limit" or b.status.value == "step_limit":
        return  # optimization legitimately changes step counts
    assert a.outputs == b.outputs, source
    assert a.status is b.status
    assert a.return_value == b.return_value


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(source=programs(), inputs=INPUT_STREAMS)
def test_optimized_programs_still_never_false_positive(source, inputs):
    program = compile_program(source, "random.c", opt_level=1)
    _, ipds = monitored_run(program, inputs=inputs, step_limit=20_000)
    assert not ipds.detected, (source, [str(a) for a in ipds.alarms])


# ----------------------------------------------------------------------
# The paper's observation: optimization reduces correlations
# ----------------------------------------------------------------------


def test_optimization_reduces_checked_branches_on_workloads():
    from repro.workloads import all_workloads

    plain_total = 0
    opt_total = 0
    for workload in all_workloads():
        plain = compile_program(workload.source, workload.name)
        opt = compile_program(workload.source, workload.name, opt_level=1)
        plain_total += plain.tables.total_checked
        opt_total += opt.tables.total_checked
    # "compiler optimizations can remove some correlations" (§6).
    assert opt_total <= plain_total
    assert plain_total > 0
