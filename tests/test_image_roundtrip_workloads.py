"""Round-trip tests: encoding sizes and the §5.4 binary image recover
identical BCV/BSV/BAT tables for every workload in the registry.

``pack_program -> load_program`` must be lossless for every function of
every registered server (at opt levels 0 through 3), the packed blob sizes
must agree byte-for-byte with the Figure-8 bit accounting in
``repro.correlation.encoding``, and re-packing the loaded tables must
reproduce the original image exactly.
"""

import pytest

from repro.correlation.binary_image import load_program, pack_program
from repro.correlation.encoding import table_sizes
from repro.pipeline import compile_program_cached
from repro.workloads import all_workloads, workload_names


@pytest.fixture(
    scope="module", params=[0, 1, 2, 3], ids=["opt0", "opt1", "opt2", "opt3"]
)
def compiled_registry(request):
    opt = request.param
    return opt, {
        w.name: compile_program_cached(w.source, w.name, opt)
        for w in all_workloads()
    }


def _entries(program):
    return {
        fn.name: program.module.function_extent(fn.name)[0]
        for fn in program.module.functions
    }


@pytest.mark.parametrize("name", workload_names())
def test_image_roundtrip_recovers_tables(compiled_registry, name):
    _, programs = compiled_registry
    program = programs[name]
    image = program.to_image()
    loaded, entries = load_program(image)

    assert set(loaded.by_function) == set(program.tables.by_function)
    assert entries == _entries(program)
    for fn_name, original in program.tables.by_function.items():
        recovered = loaded.by_function[fn_name]
        assert recovered.hash_params == original.hash_params
        assert recovered.branch_pcs == tuple(original.branch_pcs)
        assert recovered.bcv_slots == frozenset(original.bcv_slots)
        original_bat = {
            key: tuple(chain)
            for key, chain in original.bat.items()
            if chain
        }
        recovered_bat = {
            key: tuple(chain)
            for key, chain in recovered.bat.items()
            if chain
        }
        assert recovered_bat == original_bat, fn_name


@pytest.mark.parametrize("name", workload_names())
def test_repack_is_byte_identical(compiled_registry, name):
    _, programs = compiled_registry
    program = programs[name]
    image = program.to_image()
    loaded, entries = load_program(image)
    assert pack_program(loaded, entries) == image


@pytest.mark.parametrize("name", workload_names())
def test_blob_sizes_match_fig8_accounting(compiled_registry, name):
    """The wire blobs are exactly the Fig. 8 bit counts, rounded up."""
    from repro.correlation.binary_image import _pack_bat, _pack_bcv

    _, programs = compiled_registry
    program = programs[name]
    for tables in program.tables:
        sizes = table_sizes(tables)
        bcv_blob = _pack_bcv(tables)
        bat_blob, entry_count = _pack_bat(tables)
        assert len(bcv_blob) == (sizes.bcv_bits + 7) // 8
        assert len(bat_blob) == (sizes.bat_bits + 7) // 8
        assert entry_count == sizes.action_entries
        # BSV is runtime state: 2 bits per hash slot.
        assert sizes.bsv_bits == 2 * tables.space


def test_loaded_tables_drive_the_same_slots(compiled_registry):
    """Functional equivalence: the recovered tables answer slot/check
    queries identically to the originals (the runtime's access paths)."""
    _, programs = compiled_registry
    program = programs["telnetd"]
    loaded, _ = load_program(program.to_image())
    for fn_name, original in program.tables.by_function.items():
        recovered = loaded.by_function[fn_name]
        for pc in original.branch_pcs:
            assert recovered.slot_of(pc) == original.slot_of(pc)
            assert recovered.is_checked(pc) == original.is_checked(pc)
            for taken in (True, False):
                assert recovered.actions_for(pc, taken) == tuple(
                    original.actions_for(pc, taken)
                )
