"""Interprocedural transfer summaries (``--opt 2``) and their audit.

Covers both sides of the derivation — the builder's
:mod:`repro.analysis.summaries` and the auditor's independently derived
:mod:`repro.staticcheck.ipsummaries` — plus the suppression machinery:

* transfer algebra (join / widen / preservation / canonical grammar);
* the two derivations agree byte-for-byte on every registry workload;
* ``--opt 2`` proves strictly more BAT actions than ``--opt 1`` on the
  instrumented workloads, and every suppression carries ``interproc``
  provenance the ``IP5xx`` audit re-proves;
* corruption properties: tampering with a summary, laundering the
  provenance reason, or dropping the backing BAT entry is always
  flagged.
"""

import random
from dataclasses import replace

import pytest

from repro.analysis.branch_info import OutcomeSet
from repro.analysis.purity import analyze_purity
from repro.analysis.ranges import Interval
from repro.analysis.summaries import VarTransfer, analyze_summaries
from repro.correlation.actions import BranchAction
from repro.correlation.provenance import (
    REASON_INTERPROC,
    REASON_SUBSUMPTION,
)
from repro.ir.instructions import RelOp
from repro.pipeline import compile_program, compile_program_cached
from repro.staticcheck import errors_in, run_passes
from repro.staticcheck.interproc import audit_interproc
from repro.staticcheck.ipsummaries import IPTransfer, derive_ipsummaries
from repro.workloads import all_workloads, get_workload

# Two same-variable sanity branches straddle a call to the monotone
# accounting helper inside the loop: at opt 0/1 the call kills the
# predictions crossing it, at opt 2 the callee's transfer summary
# (lifetime' = lifetime + [1, 1]) proves them preserved.
DEMO = """
int lifetime;

void bump() {
  lifetime = lifetime + 1;
}

void main() {
  int i = 0;
  int n = read_int();
  lifetime = 0;
  while (i < n) {
    if (lifetime >= 0) { emit(1); } else { emit(2); }
    bump();
    if (lifetime >= 0) { emit(3); } else { emit(4); }
    i = i + 1;
  }
  emit(lifetime);
}
"""

#: Workloads carrying the accounting-helper pattern (global counter
#: bumped via a call between two sanity branches).
INSTRUMENTED = ("telnetd", "wu-ftpd", "xinetd", "crond", "sysklogd", "httpd")


def _outcome(op, bound, taken=True):
    return OutcomeSet.from_relop(op, bound, taken)


# ----------------------------------------------------------------------
# Transfer algebra — both implementations, via a shared parametrization
# ----------------------------------------------------------------------


@pytest.mark.parametrize("cls", [VarTransfer, IPTransfer], ids=["builder", "audit"])
class TestTransferAlgebra:
    def test_identity_preserves_everything(self, cls):
        identity = cls()
        assert identity.is_identity
        assert identity.preserves(_outcome(RelOp.GE, 0))
        assert identity.preserves(_outcome(RelOp.EQ, 5))
        assert identity.preserves(_outcome(RelOp.NE, 0))

    def test_top_preserves_nothing(self, cls):
        top = cls.top_transfer()
        assert not top.preserves(_outcome(RelOp.GE, 0))
        assert cls().join(top).top

    def test_nonnegative_delta_preserves_lower_bound(self, cls):
        inc = cls(delta_hull=Interval(1, 1))
        assert inc.preserves(_outcome(RelOp.GE, 0))  # [0, +inf]
        assert not inc.preserves(_outcome(RelOp.LE, 7))  # [-inf, 7]
        assert not inc.preserves(_outcome(RelOp.EQ, 3))  # point interval
        dec = cls(delta_hull=Interval(-1, 0))
        assert dec.preserves(_outcome(RelOp.LE, 7))
        assert not dec.preserves(_outcome(RelOp.GE, 0))

    def test_hole_outcome_needs_exact_zero_delta(self, cls):
        hole = _outcome(RelOp.NE, 0)  # Z \ {0}
        assert cls(delta_hull=Interval(0, 0)).preserves(hole)
        assert not cls(delta_hull=Interval(0, 1)).preserves(hole)

    def test_const_hull_must_land_inside_outcome(self, cls):
        assert cls(const_hull=Interval(3, 9)).preserves(_outcome(RelOp.GE, 0))
        assert not cls(const_hull=Interval(-1, 9)).preserves(
            _outcome(RelOp.GE, 0)
        )

    def test_join_hulls_union(self, cls):
        a = cls(const_hull=Interval(1, 2))
        b = cls(delta_hull=Interval(-1, 0))
        joined = a.join(b)
        assert joined.const_hull == Interval(1, 2)
        assert joined.delta_hull == Interval(-1, 0)

    def test_describe_grammar(self, cls):
        assert cls().describe("g") == "g' unchanged"
        assert cls.top_transfer().describe("g") == "g' unbounded"
        assert (
            cls(const_hull=Interval(0, 0)).describe("g") == "g' in [0, 0]"
        )
        assert (
            cls(delta_hull=Interval(1, 1)).describe("g")
            == "g' = g + [1, 1]"
        )
        both = cls(const_hull=Interval(0, 0), delta_hull=Interval(1, 1))
        assert both.describe("g") == "g' in [0, 0] or g' = g + [1, 1]"


# ----------------------------------------------------------------------
# Derivation agreement and the opt-2 gain
# ----------------------------------------------------------------------


def test_demo_summary_is_affine_unit_increment():
    program = compile_program(DEMO, "demo", 2)
    summaries = analyze_summaries(program.module)
    fn = summaries.by_function["bump"]
    (transfer,) = fn.transfers.values()
    assert transfer.delta_hull == Interval(1, 1)
    assert transfer.const_hull is None
    assert not transfer.top


def test_builder_and_audit_summaries_agree_on_all_workloads():
    """Same canonical text for every (function, global) on both sides —
    the IP502 text comparison depends on this."""
    for workload in all_workloads():
        program = compile_program_cached(workload.source, workload.name, 2)
        built = analyze_summaries(program.module)
        purity = analyze_purity(program.module)
        derived = derive_ipsummaries(program.module, purity)
        for fn_name, summary in built.by_function.items():
            for var, transfer in summary.transfers.items():
                twin = derived.transfer_for(fn_name, var)
                assert transfer.describe(var.name) == twin.describe(
                    var.name
                ), (workload.name, fn_name, var.name)


def test_demo_opt2_gains_sets_with_interproc_provenance():
    p1 = compile_program(DEMO, "demo", 1)
    p2 = compile_program(DEMO, "demo", 2)
    sets = lambda p: sum(s.set_entries for s in p.build_stats)
    assert sets(p2) == sets(p1) + 2
    assert sum(s.interproc_kills_suppressed for s in p2.build_stats) == 2
    records = [
        r
        for t in p2.tables
        for r in t.provenance
        if r.reason == REASON_INTERPROC
    ]
    assert len(records) == 2
    for record in records:
        assert record.summary == "bump: lifetime' = lifetime + [1, 1]"
        assert record.action in ("SET_T", "SET_NT")


@pytest.mark.parametrize("name", INSTRUMENTED)
def test_instrumented_workloads_gain_strictly_more_sets(name):
    workload = get_workload(name)
    p1 = compile_program_cached(workload.source, workload.name, 1)
    p2 = compile_program_cached(workload.source, workload.name, 2)
    s1 = sum(s.set_entries for s in p1.build_stats)
    s2 = sum(s.set_entries for s in p2.build_stats)
    assert s2 > s1, f"{name}: opt2 proved {s2} sets, opt1 {s1}"
    assert sum(s.interproc_kills_suppressed for s in p2.build_stats) > 0


def test_opt2_identical_to_opt1_without_eligible_kills():
    """A program whose kills are not call-only must build identically."""
    source = """
    int g;
    void main() {
      int n = read_int();
      if (g >= 0) { emit(1); }
      g = n;                       // direct store: never suppressible
      if (g >= 0) { emit(2); }
    }
    """
    p1 = compile_program(source, "plain", 1)
    p2 = compile_program(source, "plain", 2)
    t1 = p1.tables.by_function["main"]
    t2 = p2.tables.by_function["main"]
    assert dict(t1.bat) == dict(t2.bat)
    assert sum(s.interproc_kills_suppressed for s in p2.build_stats) == 0


# ----------------------------------------------------------------------
# IP5xx corruption properties
# ----------------------------------------------------------------------


def _fresh_demo():
    program = compile_program(DEMO, "demo", 2)
    tables = program.tables.by_function["main"]
    return program, tables


def _codes(program):
    return sorted({d.code for d in audit_interproc(program)})


def test_fresh_demo_is_ip_clean():
    program, _ = _fresh_demo()
    assert _codes(program) == []
    assert errors_in(run_passes(program)) == []


def test_tampered_summary_text_flags_ip502():
    program, tables = _fresh_demo()
    records = list(tables.provenance)
    index = next(
        i for i, r in enumerate(records) if r.reason == REASON_INTERPROC
    )
    records[index] = replace(
        records[index], summary="bump: lifetime' unchanged"
    )
    tables.provenance = tuple(records)
    tables._prov_index = None
    assert "IP502" in _codes(program)


def test_laundered_reason_flags_ip503():
    program, tables = _fresh_demo()
    tables.provenance = tuple(
        replace(r, reason=REASON_SUBSUMPTION, summary=None)
        if r.reason == REASON_INTERPROC
        else r
        for r in tables.provenance
    )
    tables._prov_index = None
    assert _codes(program) == ["IP503"]


def test_dropped_bat_entry_flags_ip501():
    program, tables = _fresh_demo()
    record = next(
        r for r in tables.provenance if r.reason == REASON_INTERPROC
    )
    source_slot = tables.slot_of(record.source_pc)
    target_slot = tables.slot_of(record.target_pc)
    bat = dict(tables.bat)
    bat[(source_slot, record.taken)] = tuple(
        entry
        for entry in bat[(source_slot, record.taken)]
        if entry[0] != target_slot
    )
    tables.bat = bat
    assert "IP501" in _codes(program)


def test_forged_interproc_reason_flags_ip502():
    """Claiming interproc on an entry whose region holds no call."""
    program, tables = _fresh_demo()
    records = list(tables.provenance)
    index = next(
        i for i, r in enumerate(records) if r.reason == REASON_SUBSUMPTION
    )
    records[index] = replace(
        records[index],
        reason=REASON_INTERPROC,
        summary="bump: lifetime' = lifetime + [1, 1]",
    )
    tables.provenance = tuple(records)
    tables._prov_index = None
    assert "IP502" in _codes(program)


@pytest.mark.parametrize("seed", range(6))
def test_random_interproc_record_tampering_always_flagged(seed):
    """Any mutation of an interproc record's semantic fields is caught."""
    rng = random.Random(f"ip-tamper:{seed}")
    program, tables = _fresh_demo()
    records = list(tables.provenance)
    index = next(
        i for i, r in enumerate(records) if r.reason == REASON_INTERPROC
    )
    record = records[index]
    mutation = rng.choice(["summary", "action", "var", "reason"])
    if mutation == "summary":
        record = replace(record, summary="bump: lifetime' unbounded")
    elif mutation == "action":
        flipped = "SET_NT" if record.action == "SET_T" else "SET_T"
        record = replace(record, action=flipped)
    elif mutation == "var":
        record = replace(record, var="ghost")
    else:
        record = replace(record, reason=REASON_SUBSUMPTION, summary=None)
    records[index] = record
    tables.provenance = tuple(records)
    tables._prov_index = None
    assert _codes(program) != [], mutation


def test_suppressed_entries_reprove_under_full_audit():
    """The correlation audit itself (COR205, summary-aware MFP) accepts
    the opt-2 entries on every workload."""
    for name in INSTRUMENTED:
        workload = get_workload(name)
        program = compile_program_cached(workload.source, workload.name, 2)
        diagnostics = errors_in(run_passes(program))
        assert diagnostics == [], (name, [str(d) for d in diagnostics])


def test_suppression_needs_own_set_claim():
    """A kill on a target the edge has no own SET for stays a kill,
    even when the callee preserves every outcome involved."""
    source = """
    int g;
    void bump() { g = g + 1; }
    void main() {
      int n = read_int();
      int i = 0;
      while (i < n) {
        bump();
        if (g >= 0) { emit(1); } else { emit(2); }
        i = i + 1;
      }
      emit(g);
    }
    """
    program = compile_program(source, "noclaim", 2)
    tables = program.tables.by_function["main"]
    # The loop branch's edge region holds the call but that edge has no
    # SET on the g-check, so nothing may be suppressed there.
    for stats in program.build_stats:
        if stats.function_name == "main":
            assert stats.interproc_kills_suppressed == 0
    assert errors_in(run_passes(program)) == []
