"""Tests for the content-addressed compile cache (repro.parallel.cache)."""

import pickle

import pytest

from repro.parallel import cache as cache_mod
from repro.parallel.cache import (
    cache_dir,
    cached_compile,
    compile_cache_stats,
    compile_fingerprint,
    reset_compile_cache,
)
from repro.pipeline import compile_program, compile_program_cached

SOURCE = """
int flag;
void main() {
  flag = read_int();
  while (read_int()) {
    if (flag == 1) { emit(1); } else { emit(2); }
  }
}
"""

OTHER_SOURCE = SOURCE.replace("emit(2)", "emit(3)")


@pytest.fixture(autouse=True)
def fresh_cache(monkeypatch):
    """Isolate each test: empty memory layer, disk layer off."""
    monkeypatch.delenv(cache_mod.CACHE_ENV, raising=False)
    reset_compile_cache()
    yield
    reset_compile_cache()


def test_fingerprint_is_stable_and_content_sensitive():
    key = compile_fingerprint(SOURCE, "a.c", 0)
    assert key == compile_fingerprint(SOURCE, "a.c", 0)
    assert key != compile_fingerprint(OTHER_SOURCE, "a.c", 0)
    assert key != compile_fingerprint(SOURCE, "b.c", 0)
    assert key != compile_fingerprint(SOURCE, "a.c", 1)
    assert len(key) == 64


def test_memory_layer_returns_same_object():
    first = cached_compile(SOURCE, "a.c")
    second = cached_compile(SOURCE, "a.c")
    assert first is second
    stats = compile_cache_stats()
    assert stats.misses == 1
    assert stats.memory_hits == 1
    assert stats.hits == 1
    assert stats.lookups == 2


def test_distinct_opt_levels_compile_separately():
    base = cached_compile(SOURCE, "a.c", 0)
    opt = cached_compile(SOURCE, "a.c", 1)
    assert base is not opt
    assert compile_cache_stats().misses == 2


def test_cached_result_matches_direct_compile():
    cached = cached_compile(SOURCE, "a.c")
    direct = compile_program(SOURCE, "a.c")
    assert cached.to_image() == direct.to_image()
    assert cached.source_name == direct.source_name


def test_pipeline_wrapper_uses_cache():
    first = compile_program_cached(SOURCE, "a.c")
    second = compile_program_cached(SOURCE, "a.c")
    assert first is second


def test_disk_layer_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv(cache_mod.CACHE_ENV, str(tmp_path))
    original = cached_compile(SOURCE, "a.c")
    key = compile_fingerprint(SOURCE, "a.c", 0)
    assert (tmp_path / f"{key}.pkl").is_file()

    # A "new process": memory gone, disk still there.
    reset_compile_cache()
    reloaded = cached_compile(SOURCE, "a.c")
    stats = compile_cache_stats()
    assert stats.disk_hits == 1
    assert stats.misses == 0
    assert reloaded.to_image() == original.to_image()


def test_disk_layer_survives_corrupt_entry(tmp_path, monkeypatch):
    monkeypatch.setenv(cache_mod.CACHE_ENV, str(tmp_path))
    key = compile_fingerprint(SOURCE, "a.c", 0)
    (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
    program = cached_compile(SOURCE, "a.c")
    assert compile_cache_stats().misses == 1
    # The corrupt entry was overwritten with a good one.
    with open(tmp_path / f"{key}.pkl", "rb") as handle:
        assert pickle.load(handle).to_image() == program.to_image()


def test_disk_layer_disabled_values(monkeypatch):
    for value in ("", "0", "off", "none", "OFF"):
        monkeypatch.setenv(cache_mod.CACHE_ENV, value)
        assert cache_dir() is None
    monkeypatch.delenv(cache_mod.CACHE_ENV)
    assert cache_dir() is None


def test_reset_clears_disk_when_asked(tmp_path, monkeypatch):
    monkeypatch.setenv(cache_mod.CACHE_ENV, str(tmp_path))
    cached_compile(SOURCE, "a.c")
    assert list(tmp_path.glob("*.pkl"))
    reset_compile_cache(disk=True)
    assert not list(tmp_path.glob("*.pkl"))


def test_unwritable_cache_dir_degrades_gracefully(tmp_path, monkeypatch):
    blocked = tmp_path / "blocked"
    blocked.mkdir()
    blocked.chmod(0o500)
    monkeypatch.setenv(cache_mod.CACHE_ENV, str(blocked / "sub"))
    try:
        program = cached_compile(SOURCE, "a.c")
        assert program is cached_compile(SOURCE, "a.c")
    finally:
        blocked.chmod(0o700)
