"""Tests for definition sites and reaching definitions."""


from repro.lang import parse_program
from repro.ir import Load, lower_program
from repro.analysis import analyze_aliases, analyze_definitions, analyze_purity


def prepare(source):
    module = lower_program(parse_program(source))
    analyze_aliases(module)
    purity = analyze_purity(module)
    return module, purity


def defs_for(source, fn_name="f"):
    module, purity = prepare(source)
    fn = module.function(fn_name)
    def_map, reaching = analyze_definitions(fn, module, purity)
    return module, fn, def_map, reaching


def var_named(fn_or_module, name):
    candidates = getattr(fn_or_module, "frame_variables", None)
    if candidates is None:
        candidates = fn_or_module.globals
    for var in candidates:
        if var.name == name:
            return var
    raise AssertionError(name)


def loads_of(fn, name):
    return [
        (block, idx)
        for block in fn.blocks
        for idx, instruction in enumerate(block.instructions)
        if isinstance(instruction, Load) and instruction.var.name == name
    ]


# ----------------------------------------------------------------------
# Definition sites
# ----------------------------------------------------------------------


def test_direct_store_is_strong_def():
    _, fn, def_map, _ = defs_for("void f() { int x = 1; }")
    x = var_named(fn, "x")
    (site,) = def_map.of_var(x)
    assert site.strong
    assert site.kind == "store"


def test_singleton_indirect_store_is_strong():
    _, fn, def_map, _ = defs_for("void f() { int x = 0; int *p = &x; *p = 1; }")
    x = var_named(fn, "x")
    sites = def_map.of_var(x)
    indirect = [s for s in sites if s.kind == "indirect"]
    assert len(indirect) == 1
    assert indirect[0].strong


def test_multi_target_indirect_store_is_weak():
    _, fn, def_map, _ = defs_for(
        """
        void f(int c) {
          int a = 0; int b = 0; int *p;
          if (c < 0) { p = &a; } else { p = &b; }
          *p = 1;
        }
        """
    )
    a = var_named(fn, "a")
    weak = [s for s in def_map.of_var(a) if s.kind == "indirect"]
    assert len(weak) == 1
    assert not weak[0].strong


def test_array_store_is_weak():
    _, fn, def_map, _ = defs_for("int buf[4]; void f(int i) { buf[i] = 1; }")
    module, purity = prepare("int buf[4]; void f(int i) { buf[i] = 1; }")
    buf = var_named(module, "buf")
    fn2 = module.function("f")
    def_map2, _ = analyze_definitions(fn2, module, purity)
    (site,) = def_map2.of_var(buf)
    assert not site.strong


def test_unknown_indirect_store_defines_all_observable():
    module, fn, def_map, _ = defs_for(
        "int g; void f() { int local = 0; int a = read_int(); *a = 1; }"
    )
    g = var_named(module, "g")
    local = var_named(fn, "local")
    assert any(s.kind == "indirect" for s in def_map.of_var(g))
    assert any(s.kind == "indirect" for s in def_map.of_var(local))


def test_call_pseudo_store_sites():
    module, fn, def_map, _ = defs_for(
        """
        int g;
        void writer() { g = 1; }
        void f() { writer(); }
        """
    )
    g = var_named(module, "g")
    sites = [s for s in def_map.of_var(g) if s.kind == "call"]
    assert len(sites) == 1
    assert not sites[0].strong


def test_pure_call_creates_no_sites():
    _, fn, def_map, _ = defs_for(
        "int id(int a) { return a; } void f() { int x = id(3); }"
    )
    call_sites = [s for s in def_map.sites if s.kind == "call"]
    assert call_sites == []


def test_defs_between_window():
    _, fn, def_map, _ = defs_for("void f() { int x = 1; emit(x); x = 2; }")
    x = var_named(fn, "x")
    sites = def_map.of_var(x)
    assert len(sites) == 2
    first, second = sorted(sites, key=lambda s: s.index)
    window = def_map.defs_between(first.block_label, first.index + 1, second.index, x)
    assert window == []
    window = def_map.defs_between(
        first.block_label, first.index, second.index + 1, x
    )
    assert set(window) == {first, second}


# ----------------------------------------------------------------------
# Reaching definitions
# ----------------------------------------------------------------------


def test_store_reaches_following_load():
    _, fn, def_map, reaching = defs_for("void f() { int x = 1; emit(x); }")
    x = var_named(fn, "x")
    (site,) = def_map.of_var(x)
    ((block, load_idx),) = loads_of(fn, "x")
    assert reaching.reaches_load(site, block.label, load_idx)


def test_strong_store_kills_previous():
    _, fn, def_map, reaching = defs_for(
        "void f() { int x = 1; x = 2; emit(x); }"
    )
    x = var_named(fn, "x")
    first, second = sorted(def_map.of_var(x), key=lambda s: s.index)
    ((block, load_idx),) = loads_of(fn, "x")
    assert not reaching.reaches_load(first, block.label, load_idx)
    assert reaching.reaches_load(second, block.label, load_idx)


def test_both_branch_defs_reach_join():
    _, fn, def_map, reaching = defs_for(
        """
        int c;
        void f() {
          int x = 0;
          if (c < 0) { x = 1; } else { x = 2; }
          emit(x);
        }
        """
    )
    x = var_named(fn, "x")
    ((block, load_idx),) = loads_of(fn, "x")
    live = reaching.reaching(block.label, load_idx)
    live_x = {s for s in live if s.var == x}
    # init is killed on both arms; the two arm stores reach the join.
    assert len(live_x) == 2


def test_weak_def_does_not_kill():
    _, fn, def_map, reaching = defs_for(
        """
        void f(int c) {
          int a = 5;
          int b = 0;
          int *p;
          if (c < 0) { p = &a; } else { p = &b; }
          *p = 9;
          emit(a);
        }
        """
    )
    a = var_named(fn, "a")
    ((block, load_idx),) = loads_of(fn, "a")
    live = {s for s in reaching.reaching(block.label, load_idx) if s.var == a}
    # Both the initializing store and the weak indirect def reach.
    assert len(live) == 2


def test_loop_carried_definition_reaches_header():
    _, fn, def_map, reaching = defs_for(
        """
        int n;
        void f() {
          int i = 0;
          while (i < n) { i = i + 1; }
          emit(i);
        }
        """
    )
    i = var_named(fn, "i")
    sites = def_map.of_var(i)
    assert len(sites) == 2
    # The header load of i sees both the init and the loop increment.
    header_loads = loads_of(fn, "i")
    header_block, header_idx = header_loads[0]
    live = {s for s in reaching.reaching(header_block.label, header_idx) if s.var == i}
    assert len(live) == 2
