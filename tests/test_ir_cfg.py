"""Tests for CFG utilities, dominators, verifier, and printer."""

import pytest

from repro.lang import parse_program
from repro.ir import BasicBlock, CondBranch, Const, DominatorTree, IRError, IRFunction, IRModule, Jump, Reg, RelOp, Return, Store, Variable, VarKind, branch_free_region, cond_edges, edge_target, edges_covering_block, entry_region, format_function, format_module, iter_rpo, lower_program, verify_module


def lower(source):
    return lower_program(parse_program(source))


DIAMOND = """
int x;
void f() {
  if (x < 5) { emit(1); } else { emit(2); }
  emit(3);
}
"""

LOOP = """
int x;
void f() {
  while (x < 10) {
    if (x < 0) { emit(1); }
    x = x + 1;
  }
}
"""


# ----------------------------------------------------------------------
# Conditional edges and regions
# ----------------------------------------------------------------------


def test_cond_edges_enumerates_both_directions():
    fn = lower(DIAMOND).function("f")
    edges = cond_edges(fn)
    assert len(edges) == 2
    assert edges[0].taken and not edges[1].taken
    assert edges[0].block_label == edges[1].block_label


def test_edge_target_matches_branch_fields():
    fn = lower(DIAMOND).function("f")
    taken_edge, fall_edge = cond_edges(fn)
    branch = fn.block(taken_edge.block_label).terminator
    assert edge_target(fn, taken_edge).label == branch.taken
    assert edge_target(fn, fall_edge).label == branch.fallthrough


def test_branch_free_region_of_diamond_covers_arm_and_join():
    fn = lower(DIAMOND).function("f")
    taken_edge, _ = cond_edges(fn)
    region = branch_free_region(fn, taken_edge)
    # Region: then-arm and join (no further conditional branches).
    branch = fn.block(taken_edge.block_label).terminator
    assert branch.taken in region
    assert branch.fallthrough not in region


def test_branch_free_region_stops_at_cond_branch():
    fn = lower(LOOP).function("f")
    # Edge into the loop body stops at the inner if's block.
    edges = cond_edges(fn)
    outer_taken = edges[0]
    region = branch_free_region(fn, outer_taken)
    inner_branch_block = fn.block_of(fn.cond_branches()[1])
    assert inner_branch_block.label in region
    # Inner block ends in a branch, so its successors are not expanded
    # through it.
    for succ in inner_branch_block.succs:
        # Successors may appear only if reachable another branch-free way.
        if succ.label in region:
            assert any(
                p.label in region and not p.ends_in_cond_branch()
                for p in succ.preds
            )


def test_regions_cover_every_dynamically_entered_block():
    # Invariant behind kill placement: every block that is not in the
    # entry region is in the region of at least one conditional edge.
    fn = lower(LOOP).function("f")
    entry = entry_region(fn)
    for block in fn.blocks:
        if block.label in entry:
            continue
        assert edges_covering_block(fn, block.label), block.label


def test_entry_region_of_straight_line_function_is_everything():
    fn = lower("void f() { emit(1); emit(2); }").function("f")
    assert entry_region(fn) == {b.label for b in fn.blocks}


def test_entry_region_stops_at_first_branch():
    fn = lower(DIAMOND).function("f")
    region = entry_region(fn)
    assert region == {fn.entry.label}


# ----------------------------------------------------------------------
# RPO and dominators
# ----------------------------------------------------------------------


def test_rpo_starts_at_entry():
    fn = lower(LOOP).function("f")
    order = list(iter_rpo(fn))
    assert order[0] is fn.entry
    assert len(order) == len(fn.blocks)


def test_dominator_of_join_is_branch_block():
    fn = lower(DIAMOND).function("f")
    tree = DominatorTree(fn)
    branch_block = fn.block_of(fn.cond_branches()[0])
    branch = branch_block.terminator
    join_candidates = [
        b for b in fn.blocks
        if len(b.preds) == 2
    ]
    (join,) = join_candidates
    assert tree.idom(join.label) == branch_block.label
    assert tree.dominates(branch_block.label, join.label)
    assert not tree.dominates(branch.taken, join.label)


def test_entry_dominates_everything():
    fn = lower(LOOP).function("f")
    tree = DominatorTree(fn)
    for block in fn.blocks:
        assert tree.dominates(fn.entry.label, block.label)


def test_dominates_is_reflexive():
    fn = lower(DIAMOND).function("f")
    tree = DominatorTree(fn)
    for block in fn.blocks:
        assert tree.dominates(block.label, block.label)


def test_dominator_chain_ends_at_entry():
    fn = lower(LOOP).function("f")
    tree = DominatorTree(fn)
    for block in fn.blocks:
        chain = tree.dominators_of(block.label)
        assert chain[-1] == fn.entry.label


# ----------------------------------------------------------------------
# Verifier
# ----------------------------------------------------------------------


def _manual_function():
    var = Variable("v", VarKind.LOCAL, 1, 1)
    fn = IRFunction("m", [], returns_value=False)
    fn.locals.append(var)
    block = BasicBlock("b0")
    fn.add_block(block)
    return fn, block, var


def test_verifier_accepts_lowered_programs():
    verify_module(lower(LOOP))  # must not raise


def test_verifier_rejects_missing_terminator():
    fn, block, var = _manual_function()
    block.instructions.append(Const(Reg(0), 1))
    module = IRModule(functions=[fn])
    with pytest.raises(IRError):
        verify_module(module)


def test_verifier_rejects_register_redefinition():
    fn, block, var = _manual_function()
    block.instructions.append(Const(Reg(0), 1))
    block.instructions.append(Const(Reg(0), 2))
    block.instructions.append(Return(None))
    with pytest.raises(IRError):
        verify_module(IRModule(functions=[fn]))


def test_verifier_rejects_use_before_def():
    fn, block, var = _manual_function()
    block.instructions.append(Store(var, Reg(3)))
    block.instructions.append(Const(Reg(3), 1))
    block.instructions.append(Return(None))
    with pytest.raises(IRError):
        verify_module(IRModule(functions=[fn]))


def test_verifier_rejects_unknown_jump_target():
    fn, block, var = _manual_function()
    block.instructions.append(Jump("nowhere"))
    with pytest.raises(IRError):
        verify_module(IRModule(functions=[fn]))


def test_verifier_rejects_foreign_variable():
    fn, block, var = _manual_function()
    foreign = Variable("alien", VarKind.LOCAL, 1, 99)
    block.instructions.append(Store(foreign, 1))
    block.instructions.append(Return(None))
    with pytest.raises(IRError):
        verify_module(IRModule(functions=[fn]))


def test_verifier_rejects_value_return_from_void():
    fn, block, var = _manual_function()
    block.instructions.append(Return(5))
    with pytest.raises(IRError):
        verify_module(IRModule(functions=[fn]))


def test_verifier_rejects_def_not_dominating_use():
    # Build: entry branches to L or R; L defines t0; join uses t0.
    fn = IRFunction("m", [], returns_value=False)
    entry = fn.add_block(BasicBlock("e"))
    left = fn.add_block(BasicBlock("l"))
    right = fn.add_block(BasicBlock("r"))
    join = fn.add_block(BasicBlock("j"))
    var = Variable("v", VarKind.LOCAL, 1, 1)
    fn.locals.append(var)
    entry.instructions += [Const(Reg(9), 0), CondBranch(Reg(9), RelOp.NE, 0, "l", "r")]
    left.instructions += [Const(Reg(0), 1), Jump("j")]
    right.instructions += [Jump("j")]
    join.instructions += [Store(var, Reg(0)), Return(None)]
    fn.compute_edges()
    with pytest.raises(IRError):
        verify_module(IRModule(functions=[fn]))


# ----------------------------------------------------------------------
# Printer
# ----------------------------------------------------------------------


def test_format_function_mentions_blocks_and_instructions():
    module = lower(DIAMOND)
    text = format_function(module.function("f"))
    assert "func f(" in text
    assert "bb0:" in text
    assert "br " in text


def test_format_module_lists_globals():
    module = lower("int g = 3; void f() { }")
    text = format_module(module)
    assert "global @g" in text
    assert "= 3" in text


def test_format_with_addresses():
    module = lower("void f() { emit(1); }")
    text = format_function(module.function("f"), show_addresses=True)
    assert "0x0040" in text
