"""Bench regression gate: threshold semantics and exit codes."""

import json

from repro.observability.benchdiff import (
    DEFAULT_RULES,
    EXIT_OK,
    EXIT_REGRESSION,
    EXIT_TOOL_ERROR,
    MetricDelta,
    MetricRule,
    compare_dirs,
    evaluate,
    main,
    render_table,
)

RULE = MetricRule(
    "observer_overhead",
    ("configs", "noop_instr", "overhead_vs_bare_pct"),
    max_change_pct=15.0,
    min_delta=1.0,
)


def _delta(baseline, current, rule=RULE):
    return MetricDelta(rule=rule, baseline=baseline, current=current)


def _write_bench(directory, value, bench="observer_overhead"):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"BENCH_{bench}.json").write_text(
        json.dumps(
            {"configs": {"noop_instr": {"overhead_vs_bare_pct": value}}}
        )
    )


# -- threshold semantics -------------------------------------------------


def test_improvement_never_regresses():
    assert not _delta(10.0, 5.0).regressed


def test_small_worsening_under_noise_floor_passes():
    # +0.9 absolute is under min_delta=1.0 even though it is >15%.
    assert not _delta(2.0, 2.9).regressed


def test_worsening_within_pct_band_passes():
    # +1.2 absolute exceeds the floor but is only 12% of baseline 10.
    assert not _delta(10.0, 11.2).regressed


def test_regression_needs_both_thresholds():
    assert _delta(10.0, 13.0).regressed  # +3.0 > 1.0 and 30% > 15%


def test_higher_is_better_direction():
    rule = MetricRule("x", ("v",), direction="higher", min_delta=1.0)
    assert _delta(100.0, 80.0, rule).regressed  # -20% drop
    assert not _delta(100.0, 90.0, rule).regressed  # within the 15% band
    assert not _delta(100.0, 110.0, rule).regressed  # improvement


def test_missing_sides_never_regress():
    assert not MetricDelta(rule=RULE, baseline=None, current=5.0).regressed


# -- directory comparison and exit codes ---------------------------------


def test_compare_dirs_and_exit_codes(tmp_path):
    _write_bench(tmp_path / "base", 9.0)
    _write_bench(tmp_path / "cur", 9.2)
    rules = (RULE,)
    deltas = compare_dirs(str(tmp_path / "base"), str(tmp_path / "cur"), rules)
    assert len(deltas) == 1 and not deltas[0].regressed
    assert evaluate(deltas) == EXIT_OK

    _write_bench(tmp_path / "bad", 25.0)
    worse = compare_dirs(str(tmp_path / "base"), str(tmp_path / "bad"), rules)
    assert worse[0].regressed
    assert evaluate(worse) == EXIT_REGRESSION


def test_required_bench_missing_is_tool_error(tmp_path):
    deltas = compare_dirs(str(tmp_path), str(tmp_path), (RULE,))
    assert deltas[0].missing == "baseline file"
    assert evaluate(deltas, required=["observer_overhead"]) == EXIT_TOOL_ERROR
    # ...but only advisory when not required.
    assert evaluate(deltas) == EXIT_OK
    assert evaluate(deltas, required=["nonexistent"]) == EXIT_TOOL_ERROR


def test_render_table_shows_verdicts():
    text = render_table([_delta(10.0, 13.0), _delta(10.0, 10.1)])
    assert "REGRESSED" in text
    assert "ok" in text
    assert "2 metric(s), 1 regression(s)" in text
    missing = render_table([MetricDelta(rule=RULE, baseline=None, current=None,
                                        missing="baseline file")])
    assert "missing baseline file" in missing


def test_default_rules_cover_noop_configs():
    paths = {rule.path for rule in DEFAULT_RULES}
    assert ("configs", "noop_instr", "overhead_vs_bare_pct") in paths
    assert ("configs", "noop_events", "overhead_vs_bare_pct") in paths


def test_default_rules_gate_compile_time_and_detection():
    by_bench = {}
    for rule in DEFAULT_RULES:
        by_bench.setdefault(rule.bench, []).append(rule)
    compile_paths = {r.path for r in by_bench["compile_time"]}
    assert ("total", "opt0_seconds") in compile_paths
    assert ("total", "opt2_seconds") in compile_paths
    assert ("total", "opt3_seconds") in compile_paths
    # Detection rate gates in the "higher is better" direction: the
    # seeded campaigns are deterministic, so a drop is a real weakening
    # of the emitted tables.
    fig7 = by_bench["fig7_detection"]
    assert fig7
    assert all(rule.direction == "higher" for rule in fig7)
    fig7_paths = {r.path for r in fig7}
    assert ("detection", "avg_pct_detected_of_changed") in fig7_paths
    assert ("detection_opt3", "avg_pct_detected_of_changed") in fig7_paths


def test_default_rules_gate_throughput_direction_aware():
    """The batched/segment throughput wins are gated in the "higher is
    better" direction, and the overhead companions stay "lower"."""
    by_path = {rule.path: rule for rule in DEFAULT_RULES}
    for path in (
        ("summary", "full_stack_steps_per_sec"),
        ("summary", "full_stack_segment_steps_per_sec"),
        ("total", "steps_per_sec"),
    ):
        assert by_path[path].direction == "higher", path
        assert by_path[path].min_delta > 0, path  # noise floor declared
    assert (
        by_path[
            ("summary", "full_stack_segment_overhead_vs_bare_pct")
        ].direction
        == "lower"
    )


def test_committed_baselines_exist_for_all_default_rules():
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
    for rule in DEFAULT_RULES:
        assert (root / f"BENCH_{rule.bench}.json").exists(), rule.bench


def test_main_against_committed_baseline(capsys):
    """The real gate, as CI runs it: repo-root BENCH files against the
    committed benchmarks/baselines/."""
    rc = main(["--require", "observer_overhead", "--json", "-"])
    out = capsys.readouterr().out
    assert rc == EXIT_OK, out
    assert "repro-bench-diff" in out


def test_main_json_report(tmp_path, capsys):
    _write_bench(tmp_path / "base", 9.0)
    _write_bench(tmp_path / "cur", 30.0)
    report = tmp_path / "diff.json"
    rc = main([
        "--baseline", str(tmp_path / "base"),
        "--current", str(tmp_path / "cur"),
        "--json", str(report),
    ])
    assert rc == EXIT_REGRESSION
    document = json.loads(report.read_text())
    noop = [m for m in document["metrics"]
            if m["metric"].endswith("noop_instr.overhead_vs_bare_pct")]
    assert noop and noop[0]["regressed"]
