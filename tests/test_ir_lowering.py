"""Tests for AST → IR lowering: structure, verification, addresses."""

import pytest

from repro.lang import LoweringError, parse_program
from repro.ir import (
    AddrOf,
    BinOp,
    Call,
    Cmp,
    CondBranch,
    CODE_BASE,
    INSTRUCTION_BYTES,
    Jump,
    Load,
    LoadIndirect,
    RelOp,
    Return,
    Store,
    StoreIndirect,
    UnOp,
    VarKind,
    lower_program,
    verify_module,
)


def lower(source):
    module = lower_program(parse_program(source))
    verify_module(module)
    return module


def instructions_of(module, name):
    return list(module.function(name).instructions())


def ops(module, name):
    return [type(i).__name__ for i in instructions_of(module, name)]


# ----------------------------------------------------------------------
# Basics
# ----------------------------------------------------------------------


def test_scalar_read_becomes_load():
    module = lower("int g; void f() { int x = g; }")
    kinds = ops(module, "f")
    assert "Load" in kinds
    assert "Store" in kinds


def test_scalar_write_becomes_store():
    module = lower("int g; void f() { g = 3; }")
    (store,) = [i for i in instructions_of(module, "f") if isinstance(i, Store)]
    assert store.var.name == "g"
    assert store.src == 3


def test_params_are_memory_resident():
    module = lower("int f(int a) { return a; }")
    fn = module.function("f")
    assert fn.params[0].kind is VarKind.PARAM
    (load,) = [i for i in fn.instructions() if isinstance(i, Load)]
    assert load.var is fn.params[0]


def test_registers_are_single_assignment():
    module = lower("int g; void f() { int x = g + g * g; g = x + x; }")
    seen = set()
    for instruction in instructions_of(module, "f"):
        dest = getattr(instruction, "dest", None)
        if dest is not None:
            assert dest not in seen
            seen.add(dest)


def test_locals_shadow_globals():
    module = lower("int x; void f() { int x = 1; x = 2; }")
    stores = [i for i in instructions_of(module, "f") if isinstance(i, Store)]
    assert all(s.var.kind is VarKind.LOCAL for s in stores)


def test_inner_scope_shadowing():
    module = lower("void f() { int x = 1; { int x = 2; } x = 3; }")
    stores = [i for i in instructions_of(module, "f") if isinstance(i, Store)]
    # Three stores to two distinct variables named x.
    assert len(stores) == 3
    assert len({s.var for s in stores}) == 2
    assert stores[0].var is stores[2].var


def test_global_initializers_recorded():
    module = lower("int a = 5; int b; void f() { }")
    inits = {v.name: i for v, i in module.global_inits.items()}
    assert inits == {"a": 5}


# ----------------------------------------------------------------------
# Conditions and control flow
# ----------------------------------------------------------------------


def test_simple_condition_in_same_block_as_load():
    module = lower("int x; void f() { if (x < 10) { emit(1); } }")
    fn = module.function("f")
    entry = fn.entry
    assert isinstance(entry.terminator, CondBranch)
    # The load feeding the branch sits in the same block.
    assert any(isinstance(i, Load) for i in entry.body)


def test_condition_relop_encoded_on_branch():
    module = lower("int x; void f() { if (x <= 7) { emit(1); } }")
    branch = module.function("f").entry.terminator
    assert branch.op is RelOp.LE
    assert branch.rhs == 7


def test_constant_lhs_condition_swaps_operands():
    module = lower("int x; void f() { if (10 > x) { emit(1); } }")
    branch = module.function("f").entry.terminator
    assert isinstance(branch, CondBranch)
    assert branch.op is RelOp.LT  # x < 10


def test_constant_condition_folds_to_jump():
    module = lower("void f() { if (1 < 2) { emit(1); } else { emit(2); } }")
    fn = module.function("f")
    assert isinstance(fn.entry.terminator, Jump)
    # else branch is unreachable and pruned.
    calls = [i for i in fn.instructions() if isinstance(i, Call)]
    assert [c.args for c in calls] == [[1]]


def test_truthiness_condition_compares_ne_zero():
    module = lower("int x; void f() { if (x) { emit(1); } }")
    branch = module.function("f").entry.terminator
    assert branch.op is RelOp.NE
    assert branch.rhs == 0


def test_not_condition_swaps_targets():
    direct = lower("int x; void f() { if (x == 0) { emit(1); } else { emit(2); } }")
    negated = lower("int x; void f() { if (!(x == 0)) { emit(2); } else { emit(1); } }")
    b1 = direct.function("f").entry.terminator
    b2 = negated.function("f").entry.terminator
    assert b1.op is b2.op is RelOp.EQ
    # '!' swaps targets: the x==0 branch's taken side holds emit(1) in
    # both versions.
    taken1 = direct.function("f").block(b1.taken)
    taken2 = negated.function("f").block(b2.taken)
    assert [i.args for i in taken1.body if isinstance(i, Call)] == [[1]]
    assert [i.args for i in taken2.body if isinstance(i, Call)] == [[1]]


def test_short_circuit_and_produces_two_branches():
    module = lower("int x; int y; void f() { if (x < 1 && y < 2) { emit(1); } }")
    branches = module.function("f").cond_branches()
    assert len(branches) == 2


def test_short_circuit_or_produces_two_branches():
    module = lower("int x; int y; void f() { if (x < 1 || y < 2) { emit(1); } }")
    branches = module.function("f").cond_branches()
    assert len(branches) == 2


def test_while_loop_shape():
    module = lower("int n; void f() { while (n > 0) { n = n - 1; } }")
    fn = module.function("f")
    (branch,) = fn.cond_branches()
    header = fn.block_of(branch)
    # The loop body jumps back to the header.
    body = fn.block(branch.taken)
    last = body
    # Follow jumps until we return to the header.
    seen = set()
    while not isinstance(last.terminator, CondBranch):
        assert last.label not in seen
        seen.add(last.label)
        last = fn.block(last.terminator.target)
    assert last is header


def test_for_loop_lowering_counts():
    module = lower(
        "void f() { int s = 0; for (int i = 0; i < 4; i = i + 1) { s = s + i; } }"
    )
    fn = module.function("f")
    assert len(fn.cond_branches()) == 1


def test_break_exits_loop():
    module = lower("void f() { while (1) { break; } emit(9); }")
    fn = module.function("f")
    # No conditional branches: while(1) folds, break jumps out.
    assert fn.cond_branches() == []
    calls = [i for i in fn.instructions() if isinstance(i, Call)]
    assert [c.args for c in calls] == [[9]]


def test_continue_targets_step_block_in_for():
    module = lower(
        "void f() { int s = 0; for (int i = 0; i < 9; i = i + 1)"
        " { if (i == 3) { continue; } s = s + 1; } emit(s); }"
    )
    fn = module.function("f")
    assert len(fn.cond_branches()) == 2


def test_break_outside_loop_rejected():
    with pytest.raises(LoweringError):
        lower("void f() { break; }")


def test_continue_outside_loop_rejected():
    with pytest.raises(LoweringError):
        lower("void f() { continue; }")


def test_fall_off_end_int_function_returns_zero():
    module = lower("int f() { }")
    (terminator,) = [
        b.terminator for b in module.function("f").blocks
    ]
    assert isinstance(terminator, Return)
    assert terminator.value == 0


def test_fall_off_end_void_function_returns_none():
    module = lower("void f() { }")
    terminator = module.function("f").entry.terminator
    assert isinstance(terminator, Return)
    assert terminator.value is None


def test_code_after_return_is_pruned():
    module = lower("int f() { return 1; emit(2); }")
    calls = [i for i in module.function("f").instructions() if isinstance(i, Call)]
    assert calls == []


# ----------------------------------------------------------------------
# Pointers, arrays, calls
# ----------------------------------------------------------------------


def test_pointer_deref_read_uses_indirect_load():
    module = lower("void f(int *p) { int x = *p; }")
    kinds = ops(module, "f")
    assert "LoadIndirect" in kinds


def test_pointer_deref_write_uses_indirect_store():
    module = lower("void f(int *p) { *p = 7; }")
    kinds = ops(module, "f")
    assert "StoreIndirect" in kinds


def test_array_index_computes_address():
    module = lower("int buf[8]; void f() { buf[3] = 1; }")
    insns = instructions_of(module, "f")
    assert any(isinstance(i, AddrOf) for i in insns)
    assert any(isinstance(i, StoreIndirect) for i in insns)


def test_array_index_zero_elides_add():
    module = lower("int buf[8]; void f() { buf[0] = 1; }")
    insns = instructions_of(module, "f")
    assert not any(isinstance(i, BinOp) for i in insns)


def test_address_of_scalar():
    module = lower("void f() { int x = 0; int *p = &x; }")
    insns = instructions_of(module, "f")
    addr_ofs = [i for i in insns if isinstance(i, AddrOf)]
    assert [a.var.name for a in addr_ofs] == ["x"]


def test_array_name_decays_to_address():
    module = lower("int buf[4]; void f(int *q) { } void g() { f(buf); }")
    insns = instructions_of(module, "g")
    assert any(isinstance(i, AddrOf) for i in insns)


def test_assign_to_array_name_rejected():
    with pytest.raises(LoweringError):
        lower("int buf[4]; void f() { buf = 1; }")


def test_call_with_return_value():
    module = lower("int g() { return 4; } void f() { int x = g(); }")
    calls = [i for i in instructions_of(module, "f") if isinstance(i, Call)]
    assert calls[0].dest is not None


def test_void_call_has_no_dest():
    module = lower("void g() { } void f() { g(); }")
    calls = [i for i in instructions_of(module, "f") if isinstance(i, Call)]
    assert calls[0].dest is None


def test_void_call_as_value_rejected():
    with pytest.raises(LoweringError):
        lower("void g() { } void f() { int x = g(); }")


def test_undefined_function_rejected():
    with pytest.raises(LoweringError):
        lower("void f() { mystery(); }")


def test_arity_mismatch_rejected():
    with pytest.raises(LoweringError):
        lower("int g(int a) { return a; } void f() { g(1, 2); }")


def test_builtin_arity_checked():
    with pytest.raises(LoweringError):
        lower("void f() { emit(); }")


def test_builtin_shadowing_rejected():
    with pytest.raises(LoweringError):
        lower("int read_int() { return 0; }")


def test_duplicate_function_rejected():
    with pytest.raises(LoweringError):
        lower("void f() { } void f() { }")


def test_undefined_variable_rejected():
    with pytest.raises(LoweringError):
        lower("void f() { x = 1; }")


def test_redeclaration_in_same_scope_rejected():
    with pytest.raises(LoweringError):
        lower("void f() { int x; int x; }")


# ----------------------------------------------------------------------
# Value-position logical ops, folding, unary
# ----------------------------------------------------------------------


def test_logical_and_in_value_position():
    module = lower("int a; int b; void f() { int x = a && b; }")
    insns = instructions_of(module, "f")
    assert any(isinstance(i, Cmp) for i in insns)
    assert module.function("f").cond_branches() == []


def test_constant_folding_of_arithmetic():
    module = lower("void f() { emit(2 + 3 * 4); }")
    (call,) = [i for i in instructions_of(module, "f") if isinstance(i, Call)]
    assert call.args == [14]


def test_constant_folding_division_truncates_toward_zero():
    module = lower("void f() { emit(-7 / 2); }")
    (call,) = [i for i in instructions_of(module, "f") if isinstance(i, Call)]
    assert call.args == [-3]


def test_constant_division_by_zero_rejected():
    with pytest.raises(LoweringError):
        lower("void f() { emit(1 / 0); }")


def test_unary_minus_on_register():
    module = lower("int x; void f() { emit(-x); }")
    insns = instructions_of(module, "f")
    assert any(isinstance(i, UnOp) and i.op == "-" for i in insns)


# ----------------------------------------------------------------------
# Addresses and module finalization
# ----------------------------------------------------------------------


def test_addresses_assigned_and_spaced():
    module = lower("int x; void f() { x = 1; } void g() { x = 2; }")
    addresses = [i.address for fn in module.functions for i in fn.instructions()]
    assert addresses[0] == CODE_BASE
    assert all(
        b - a == INSTRUCTION_BYTES for a, b in zip(addresses, addresses[1:])
    )


def test_function_extent():
    module = lower("int x; void f() { x = 1; } void g() { x = 2; }")
    f_lo, f_hi = module.function_extent("f")
    g_lo, g_hi = module.function_extent("g")
    assert f_hi < g_lo
    assert f_lo == CODE_BASE


def test_instruction_at_lookup():
    module = lower("void f() { emit(1); }")
    first = next(iter(module.function("f").instructions()))
    assert module.instruction_at(first.address) is first
    assert module.instruction_at(0xDEAD) is None


def test_branch_edges_taken_first():
    module = lower("int x; void f() { if (x < 1) { emit(1); } else { emit(2); } }")
    fn = module.function("f")
    entry = fn.entry
    branch = entry.terminator
    assert entry.succs[0].label == branch.taken
    assert entry.succs[1].label == branch.fallthrough
