"""Dynamic validation of the static branch analysis.

Two properties tie the compiler's claims to real executions of random
programs:

1. **Check soundness** — for every executed conditional branch with a
   check predicate, the actual direction equals the predicate applied
   to the value its terminal load produced (the affine-chain solving is
   exact).
2. **Inference soundness** — immediately after a branch commits, the
   memory value of each inference variable lies inside the interval the
   taken direction implies (the clean-gap rule really does guarantee
   the register still mirrors memory).

Together these are the dynamic counterpart of the zero-FP theorem: any
bug in chain solving, outcome sets, or gap checking shows up here.
"""

from hypothesis import HealthCheck, given, settings

from repro.analysis import (
    analyze_aliases,
    analyze_branches,
    analyze_definitions,
    analyze_purity,
)
from repro.interp import Interpreter
from repro.ir import CondBranch, Load, lower_program, verify_module
from repro.lang import parse_program
from repro.runtime import BranchEvent

from .test_zero_false_positives import INPUT_STREAMS, programs


def collect_facts(module):
    analyze_aliases(module)
    purity = analyze_purity(module)
    facts = {}
    for fn in module.functions:
        def_map, _ = analyze_definitions(fn, module, purity)
        for pc, branch_facts in analyze_branches(fn, def_map).items():
            facts[pc] = branch_facts
            if branch_facts.check is not None:
                block = fn.block(branch_facts.block_label)
                load = block.instructions[branch_facts.check.load_index]
                assert isinstance(load, Load)
                facts[pc] = (branch_facts, load)
            else:
                facts[pc] = (branch_facts, None)
    return facts


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(source=programs(), inputs=INPUT_STREAMS)
def test_check_predicates_match_execution(source, inputs):
    module = lower_program(parse_program(source))
    verify_module(module)
    facts = collect_facts(module)

    last_load_value = {}
    violations = []

    interpreter = Interpreter(module, inputs=inputs, step_limit=20_000)

    original_step = interpreter._step

    def instrumented(activation, instruction):
        if isinstance(instruction, Load):
            result = original_step(activation, instruction)
            last_load_value[id(instruction)] = activation.regs[
                instruction.dest
            ]
            return result
        if isinstance(instruction, CondBranch):
            entry = facts.get(instruction.address)
            if entry is not None:
                branch_facts, load = entry
                if load is not None and id(load) in last_load_value:
                    value = last_load_value[id(load)]
                    predicted = branch_facts.check.outcome_for_value(value)
                    lhs = activation.regs[instruction.lhs]
                    rhs = (
                        instruction.rhs
                        if isinstance(instruction.rhs, int)
                        else activation.regs[instruction.rhs]
                    )
                    actual = instruction.op.evaluate(lhs, rhs)
                    if predicted != actual:
                        violations.append(
                            (instruction.address, value, predicted, actual)
                        )
            return original_step(activation, instruction)
        return original_step(activation, instruction)

    interpreter._step = instrumented
    interpreter.run()
    assert not violations, (source, violations)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(source=programs(), inputs=INPUT_STREAMS)
def test_inference_ranges_hold_at_commit(source, inputs):
    module = lower_program(parse_program(source))
    verify_module(module)
    facts = collect_facts(module)
    violations = []

    def on_event(event):
        if not isinstance(event, BranchEvent):
            return
        entry = facts.get(event.pc)
        if entry is None:
            return
        branch_facts, _ = entry
        frame_base = (
            interpreter._stack[-1].frame_base if interpreter._stack else None
        )
        for inference in branch_facts.inferences:
            implied = inference.implied_set(event.taken)
            try:
                address = interpreter.memory.address_of(
                    inference.var, frame_base
                )
            except KeyError:
                continue
            value = interpreter.memory.read(address)
            if not implied.contains_value(value):
                violations.append(
                    (event.pc, inference.var.name, value, str(implied))
                )

    interpreter = Interpreter(
        module, inputs=inputs, step_limit=20_000, event_listeners=[on_event]
    )
    interpreter.run()
    assert not violations, (source, violations)
