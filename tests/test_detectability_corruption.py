"""Corruption properties for the detectability prover (DET8xx).

The prover's verdicts rest on exactly the artifacts the auditors
already guard: the BAT action tables, the BCV check vector, and (at
opt 3) the feasible-path provenance witnesses.  These tests corrupt
each artifact one mutation at a time and assert the safety-net
disjunction: the affected verdict flips, **or** an existing audit
(correlation ``COR2xx`` / feasible ``FP7xx``) flags the corruption.  A
laundered table can never both keep a ``DET801``/``DET803`` claim and
pass the audits — so ``repro audit`` + ``repro predict`` together
never certify corrupted tables.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.alias import analyze_aliases
from repro.analysis.purity import analyze_purity
from repro.correlation.actions import BranchAction
from repro.correlation.provenance import REASON_FEASIBLE
from repro.pipeline import compile_program
from repro.staticcheck import audit_program, errors_in
from repro.staticcheck.detectability import (
    POSSIBLY_DETECTED,
    PROVEN_DETECTED,
    PROVEN_UNDETECTED,
    DetectabilityAnalysis,
)
from repro.staticcheck.feasaudit import audit_feasible

# Two checks of the same unmodified global: any tamper landing between
# them with a value that flips the remembered direction is *proven*
# detected — the second check must contradict the BSV on every path.
TWIN_TEMPLATE = """
int v;
void main() {{
    v = read_int();
    if (v {op} {bound}) {{ emit(1); }} else {{ emit(2); }}
    if (v {op} {bound}) {{ emit(3); }} else {{ emit(4); }}
}}
"""

# Same shape as the feasible-path demo: the first branch decides the
# later checks only if the middle infeasible edge is pruned, so the
# opt-3 SET entries carry load-bearing pruned-edge witnesses.
PRUNE_SOURCE = """
int mode;
int level;
void main() {
  int n = read_int();
  mode = 0;
  level = 0;
  if (n > 2) {
    mode = 1;
    level = 1;
  }
  if (mode == 1) {
    emit(7);
  } else {
    level = 5;
  }
  if (level > 1) { emit(8); } else { emit(9); }
}
"""

OPS = ["==", "!=", "<", "<=", ">", ">="]


def twin_source(op: str = ">", bound: int = 5) -> str:
    return TWIN_TEMPLATE.format(op=op, bound=bound)


def fresh_analysis(program) -> DetectabilityAnalysis:
    analyze_aliases(program.module)
    purity = analyze_purity(program.module)
    return DetectabilityAnalysis(program, purity)


def det801_points(program, analysis=None):
    """Every (block, value) where tampering the global at block entry
    of ``main`` is proven detected."""
    analysis = analysis or fresh_analysis(program)
    var = next(g for g in program.module.globals if g.name == "v")
    fn = program.module.function("main")
    points = []
    for block in fn.blocks:
        for region in analysis.regions_for(var):
            verdict, _ = analysis.point_verdict(
                var, fn.name, block.label, region.representative
            )
            if verdict == PROVEN_DETECTED:
                points.append((block.label, region.representative))
    return points


def set_entries(tables):
    found = []
    for key, entries in tables.bat.items():
        for i, (target, action) in enumerate(entries):
            if action in (BranchAction.SET_T, BranchAction.SET_NT):
                found.append((key, i, (target, action)))
    return found


def flipped(action: BranchAction) -> BranchAction:
    return (
        BranchAction.SET_NT
        if action is BranchAction.SET_T
        else BranchAction.SET_T
    )


@pytest.mark.parametrize("opt", [0, 2])
def test_twin_program_has_proven_detected_points(opt):
    # The corruption properties below are vacuous unless the fresh
    # tables actually prove some tamper detected; pin that they do.
    program = compile_program(twin_source(), opt_level=opt)
    assert det801_points(program), "no DET801 point on fresh tables"
    assert audit_program(program) == []


# ----------------------------------------------------------------------
# BAT corruption: flipping a SET action
# ----------------------------------------------------------------------


@pytest.mark.parametrize("opt", [0, 2])
def test_set_flip_flips_verdict_or_is_audited(opt):
    program = compile_program(twin_source(), opt_level=opt)
    tables = program.tables.by_function["main"]
    baseline = det801_points(program)
    assert baseline
    bat = dict(tables.bat)
    for key, index, (target, action) in set_entries(tables):
        original = bat[key]
        corrupt = list(original)
        corrupt[index] = (target, flipped(action))
        bat[key] = tuple(corrupt)
        tables.bat = bat
        try:
            audited = any(
                d.code == "COR205" for d in errors_in(audit_program(program))
            )
            analysis = fresh_analysis(program)
            var = next(g for g in program.module.globals if g.name == "v")
            surviving = [
                (block, value)
                for block, value in baseline
                if analysis.point_verdict(var, "main", block, value)[0]
                == PROVEN_DETECTED
            ]
            assert audited or surviving != baseline, (
                f"flip of {action.value} at {key} kept every DET801 "
                f"verdict and passed the audit"
            )
        finally:
            bat[key] = original
            tables.bat = bat


@settings(max_examples=15, deadline=None)
@given(
    op=st.sampled_from(OPS),
    bound=st.integers(min_value=-8, max_value=8),
    opt=st.sampled_from([0, 2]),
)
def test_random_set_flips_never_certify(op, bound, opt):
    """Property: on random twin programs, every SET flip is either
    caught by the correlation audit or demotes some proven verdict."""
    program = compile_program(twin_source(op, bound), opt_level=opt)
    tables = program.tables.by_function["main"]
    baseline = det801_points(program)
    bat = dict(tables.bat)
    for key, index, (target, action) in set_entries(tables):
        original = bat[key]
        corrupt = list(original)
        corrupt[index] = (target, flipped(action))
        bat[key] = tuple(corrupt)
        tables.bat = bat
        try:
            if any(
                d.code == "COR205" for d in errors_in(audit_program(program))
            ):
                continue
            analysis = fresh_analysis(program)
            var = next(g for g in program.module.globals if g.name == "v")
            surviving = [
                (block, value)
                for block, value in baseline
                if analysis.point_verdict(var, "main", block, value)[0]
                == PROVEN_DETECTED
            ]
            assert surviving != baseline, (
                f"unaudited flip at {key} kept all verdicts "
                f"({op} {bound}, opt {opt})"
            )
        finally:
            bat[key] = original
            tables.bat = bat


# ----------------------------------------------------------------------
# BCV corruption: deleting check slots
# ----------------------------------------------------------------------


@pytest.mark.parametrize("opt", [0, 2])
def test_bcv_slot_deletion_flips_verdict_or_is_audited(opt):
    program = compile_program(twin_source(), opt_level=opt)
    tables = program.tables.by_function["main"]
    baseline = det801_points(program)
    assert baseline
    for slot in sorted(tables.bcv_slots):
        # replace() reruns __post_init__, so the precomputed per-branch
        # runtime plan reflects the deleted check slot.
        program.tables.by_function["main"] = replace(
            tables, bcv_slots=tables.bcv_slots - {slot}
        )
        try:
            audited = bool(audit_program(program))
            analysis = fresh_analysis(program)
            var = next(g for g in program.module.globals if g.name == "v")
            surviving = [
                (block, value)
                for block, value in baseline
                if analysis.point_verdict(var, "main", block, value)[0]
                == PROVEN_DETECTED
            ]
            assert audited or surviving != baseline, (
                f"deleting BCV slot {slot} kept every DET801 verdict "
                f"and passed the audit"
            )
        finally:
            program.tables.by_function["main"] = tables


@pytest.mark.parametrize("opt", [0, 2])
def test_empty_bcv_leaves_no_proven_detection(opt):
    """With no checked branch at all there is nowhere an alarm can
    fire, so no DET801 can survive — the verdict flip alone (before
    any audit runs) already withdraws the proof."""
    program = compile_program(twin_source(), opt_level=opt)
    tables = program.tables.by_function["main"]
    assert det801_points(program)
    program.tables.by_function["main"] = replace(
        tables, bcv_slots=frozenset()
    )
    try:
        assert det801_points(program) == []
    finally:
        program.tables.by_function["main"] = tables


def test_irrelevant_global_stays_proven_undetected_under_corruption():
    """DET803 rests on the dependence closure over the IR, not on the
    tables: emptying the BCV cannot manufacture a detection claim, and
    the verdict stays PROVEN_UNDETECTED for a never-branched-on
    global."""
    source = """
    int g;
    void main() {
        g = read_int();
        int v = read_int();
        if (v > 5) { emit(1); } else { emit(2); }
    }
    """
    program = compile_program(source)
    tables = program.tables.by_function["main"]
    var = next(g for g in program.module.globals if g.name == "g")
    fn = program.module.function("main")
    for bcv in (tables.bcv_slots, frozenset()):
        program.tables.by_function["main"] = replace(tables, bcv_slots=bcv)
        analysis = fresh_analysis(program)
        for block in fn.blocks:
            verdict, _ = analysis.point_verdict(var, "main", block.label, 99)
            assert verdict == PROVEN_UNDETECTED


# ----------------------------------------------------------------------
# Feasible-path witness laundering (opt 3)
# ----------------------------------------------------------------------


def _tamper(tables, index, **changes):
    records = list(tables.provenance)
    records[index] = replace(records[index], **changes)
    tables.provenance = tuple(records)
    tables._prov_index = None


def _feasible_indices(tables):
    return [
        i
        for i, r in enumerate(tables.provenance)
        if r.reason == REASON_FEASIBLE
    ]


def test_deleting_witnesses_is_always_audited():
    """Laundering a feasible-path witness (deleting the pruned-edge
    declarations that carried the proof) must be caught by the FP7xx
    audit: at least one record's proof is load-bearing, and deleting
    its witness flags FP703."""
    program = compile_program(PRUNE_SOURCE, opt_level=3)
    tables = program.tables.by_function["main"]
    indices = _feasible_indices(tables)
    assert indices, "opt 3 emitted no feasible-path records"
    assert audit_feasible(program) == []
    flagged = []
    for index in indices:
        if not tables.provenance[index].witness:
            continue
        original = tables.provenance
        _tamper(tables, index, witness=())
        try:
            codes = {d.code for d in audit_feasible(program)}
            if "FP703" in codes:
                flagged.append(index)
        finally:
            tables.provenance = original
            tables._prov_index = None
    assert flagged, "no witness deletion was flagged FP703"


def test_fabricated_witness_edge_is_always_audited():
    program = compile_program(PRUNE_SOURCE, opt_level=3)
    tables = program.tables.by_function["main"]
    for index in _feasible_indices(tables):
        record = tables.provenance[index]
        original = tables.provenance
        _tamper(tables, index, witness=(record.witness or ()) + ("bb999:T",))
        try:
            codes = {d.code for d in audit_feasible(program)}
            assert "FP702" in codes, (
                f"fabricated witness edge on record {index} not flagged"
            )
        finally:
            tables.provenance = original
            tables._prov_index = None


def test_laundered_witnesses_cannot_change_verdicts_silently():
    """The prover derives its opt-3 pruning from the IR, never from the
    provenance sidecar — so witness laundering leaves every DET verdict
    bit-identical while the FP7xx audit turns red.  The audit, not the
    prover, is the guard for this artifact, and the disjunction holds
    through its second arm."""
    program = compile_program(PRUNE_SOURCE, opt_level=3)
    tables = program.tables.by_function["main"]
    analysis = fresh_analysis(program)
    var = next(g for g in program.module.globals if g.name == "level")
    fn = program.module.function("main")
    before = {
        (block.label, region.representative): analysis.point_verdict(
            var, "main", block.label, region.representative
        )[0]
        for block in fn.blocks
        for region in analysis.regions_for(var)
    }
    assert set(before.values()) & {PROVEN_DETECTED, POSSIBLY_DETECTED}
    for index in _feasible_indices(tables):
        _tamper(tables, index, witness=())
    laundered = fresh_analysis(program)
    after = {
        point: laundered.point_verdict(var, "main", point[0], point[1])[0]
        for point in before
    }
    assert after == before
    assert audit_feasible(program), "laundering escaped the FP7xx audit"
