"""Dynamic validation of reaching definitions.

Property: when a direct load executes and the last dynamic writer of
its variable was a direct store *in the same function activation*, that
store's static definition site must be in the load's reaching set.
(Writers from other activations, indirect stores, initial values and
call-internal writes are attributed differently and skipped — the
direct-store case is the one the store-correlation rule of Fig. 5
consumes.)
"""

from typing import Dict, Optional, Tuple

from hypothesis import HealthCheck, given, settings

from repro.analysis import analyze_aliases, analyze_definitions, analyze_purity
from repro.interp import Interpreter
from repro.ir import Load, Store, StoreIndirect, lower_program
from repro.lang import parse_program

from .test_zero_false_positives import INPUT_STREAMS, programs


def positions(module):
    """Map id(instruction) -> (fn name, block label, index)."""
    table = {}
    for fn in module.functions:
        for block in fn.blocks:
            for index, instruction in enumerate(block.instructions):
                table[id(instruction)] = (fn.name, block.label, index)
    return table


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(source=programs(), inputs=INPUT_STREAMS)
def test_dynamic_writers_are_statically_reaching(source, inputs):
    module = lower_program(parse_program(source))
    analyze_aliases(module)
    purity = analyze_purity(module)
    position_of = positions(module)
    reaching_by_fn = {}
    for fn in module.functions:
        reaching_by_fn[fn.name] = analyze_definitions(fn, module, purity)

    # last_writer[address] = (kind, fn name, frame_base, block, index)
    last_writer: Dict[int, Optional[Tuple]] = {}
    violations = []

    interpreter = Interpreter(module, inputs=inputs, step_limit=20_000)
    original_step = interpreter._step

    def instrumented(activation, instruction):
        if isinstance(instruction, Store):
            address = interpreter.memory.address_of(
                instruction.var, activation.frame_base
            )
            fn_name, block, index = position_of[id(instruction)]
            last_writer[address] = (
                "store",
                fn_name,
                activation.frame_base,
                block,
                index,
            )
            return original_step(activation, instruction)
        if isinstance(instruction, StoreIndirect):
            result = original_step(activation, instruction)
            address = activation.regs[instruction.addr]
            last_writer[address] = ("indirect",)
            return result
        if isinstance(instruction, Load):
            address = interpreter.memory.address_of(
                instruction.var, activation.frame_base
            )
            writer = last_writer.get(address)
            if writer is not None and writer[0] == "store":
                _, w_fn, w_base, w_block, w_index = writer
                fn_name, block, index = position_of[id(instruction)]
                if w_fn == fn_name and w_base == activation.frame_base:
                    def_map, reaching = reaching_by_fn[fn_name]
                    matching = [
                        site
                        for site in def_map.at(w_block, w_index)
                        if site.var == instruction.var
                    ]
                    live = reaching.reaching(block, index)
                    if matching and not any(s in live for s in matching):
                        violations.append(
                            (fn_name, w_block, w_index, block, index)
                        )
            return original_step(activation, instruction)
        return original_step(activation, instruction)

    interpreter._step = instrumented
    interpreter.run()
    assert not violations, (source, violations)
