"""Tests for the ten server workloads: they compile, run, and are clean."""

import random

import pytest

from repro.pipeline import compile_program, monitored_run
from repro.workloads import Workload, all_workloads, get_workload, workload_names

EXPECTED_NAMES = [
    "telnetd",
    "wu-ftpd",
    "xinetd",
    "crond",
    "sysklogd",
    "atftpd",
    "httpd",
    "sendmail",
    "sshd",
    "portmap",
]


def test_all_ten_workloads_registered():
    assert workload_names() == EXPECTED_NAMES


def test_vulnerability_kinds_match_paper():
    kinds = {w.name: w.vuln_kind for w in all_workloads()}
    assert kinds["wu-ftpd"] == "fmt"
    assert kinds["sysklogd"] == "fmt"
    for name in EXPECTED_NAMES:
        if name not in ("wu-ftpd", "sysklogd"):
            assert kinds[name] == "bof", name


def test_bad_vuln_kind_rejected():
    with pytest.raises(ValueError):
        Workload(
            name="x",
            vuln_kind="nope",
            source="void main() { }",
            make_inputs=lambda rng: [],
            description="",
        )


@pytest.mark.parametrize("name", EXPECTED_NAMES)
def test_workload_compiles_with_correlations(name):
    workload = get_workload(name)
    program = compile_program(workload.source, name)
    # Every server must have at least one checked branch — otherwise
    # the IPDS has nothing to verify.
    assert program.tables.total_checked > 0, name
    assert program.tables.total_branches > 0


@pytest.mark.parametrize("name", EXPECTED_NAMES)
@pytest.mark.parametrize("seed", range(8))
def test_workload_clean_runs_are_ok_and_alarm_free(name, seed):
    workload = get_workload(name)
    program = compile_program(workload.source, name)
    rng = random.Random(f"{name}:{seed}")
    inputs = workload.make_inputs(rng)
    result, ipds = monitored_run(program, inputs=inputs)
    assert result.ok, (name, seed, result.status)
    assert not ipds.detected, (name, seed, [str(a) for a in ipds.alarms])
    assert result.outputs, name  # every server says something


@pytest.mark.parametrize("name", EXPECTED_NAMES)
def test_workload_inputs_deterministic(name):
    workload = get_workload(name)
    a = workload.make_inputs(random.Random("fixed"))
    b = workload.make_inputs(random.Random("fixed"))
    assert a == b


@pytest.mark.parametrize("name", EXPECTED_NAMES)
def test_workload_runs_deterministic(name):
    workload = get_workload(name)
    program = compile_program(workload.source, name)
    inputs = workload.make_inputs(random.Random("det"))
    r1, _ = monitored_run(program, inputs=inputs)
    r2, _ = monitored_run(program, inputs=inputs)
    assert r1.outputs == r2.outputs
    assert r1.branch_trace == r2.branch_trace
    assert r1.steps == r2.steps


def test_unknown_workload_raises():
    with pytest.raises(KeyError):
        get_workload("nginx")
