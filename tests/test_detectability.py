"""Unit tests for the static detectability prover (DET8xx).

Small programs with hand-checkable continuations pin each layer: the
value-region partition, callee totality, branch relevance, the
must-alarm walk semantics, point verdicts on the twin-check diamond,
and the aggregated ``repro predict`` diagnostics.
"""

import pytest

from repro.analysis.alias import analyze_aliases
from repro.analysis.purity import analyze_purity
from repro.ir.instructions import RelOp
from repro.pipeline import compile_program
from repro.staticcheck import run_passes
from repro.staticcheck.detectability import (
    POSSIBLY_DETECTED,
    PROVEN_DETECTED,
    PROVEN_UNDETECTED,
    DetectabilityAnalysis,
    ValueRegion,
    compute_branch_relevance,
    compute_callee_facts,
    value_regions,
)

# v is checked twice without an intervening store: tampering between
# the checks with a value on the other side of the bound must alarm at
# the second check on every continuation.
TWIN_SOURCE = """
int v;
void main() {
    v = read_int();
    if (v > 5) { emit(1); } else { emit(2); }
    if (v > 5) { emit(3); } else { emit(4); }
}
"""


def analysis_for(source, opt_level=0):
    program = compile_program(source, opt_level=opt_level)
    analyze_aliases(program.module)
    purity = analyze_purity(program.module)
    return program, DetectabilityAnalysis(program, purity)


def global_named(program, name):
    return next(g for g in program.module.globals if g.name == name)


# ----------------------------------------------------------------------
# value_regions
# ----------------------------------------------------------------------


def test_value_regions_no_checks_is_one_unbounded_region():
    regions = value_regions(())
    assert regions == (ValueRegion(None, None, 0),)


def test_value_regions_partition_is_outcome_constant_and_total():
    checks = ((RelOp.GT, 5), (RelOp.EQ, 0))
    regions = value_regions(checks)
    # Totality and order: the cells tile the sampled integers.
    lo_bound, hi_bound = -10, 20
    covered = sorted(
        value
        for region in regions
        for value in range(
            lo_bound if region.lo is None else max(region.lo, lo_bound),
            (hi_bound if region.hi is None else min(region.hi, hi_bound))
            + 1,
        )
    )
    assert covered == list(range(lo_bound, hi_bound + 1))
    # Constancy: every value in a cell agrees with its representative.
    for region in regions:
        rep = tuple(op.evaluate(region.representative, b) for op, b in checks)
        lo = region.representative - 3 if region.lo is None else region.lo
        hi = region.representative + 3 if region.hi is None else region.hi
        for value in range(lo, hi + 1):
            assert (
                tuple(op.evaluate(value, b) for op, b in checks) == rep
            ), (region, value)
    # Maximality: merged neighbours would disagree.
    for left, right in zip(regions, regions[1:]):
        assert tuple(
            op.evaluate(left.representative, b) for op, b in checks
        ) != tuple(op.evaluate(right.representative, b) for op, b in checks)


# ----------------------------------------------------------------------
# callee totality and branch relevance
# ----------------------------------------------------------------------


def test_callee_totality_strikes_loops_and_division():
    source = """
    int a;
    void straight() { a = 1; }
    void looping() {
        int i = 0;
        while (i < 3) { i = i + 1; }
    }
    void dividing(int n) { a = 10 / n; }
    void calls_looping() { looping(); }
    void main() {
        straight();
        calls_looping();
        dividing(2);
        if (a > 0) { emit(1); } else { emit(2); }
    }
    """
    program = compile_program(source)
    purity = analyze_purity(program.module)
    facts = compute_callee_facts(program.module.functions, purity)
    assert facts["straight"].total
    assert not facts["looping"].total  # CFG cycle
    assert not facts["dividing"].total  # faultable division
    assert not facts["calls_looping"].total  # transitive
    assert facts["straight"].may_write_var(global_named(program, "a"))


def test_branch_relevance_tracks_dataflow_not_mere_mention():
    source = """
    int used;
    int logged;
    void main() {
        used = read_int();
        logged = read_int();
        emit(logged);
        int copy = used + 1;
        if (copy > 3) { emit(1); } else { emit(2); }
    }
    """
    program = compile_program(source)
    relevance = compute_branch_relevance(program.module.functions)
    assert not relevance.everything
    assert relevance.relevant(global_named(program, "used"))
    # logged flows to emit() only, never to a branch condition.
    assert not relevance.relevant(global_named(program, "logged"))


def test_branch_relevance_crosses_call_boundaries():
    source = """
    int g;
    int echo(int x) { return x; }
    void main() {
        g = read_int();
        int r = echo(g);
        if (r > 0) { emit(1); } else { emit(2); }
    }
    """
    program = compile_program(source)
    relevance = compute_branch_relevance(program.module.functions)
    assert relevance.relevant(global_named(program, "g"))


# ----------------------------------------------------------------------
# point verdicts on the twin diamond
# ----------------------------------------------------------------------


@pytest.mark.parametrize("opt", [0, 2])
def test_twin_diamond_point_verdicts(opt):
    program, analysis = analysis_for(TWIN_SOURCE, opt_level=opt)
    var = global_named(program, "v")
    fn = program.module.function("main")
    labels = [block.label for block in fn.blocks]
    # The two arm blocks of the first diamond sit between the checks.
    arm_taken, arm_nottaken = labels[1], labels[2]
    # Tampering in the taken arm (v > 5 was remembered TAKEN) with a
    # value that fails the second check must alarm: DET801.
    verdict, witness = analysis.point_verdict(var, "main", arm_taken, 0)
    assert (verdict, witness) == (PROVEN_DETECTED, ())
    # ... and symmetrically for the other arm and direction.
    verdict, _ = analysis.point_verdict(var, "main", arm_nottaken, 9)
    assert verdict == PROVEN_DETECTED
    # A value that agrees with the remembered direction never alarms,
    # but silence is not *proven* (the walk ends in a clean return):
    # the verdict stays DET802 with an escaping-path witness.
    verdict, witness = analysis.point_verdict(var, "main", arm_taken, 9)
    assert verdict == POSSIBLY_DETECTED
    assert witness, "DET802 must carry an escaping-path witness"


def test_entry_block_tamper_is_killed_by_the_store():
    # At the entry block the `v = read_int()` store still lies ahead:
    # it overwrites the tampered value, so no proof exists.
    program, analysis = analysis_for(TWIN_SOURCE)
    var = global_named(program, "v")
    entry = program.module.function("main").entry.label
    verdict, _ = analysis.point_verdict(var, "main", entry, 0)
    assert verdict == POSSIBLY_DETECTED


def test_never_branched_global_is_proven_undetected_everywhere():
    source = """
    int counter;
    void main() {
        counter = counter + 1;
        int v = read_int();
        if (v > 5) { emit(1); } else { emit(2); }
    }
    """
    program, analysis = analysis_for(source)
    var = global_named(program, "counter")
    for block in program.module.function("main").blocks:
        for value in (-1, 0, 7):
            verdict, _ = analysis.point_verdict(
                var, "main", block.label, value
            )
            assert verdict == PROVEN_UNDETECTED


def test_attack_verdict_unknown_function_is_possible():
    program, analysis = analysis_for(TWIN_SOURCE)
    var = global_named(program, "v")
    verdict, witness = analysis.attack_verdict(
        var, 0, 0, [("nosuch", "bb0", 0)], None
    )
    assert verdict == POSSIBLY_DETECTED
    assert witness == ("unknown-function:nosuch",)


# ----------------------------------------------------------------------
# the aggregated pass (repro predict plumbing)
# ----------------------------------------------------------------------


def test_predict_pass_emits_det_notes_with_counts():
    program = compile_program(TWIN_SOURCE)
    diagnostics = run_passes(program, ("detectability",))
    codes = {d.code for d in diagnostics}
    assert PROVEN_DETECTED in codes
    assert all(d.code.startswith("DET8") for d in diagnostics)
    assert all(d.severity.value == "note" for d in diagnostics)


def test_predict_pass_det803_for_irrelevant_global():
    source = """
    int shadow;
    void main() {
        shadow = read_int();
        int v = read_int();
        if (v > 5) { emit(1); } else { emit(2); }
    }
    """
    program = compile_program(source)
    diagnostics = run_passes(program, ("detectability",))
    det803 = [d for d in diagnostics if d.code == PROVEN_UNDETECTED]
    assert any("shadow" in d.message for d in det803)


@pytest.mark.parametrize("opt", [0, 3])
def test_report_is_deterministic(opt):
    program, analysis = analysis_for(TWIN_SOURCE, opt_level=opt)
    first = [
        (p.variable, p.function, p.block, p.region, p.verdict)
        for p in analysis.report()
    ]
    _, again = analysis_for(TWIN_SOURCE, opt_level=opt)
    second = [
        (p.variable, p.function, p.block, p.region, p.verdict)
        for p in again.report()
    ]
    assert first == second
