"""Tests for the IR interpreter: semantics, events, tampering."""

import pytest

from repro.lang import parse_program
from repro.ir import lower_program
from repro.interp import GLOBAL_BASE, Interpreter, MemoryMap, RunStatus, TamperSpec, run_program
from repro.runtime import BranchEvent, CallEvent, ReturnEvent


def lower(source):
    return lower_program(parse_program(source))


def run(source, inputs=(), entry="main", **kwargs):
    return run_program(lower(source), inputs=inputs, entry=entry, **kwargs)


# ----------------------------------------------------------------------
# Core semantics
# ----------------------------------------------------------------------


def test_arithmetic_and_emit():
    result = run("void main() { emit(2 + 3 * 4); emit(10 - 7); }")
    assert result.outputs == [14, 3]
    assert result.ok


def test_division_truncates_toward_zero():
    result = run(
        "int a; int b; void main() { a = -7; b = 2; emit(a / b); emit(a % b); }"
    )
    assert result.outputs == [-3, -1]


def test_division_by_zero_faults():
    result = run("int z; void main() { emit(1 / z); }")
    assert result.status is RunStatus.DIV_BY_ZERO


def test_globals_initialized():
    result = run("int g = 41; void main() { emit(g + 1); }")
    assert result.outputs == [42]


def test_uninitialized_memory_reads_zero():
    result = run("int g; void main() { int l; emit(g); emit(l); }")
    assert result.outputs == [0, 0]


def test_if_else_branching():
    source = """
    void main() {
      int x = read_int();
      if (x < 10) { emit(1); } else { emit(2); }
    }
    """
    assert run(source, inputs=[5]).outputs == [1]
    assert run(source, inputs=[15]).outputs == [2]


def test_while_loop_sum():
    source = """
    void main() {
      int n = read_int();
      int s = 0;
      while (n > 0) { s = s + n; n = n - 1; }
      emit(s);
    }
    """
    assert run(source, inputs=[5]).outputs == [15]


def test_for_loop_with_break_continue():
    source = """
    void main() {
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) {
        if (i == 3) { continue; }
        if (i == 6) { break; }
        s = s + i;
      }
      emit(s);
    }
    """
    # 0+1+2+4+5 = 12
    assert run(source).outputs == [12]


def test_short_circuit_and_skips_rhs():
    source = """
    int calls;
    int probe() { calls = calls + 1; return 1; }
    void main() {
      int x = 0;
      if (x == 1 && probe()) { emit(99); }
      emit(calls);
    }
    """
    assert run(source).outputs == [0]


def test_short_circuit_or_skips_rhs():
    source = """
    int calls;
    int probe() { calls = calls + 1; return 1; }
    void main() {
      int x = 1;
      if (x == 1 || probe()) { emit(7); }
      emit(calls);
    }
    """
    assert run(source).outputs == [7, 0]


def test_function_calls_and_returns():
    source = """
    int add(int a, int b) { return a + b; }
    int twice(int a) { return add(a, a); }
    void main() { emit(twice(21)); }
    """
    assert run(source).outputs == [42]


def test_recursion():
    source = """
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    void main() { emit(fib(10)); }
    """
    assert run(source).outputs == [55]


def test_pointers_write_through():
    source = """
    void bump(int *p) { *p = *p + 1; }
    void main() { int x = 5; bump(&x); emit(x); }
    """
    assert run(source).outputs == [6]


def test_arrays_and_indexing():
    source = """
    int buf[4];
    void main() {
      for (int i = 0; i < 4; i = i + 1) { buf[i] = i * i; }
      emit(buf[0] + buf[1] + buf[2] + buf[3]);
    }
    """
    assert run(source).outputs == [14]


def test_local_array_on_stack():
    source = """
    void main() {
      int a[3];
      a[0] = 7; a[1] = 8; a[2] = 9;
      emit(a[1]);
    }
    """
    assert run(source).outputs == [8]


def test_pointer_indexing():
    source = """
    int buf[4];
    void main() {
      int *p = &buf[1];
      p[1] = 44;
      emit(buf[2]);
    }
    """
    assert run(source).outputs == [44]


def test_input_exhaustion_reads_zero():
    result = run("void main() { emit(read_int()); emit(read_int()); }", inputs=[9])
    assert result.outputs == [9, 0]
    assert result.reads_consumed == 2


def test_return_value_of_main():
    source = "int main() { return 17; }"
    result = run(source)
    assert result.return_value == 17


def test_step_limit():
    result = run("void main() { while (1) { } }", step_limit=1000)
    assert result.status is RunStatus.STEP_LIMIT


def test_call_depth_limit():
    source = "void rec() { rec(); } void main() { rec(); }"
    result = run(source)
    assert result.status is RunStatus.CALL_DEPTH


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------


def collect_events(source, inputs=()):
    events = []
    module = lower(source)
    run_program(module, inputs=inputs, event_listeners=[events.append])
    return events


def test_call_return_event_pairing():
    events = collect_events(
        "void inner() { } void main() { inner(); inner(); }"
    )
    calls = [e for e in events if isinstance(e, CallEvent)]
    rets = [e for e in events if isinstance(e, ReturnEvent)]
    assert [c.function_name for c in calls] == ["main", "inner", "inner"]
    assert len(rets) == 3
    assert rets[-1].function_name == "main"


def test_branch_events_match_trace():
    source = """
    void main() {
      int x = read_int();
      if (x < 5) { emit(1); } else { emit(2); }
    }
    """
    events = collect_events(source, inputs=[3])
    branches = [e for e in events if isinstance(e, BranchEvent)]
    assert len(branches) == 1
    assert branches[0].taken is True
    assert branches[0].function_name == "main"


def test_branch_trace_recorded():
    result = run(
        "void main() { for (int i = 0; i < 3; i = i + 1) { } }"
    )
    # 4 header evaluations: 3 taken + 1 exit.
    assert len(result.branch_trace) == 4
    assert [t for _, t in result.branch_trace] == [True, True, True, False]


# ----------------------------------------------------------------------
# Memory map and tampering
# ----------------------------------------------------------------------


def test_memory_map_layout_disjoint():
    module = lower("int a; int b[4]; void main() { int l; emit(l); }")
    mm = MemoryMap(module)
    addresses = [addr for addr, _, _ in mm.global_slots()]
    assert len(set(addresses)) == len(addresses) == 5
    assert min(addresses) == GLOBAL_BASE


def test_tamper_overwrites_global():
    source = """
    int secret = 1;
    void main() {
      int x = read_int();
      emit(secret);
    }
    """
    module = lower(source)
    mm = MemoryMap(module)
    (secret_var,) = [v for v in module.globals if v.name == "secret"]
    address = mm.global_addresses[secret_var]
    result = run_program(
        module,
        inputs=[1],
        tamper=TamperSpec("read", 1, address, 666),
    )
    assert result.tamper_fired
    assert result.outputs == [666]


def test_tamper_on_step_trigger():
    source = "int g = 5; void main() { emit(g); emit(g); }"
    module = lower(source)
    mm = MemoryMap(module)
    (g,) = module.globals
    address = mm.global_addresses[g]
    # Trigger early enough to hit before the first load completes its
    # surrounding sequence; step 1 fires after the first instruction.
    result = run_program(
        module, tamper=TamperSpec("step", 1, address, -1)
    )
    assert result.tamper_fired
    assert result.outputs[-1] == -1


def test_tamper_changes_control_flow():
    source = """
    int user = 0;
    void main() {
      int x = read_int();
      if (user == 0) { emit(1); } else { emit(2); }
    }
    """
    module = lower(source)
    mm = MemoryMap(module)
    (user,) = [v for v in module.globals if v.name == "user"]
    address = mm.global_addresses[user]
    clean = run_program(module, inputs=[1])
    attacked = run_program(
        module, inputs=[1], tamper=TamperSpec("read", 1, address, 1)
    )
    assert clean.outputs == [1]
    assert attacked.outputs == [2]
    assert clean.branch_trace != attacked.branch_trace


def test_probe_mode_records_stack_slots():
    source = """
    void helper(int a) { int local = read_int(); emit(local + a); }
    void main() { int x = 3; helper(x); }
    """
    module = lower(source)
    interp = Interpreter(module, inputs=[4], probe=("read", 1))
    interp.run()
    names = {(fn, var) for _, fn, var in interp.probe_slots}
    assert ("main", "x") in names
    assert ("helper", "local") in names
    assert ("helper", "a") in names


def test_invalid_tamper_trigger_rejected():
    with pytest.raises(ValueError):
        TamperSpec("never", 1, 0, 0)


def test_unfinalized_module_rejected():
    from repro.ir import IRModule

    with pytest.raises(Exception):
        Interpreter(IRModule())
