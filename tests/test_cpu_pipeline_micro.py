"""Micro-tests for the pipeline timing model using synthetic streams."""


from repro.cpu import ProcessorParams, TimingModel
from repro.ir import BinOp, Const, Load, Reg, Store, Variable, VarKind


def make_model(**overrides):
    params = ProcessorParams(**overrides) if overrides else ProcessorParams()
    return TimingModel(params), params


def const(index, address):
    instruction = Const(Reg(index), index)
    instruction.address = address
    return instruction


def test_ilp_limited_by_commit_width():
    model, params = make_model()
    # Warm-up covers the cold I-cache fetch of the block.
    for i in range(16):
        model.on_instruction(const(i, 0x400000 + 4 * (i % 8)), None)
    warm_cycles = model.stats.cycles
    # 64 more independent single-cycle ops in the now-warm block.
    for i in range(16, 80):
        model.on_instruction(const(i, 0x400000 + 4 * (i % 8)), None)
    delta = model.stats.cycles - warm_cycles
    # Ideal steady state: 64 / commit_width = 8 cycles; allow slack.
    assert delta <= 8 + 8
    assert delta >= 64 // params.commit_width


def test_dependency_chain_serializes():
    model, params = make_model()
    first = Const(Reg(0), 1)
    first.address = 0x400000
    model.on_instruction(first, None)
    for i in range(1, 40):
        op = BinOp(Reg(i), "+", Reg(i - 1), 1)
        op.address = 0x400000
        model.on_instruction(op, None)
    # A 40-deep add chain takes at least ~40 cycles.
    assert model.stats.cycles >= 40


def test_division_latency_applies():
    model, params = make_model()
    a = Const(Reg(0), 100)
    a.address = 0x400000
    model.on_instruction(a, None)
    div = BinOp(Reg(1), "/", Reg(0), 3)
    div.address = 0x400004
    model.on_instruction(div, None)
    dependent = BinOp(Reg(2), "+", Reg(1), 1)
    dependent.address = 0x400008
    model.on_instruction(dependent, None)
    assert model.stats.cycles >= params.div_latency


def test_load_pays_memory_latency_on_cold_miss():
    model, params = make_model()
    var = Variable("v", VarKind.GLOBAL, 1, 1)
    load = Load(Reg(0), var)
    load.address = 0x400000
    model.on_instruction(load, 0x1000)
    # Cold: TLB miss + L1 miss + L2 miss + DRAM.
    assert model.stats.cycles >= params.memory_latency(32)
    assert model.stats.loads == 1


def test_warm_load_is_fast():
    model, params = make_model()
    var = Variable("v", VarKind.GLOBAL, 1, 1)
    cold = Load(Reg(0), var)
    cold.address = 0x400000
    model.on_instruction(cold, 0x1000)
    cold_cycles = model.stats.cycles
    warm = Load(Reg(1), var)
    warm.address = 0x400004
    model.on_instruction(warm, 0x1000)
    assert model.stats.cycles - cold_cycles <= params.l1d.latency + 2


def test_mispredict_inserts_fetch_bubble():
    model, params = make_model()
    # Train nothing; feed an alternating branch so mispredicts happen.
    baseline, _ = make_model()
    for i in range(50):
        instruction = const(i, 0x400000)
        model.on_instruction(instruction, None)
        baseline.on_instruction(instruction, None)
        # Alternate outcomes on the model only.
        model.on_branch_outcome("f", 0x400100, i % 2 == 0)
    assert model.stats.cycles > baseline.stats.cycles


def test_lsq_pressure_throttles_memory_ops():
    small, params = make_model(lsq_size=2)
    roomy, _ = make_model(lsq_size=64)
    var = Variable("v", VarKind.GLOBAL, 1, 1)
    for i in range(64):
        load_a = Load(Reg(i * 2), var)
        load_a.address = 0x400000
        store_a = Store(var, Reg(i * 2))
        store_a.address = 0x400004
        # Spread addresses to miss the L1 occasionally.
        small.on_instruction(load_a, 0x1000 + i * 64)
        small.on_instruction(store_a, 0x1000 + i * 64)
        load_b = Load(Reg(i * 2 + 1), var)
        load_b.address = 0x400000
        store_b = Store(var, Reg(i * 2 + 1))
        store_b.address = 0x400004
        roomy.on_instruction(load_b, 0x1000 + i * 64)
        roomy.on_instruction(store_b, 0x1000 + i * 64)
    assert small.stats.cycles >= roomy.stats.cycles


def test_ruu_window_limits_lookahead():
    small, _ = make_model(ruu_size=4)
    roomy, _ = make_model(ruu_size=128)
    var = Variable("v", VarKind.GLOBAL, 1, 1)
    # A long-latency load followed by many independent ops: the big
    # window hides the load, the small one cannot.
    for model in (small, roomy):
        load = Load(Reg(0), var)
        load.address = 0x400000
        model.on_instruction(load, 0x9000)
        for i in range(1, 60):
            model.on_instruction(const(i, 0x400000 + 4 * (i % 8)), None)
    assert small.stats.cycles >= roomy.stats.cycles


def test_stats_counters():
    model, _ = make_model()
    var = Variable("v", VarKind.GLOBAL, 1, 1)
    load = Load(Reg(0), var)
    load.address = 0x400000
    store = Store(var, Reg(0))
    store.address = 0x400004
    model.on_instruction(load, 0x1000)
    model.on_instruction(store, 0x1000)
    assert model.stats.loads == 1
    assert model.stats.stores == 1
    assert model.stats.instructions == 2
