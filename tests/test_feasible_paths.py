"""Feasible-path correlation analysis (``--opt 3``) and its audit.

Covers both sides of the derivation — the builder's
:mod:`repro.analysis.feasible` (forward range propagation that prunes
infeasible conditional edges) and the auditor's witness-restricted
re-proof (:mod:`repro.staticcheck.feasaudit`):

* ``FeasRange`` lattice algebra (join / widen / outcome intersection /
  affine images) as hypothesis properties;
* the feasible-path MFP is pointwise at least as tight as the plain
  MFP on random loop-free programs, and identical when no edge is ever
  infeasible;
* ``--opt 3`` proves strictly more BAT actions than ``--opt 2`` on the
  instrumented workloads, every gain carries ``feasible-path``
  provenance with a pruned-edge witness, and programs without prunable
  structure build byte-identically;
* corruption properties: flipping an action, deleting a load-bearing
  witness, fabricating a pruned edge, or dropping the backing BAT
  entry is always flagged by the ``FP7xx`` audit.
"""

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.alias import analyze_aliases
from repro.analysis.branch_info import OutcomeSet, analyze_branches
from repro.analysis.defs import DefinitionMap, analyze_definitions
from repro.analysis.feasible import (
    FeasRange,
    _canonical,
    analyze_feasible,
    propagate_from_edge,
    render_edge,
    summarize_blocks,
)
from repro.analysis.purity import analyze_purity
from repro.analysis.ranges import Interval
from repro.correlation.provenance import REASON_FEASIBLE
from repro.ir.instructions import RelOp
from repro.pipeline import compile_program, compile_program_cached
from repro.staticcheck import errors_in, run_passes
from repro.staticcheck.domain import ValueSet
from repro.staticcheck.facts import summarize_function
from repro.staticcheck.feasaudit import _witness_restricted_mfp, audit_feasible
from repro.staticcheck.mfp import solve_range_mfp
from repro.workloads import get_workload

# The first branch decides both later checks: after (n > 0) commits a
# direction, `flag` is a known constant (forcing the second branch) and
# the second branch's infeasible direction must be *pruned* before `x`
# is known at the third — the witness-bearing case.
DEMO_PRUNE = """
int flag;
int x;
void main() {
  int n = read_int();
  flag = 0;
  x = 0;
  if (n > 0) {
    flag = 1;
    x = 1;
  }
  if (flag == 1) {
    emit(1);
  } else {
    x = 9;
  }
  if (x > 1) { emit(2); } else { emit(3); }
}
"""

# A plain diamond: both arms force the same later outcome, each proof
# pruning only the target's own contradicted direction.
DEMO_PLAIN = """
int x;
void main() {
  int n = read_int();
  if (n > 0) {
    x = 5;
  } else {
    x = 7;
  }
  if (x > 0) { emit(1); } else { emit(2); }
}
"""

#: Workloads where --opt 3 proves strictly more SET entries than
#: --opt 2 (the acceptance criterion asks for at least four).
GAINING = (
    "atftpd",
    "httpd",
    "sendmail",
    "sshd",
    "sysklogd",
    "telnetd",
    "wu-ftpd",
    "xinetd",
)


def _fresh(source, name="demo"):
    program = compile_program(source, name, 3)
    tables = program.tables.by_function["main"]
    return program, tables


def _codes(program):
    return sorted({d.code for d in audit_feasible(program)})


def _feasible_records(tables):
    return [r for r in tables.provenance if r.reason == REASON_FEASIBLE]


def _shape(record):
    return (
        record.source_block,
        record.taken,
        record.action,
        record.target_block,
        record.var,
        record.implied,
        record.witness,
    )


# ----------------------------------------------------------------------
# Builder: gains, provenance shape, no-op cases
# ----------------------------------------------------------------------


def test_demo_prune_proves_the_expected_actions():
    _, tables = _fresh(DEMO_PRUNE)
    records = _feasible_records(tables)
    assert {_shape(r) for r in records} == {
        ("bb0", False, "SET_NT", "bb2", "flag", "[0, 0]", ("bb2:T", "bb5:NT")),
        ("bb0", False, "SET_T", "bb5", "x", "[9, 9]", ("bb2:T", "bb5:NT")),
        ("bb0", True, "SET_T", "bb2", "flag", "[1, 1]", ("bb2:NT", "bb5:T")),
        ("bb0", True, "SET_NT", "bb5", "x", "[1, 1]", ("bb2:NT", "bb5:T")),
        ("bb2", False, "SET_T", "bb5", "x", "[9, 9]", ("bb5:NT",)),
    }


def test_demo_plain_proves_both_arms():
    _, tables = _fresh(DEMO_PLAIN, "plain")
    records = _feasible_records(tables)
    assert {_shape(r) for r in records} == {
        ("bb0", False, "SET_T", "bb3", "x", "[7, 7]", ("bb3:NT",)),
        ("bb0", True, "SET_T", "bb3", "x", "[5, 5]", ("bb3:NT",)),
    }


def test_demo_opt3_gains_over_opt2():
    p2 = compile_program(DEMO_PRUNE, "demo", 2)
    p3 = compile_program(DEMO_PRUNE, "demo", 3)
    sets = lambda p: sum(s.set_entries for s in p.build_stats)  # noqa: E731
    gained = sum(s.feasible_sets for s in p3.build_stats)
    assert gained == 5
    assert sets(p3) == sets(p2) + gained
    assert sum(s.feasible_sets for s in p2.build_stats) == 0


def test_fresh_demos_are_audit_clean():
    for source, name in ((DEMO_PRUNE, "demo"), (DEMO_PLAIN, "plain")):
        program, _ = _fresh(source, name)
        assert _codes(program) == []
        diagnostics = errors_in(run_passes(program))
        assert diagnostics == [], [str(d) for d in diagnostics]


def test_opt3_is_identical_without_prunable_structure():
    """A single uncorrelated branch gives the analysis nothing to do."""
    source = """
    void main() {
      int n = read_int();
      if (n > 0) { emit(1); } else { emit(2); }
    }
    """
    p2 = compile_program(source, "single", 2)
    p3 = compile_program(source, "single", 3)
    t2 = p2.tables.by_function["main"]
    t3 = p3.tables.by_function["main"]
    assert dict(t2.bat) == dict(t3.bat)
    assert sum(s.feasible_sets for s in p3.build_stats) == 0
    assert _feasible_records(t3) == []


@pytest.mark.parametrize("name", GAINING)
def test_instrumented_workloads_gain_strictly_more_sets(name):
    workload = get_workload(name)
    p2 = compile_program_cached(workload.source, workload.name, 2)
    p3 = compile_program_cached(workload.source, workload.name, 3)
    s2 = sum(s.set_entries for s in p2.build_stats)
    s3 = sum(s.set_entries for s in p3.build_stats)
    gained = sum(s.feasible_sets for s in p3.build_stats)
    assert s3 > s2, f"{name}: opt3 proved {s3} sets, opt2 {s2}"
    assert s3 == s2 + gained
    records = [
        r for t in p3.tables for r in _feasible_records(t)
    ]
    assert len(records) == gained
    for record in records:
        assert record.action in ("SET_T", "SET_NT")
        assert record.witness is not None
        for edge in record.witness:
            label, sep, direction = edge.rpartition(":")
            assert sep and label and direction in ("T", "NT")


# ----------------------------------------------------------------------
# FP7xx corruption properties
# ----------------------------------------------------------------------


def _load_bearing(tables):
    """The DEMO_PRUNE records whose proof needs the pruned middle edge:
    the claims about the third branch, where deleting the witness lets
    the other arm's hostile `x` range flow into the target."""
    return [
        i
        for i, r in enumerate(tables.provenance)
        if r.reason == REASON_FEASIBLE
        and r.source_block == "bb0"
        and r.target_block == "bb5"
    ]


def _tamper(tables, index, **changes):
    records = list(tables.provenance)
    records[index] = replace(records[index], **changes)
    tables.provenance = tuple(records)
    tables._prov_index = None


def test_flipped_action_flags_fp701():
    program, tables = _fresh(DEMO_PRUNE)
    index = next(
        i
        for i, r in enumerate(tables.provenance)
        if r.reason == REASON_FEASIBLE
    )
    record = tables.provenance[index]
    flipped = "SET_NT" if record.action == "SET_T" else "SET_T"
    _tamper(tables, index, action=flipped)
    assert "FP701" in _codes(program)


def test_dropped_bat_entry_flags_fp701():
    program, tables = _fresh(DEMO_PRUNE)
    record = next(r for r in _feasible_records(tables))
    source_slot = tables.slot_of(record.source_pc)
    target_slot = tables.slot_of(record.target_pc)
    bat = dict(tables.bat)
    bat[(source_slot, record.taken)] = tuple(
        entry
        for entry in bat[(source_slot, record.taken)]
        if entry[0] != target_slot
    )
    tables.bat = bat
    assert "FP701" in _codes(program)


def test_flipped_action_with_matching_bat_flags_fp703():
    """Flipping the record *and* the BAT entry keeps FP701 quiet — the
    laundering guard must catch the now-false outcome claim."""
    from repro.correlation.actions import BranchAction

    program, tables = _fresh(DEMO_PRUNE)
    index = _load_bearing(tables)[0]
    record = tables.provenance[index]
    flipped = "SET_NT" if record.action == "SET_T" else "SET_T"
    source_slot = tables.slot_of(record.source_pc)
    target_slot = tables.slot_of(record.target_pc)
    bat = dict(tables.bat)
    bat[(source_slot, record.taken)] = tuple(
        (slot, BranchAction(flipped) if slot == target_slot else action)
        for slot, action in bat[(source_slot, record.taken)]
    )
    tables.bat = bat
    _tamper(tables, index, action=flipped)
    assert "FP703" in _codes(program)


@pytest.mark.parametrize("which", [0, 1], ids=["first", "second"])
def test_deleted_witness_flags_fp703(which):
    """Dropping a load-bearing witness cannot silently re-enact the
    prune: the other arm's range reaches the target and the claim no
    longer re-proves."""
    program, tables = _fresh(DEMO_PRUNE)
    index = _load_bearing(tables)[which]
    _tamper(tables, index, witness=())
    assert "FP703" in _codes(program)


def test_fabricated_unknown_block_witness_flags_fp702():
    program, tables = _fresh(DEMO_PRUNE)
    index = _load_bearing(tables)[0]
    record = tables.provenance[index]
    _tamper(tables, index, witness=record.witness + ("bb999:T",))
    assert "FP702" in _codes(program)


def test_fabricated_feasible_edge_witness_flags_fp702():
    """Claiming a prune on an edge that is actually feasible from the
    re-derived state must not re-prove."""
    program, tables = _fresh(DEMO_PRUNE)
    index = next(
        i
        for i, r in enumerate(tables.provenance)
        if r.reason == REASON_FEASIBLE
        and r.source_block == "bb0"
        and not r.taken
    )
    record = tables.provenance[index]
    _tamper(tables, index, witness=record.witness + ("bb2:NT",))
    assert "FP702" in _codes(program)


def test_malformed_witness_flags_fp702():
    program, tables = _fresh(DEMO_PRUNE)
    index = _load_bearing(tables)[0]
    _tamper(tables, index, witness=("garbage",))
    assert "FP702" in _codes(program)


def test_var_mismatch_flags_fp702():
    program, tables = _fresh(DEMO_PRUNE)
    index = _load_bearing(tables)[0]
    _tamper(tables, index, var="ghost")
    assert "FP702" in _codes(program)


@pytest.mark.parametrize("seed", range(8))
def test_random_feasible_record_tampering_always_flagged(seed):
    """Any mutation of a record's load-bearing fields is caught."""
    rng = random.Random(f"feas-tamper:{seed}")
    program, tables = _fresh(DEMO_PRUNE)
    indices = [
        i
        for i, r in enumerate(tables.provenance)
        if r.reason == REASON_FEASIBLE
    ]
    index = rng.choice(indices)
    record = tables.provenance[index]
    mutation = rng.choice(["action", "var", "malformed", "unknown"])
    if mutation == "action":
        flipped = "SET_NT" if record.action == "SET_T" else "SET_T"
        _tamper(tables, index, action=flipped)
    elif mutation == "var":
        _tamper(tables, index, var="ghost")
    elif mutation == "malformed":
        _tamper(tables, index, witness=record.witness + ("bb2",))
    else:
        _tamper(tables, index, witness=record.witness + ("bb999:NT",))
    assert _codes(program) != [], mutation


# ----------------------------------------------------------------------
# Hypothesis: FeasRange lattice algebra
# ----------------------------------------------------------------------

SAMPLES = st.integers(min_value=-12, max_value=12)
BOUNDS = st.integers(min_value=-6, max_value=6)
HOLES = st.none() | st.integers(min_value=-6, max_value=6)


def _make_range(lo, hi, hole):
    return _canonical(Interval(min(lo, hi), max(lo, hi)), hole)


FEAS_RANGES = st.one_of(
    st.builds(_make_range, BOUNDS, BOUNDS, HOLES),
    st.builds(lambda b, hole: _canonical(Interval.at_least(b), hole), BOUNDS, HOLES),
    st.builds(lambda b, hole: _canonical(Interval.at_most(b), hole), BOUNDS, HOLES),
    st.builds(lambda hole: _canonical(Interval.top(), hole), HOLES),
)

OUTCOMES = st.builds(
    OutcomeSet.from_relop,
    st.sampled_from(list(RelOp)),
    BOUNDS,
    st.booleans(),
)


@given(a=FEAS_RANGES, b=FEAS_RANGES, v=SAMPLES)
def test_join_is_an_upper_bound(a, b, v):
    # Exact commutativity is NOT a theorem: the one-hole representation
    # may keep either operand's hole when both are excluded by both
    # sides (e.g. [0,inf]\{1} vs [-inf,0]\{-1}).  Both orders must be
    # upper bounds with the same interval hull, and idempotence holds.
    joined = a.join(b)
    flipped = b.join(a)
    assert joined.interval == flipped.interval
    assert a.join(a) == a
    if a.contains(v) or b.contains(v):
        assert joined.contains(v)
        assert flipped.contains(v)


@given(a=FEAS_RANGES, b=FEAS_RANGES, v=SAMPLES)
def test_widen_covers_both_operands(a, b, v):
    widened = a.widen(b)
    if a.contains(v) or b.contains(v):
        assert widened.contains(v)


@given(a=FEAS_RANGES, outcome=OUTCOMES, v=SAMPLES)
def test_intersect_outcome_is_sound_and_reducing(a, outcome, v):
    refined = a.intersect_outcome(outcome)
    if a.contains(v) and outcome.contains_value(v):
        assert refined.contains(v)
    # The refinement can only shrink: one representable hole means the
    # outcome's hole may be dropped, but never anything outside `a`.
    if refined.contains(v):
        assert a.contains(v)


@given(a=FEAS_RANGES, outcome=OUTCOMES, v=SAMPLES)
def test_within_outcome_means_every_value_satisfies(a, outcome, v):
    if a.within_outcome(outcome) and a.contains(v):
        assert outcome.contains_value(v)


@given(
    a=FEAS_RANGES,
    sign=st.sampled_from([1, -1]),
    offset=st.integers(min_value=-5, max_value=5),
    v=SAMPLES,
)
def test_affine_image_is_sound(a, sign, offset, v):
    if a.contains(v):
        assert a.affine_image(sign, offset).contains(sign * v + offset)


# ----------------------------------------------------------------------
# Hypothesis: feasible-path MFP vs plain MFP on random programs
# ----------------------------------------------------------------------

REL_OPS = ("<", "<=", ">", ">=", "==", "!=")


@st.composite
def branchy_source(draw):
    """A loop-free chain of conditionals over two globals — small
    enough that no widening triggers, rich enough to prune."""
    lines = [
        "int a;",
        "int b;",
        "void main() {",
        "  a = read_int();",
        "  b = read_int();",
    ]
    if draw(st.booleans()):
        var = draw(st.sampled_from(("a", "b")))
        lines.append(f"  {var} = {draw(BOUNDS)};")
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        var = draw(st.sampled_from(("a", "b")))
        op = draw(st.sampled_from(REL_OPS))
        bound = draw(BOUNDS)
        then_var = draw(st.sampled_from(("a", "b")))
        then_val = draw(BOUNDS)
        if draw(st.booleans()):
            else_var = draw(st.sampled_from(("a", "b")))
            else_val = draw(BOUNDS)
            lines.append(
                f"  if ({var} {op} {bound}) {{ {then_var} = {then_val}; }}"
                f" else {{ {else_var} = {else_val}; }}"
            )
        else:
            lines.append(
                f"  if ({var} {op} {bound}) {{ {then_var} = {then_val}; }}"
            )
    final_op = draw(st.sampled_from(REL_OPS))
    lines.append(
        f"  if (a {final_op} {draw(BOUNDS)}) {{ emit(1); }}"
        f" else {{ emit(2); }}"
    )
    lines.append("}")
    return "\n".join(lines)


@st.composite
def unprunable_source(draw):
    """Every branch tests its own fresh, once-used input: no condition
    can ever contradict the propagated state, so no edge is infeasible
    and pruning must change nothing at all."""
    n = draw(st.integers(min_value=2, max_value=4))
    names = [f"v{i}" for i in range(n)]
    lines = [f"int {name};" for name in names] + ["int c;", "void main() {"]
    lines += [f"  {name} = read_int();" for name in names]
    lines.append("  c = 0;")
    for name in names[:-1]:
        op = draw(st.sampled_from(REL_OPS))
        lines.append(
            f"  if ({name} {op} {draw(BOUNDS)}) {{ c = {draw(BOUNDS)}; }}"
        )
    final_op = draw(st.sampled_from(REL_OPS))
    lines.append(
        f"  if ({names[-1]} {final_op} {draw(BOUNDS)}) {{ emit(1); }}"
        f" else {{ emit(2); }}"
    )
    lines.append("}")
    return "\n".join(lines)


def _builder_context(source):
    program = compile_program(source, "prop", 0)
    module = program.module
    analyze_aliases(module)
    purity = analyze_purity(module)
    fn = next(f for f in module.functions if f.name == "main")
    def_map, _ = analyze_definitions(fn, module, purity)
    facts_by_pc = analyze_branches(fn, def_map)
    programs = summarize_blocks(fn, def_map)
    facts_of_label = {
        facts.block_label: facts for facts in facts_by_pc.values()
    }
    return fn, def_map, facts_by_pc, programs, facts_of_label


def _range_subset(a, b):
    """Is FeasRange/ValueSet ``a`` contained in ``b``?  (Both domains
    expose the same interval-with-hole structure.)"""
    if a.is_empty:
        return True
    if b.is_empty:
        return False
    if not a.interval.subsumes(b.interval):
        return False
    return b.hole is None or not a.contains(b.hole)


def _env_subset(tight, loose, top):
    for var in set(tight) | set(loose):
        if not _range_subset(tight.get(var, top), loose.get(var, top)):
            return False
    return True


@settings(max_examples=25, deadline=None)
@given(source=branchy_source())
def test_pruned_mfp_is_at_least_as_tight_as_plain(source):
    fn, _, _, programs, facts_of_label = _builder_context(source)
    for block in fn.blocks:
        if not block.ends_in_cond_branch():
            continue
        for taken in (True, False):
            pruned = propagate_from_edge(
                programs, facts_of_label, block.label, taken, prune=True
            )
            plain = propagate_from_edge(
                programs, facts_of_label, block.label, taken, prune=False
            )
            assert (pruned is None) == (plain is None)
            if pruned is None:
                continue
            pruned_states, pruned_edges = pruned
            plain_states, _ = plain
            assert set(pruned_states) <= set(plain_states)
            for label, env in pruned_states.items():
                assert _env_subset(
                    env, plain_states[label], FeasRange.top()
                ), (block.label, taken, label)
            # Every claimed prune re-proves from the returned fixpoint.
            from repro.analysis.feasible import _edge_env, _transfer

            for label, direction in pruned_edges:
                env_out, snapshots = _transfer(
                    programs[label], pruned_states[label]
                )
                assert (
                    _edge_env(
                        facts_of_label.get(label), env_out, snapshots, direction
                    )
                    is None
                )


@settings(max_examples=25, deadline=None)
@given(source=unprunable_source())
def test_pruning_changes_nothing_without_infeasible_edges(source):
    fn, _, _, programs, facts_of_label = _builder_context(source)
    for block in fn.blocks:
        if not block.ends_in_cond_branch():
            continue
        for taken in (True, False):
            pruned = propagate_from_edge(
                programs, facts_of_label, block.label, taken, prune=True
            )
            plain = propagate_from_edge(
                programs, facts_of_label, block.label, taken, prune=False
            )
            assert (pruned is None) == (plain is None)
            if pruned is None:
                continue
            assert pruned[1] == set()
            assert pruned[0] == plain[0]


@settings(max_examples=25, deadline=None)
@given(source=branchy_source())
def test_findings_witness_the_fixpoint_pruned_set(source):
    fn, def_map, facts_by_pc, programs, facts_of_label = _builder_context(
        source
    )
    label_of_pc = {
        program.branch_pc: program.label
        for program in programs.values()
        if program.branch_pc is not None
    }
    analysis = analyze_feasible(fn, def_map, facts_by_pc)
    for (source_pc, taken), per_target in analysis.findings.items():
        result = propagate_from_edge(
            programs, facts_of_label, label_of_pc[source_pc], taken
        )
        assert result is not None
        _, pruned_edges = result
        expected = tuple(
            sorted(render_edge(label, d) for label, d in pruned_edges)
        )
        for finding in per_target.values():
            assert finding.witness == expected


@settings(max_examples=25, deadline=None)
@given(source=branchy_source())
def test_witness_restricted_mfp_bounds_the_audit_mfp(source):
    """With an empty witness the auditor's relaxed solver must cover
    everything the pruning solver derives (it never drops an edge)."""
    source_program = compile_program(source, "prop", 0)
    module = source_program.module
    analyze_aliases(module)
    purity = analyze_purity(module)
    fn = next(f for f in module.functions if f.name == "main")
    def_map = DefinitionMap(fn, module, purity)
    summaries = summarize_function(fn, def_map)
    entry = fn.blocks[0].label
    strict = solve_range_mfp(summaries, {entry: {}})
    relaxed = _witness_restricted_mfp(summaries, {entry: {}}, set())
    assert set(strict) <= set(relaxed)
    for label, env in strict.items():
        assert _env_subset(env, relaxed[label], ValueSet.top()), label
