"""The campaign forensics observatory: attribution invariants."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.correlation.provenance import VALID_REASONS
from repro.forensics import (
    UNEXPLAINED,
    CampaignObservation,
    ObservatoryError,
    observe_log,
    observe_records,
)
from repro.forensics.observatory import REASON_ORDER, primary_reason


def record(workload, detected=False, reasons=None):
    entry = {"workload": workload, "detected": detected}
    if reasons is not None:
        entry["proof_reasons"] = list(reasons)
    return entry


RECORDS = st.builds(
    record,
    st.sampled_from(["telnetd", "sshd", "crond"]),
    st.booleans(),
    st.one_of(
        st.none(),
        st.lists(
            st.sampled_from(list(VALID_REASONS) + ["bogus"]), max_size=3
        ),
    ),
)


def test_primary_reason_is_the_first_alarm():
    assert primary_reason(record("w", True, ["kill", "subsumption"])) == "kill"
    assert primary_reason(record("w", True, [])) == UNEXPLAINED
    assert primary_reason(record("w", True)) == UNEXPLAINED
    assert primary_reason(record("w", True, ["bogus"])) == UNEXPLAINED


def test_counts_and_attribution():
    observation = observe_records(
        [
            record("telnetd", True, ["subsumption"]),
            record("telnetd", True, ["subsumption", "kill"]),
            record("telnetd", False),
            record("sshd", True, ["feasible-path"]),
            record("sshd", True),
        ]
    )
    assert observation.attacks == 5
    assert observation.detected == 4
    assert observation.reason_totals() == {
        "subsumption": 2, "feasible-path": 1, UNEXPLAINED: 1,
    }
    telnetd = observation.workloads["telnetd"]
    assert (telnetd.attacks, telnetd.detected) == (3, 2)
    assert telnetd.by_reason == {"subsumption": 2}


@settings(max_examples=60, deadline=None)
@given(records=st.lists(RECORDS, max_size=30))
def test_per_reason_counts_always_sum_to_detected(records):
    observation = observe_records(records)
    assert sum(observation.reason_totals().values()) == observation.detected
    for workload in observation.workloads.values():
        assert sum(workload.by_reason.values()) == workload.detected
        assert workload.detected <= workload.attacks
    assert set(observation.reason_totals()) <= set(REASON_ORDER)


def test_to_dict_schema_and_render_text():
    observation = observe_records(
        [
            record("telnetd", True, ["subsumption"]),
            record("sshd", False),
        ]
    )
    payload = observation.to_dict()
    assert payload["tool"] == "repro-obs"
    assert payload["version"] == 1
    assert payload["by_reason"] == {"subsumption": 1}
    assert [w["workload"] for w in payload["workloads"]] == [
        "sshd", "telnetd",
    ]
    json.dumps(payload)  # JSON-clean end to end

    text = observation.render_text()
    assert "2 attacks, 1 detected" in text
    assert "subsumption" in text
    assert "#" in text  # histogram bars render


def test_render_text_of_an_empty_campaign():
    text = CampaignObservation().render_text()
    assert "0 attacks, 0 detected" in text


def test_malformed_records_and_logs_raise(tmp_path):
    with pytest.raises(ObservatoryError, match="workload"):
        observe_records([{"detected": True}])

    bad_json = tmp_path / "bad.jsonl"
    bad_json.write_text('{"workload": "telnetd"}\nnot json\n')
    with pytest.raises(ObservatoryError, match="not JSON"):
        observe_log(str(bad_json))

    not_object = tmp_path / "list.jsonl"
    not_object.write_text("[1, 2]\n")
    with pytest.raises(ObservatoryError, match="expected a JSON object"):
        observe_log(str(not_object))


def test_observe_log_skips_blank_lines(tmp_path):
    log = tmp_path / "outcomes.jsonl"
    log.write_text(
        "\n".join(
            [
                json.dumps(record("telnetd", True, ["kill"])),
                "",
                json.dumps(record("telnetd", False)),
                "",
            ]
        )
    )
    observation = observe_log(str(log))
    assert observation.attacks == 2
    assert observation.reason_totals() == {"kill": 1}


def test_obs_cli_verb(tmp_path, capsys):
    from repro.cli import main

    log = tmp_path / "outcomes.jsonl"
    log.write_text(
        json.dumps(record("telnetd", True, ["subsumption"])) + "\n"
    )
    out = tmp_path / "obs.json"
    assert main(["obs", str(log), "--json", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert payload["detected"] == 1
    assert "campaign observatory" in capsys.readouterr().out

    assert main(["obs", str(tmp_path / "missing.jsonl")]) == 2


def test_campaign_forensics_records_feed_the_observatory():
    """End to end: a live forensics campaign's outcome records carry
    proof_reasons and attribute cleanly (no unexplained bucket when
    forensics explains every alarm)."""
    from repro.attacks.campaign import run_workload_campaign
    from repro.forensics import observe_outcomes
    from repro.workloads.registry import get_workload

    result = run_workload_campaign(
        get_workload("telnetd"), attacks=10, forensics=True
    )
    observation = observe_outcomes([result])
    assert observation.attacks == 10
    assert observation.detected == sum(
        1 for outcome in result.attacks if outcome.detected
    )
    assert (
        sum(observation.reason_totals().values()) == observation.detected
    )
