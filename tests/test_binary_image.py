"""Tests for the §5.4 binary table image (function information table)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.correlation.binary_image import (
    BitReader,
    BitWriter,
    ImageError,
    load_program,
    pack_program,
)
from repro.correlation.encoding import table_sizes
from repro.pipeline import compile_program
from repro.runtime import IPDS
from repro.workloads import all_workloads


# ----------------------------------------------------------------------
# Bit packing
# ----------------------------------------------------------------------


def test_bitwriter_roundtrip_simple():
    writer = BitWriter()
    writer.write(5, 3)
    writer.write(1, 1)
    writer.write(1023, 10)
    reader = BitReader(writer.to_bytes())
    assert reader.read(3) == 5
    assert reader.read(1) == 1
    assert reader.read(10) == 1023


def test_bitwriter_rejects_overflow():
    writer = BitWriter()
    with pytest.raises(ImageError):
        writer.write(8, 3)
    with pytest.raises(ImageError):
        writer.write(-1, 4)


def test_bitreader_rejects_exhaustion():
    reader = BitReader(b"\xff")
    reader.read(8)
    with pytest.raises(ImageError):
        reader.read(1)


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(
        st.tuples(st.integers(0, 2**16 - 1), st.integers(1, 17)),
        min_size=0,
        max_size=40,
    )
)
def test_bitstream_roundtrip_property(values):
    writer = BitWriter()
    clipped = [(v % (1 << w), w) for v, w in values]
    for v, w in clipped:
        writer.write(v, w)
    reader = BitReader(writer.to_bytes())
    for v, w in clipped:
        assert reader.read(w) == v


# ----------------------------------------------------------------------
# Image round trips
# ----------------------------------------------------------------------

SOURCE = """
int x;
int y;
void helper() { if (y < 3) { emit(9); } }
void main() {
  x = read_int();
  y = read_int();
  while (read_int()) {
    if (y < 5) { emit(1); }
    if (x > 10) { x = read_int(); } else { y = read_int(); }
    if (y < 10) { emit(2); }
    helper();
  }
}
"""


@pytest.fixture(scope="module")
def packed():
    program = compile_program(SOURCE)
    entries = {
        fn.name: program.module.function_extent(fn.name)[0]
        for fn in program.module.functions
    }
    image = pack_program(program.tables, entries)
    return program, entries, image


def test_image_magic_and_load(packed):
    program, entries, image = packed
    assert image[:4] == b"IPDS"
    loaded, loaded_entries = load_program(image)
    assert set(loaded.by_function) == set(program.tables.by_function)
    assert loaded_entries == entries


def test_roundtrip_preserves_tables_semantically(packed):
    program, _, image = packed
    loaded, _ = load_program(image)
    for name, original in program.tables.by_function.items():
        restored = loaded.by_function[name]
        assert restored.hash_params == original.hash_params
        assert restored.branch_pcs == original.branch_pcs
        assert restored.bcv_slots == original.bcv_slots
        assert dict(restored.bat) == dict(original.bat)


def test_loaded_tables_drive_an_identical_ipds(packed):
    program, _, image = packed
    loaded, _ = load_program(image)
    inputs = [3, 2, 1, 7, 1, 4, 1, 12, 0]
    from repro.interp import run_program

    original_ipds = IPDS(program.tables)
    loaded_ipds = IPDS(loaded)
    run_program(
        program.module,
        inputs=inputs,
        event_listeners=[original_ipds.process, loaded_ipds.process],
    )
    assert original_ipds.alarms == loaded_ipds.alarms
    assert original_ipds.stats.checks == loaded_ipds.stats.checks
    assert original_ipds.stats.actions_fired == loaded_ipds.stats.actions_fired


def test_bad_magic_rejected():
    with pytest.raises(ImageError):
        load_program(b"NOPE" + b"\x00" * 32)


def test_blob_sizes_match_fig8_accounting(packed):
    """The packed BCV/BAT blob bits equal the Fig. 8 encoded sizes."""
    program, _, image = packed
    from repro.correlation.binary_image import _pack_bat, _pack_bcv

    for tables in program.tables:
        sizes = table_sizes(tables)
        bcv_blob = _pack_bcv(tables)
        assert len(bcv_blob) == (sizes.bcv_bits + 7) // 8
        bat_blob, entries = _pack_bat(tables)
        assert entries == sizes.action_entries
        assert len(bat_blob) == (sizes.bat_bits + 7) // 8


@pytest.mark.parametrize("name", [w.name for w in all_workloads()])
def test_roundtrip_all_workloads(name):
    workload = next(w for w in all_workloads() if w.name == name)
    program = compile_program(workload.source, name)
    entries = {
        fn.name: program.module.function_extent(fn.name)[0]
        for fn in program.module.functions
    }
    image = pack_program(program.tables, entries)
    loaded, loaded_entries = load_program(image)
    for fn_name, original in program.tables.by_function.items():
        restored = loaded.by_function[fn_name]
        assert restored.bcv_slots == original.bcv_slots
        assert dict(restored.bat) == dict(original.bat)
        assert restored.branch_pcs == original.branch_pcs
    assert loaded_entries == entries
