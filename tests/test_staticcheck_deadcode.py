"""Tests for the infeasible-/dead-branch detector (pass: dead-branch)."""

import pytest

from repro.ir import CondBranch, Const, Load, lower_program
from repro.lang import parse_program
from repro.pipeline import compile_program
from repro.staticcheck import find_dead_branches

CLAMP = """
int v;
void main() {
    v = read_int();
    if (v < 0) { v = 0; }
    if (v < 0) { emit(1); } else { emit(2); }
}
"""

LIVE = """
int v;
void main() {
    v = read_int();
    if (v < 0) { emit(1); } else { emit(2); }
}
"""

DIAMOND = """
int x;
void f() {
  if (x < 5) { emit(1); } else { emit(2); }
  emit(3);
}
"""


def codes(diagnostics):
    return sorted(d.code for d in diagnostics)


@pytest.mark.parametrize("opt", [0, 1])
def test_clamped_rebranch_is_infeasible(opt):
    program = compile_program(CLAMP, opt_level=opt)
    found = find_dead_branches(program.module)
    assert "DEAD403" in codes(found)
    assert "DEAD404" in codes(found)  # the guarded arm never runs
    assert all(d.severity.value == "warning" for d in found)


@pytest.mark.parametrize("opt", [0, 1])
def test_live_branch_reports_nothing(opt):
    program = compile_program(LIVE, opt_level=opt)
    assert find_dead_branches(program.module) == []


def _module_with_const_branch(value):
    """Lowered DIAMOND with the branch condition pinned to a constant.

    The frontend folds literal comparisons during lowering, so a
    surviving constant-condition branch can only be produced at the IR
    level: swap the Load feeding the branch for a Const.
    """
    module = lower_program(parse_program(DIAMOND))
    fn = module.function("f")
    for block in fn.blocks:
        if isinstance(block.terminator, CondBranch):
            branch = block.terminator
            for i, instr in enumerate(block.instructions):
                if isinstance(instr, Load) and instr.dest == branch.lhs:
                    replacement = Const(dest=branch.lhs, value=value)
                    replacement.address = instr.address
                    block.instructions[i] = replacement
                    return module
    raise AssertionError("no load-fed branch in DIAMOND")


def test_constant_always_taken_branch():
    module = _module_with_const_branch(1)  # 1 < 5: always taken
    found = find_dead_branches(module)
    assert "DEAD401" in codes(found)
    assert "DEAD404" in codes(found)  # else-arm is dead


def test_constant_never_taken_branch():
    module = _module_with_const_branch(9)  # 9 < 5: never taken
    found = find_dead_branches(module)
    assert "DEAD402" in codes(found)
    assert "DEAD404" in codes(found)  # then-arm is dead
