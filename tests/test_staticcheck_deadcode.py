"""Tests for the infeasible-/dead-branch detector (pass: dead-branch)."""

import pytest

import repro.staticcheck.deadcode as deadcode_mod
from repro.ir import CondBranch, Const, Load, lower_program
from repro.lang import parse_program
from repro.pipeline import compile_program
from repro.staticcheck import find_dead_branches
from repro.workloads import get_workload, workload_names

CLAMP = """
int v;
void main() {
    v = read_int();
    if (v < 0) { v = 0; }
    if (v < 0) { emit(1); } else { emit(2); }
}
"""

LIVE = """
int v;
void main() {
    v = read_int();
    if (v < 0) { emit(1); } else { emit(2); }
}
"""

DIAMOND = """
int x;
void f() {
  if (x < 5) { emit(1); } else { emit(2); }
  emit(3);
}
"""


def codes(diagnostics):
    return sorted(d.code for d in diagnostics)


@pytest.mark.parametrize("opt", [0, 1])
def test_clamped_rebranch_is_infeasible(opt):
    program = compile_program(CLAMP, opt_level=opt)
    found = find_dead_branches(program.module)
    assert "DEAD403" in codes(found)
    assert "DEAD404" in codes(found)  # the guarded arm never runs
    assert all(d.severity.value == "warning" for d in found)


@pytest.mark.parametrize("opt", [0, 1])
def test_live_branch_reports_nothing(opt):
    program = compile_program(LIVE, opt_level=opt)
    assert find_dead_branches(program.module) == []


def _module_with_const_branch(value):
    """Lowered DIAMOND with the branch condition pinned to a constant.

    The frontend folds literal comparisons during lowering, so a
    surviving constant-condition branch can only be produced at the IR
    level: swap the Load feeding the branch for a Const.
    """
    module = lower_program(parse_program(DIAMOND))
    fn = module.function("f")
    for block in fn.blocks:
        if isinstance(block.terminator, CondBranch):
            branch = block.terminator
            for i, instr in enumerate(block.instructions):
                if isinstance(instr, Load) and instr.dest == branch.lhs:
                    replacement = Const(dest=branch.lhs, value=value)
                    replacement.address = instr.address
                    block.instructions[i] = replacement
                    return module
    raise AssertionError("no load-fed branch in DIAMOND")


def test_constant_always_taken_branch():
    module = _module_with_const_branch(1)  # 1 < 5: always taken
    found = find_dead_branches(module)
    assert "DEAD401" in codes(found)
    assert "DEAD404" in codes(found)  # else-arm is dead


def test_constant_never_taken_branch():
    module = _module_with_const_branch(9)  # 9 < 5: never taken
    found = find_dead_branches(module)
    assert "DEAD402" in codes(found)
    assert "DEAD404" in codes(found)  # then-arm is dead


# ----------------------------------------------------------------------
# DEAD405: feasible-path pruning at opt 3
# ----------------------------------------------------------------------
#
# The plain range MFP and the builder's feasible-edge propagation are
# twin interval domains, so on every shape we have found so far they
# prove the same reached set (the workloads below pin that).  DEAD405
# exists for the day they diverge; its plumbing is exercised by
# narrowing the feasible reached set directly.


def test_dead405_fires_when_feasible_pruning_shrinks_reachability(
    monkeypatch,
):
    program = compile_program(LIVE, opt_level=3)
    fn = program.module.function("main")
    labels = [block.label for block in fn.blocks]
    victim = labels[1]  # the taken arm of the diamond
    reduced = frozenset(label for label in labels if label != victim)
    pruned = {(labels[0], True)}

    monkeypatch.setattr(
        deadcode_mod,
        "entry_reachability",
        lambda fn_, def_map, facts: (reduced, pruned),
    )
    found = find_dead_branches(program.module, opt_level=3)
    dead405 = [d for d in found if d.code == "DEAD405"]
    assert [d.span.block for d in dead405] == [victim]
    (diag,) = dead405
    assert diag.severity.value == "warning"
    # The message names the pruned edges so the report points at the
    # opt-3 facts that earned the extra precision.
    assert f"{labels[0]}:T" in diag.message
    assert "feasible-path pruning" in diag.message


def test_dead405_needs_opt3(monkeypatch):
    # Below opt 3 the feasible facts are never computed: the pruning
    # hook must not even be consulted.
    def explode(*_args, **_kwargs):
        raise AssertionError("entry_reachability consulted below opt 3")

    monkeypatch.setattr(deadcode_mod, "entry_reachability", explode)
    program = compile_program(LIVE, opt_level=2)
    assert find_dead_branches(program.module, opt_level=2) == []


def test_dead404_wins_over_dead405(monkeypatch):
    # A block the plain MFP already proves dead stays DEAD404 even when
    # the feasible set also excludes it: DEAD405 is reserved for the
    # *extra* precision of the opt-3 facts.
    program = compile_program(CLAMP, opt_level=3)
    fn = program.module.function("main")
    labels = [block.label for block in fn.blocks]
    monkeypatch.setattr(
        deadcode_mod,
        "entry_reachability",
        lambda fn_, def_map, facts: (frozenset(), {(labels[0], True)}),
    )
    found = find_dead_branches(program.module, opt_level=3)
    by_block = {}
    for diag in found:
        if diag.code in ("DEAD404", "DEAD405"):
            by_block.setdefault(diag.span.block, []).append(diag.code)
    assert all(len(codes_) == 1 for codes_ in by_block.values()), by_block
    # The clamp's guarded arm is DEAD404 (plain MFP), everything else
    # the narrowed feasible set excludes is DEAD405.
    assert "DEAD404" in {c for codes_ in by_block.values() for c in codes_}
    assert "DEAD405" in {c for codes_ in by_block.values() for c in codes_}


@pytest.mark.parametrize("name", workload_names())
def test_workloads_are_dead405_clean_at_opt3(name):
    # Standing empirical fact: on every registry workload the feasible
    # propagation reaches exactly the blocks the plain MFP reaches, so
    # the opt-3 refinement adds no DEAD405 today.  If a future
    # sharpening makes them diverge this pins that the divergence was
    # deliberate.
    program = compile_program(get_workload(name).source, name, 3)
    found = find_dead_branches(program.module, opt_level=3)
    assert "DEAD405" not in codes(found)
