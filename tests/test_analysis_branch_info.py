"""Tests for branch check/inference predicate extraction."""

from repro.lang import parse_program
from repro.ir import RelOp, lower_program
from repro.analysis import (
    Interval,
    analyze_aliases,
    analyze_branches,
    analyze_definitions,
    analyze_purity,
)


def branch_facts(source, fn_name="f"):
    module = lower_program(parse_program(source))
    analyze_aliases(module)
    purity = analyze_purity(module)
    fn = module.function(fn_name)
    def_map, _ = analyze_definitions(fn, module, purity)
    return fn, analyze_branches(fn, def_map)


def sole_facts(source, fn_name="f"):
    fn, facts = branch_facts(source, fn_name)
    assert len(facts) == 1, facts
    return next(iter(facts.values()))


# ----------------------------------------------------------------------
# Check side
# ----------------------------------------------------------------------


def test_simple_load_branch_is_checkable():
    facts = sole_facts("int x; void f() { if (x < 10) { emit(1); } }")
    assert facts.check is not None
    assert facts.check.var.name == "x"
    assert facts.check.op is RelOp.LT
    assert facts.check.bound == 10


def test_outcome_for_value():
    facts = sole_facts("int x; void f() { if (x < 10) { emit(1); } }")
    assert facts.check.outcome_for_value(9) is True
    assert facts.check.outcome_for_value(10) is False


def test_affine_chain_plus_constant():
    # if (x + 3 < 10)  ==>  x < 7
    facts = sole_facts("int x; void f() { if (x + 3 < 10) { emit(1); } }")
    assert facts.check.op is RelOp.LT
    assert facts.check.bound == 7


def test_affine_chain_minus_constant():
    facts = sole_facts("int x; void f() { if (x - 2 < 10) { emit(1); } }")
    assert facts.check.bound == 12


def test_affine_chain_constant_minus_reg_swaps_op():
    # if (10 - x < 3)  ==>  -x < -7  ==>  x > 7
    facts = sole_facts("int x; void f() { if (10 - x < 3) { emit(1); } }")
    assert facts.check.op is RelOp.GT
    assert facts.check.bound == 7


def test_unary_minus_swaps_op():
    # if (-x < 5) ==> x > -5
    facts = sole_facts("int x; void f() { if (-x < 5) { emit(1); } }")
    assert facts.check.op is RelOp.GT
    assert facts.check.bound == -5


def test_truthiness_branch():
    facts = sole_facts("int x; void f() { if (x) { emit(1); } }")
    assert facts.check.op is RelOp.NE
    assert facts.check.bound == 0


def test_equality_branch_outcome_sets():
    facts = sole_facts("int x; void f() { if (x == 3) { emit(1); } }")
    assert facts.check.taken_set.interval == Interval.point(3)
    assert facts.check.nottaken_set.hole == 3


def test_reg_vs_reg_branch_not_analyzable():
    fn, facts = branch_facts("int x; int y; void f() { if (x < y) { emit(1); } }")
    assert facts == {}


def test_branch_on_call_result_not_analyzable():
    fn, facts = branch_facts(
        "int g() { return 1; } void f() { if (g() < 5) { emit(1); } }"
    )
    assert facts == {}


def test_branch_on_indirect_load_not_analyzable():
    fn, facts = branch_facts("void f(int *p) { if (*p < 5) { emit(1); } }")
    assert facts == {}


def test_multiplication_breaks_chain():
    fn, facts = branch_facts("int x; void f() { if (x * 2 < 10) { emit(1); } }")
    assert facts == {}


def test_cmp_chain_through_value_comparison():
    # `t = (x < 5); if (t)` is checkable: t != 0 <=> x < 5.
    facts = sole_facts("int x; void f() { int t = x < 5; if (t) { emit(1); } }")
    assert facts.check.var.name == "t"  # t is itself a memory variable


# ----------------------------------------------------------------------
# Inference side
# ----------------------------------------------------------------------


def test_clean_load_gives_inference():
    facts = sole_facts("int x; void f() { if (x < 10) { emit(1); } }")
    (inference,) = facts.inferences
    assert inference.kind == "load"
    assert inference.var.name == "x"
    assert inference.implied_interval(True) == Interval.at_most(9)
    assert inference.implied_interval(False) == Interval.at_least(10)


def test_store_between_load_and_branch_blocks_inference():
    # x is loaded, then x is redefined before the branch decides:
    # the branch is still *checkable* but must not be used to infer the
    # memory value of x at branch time.
    source = """
        int x;
        void f() {
          int t = x + 0;
          x = read_int();
          if (t < 10) { emit(1); }
        }
    """
    fn, facts = branch_facts(source)
    # The branch loads t (not x); find the facts for the branch on t.
    (f,) = facts.values()
    assert f.check.var.name == "t"
    # t itself is clean, so inference about t is fine.
    assert any(i.var.name == "t" for i in f.inferences)


def test_call_between_load_and_branch_blocks_inference_when_impure():
    source = """
        int x;
        void clobber() { x = 5; }
        int probe() {
          // load of x and the branch live in the same block, but the
          // call in between may redefine x.
          if (x + noop_marker() < 10) { return 1; }
          return 0;
        }
    """
    # Calls can't appear mid-chain (they break the affine walk), so
    # instead test the store-gap rule directly with a builtin-free shape:
    source = """
        int x;
        int g;
        void f() {
          if (x < 10) { g = 1; }
        }
    """
    facts = sole_facts(source)
    assert facts.inferences  # clean: inference present


def test_store_based_inference_requires_chain_store():
    # Manually constructed IR exercises the Fig 3.b shape where the
    # branch tests the *stored register* without reloading.
    from repro.ir import (
        BasicBlock,
        Call,
        CondBranch,
        IRFunction,
        IRModule,
        Jump,
        Reg,
        RelOp as R,
        Return,
        Store,
        Variable,
        VarKind,
    )
    from repro.analysis import analyze_definitions as adefs

    y = Variable("y", VarKind.GLOBAL, 1, 1)
    fn = IRFunction("f", [], returns_value=False)
    b0 = fn.add_block(BasicBlock("b0"))
    b1 = fn.add_block(BasicBlock("b1"))
    b2 = fn.add_block(BasicBlock("b2"))
    b0.instructions += [
        Call(Reg(0), "read_int", []),
        Store(y, Reg(0)),
        CondBranch(Reg(0), R.LT, 5, "b1", "b2"),
    ]
    b1.instructions += [Jump("b2")]
    b2.instructions += [Return(None)]
    module = IRModule(functions=[fn], globals=[y])
    module.finalize()
    purity = analyze_purity(module)
    def_map, _ = adefs(fn, module, purity)
    facts = analyze_branches(fn, def_map)
    (f,) = facts.values()
    assert f.check is None  # no terminal load: not checkable
    (inference,) = f.inferences
    assert inference.kind == "store"
    assert inference.var is y
    assert inference.implied_interval(True) == Interval.at_most(4)


def test_second_store_after_inference_store_blocks_it():
    from repro.ir import (
        BasicBlock,
        Call,
        CondBranch,
        IRFunction,
        IRModule,
        Reg,
        RelOp as R,
        Return,
        Store,
        Variable,
        VarKind,
    )
    from repro.analysis import analyze_definitions as adefs

    y = Variable("y", VarKind.GLOBAL, 1, 1)
    fn = IRFunction("f", [], returns_value=False)
    b0 = fn.add_block(BasicBlock("b0"))
    b1 = fn.add_block(BasicBlock("b1"))
    b0.instructions += [
        Call(Reg(0), "read_int", []),
        Store(y, Reg(0)),
        Call(Reg(1), "read_int", []),
        Store(y, Reg(1)),  # y no longer mirrors Reg(0)
        CondBranch(Reg(0), R.LT, 5, "b1", "b1"),
    ]
    b1.instructions += [Return(None)]
    module = IRModule(functions=[fn], globals=[y])
    module.finalize()
    purity = analyze_purity(module)
    def_map, _ = adefs(fn, module, purity)
    facts = analyze_branches(fn, def_map)
    if facts:
        (f,) = facts.values()
        stores = [i for i in f.inferences if i.kind == "store"]
        assert all(i.index != 1 for i in stores)


def test_multiple_branches_all_analyzed():
    fn, facts = branch_facts(
        """
        int a; int b;
        void f() {
          if (a < 1) { emit(1); }
          if (b > 2) { emit(2); }
        }
        """
    )
    assert len(facts) == 2
    names = {f.check.var.name for f in facts.values()}
    assert names == {"a", "b"}


def test_facts_keyed_by_pc():
    fn, facts = branch_facts("int x; void f() { if (x < 1) { emit(1); } }")
    (pc,) = facts.keys()
    (branch,) = fn.cond_branches()
    assert pc == branch.address
