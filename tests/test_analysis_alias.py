"""Tests for points-to analysis, call graph, and purity."""

from repro.lang import parse_program
from repro.ir import LoadIndirect, StoreIndirect, lower_program
from repro.analysis import (
    analyze_aliases,
    analyze_purity,
    build_call_graph,
)


def lower(source):
    return lower_program(parse_program(source))


def fn_var(module, fn_name, var_name):
    for var in module.function(fn_name).frame_variables:
        if var.name == var_name:
            return var
    raise AssertionError(f"{var_name} not in {fn_name}")


def global_var(module, name):
    for var in module.globals:
        if var.name == name:
            return var
    raise AssertionError(name)


def indirect_stores(module, fn_name):
    return [
        i
        for i in module.function(fn_name).instructions()
        if isinstance(i, StoreIndirect)
    ]


def indirect_loads(module, fn_name):
    return [
        i
        for i in module.function(fn_name).instructions()
        if isinstance(i, LoadIndirect)
    ]


# ----------------------------------------------------------------------
# Alias analysis
# ----------------------------------------------------------------------


def test_address_of_scalar_flows_to_deref():
    module = lower("void f() { int x = 0; int *p = &x; *p = 5; }")
    analyze_aliases(module)
    (store,) = indirect_stores(module, "f")
    assert [v.name for v in store.may_alias] == ["x"]


def test_two_candidate_targets_join():
    module = lower(
        """
        int c;
        void f() {
          int a = 0; int b = 0; int *p;
          if (c < 0) { p = &a; } else { p = &b; }
          *p = 1;
        }
        """
    )
    analyze_aliases(module)
    (store,) = indirect_stores(module, "f")
    assert sorted(v.name for v in store.may_alias) == ["a", "b"]


def test_array_access_aliases_array():
    module = lower("int buf[4]; void f(int i) { buf[i] = 9; }")
    analyze_aliases(module)
    (store,) = indirect_stores(module, "f")
    assert [v.name for v in store.may_alias] == ["buf"]


def test_pointer_param_receives_caller_targets():
    module = lower(
        """
        void callee(int *p) { *p = 1; }
        void f() { int x = 0; callee(&x); }
        void g() { int y = 0; callee(&y); }
        """
    )
    analyze_aliases(module)
    (store,) = indirect_stores(module, "callee")
    assert sorted(v.name for v in store.may_alias) == ["x", "y"]


def test_pointer_returned_from_function():
    module = lower(
        """
        int g;
        int pick() { return &g; }
        void f() { int *p = pick(); *p = 3; }
        """
    )
    analyze_aliases(module)
    (store,) = indirect_stores(module, "f")
    assert [v.name for v in store.may_alias] == ["g"]


def test_pointer_stored_in_global_flows_through_memory():
    module = lower(
        """
        int *gp;
        int x;
        void setup() { gp = &x; }
        void f() { *gp = 7; }
        """
    )
    analyze_aliases(module)
    (store,) = indirect_stores(module, "f")
    assert [v.name for v in store.may_alias] == ["x"]


def test_unknown_address_has_empty_alias_set():
    # Address computed from input data: nothing to point to.
    module = lower("void f() { int a = read_int(); *a = 1; }")
    analyze_aliases(module)
    (store,) = indirect_stores(module, "f")
    assert store.may_alias == ()


def test_pointer_arithmetic_stays_in_object():
    module = lower("int buf[8]; void f(int i) { int *p = &buf[2]; p[i] = 1; }")
    analyze_aliases(module)
    (store,) = indirect_stores(module, "f")
    assert [v.name for v in store.may_alias] == ["buf"]


def test_address_taken_set():
    module = lower(
        "void f() { int x = 0; int y = 0; int *p = &x; *p = 1; y = y + 1; }"
    )
    result = analyze_aliases(module)
    names = {v.name for v in result.address_taken}
    assert "x" in names
    assert "y" not in names


def test_load_through_pointer_annotated():
    module = lower("int g; void f() { int *p = &g; int v = *p; }")
    analyze_aliases(module)
    (load,) = indirect_loads(module, "f")
    assert [v.name for v in load.may_alias] == ["g"]


# ----------------------------------------------------------------------
# Call graph
# ----------------------------------------------------------------------


def test_call_graph_edges():
    module = lower(
        """
        void a() { b(); c(); }
        void b() { c(); }
        void c() { emit(1); }
        """
    )
    graph = build_call_graph(module)
    assert graph.callees_of("a") == {"b", "c"}
    assert graph.callers_of("c") == {"a", "b"}
    assert graph.builtin_calls["c"] == {"emit"}


def test_transitive_callees():
    module = lower(
        """
        void a() { b(); }
        void b() { c(); }
        void c() { }
        """
    )
    graph = build_call_graph(module)
    assert graph.transitive_callees("a") == {"b", "c"}
    assert graph.transitive_callees("c") == set()


def test_transitive_callees_with_recursion():
    module = lower(
        """
        void a(int n) { if (n > 0) { a(n - 1); } b(); }
        void b() { }
        """
    )
    graph = build_call_graph(module)
    assert graph.transitive_callees("a") == {"a", "b"}


def test_topological_order_callees_first():
    module = lower(
        """
        void a() { b(); }
        void b() { c(); }
        void c() { }
        """
    )
    order = build_call_graph(module).topological_order()
    assert order.index("c") < order.index("b") < order.index("a")


# ----------------------------------------------------------------------
# Purity (§5.3)
# ----------------------------------------------------------------------


def purity_of(source):
    module = lower(source)
    analyze_aliases(module)
    return module, analyze_purity(module)


def test_pure_function_has_no_effect():
    module, purity = purity_of("int f(int a) { return a + 1; }")
    effect = purity.effect_of("f")
    assert not effect.clobbers_all
    # Stores only to its own frame.
    frame = set(module.function("f").frame_variables)
    assert set(effect.variables) <= frame


def test_builtins_have_no_effect():
    _, purity = purity_of("void f() { emit(read_int()); }")
    effect = purity.effect_of("read_int")
    assert not effect.clobbers_all
    assert effect.variables == frozenset()


def test_global_store_is_visible_effect():
    module, purity = purity_of("int g; void f() { g = 1; }")
    effect = purity.effect_of("f")
    assert global_var(module, "g") in effect.variables


def test_pointer_param_store_effect_names_caller_var():
    module, purity = purity_of(
        """
        void callee(int *p) { *p = 1; }
        void f() { int x = 0; callee(&x); }
        """
    )
    effect = purity.effect_of("callee")
    assert fn_var(module, "f", "x") in effect.variables


def test_effect_propagates_through_calls():
    module, purity = purity_of(
        """
        int g;
        void inner() { g = 1; }
        void outer() { inner(); }
        """
    )
    assert global_var(module, "g") in purity.effect_of("outer").variables


def test_unknown_indirect_store_clobbers_all():
    _, purity = purity_of("void f() { int a = read_int(); *a = 1; }")
    assert purity.effect_of("f").clobbers_all


def test_clobber_propagates_to_callers():
    _, purity = purity_of(
        """
        void bad() { int a = read_int(); *a = 1; }
        void f() { bad(); }
        """
    )
    assert purity.effect_of("f").clobbers_all


def test_call_targets_filters_to_caller_frame_and_globals():
    module, purity = purity_of(
        """
        int g;
        void callee(int *p) { *p = 1; g = 2; }
        void f() { int x = 0; callee(&x); }
        void h() { int y = 0; callee(&y); }
        """
    )
    from repro.ir import Call

    f = module.function("f")
    (call,) = [i for i in f.instructions() if isinstance(i, Call)]
    clobbers, targets = purity.call_targets(f, call, frozenset(module.globals))
    assert not clobbers
    names = {v.name for v in targets}
    # Sees its own x and the global, but not h's y.
    assert names == {"x", "g"}


def test_recursive_function_effects_converge():
    module, purity = purity_of(
        """
        int g;
        void rec(int n) { if (n > 0) { g = n; rec(n - 1); } }
        """
    )
    assert global_var(module, "g") in purity.effect_of("rec").variables
