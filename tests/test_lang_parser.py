"""Unit tests for the mini-C parser."""

import pytest

from repro.lang import (
    Assign,
    BinaryOp,
    Block,
    Break,
    CallExpr,
    Continue,
    ExprStmt,
    For,
    If,
    IndexExpr,
    IntLiteral,
    ParseError,
    Return,
    Type,
    TypeKind,
    UnaryOp,
    VarDecl,
    VarRef,
    While,
    parse_program,
)


def parse_body(body_source):
    """Parse a statement list wrapped in a void main()."""
    program = parse_program("void main() {" + body_source + "}")
    return program.function("main").body.statements


def parse_expr(expr_source):
    (stmt,) = parse_body(f"x = {expr_source};")
    return stmt.value


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------


def test_empty_program():
    program = parse_program("")
    assert program.functions == []
    assert program.globals == []


def test_global_scalar_with_init():
    program = parse_program("int g = 7;")
    (decl,) = program.globals
    assert decl.name == "g"
    assert decl.var_type == Type.int_()
    assert decl.init == 7


def test_global_scalar_negative_init():
    program = parse_program("int g = -3;")
    assert program.globals[0].init == -3


def test_global_without_init():
    program = parse_program("int g;")
    assert program.globals[0].init is None


def test_global_array():
    program = parse_program("int buf[32];")
    decl = program.globals[0]
    assert decl.var_type.kind is TypeKind.ARRAY
    assert decl.var_type.array_size == 32


def test_global_pointer():
    program = parse_program("int *p;")
    assert program.globals[0].var_type == Type.pointer()


def test_function_with_params():
    program = parse_program("int f(int a, int *p) { return a; }")
    fn = program.function("f")
    assert fn.return_type == Type.int_()
    assert [p.name for p in fn.params] == ["a", "p"]
    assert fn.params[0].param_type == Type.int_()
    assert fn.params[1].param_type == Type.pointer()


def test_void_function():
    program = parse_program("void f() { }")
    assert program.function("f").return_type == Type.void()


def test_function_lookup_missing_raises():
    program = parse_program("void f() { }")
    with pytest.raises(KeyError):
        program.function("g")


def test_mixed_globals_and_functions():
    program = parse_program("int a; void f() { } int b = 2; int g() { return 0; }")
    assert [g.name for g in program.globals] == ["a", "b"]
    assert [f.name for f in program.functions] == ["f", "g"]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


def test_var_decl_with_init():
    (decl,) = parse_body("int x = 5;")
    assert isinstance(decl, VarDecl)
    assert decl.name == "x"
    assert isinstance(decl.init, IntLiteral)


def test_var_decl_array():
    (decl,) = parse_body("int buf[8];")
    assert decl.var_type.kind is TypeKind.ARRAY
    assert decl.var_type.array_size == 8


def test_array_initializer_rejected():
    with pytest.raises(ParseError):
        parse_body("int buf[8] = 0;")


def test_assignment_to_scalar():
    (stmt,) = parse_body("x = 1;")
    assert isinstance(stmt, Assign)
    assert isinstance(stmt.target, VarRef)


def test_assignment_to_deref():
    (stmt,) = parse_body("*p = 1;")
    assert isinstance(stmt.target, UnaryOp)
    assert stmt.target.op == "*"


def test_assignment_to_index():
    (stmt,) = parse_body("a[i] = 1;")
    assert isinstance(stmt.target, IndexExpr)


def test_assignment_to_rvalue_rejected():
    with pytest.raises(ParseError):
        parse_body("1 = 2;")


def test_assignment_to_call_rejected():
    with pytest.raises(ParseError):
        parse_body("f() = 2;")


def test_if_without_else():
    (stmt,) = parse_body("if (x < 1) { y = 1; }")
    assert isinstance(stmt, If)
    assert stmt.else_body is None


def test_if_with_else():
    (stmt,) = parse_body("if (x < 1) { y = 1; } else { y = 2; }")
    assert isinstance(stmt.else_body, Block)


def test_if_single_statement_bodies_become_blocks():
    (stmt,) = parse_body("if (x) y = 1; else y = 2;")
    assert isinstance(stmt.then_body, Block)
    assert isinstance(stmt.else_body, Block)


def test_dangling_else_binds_to_nearest_if():
    (outer,) = parse_body("if (a) if (b) x = 1; else x = 2;")
    assert outer.else_body is None
    inner = outer.then_body.statements[0]
    assert isinstance(inner, If)
    assert inner.else_body is not None


def test_while_loop():
    (stmt,) = parse_body("while (x < 10) { x = x + 1; }")
    assert isinstance(stmt, While)


def test_for_loop_full_header():
    (stmt,) = parse_body("for (i = 0; i < 10; i = i + 1) { }")
    assert isinstance(stmt, For)
    assert isinstance(stmt.init, Assign)
    assert isinstance(stmt.condition, BinaryOp)
    assert isinstance(stmt.step, Assign)


def test_for_loop_with_decl_init():
    (stmt,) = parse_body("for (int i = 0; i < 10; i = i + 1) { }")
    assert isinstance(stmt.init, VarDecl)


def test_for_loop_empty_header():
    (stmt,) = parse_body("for (;;) { break; }")
    assert stmt.init is None
    assert stmt.condition is None
    assert stmt.step is None


def test_break_and_continue():
    stmts = parse_body("while (1) { break; continue; }")
    body = stmts[0].body.statements
    assert isinstance(body[0], Break)
    assert isinstance(body[1], Continue)


def test_return_with_value():
    program = parse_program("int f() { return 1 + 2; }")
    (stmt,) = program.function("f").body.statements
    assert isinstance(stmt, Return)
    assert isinstance(stmt.value, BinaryOp)


def test_return_without_value():
    (stmt,) = parse_body("return;")
    assert stmt.value is None


def test_expression_statement_call():
    (stmt,) = parse_body("emit(1);")
    assert isinstance(stmt, ExprStmt)
    assert isinstance(stmt.expr, CallExpr)


def test_nested_blocks():
    (outer,) = parse_body("{ { x = 1; } }")
    assert isinstance(outer, Block)
    inner = outer.statements[0]
    assert isinstance(inner, Block)


def test_unterminated_block_rejected():
    with pytest.raises(ParseError):
        parse_program("void f() { x = 1;")


def test_missing_semicolon_rejected():
    with pytest.raises(ParseError):
        parse_body("x = 1")


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


def test_precedence_mul_over_add():
    expr = parse_expr("1 + 2 * 3")
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_precedence_add_over_cmp():
    expr = parse_expr("1 + 2 < 3 + 4")
    assert expr.op == "<"
    assert expr.left.op == "+"


def test_precedence_cmp_over_and():
    expr = parse_expr("a < 1 && b > 2")
    assert expr.op == "&&"
    assert expr.left.op == "<"
    assert expr.right.op == ">"


def test_precedence_and_over_or():
    expr = parse_expr("a || b && c")
    assert expr.op == "||"
    assert expr.right.op == "&&"


def test_left_associativity_of_subtraction():
    expr = parse_expr("10 - 3 - 2")
    assert expr.op == "-"
    assert expr.left.op == "-"
    assert expr.right.value == 2


def test_parentheses_override_precedence():
    expr = parse_expr("(1 + 2) * 3")
    assert expr.op == "*"
    assert expr.left.op == "+"


def test_chained_comparison_rejected():
    with pytest.raises(ParseError):
        parse_expr("1 < 2 < 3")


def test_unary_minus_and_not():
    expr = parse_expr("-!x")
    assert expr.op == "-"
    assert expr.operand.op == "!"


def test_deref_and_address_of():
    expr = parse_expr("*p + &x")
    assert expr.left.op == "*"
    assert expr.right.op == "&"


def test_address_of_array_element():
    expr = parse_expr("&a[3]")
    assert expr.op == "&"
    assert isinstance(expr.operand, IndexExpr)


def test_address_of_literal_rejected():
    with pytest.raises(ParseError):
        parse_expr("&5")


def test_call_with_arguments():
    expr = parse_expr("f(1, x + 2, g())")
    assert expr.callee == "f"
    assert len(expr.args) == 3
    assert isinstance(expr.args[2], CallExpr)


def test_nested_index():
    expr = parse_expr("a[b[i]]")
    assert isinstance(expr, IndexExpr)
    assert isinstance(expr.index, IndexExpr)


def test_index_binds_tighter_than_deref():
    # *p[i] parses as *(p[i]).
    expr = parse_expr("*p[i]")
    assert expr.op == "*"
    assert isinstance(expr.operand, IndexExpr)


def test_error_message_carries_location():
    with pytest.raises(ParseError) as exc:
        parse_program("void f() {\n  x = ;\n}", filename="srv.c")
    assert "srv.c:2" in str(exc.value)
