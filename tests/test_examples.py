"""Smoke tests: every example script runs to completion."""

import runpy
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    saved_argv = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = saved_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "IPDS verdict" in out
    assert "infeasible path" in out


def test_server_campaign(capsys):
    run_example("server_campaign.py", ["10"])
    out = capsys.readouterr().out
    assert "telnetd" in out
    assert "zero false positives" in out


def test_correlation_explorer(capsys):
    run_example("correlation_explorer.py")
    out = capsys.readouterr().out
    assert "lowered IR" in out
    assert "branch facts" in out
    assert "alarms: none" in out


def test_timing_study(capsys):
    run_example("timing_study.py", ["sysklogd", "3"])
    out = capsys.readouterr().out
    assert "normalized performance" in out
    assert "queue-size sensitivity" in out


def test_optimization_and_baselines(capsys):
    run_example("optimization_and_baselines.py")
    out = capsys.readouterr().out
    assert "optimization removes correlations" in out
    assert "IPDS vs. trained n-gram baseline" in out
