"""Tests for the session-scoped detection engine.

The load-bearing property: a session-driven detection is byte-identical
to the same detection run through the serial campaign / CLI code path —
same outcome records, same rendered alarms, same forensics JSON.
"""

import re
from pathlib import Path

import pytest

from repro.attacks.campaign import run_attack_detailed
from repro.forensics import reports_to_json
from repro.interp import GLOBAL_BASE
from repro.interp.interpreter import TamperSpec
from repro.pipeline import compile_program_cached
from repro.service import (
    DetectionSession,
    SessionSpec,
    SessionState,
)
from repro.workloads.registry import get_workload

FIGURE1 = """
int user;
void main() {
  user = read_int();
  if (user == 0) { emit(100); } else { emit(200); }
  int someinput = read_int();
  if (user == 0) { emit(111); } else { emit(222); }
}
"""

#: (workload, attack index) pairs whose campaign attack is detected —
#: pinned by the deterministic attack seeds.
DETECTED_ATTACKS = [("telnetd", 1), ("wu-ftpd", 7), ("atftpd", 3)]


def test_run_session_clean():
    spec = SessionSpec(
        mode="run", source=FIGURE1, source_name="figure1", inputs=(5, 1)
    )
    session = DetectionSession(spec)
    result = session.execute()
    assert session.state is SessionState.COMPLETED
    assert result.detected is False
    assert result.outputs == [200, 222]
    assert result.alarms == []
    assert session.metrics.value("interp.steps") > 0
    assert session.metrics.value("ipds.alarms") == 0


def test_explicit_attack_session_detects():
    spec = SessionSpec(
        mode="attack",
        source=FIGURE1,
        source_name="figure1",
        inputs=(5, 1),
        tamper=TamperSpec("read", 2, GLOBAL_BASE, 0),
        record_trace=True,
    )
    session = DetectionSession(spec)
    result = session.execute()
    assert session.state is SessionState.ALARMED
    assert result.detected is True
    assert result.tamper_fired is True
    assert result.control_flow_changed is True
    assert "infeasible path" in result.alarms[0]
    assert result.trace_event_count > 0


@pytest.mark.parametrize("workload_name,index", DETECTED_ATTACKS)
def test_indexed_attack_matches_serial_campaign(workload_name, index):
    workload = get_workload(workload_name)
    program = compile_program_cached(workload.source, workload.name, 0)
    serial = run_attack_detailed(
        program, workload, index, forensics=True
    )

    spec = SessionSpec(
        mode="attack",
        workload=workload_name,
        attack_index=index,
        forensics=True,
    )
    session = DetectionSession(spec)
    result = session.execute()

    assert session.state is SessionState.ALARMED
    assert result.outcome == serial.outcome.to_record(workload_name)
    assert result.alarms == list(serial.outcome.alarms)
    assert result.forensics == reports_to_json(serial.reports)


def test_indexed_attack_clean_outcome_matches():
    workload = get_workload("telnetd")
    program = compile_program_cached(workload.source, workload.name, 0)
    serial = run_attack_detailed(program, workload, 0, forensics=True)
    assert not serial.outcome.detected  # index 0 is a clean miss

    session = DetectionSession(
        SessionSpec(
            mode="attack", workload="telnetd", attack_index=0, forensics=True
        )
    )
    result = session.execute()
    assert session.state is SessionState.COMPLETED
    assert result.outcome == serial.outcome.to_record("telnetd")


def test_replay_session_reproduces_attack_alarms():
    import io

    from repro.runtime.replay import dump_trace

    attack_spec = SessionSpec(
        mode="attack",
        source=FIGURE1,
        source_name="figure1",
        inputs=(5, 1),
        tamper=TamperSpec("read", 2, GLOBAL_BASE, 0),
        record_trace=True,
    )
    attack = DetectionSession(attack_spec)
    attack.execute()
    assert attack.alarms

    buffer = io.StringIO()
    dump_trace(attack.trace_events, buffer)
    replay = DetectionSession(
        SessionSpec(
            mode="replay",
            source=FIGURE1,
            source_name="figure1",
            trace_text=buffer.getvalue(),
        )
    )
    result = replay.execute()
    assert result.alarms == attack.alarms


def test_session_streams_events():
    seen = []
    session = DetectionSession(
        SessionSpec(mode="attack", workload="telnetd", attack_index=1),
        emit=lambda kind, payload: seen.append((kind, payload)),
    )
    session.execute()
    kinds = [kind for kind, _ in seen]
    assert kinds[0] == "state"  # running
    assert "alarm" in kinds
    assert kinds[-1] == "result"
    result_payload = seen[-1][1]["result"]
    assert result_payload["state"] == "alarmed"


def test_daemon_run_catches_failures():
    session = DetectionSession(
        SessionSpec(mode="run", workload="no-such-workload", read_files=False)
    )
    result = session.run()
    assert session.state is SessionState.FAILED
    assert result.error and "no-such-workload" in result.error


def test_spec_validation():
    with pytest.raises(ValueError):
        SessionSpec(mode="dance", workload="telnetd").validate()
    with pytest.raises(ValueError):
        SessionSpec(mode="run").validate()
    with pytest.raises(ValueError):
        SessionSpec(mode="attack", workload="telnetd").validate()
    with pytest.raises(ValueError):
        SessionSpec(
            mode="attack",
            workload="telnetd",
            attack_index=1,
            tamper=TamperSpec("read", 2, GLOBAL_BASE, 0),
        ).validate()
    with pytest.raises(ValueError):
        SessionSpec(mode="replay", workload="telnetd").validate()
    with pytest.raises(ValueError):
        SessionSpec(
            mode="attack", source=FIGURE1, attack_index=1
        ).validate()


def test_version_matches_pyproject():
    import repro

    pyproject = (
        Path(repro.__file__).resolve().parent.parent.parent / "pyproject.toml"
    )
    match = re.search(
        r'^version\s*=\s*"([^"]+)"',
        pyproject.read_text(encoding="utf-8"),
        re.MULTILINE,
    )
    assert match is not None
    assert repro.__version__ == match.group(1)


def test_cli_version_flag(capsys):
    import repro
    from repro.cli import main

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert f"repro {repro.__version__}" in capsys.readouterr().out


def test_cli_keyboard_interrupt_exits_130(tmp_path, capsys, monkeypatch):
    from repro.cli import main
    from repro.service import engine

    source = tmp_path / "figure1.c"
    source.write_text(FIGURE1)

    def boom(self):
        raise KeyboardInterrupt

    monkeypatch.setattr(engine.DetectionSession, "execute", boom)
    assert main(["run", str(source), "--inputs", "5 1"]) == 130
    assert "interrupted" in capsys.readouterr().err
