"""Flight recorder: bounded ring semantics and IPDS integration."""

import pytest

from repro.correlation.actions import BranchAction, BranchStatus
from repro.pipeline import compile_program, monitored_run
from repro.runtime.flight_recorder import (
    DEFAULT_DEPTH,
    BranchRecord,
    BSVTransition,
    FlightRecorder,
    FrameRecord,
)
from repro.interp.interpreter import TamperSpec
from repro.workloads import get_workload


def _branch(seq, frame_id=0, slot=None, pc=0x40):
    transitions = ()
    if slot is not None:
        transitions = (
            BSVTransition(
                slot=slot,
                target_pc=0x80,
                action=BranchAction.SET_T,
                before=BranchStatus.UNKNOWN,
                after=BranchStatus.TAKEN,
            ),
        )
    return BranchRecord(
        seq=seq,
        frame_id=frame_id,
        function="main",
        pc=pc,
        taken=True,
        checked=False,
        expected=None,
        alarmed=False,
        transitions=transitions,
    )


# -- ring mechanics -----------------------------------------------------


def test_depth_bounds_retention():
    recorder = FlightRecorder(depth=4)
    for seq in range(10):
        recorder.record(_branch(seq))
    assert len(recorder) == 4
    assert recorder.total_recorded == 10
    assert recorder.evictions == 6
    assert [r.seq for r in recorder.records] == [6, 7, 8, 9]


def test_depth_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(depth=0)


def test_clear_resets_everything():
    recorder = FlightRecorder(depth=2)
    recorder.record(_branch(0))
    recorder.clear()
    assert len(recorder) == 0
    assert recorder.total_recorded == 0


def test_find_setter_matches_frame_slot_and_order():
    recorder = FlightRecorder(depth=8)
    recorder.record(_branch(1, frame_id=0, slot=7))
    recorder.record(_branch(2, frame_id=1, slot=7))  # other activation
    recorder.record(_branch(3, frame_id=0, slot=7))  # latest in frame 0
    recorder.record(_branch(4, frame_id=0, slot=9))  # other slot
    found = recorder.find_setter(frame_id=0, slot=7, before_seq=5)
    assert found is not None
    setter, transition = found
    assert setter.seq == 3
    assert transition.slot == 7
    # Events at/after the alarm never count as its setter.
    assert recorder.find_setter(0, 7, before_seq=3)[0].seq == 1
    assert recorder.find_setter(0, 3, before_seq=5) is None


def test_find_setter_after_eviction_returns_none():
    recorder = FlightRecorder(depth=2)
    recorder.record(_branch(1, slot=7))
    recorder.record(_branch(2))
    recorder.record(_branch(3))  # evicts seq 1, the only setter
    assert recorder.find_setter(0, 7, before_seq=4) is None
    assert recorder.evictions == 1


def test_history_windows_by_seq():
    recorder = FlightRecorder(depth=8)
    recorder.record(FrameRecord(seq=0, kind="call", function="main", frame_id=0))
    for seq in range(1, 6):
        recorder.record(_branch(seq))
    window = recorder.history(before_seq=4, limit=3)
    assert [r.seq for r in window] == [2, 3, 4]


def test_record_descriptions():
    branch = _branch(3, slot=5)
    text = branch.describe()
    assert "#3 br main@0x40 T" in text
    assert "SET_T slot 5" in text
    frame = FrameRecord(seq=1, kind="call", function="f", frame_id=None)
    assert "unprotected" in frame.describe()


# -- IPDS integration ---------------------------------------------------


@pytest.fixture(scope="module")
def telnetd_program():
    workload = get_workload("telnetd")
    return workload, compile_program(workload.source, "telnetd", 1)


ATTACK = dict(inputs=[5, 0, 1, 2, 3, 1, 1, 1, 0], trigger=6, value=1)


def _attack_spec(program):
    from repro.interp import MemoryMap, STACK_BASE

    layout = MemoryMap(program.module).frame_layouts["main"]
    offset = next(
        o for v, o in layout.offsets.items() if v.name == "authenticated"
    )
    return TamperSpec("read", ATTACK["trigger"], STACK_BASE + offset,
                      ATTACK["value"])


def test_recorder_captures_bsv_transitions(telnetd_program):
    _, program = telnetd_program
    recorder = FlightRecorder()
    result, ipds = monitored_run(
        program, inputs=ATTACK["inputs"], flight_recorder=recorder
    )
    assert not ipds.detected
    branches = recorder.branch_records
    assert branches
    fired = [t for record in branches for t in record.transitions]
    assert fired, "BAT actions must appear as BSV transitions"
    for transition in fired:
        assert isinstance(transition.action, BranchAction)
        assert transition.target_pc is not None


def test_alarms_identical_with_and_without_recorder(telnetd_program):
    """The recorder must observe, never perturb: same alarms, same
    events, same everything, recorder or not."""
    _, program = telnetd_program
    tamper = _attack_spec(program)
    bare_result, bare_ipds = monitored_run(
        program, inputs=ATTACK["inputs"], tamper=tamper
    )
    recorded_result, recorded_ipds = monitored_run(
        program,
        inputs=ATTACK["inputs"],
        tamper=tamper,
        flight_recorder=FlightRecorder(),
    )
    assert bare_ipds.detected and recorded_ipds.detected
    assert bare_ipds.alarms == recorded_ipds.alarms
    assert bare_result.branch_trace == recorded_result.branch_trace
    assert bare_ipds.stats.events == recorded_ipds.stats.events


def test_alarmed_branch_is_recorded(telnetd_program):
    _, program = telnetd_program
    recorder = FlightRecorder()
    _, ipds = monitored_run(
        program,
        inputs=ATTACK["inputs"],
        tamper=_attack_spec(program),
        flight_recorder=recorder,
    )
    assert ipds.detected
    alarm = ipds.alarms[0]
    alarmed = [r for r in recorder.branch_records if r.alarmed]
    assert [r.seq for r in alarmed] == [alarm.event_index]
    assert alarm.slot >= 0 and alarm.frame_id >= 0


def test_default_depth_is_documented_value():
    assert FlightRecorder().depth == DEFAULT_DEPTH == 64


# -- eviction under call/return-heavy traces ----------------------------
#
# Call and return events share the ring with branch records, so a
# call-heavy region of the trace can push the setting event out even
# when few *branches* ran since.  These tests pin that degradation:
# find_setter returns None (never a wrong setter), the eviction counter
# owns up to it, and the forensics engine says so in its notes.


def _frame_pair(seq, function="helper"):
    return (
        FrameRecord(seq=seq, kind="call", function=function, frame_id=1),
        FrameRecord(seq=seq + 1, kind="return", function=function, frame_id=1),
    )


def test_frame_records_evict_branch_setters():
    recorder = FlightRecorder(depth=4)
    recorder.record(_branch(0, slot=7))  # the only setter
    seq = 1
    for _ in range(3):  # three call/return pairs: six frame records
        call, ret = _frame_pair(seq)
        recorder.record(call)
        recorder.record(ret)
        seq += 2
    assert recorder.evictions == 3
    assert all(isinstance(r, FrameRecord) for r in recorder.records)
    assert recorder.branch_records == ()
    # Degraded, not wrong: the evicted setter is never invented.
    assert recorder.find_setter(frame_id=0, slot=7, before_seq=seq) is None


def test_mixed_trace_keeps_most_recent_window_in_order():
    recorder = FlightRecorder(depth=5)
    seq = 0
    for _ in range(4):
        recorder.record(
            FrameRecord(seq=seq, kind="call", function="helper", frame_id=1)
        )
        recorder.record(_branch(seq + 1, slot=seq))
        recorder.record(
            FrameRecord(
                seq=seq + 2, kind="return", function="helper", frame_id=1
            )
        )
        seq += 3
    assert recorder.total_recorded == 12
    assert recorder.evictions == 7
    held = [r.seq for r in recorder.records]
    assert held == sorted(held)
    assert held == list(range(7, 12))
    # The survivor set still answers for slots set inside the window...
    assert recorder.find_setter(0, slot=9, before_seq=12) is not None
    # ...and stays silent for the evicted ones.
    assert recorder.find_setter(0, slot=0, before_seq=12) is None


def _call_heavy_source(calls_per_iteration=6):
    body = "    bump();\n" * calls_per_iteration
    return (
        "int g;\n"
        "void bump() { g = g + 1; }\n"
        "void main() {\n"
        "  int n = read_int();\n"
        "  int i = 0;\n"
        "  while (i < n) {\n"
        "    if (g >= 0) { emit(1); } else { emit(2); }\n"
        f"{body}"
        "    i = i + 1;\n"
        "  }\n"
        "  emit(g);\n"
        "}\n"
    )


def test_call_heavy_run_overflows_a_shallow_ring():
    program = compile_program(_call_heavy_source(), "callheavy", 1)
    recorder = FlightRecorder(depth=8)
    _, ipds = monitored_run(
        program, inputs=[12], flight_recorder=recorder
    )
    assert not ipds.detected
    assert recorder.evictions > 0
    assert recorder.total_recorded == recorder.evictions + len(recorder)
    kinds = {type(r).__name__ for r in recorder.records}
    assert "FrameRecord" in kinds  # calls/returns really share the ring


def test_forensics_notes_eviction_on_call_heavy_alarm(telnetd_program):
    """With a shallow ring under telnetd's call-heavy command loop, the
    setter is gone by alarm time; the report must say evicted — and
    recommend a deeper ring — instead of naming a wrong setter."""
    from repro.forensics import explain_ipds

    _, program = telnetd_program
    recorder = FlightRecorder(depth=2)
    _, ipds = monitored_run(
        program,
        inputs=ATTACK["inputs"],
        tamper=_attack_spec(program),
        flight_recorder=recorder,
    )
    assert ipds.detected and recorder.evictions > 0
    (report,) = explain_ipds(ipds)
    assert report.setter is None
    assert any("evicted" in note for note in report.notes)
    assert any("--flight-recorder-depth" in note for note in report.notes)


def test_deep_ring_recovers_the_same_alarms_setter(telnetd_program):
    """Control for the eviction test: same attack, ring deep enough to
    hold the whole trace, setter found with provenance attached."""
    from repro.forensics import explain_ipds

    _, program = telnetd_program
    recorder = FlightRecorder(depth=4096)
    _, ipds = monitored_run(
        program,
        inputs=ATTACK["inputs"],
        tamper=_attack_spec(program),
        flight_recorder=recorder,
    )
    assert ipds.detected and recorder.evictions == 0
    (report,) = explain_ipds(ipds)
    assert report.setter is not None
    assert report.transition is not None
    assert not any("evicted" in note for note in report.notes)
