"""The static protection-coverage pass (``repro coverage``, COV6xx)."""

import json

from repro.pipeline import compile_program, compile_program_cached
from repro.staticcheck import COVERAGE_PASSES, Severity, run_passes
from repro.staticcheck.coverage import coverage_report
from repro.workloads import get_workload, workload_names

SOURCE = """
int g;

void bump() { g = g + 1; }

void main() {
  int n = read_int();
  int i = 0;
  while (i < n) {                 // no check predicate (local i vs n)
    if (g >= 0) { emit(1); } else { emit(2); }
    bump();
    if (g >= 0) { emit(3); } else { emit(4); }
    i = i + 1;
  }
  emit(g);
}
"""


def _by_code(diagnostics):
    out = {}
    for diag in diagnostics:
        out.setdefault(diag.code, []).append(diag)
    return out


def test_coverage_pass_reports_fractions_and_totals():
    program = compile_program(SOURCE, "demo", 2)
    by_code = _by_code(coverage_report(program))
    # One COV601 per function that has branches (main only — bump has
    # none), one COV602 per unprotected branch, exactly one COV603.
    assert len(by_code["COV601"]) == 1
    assert by_code["COV601"][0].span.function == "main"
    assert "2/3" in by_code["COV601"][0].message
    assert len(by_code["COV603"]) == 1
    totals = by_code["COV603"][0].message
    assert "2/3 conditional branches protected (66.7%)" in totals
    assert "proved interprocedurally" in totals
    assert "1 variable(s) are detectable tamper points" in totals


def test_coverage_classifies_unprotected_branches():
    program = compile_program(SOURCE, "demo", 2)
    by_code = _by_code(coverage_report(program))
    (loop,) = by_code["COV602"]
    assert loop.severity is Severity.WARNING
    assert "no check predicate is derivable" in loop.message


def test_coverage_counts_interproc_actions():
    p1 = compile_program(SOURCE, "demo", 1)
    p2 = compile_program(SOURCE, "demo", 2)

    def interproc_count(program):
        (totals,) = [
            d for d in coverage_report(program) if d.code == "COV603"
        ]
        return totals.message

    assert "0 proved interprocedurally" in interproc_count(p1)
    assert "2 proved interprocedurally" in interproc_count(p2)


def test_fully_unprotected_program_reports_zero():
    program = compile_program(
        "void main() { emit(read_int()); }", "flat", 0
    )
    by_code = _by_code(coverage_report(program))
    assert "COV601" not in by_code  # no conditional branches at all
    assert "0/0 conditional branches protected (0.0%)" in (
        by_code["COV603"][0].message
    )


def test_coverage_never_emits_errors_on_registry():
    for name in workload_names():
        workload = get_workload(name)
        program = compile_program_cached(workload.source, workload.name, 2)
        diagnostics = run_passes(program, names=COVERAGE_PASSES)
        assert diagnostics, name
        assert all(
            diag.severity is not Severity.ERROR for diag in diagnostics
        ), name
        codes = {diag.code for diag in diagnostics}
        assert "COV603" in codes


def test_coverage_cli_exits_clean_and_writes_json(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "coverage.json"
    code = main(["coverage", "sysklogd", "--opt", "2", "--json", str(out)])
    assert code == 0  # --fail-on defaults to never
    printed = capsys.readouterr().out
    assert "COV603" in printed
    document = json.loads(out.read_text())
    codes = {
        entry["code"]
        for target in document["targets"]
        for entry in target["diagnostics"]
    }
    assert {"COV601", "COV603"} <= codes


def test_coverage_cli_fail_on_warning(tmp_path):
    from repro.cli import main

    # Every workload has at least one unprotected branch today, so
    # lowering the gate to warnings must flip the exit code.
    assert main(["coverage", "sysklogd", "--fail-on", "warning"]) == 1
