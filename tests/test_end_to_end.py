"""End-to-end: compile → protect → run with IPDS → detect tampering.

These tests reproduce the paper's headline behaviours: the Figure 1
privilege-escalation attack is detected; clean runs never alarm (zero
false positives); detection implies a control-flow change.
"""

import pytest

from repro import TamperSpec, compile_program, monitored_run, unmonitored_run
from repro.interp import MemoryMap


def global_address(program, name):
    mm = MemoryMap(program.module)
    (var,) = [v for v in program.module.globals if v.name == name]
    return mm.global_addresses[var]


# ----------------------------------------------------------------------
# Figure 1: the motivating attack (privilege escalation, no code
# injection)
# ----------------------------------------------------------------------

FIGURE_1 = """
int user;       // 0 = admin, nonzero = unprivileged (strncmp-style)

void verify_user() {
  user = read_int();
}

void main() {
  verify_user();
  if (user == 0) {
    emit(100);  // admin path, first gate
  } else {
    emit(200);
  }
  int someinput = read_int();   // the vulnerable input
  if (user == 0) {
    emit(111);  // superuser privilege, second gate
  } else {
    emit(222);
  }
}
"""


@pytest.fixture(scope="module")
def fig1():
    return compile_program(FIGURE_1, "figure1.c")


def test_fig1_clean_unprivileged_run_no_alarm(fig1):
    result, ipds = monitored_run(fig1, inputs=[5, 0])
    assert result.outputs == [200, 222]
    assert not ipds.detected


def test_fig1_clean_admin_run_no_alarm(fig1):
    result, ipds = monitored_run(fig1, inputs=[0, 0])
    assert result.outputs == [100, 111]
    assert not ipds.detected


def test_fig1_privilege_escalation_detected(fig1):
    # Attacker is unprivileged (user=5); the second input overflows
    # into `user`, flipping it to 0 before the second gate.
    address = global_address(fig1, "user")
    tamper = TamperSpec("read", 2, address, 0)
    result, ipds = monitored_run(fig1, inputs=[5, 1337], tamper=tamper)
    # The attack succeeds at the program level (gate 2 grants admin) …
    assert result.outputs == [200, 111]
    # … but the IPDS flags the infeasible path.
    assert ipds.detected
    (alarm,) = ipds.alarms
    assert alarm.function_name == "main"


def test_fig1_reverse_escalation_also_detected(fig1):
    # Admin demoted mid-run is just as infeasible.
    address = global_address(fig1, "user")
    tamper = TamperSpec("read", 2, address, 7)
    result, ipds = monitored_run(fig1, inputs=[0, 1], tamper=tamper)
    assert result.outputs == [100, 222]
    assert ipds.detected


def test_fig1_tamper_matching_original_value_undetected(fig1):
    # Tampering that writes back the same value changes nothing: no
    # control-flow change, no alarm (and that is correct behaviour —
    # §6: "not designed to handle" no-change cases).
    address = global_address(fig1, "user")
    tamper = TamperSpec("read", 2, address, 5)
    result, ipds = monitored_run(fig1, inputs=[5, 1], tamper=tamper)
    assert result.outputs == [200, 222]
    assert not ipds.detected


def test_fig1_halt_on_alarm_stops_checking(fig1):
    address = global_address(fig1, "user")
    tamper = TamperSpec("read", 2, address, 0)
    _, ipds = monitored_run(
        fig1, inputs=[5, 1], tamper=tamper, halt_on_alarm=True
    )
    assert len(ipds.alarms) == 1


# ----------------------------------------------------------------------
# Figure 3.a running example, dynamically
# ----------------------------------------------------------------------

FIGURE_3A = """
int x;
int y;
void main() {
  x = read_int();
  y = read_int();
  while (read_int()) {
    if (y < 5) { emit(1); }
    if (x > 10) { x = read_int(); }
    else { y = read_int(); }
    if (y < 10) { emit(2); }
  }
}
"""


def test_fig3a_clean_loop_no_alarm():
    program = compile_program(FIGURE_3A)
    inputs = [3, 2, 1, 7, 1, 4, 1, 12, 0]
    result, ipds = monitored_run(program, inputs=inputs)
    assert result.ok
    assert not ipds.detected


def test_fig3a_tampering_y_between_checks_detected():
    # y=2 initially: BR1 taken (y<5) predicts BR5 taken (y<10).  Sweep
    # tamper points over the first iterations; every control-flow
    # divergence caused by corrupting y must be caught by the y-branch
    # correlations, at least once.
    program = compile_program(FIGURE_3A)
    address = global_address(program, "y")
    inputs = [20, 2, 1, 99, 1, 98, 0]
    clean = unmonitored_run(program, inputs=inputs)
    changed_count = detected_count = 0
    for step in range(10, min(clean.steps, 160), 5):
        tamper = TamperSpec("step", step, address, 50)
        result, ipds = monitored_run(program, inputs=inputs, tamper=tamper)
        if result.branch_trace != clean.branch_trace:
            changed_count += 1
            detected_count += int(ipds.detected)
    assert changed_count > 0
    assert detected_count > 0


# ----------------------------------------------------------------------
# Zero false positives on assorted clean programs
# ----------------------------------------------------------------------

CLEAN_PROGRAMS = [
    # Nested loops with correlated bounds.
    """
    int n;
    void main() {
      n = read_int();
      for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < i; j = j + 1) { emit(i * j); }
      }
    }
    """,
    # Repeated checks of an unchanging flag.
    """
    int flag;
    void main() {
      flag = read_int();
      for (int i = 0; i < 8; i = i + 1) {
        if (flag < 3) { emit(1); } else { emit(2); }
      }
    }
    """,
    # Pointer writes that the analysis must treat as kills.
    """
    int a; int b;
    void main() {
      a = read_int();
      int *p = &a;
      if (a < 10) { emit(1); }
      *p = read_int();
      if (a < 10) { emit(2); }
    }
    """,
    # Calls that clobber globals between checks.
    """
    int g;
    void scramble() { g = read_int(); }
    void main() {
      g = read_int();
      if (g == 0) { emit(1); }
      scramble();
      if (g == 0) { emit(2); }
    }
    """,
    # Recursion with checked parameters.
    """
    int depth;
    int walk(int n) {
      if (n < 1) { return 0; }
      depth = depth + 1;
      return walk(n - 1) + 1;
    }
    void main() { emit(walk(read_int())); }
    """,
]


@pytest.mark.parametrize("source", CLEAN_PROGRAMS)
@pytest.mark.parametrize(
    "inputs",
    [[0], [1], [5], [9], [10], [100], [-3], [2, 7], [11, 0], [3, 3, 3]],
)
def test_zero_false_positives(source, inputs):
    program = compile_program(source)
    result, ipds = monitored_run(program, inputs=inputs)
    assert not ipds.detected, [str(a) for a in ipds.alarms]


def test_detection_implies_control_flow_change():
    # Sweep many tamper points/values on Figure 1; every alarm must
    # coincide with a trace divergence (soundness).
    program = compile_program(FIGURE_1)
    address = global_address(program, "user")
    inputs = [5, 1]
    clean = unmonitored_run(program, inputs=inputs)
    for value in (-2, 0, 1, 5, 99):
        for trigger in (1, 2):
            tamper = TamperSpec("read", trigger, address, value)
            result, ipds = monitored_run(program, inputs=inputs, tamper=tamper)
            if ipds.detected:
                assert result.branch_trace != clean.branch_trace
