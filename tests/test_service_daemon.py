"""End-to-end tests for the ``repro serve`` daemon.

A real daemon on a real unix socket, driven by the blocking client:
concurrent mixed-workload sessions must produce alarms, outcome records
and forensics byte-identical to the serial campaign path, with the
compiled-table cache shared across sessions.
"""

import json
import threading

import pytest

from repro.attacks.campaign import run_attack_detailed
from repro.forensics import reports_to_json
from repro.pipeline import compile_program_cached
from repro.service import DetectionDaemon, ServeClient
from repro.service.protocol import ProtocolError
from repro.workloads.registry import get_workload

FIGURE1 = """
int user;
void main() {
  user = read_int();
  if (user == 0) { emit(100); } else { emit(200); }
  int someinput = read_int();
  if (user == 0) { emit(111); } else { emit(222); }
}
"""

#: 4 workloads x 3 indices = 12 concurrent sessions; includes the
#: pinned detected attacks telnetd#1, wu-ftpd#7 and atftpd#3.
MIXED_WORKLOADS = {
    "telnetd": [0, 1, 2],
    "wu-ftpd": [5, 6, 7],
    "atftpd": [2, 3, 4],
    "httpd": [0, 1, 2],
}


@pytest.fixture()
def daemon(tmp_path):
    instance = DetectionDaemon(
        socket_path=str(tmp_path / "repro.sock"),
        max_workers=8,
        quarantine_dir=str(tmp_path / "quarantine"),
    )
    thread = threading.Thread(target=instance.run, daemon=True)
    thread.start()
    assert instance.wait_ready(10)
    yield instance
    if not instance._stop.is_set():
        with ServeClient(socket_path=instance.socket_path) as client:
            client.shutdown()
    thread.join(10)
    assert not thread.is_alive()


def _serial_expectations():
    expected = {}
    for name, indices in MIXED_WORKLOADS.items():
        workload = get_workload(name)
        program = compile_program_cached(workload.source, name, 0)
        for index in indices:
            execution = run_attack_detailed(
                program, workload, index, forensics=True
            )
            expected[(name, index)] = execution
    return expected


def test_concurrent_sessions_byte_identical_to_serial(daemon):
    expected = _serial_expectations()
    with ServeClient(socket_path=daemon.socket_path) as client:
        submitted = {}
        for name, indices in MIXED_WORKLOADS.items():
            for index in indices:
                sid = client.submit(
                    {
                        "mode": "attack",
                        "workload": name,
                        "attack_index": index,
                        "forensics": True,
                    }
                )
                submitted[sid] = (name, index)
        assert len(submitted) == 12

        results = client.results(list(submitted))
        detected = 0
        for sid, key in submitted.items():
            name, _index = key
            serial = expected[key]
            result = results[sid]
            assert result["outcome"] == serial.outcome.to_record(name), key
            assert result["alarms"] == list(serial.outcome.alarms), key
            if serial.outcome.detected:
                detected += 1
                assert result["state"] == "alarmed"
                assert result["forensics"] == reports_to_json(serial.reports)
            else:
                assert result["state"] == "completed"
        assert detected >= 3

        metrics = client.metrics()
        # 12 sessions over 4 distinct programs: the shared table cache
        # must have absorbed the rest.
        assert metrics["compile_cache"]["hits"] >= 8
        assert metrics["compile_cache"]["hit_rate"] > 0
        assert metrics["sessions"]["alarmed"] == detected
        assert metrics["counters"]["serve.submitted"] == 12
        assert metrics["steps_per_second"] >= 0
        client.shutdown()


def test_alarm_stream_and_sessions_listing(daemon):
    with ServeClient(socket_path=daemon.socket_path) as client:
        sid = client.submit(
            {"mode": "attack", "workload": "telnetd", "attack_index": 1}
        )
        result = client.result(sid)
        assert result["state"] == "alarmed"
        events = client.events(sid)
        kinds = [message["event"] for message in events]
        assert "state" in kinds
        assert "alarm" in kinds
        alarm_events = [m for m in events if m["event"] == "alarm"]
        assert [m["alarm"] for m in alarm_events] == result["alarms"]

        listing = {entry["session"]: entry for entry in client.sessions()}
        assert listing[sid]["state"] == "alarmed"
        assert listing[sid]["program"] == "telnetd"

        assert client.reap(sid) is True
        assert client.reap(sid) is False  # already gone
        assert all(
            entry["session"] != sid for entry in client.sessions()
        )
        client.shutdown()


def test_kill_policy_kills_only_the_alarmed_session(daemon):
    with ServeClient(socket_path=daemon.socket_path) as client:
        doomed = client.submit(
            {"mode": "attack", "workload": "telnetd", "attack_index": 1},
            policy="kill-session",
        )
        bystander = client.submit(
            {"mode": "attack", "workload": "telnetd", "attack_index": 0},
            policy="kill-session",
        )
        results = client.results([doomed, bystander])
        assert results[doomed]["state"] == "killed"
        assert results[doomed]["policy_actions"][0]["action"] == "kill-session"
        assert results[bystander]["state"] == "completed"
        # The daemon itself survived both.
        assert client.hello()["protocol"] == 1
        client.shutdown()


def test_quarantine_policy_over_the_wire(daemon, tmp_path):
    with ServeClient(socket_path=daemon.socket_path) as client:
        sid = client.submit(
            {
                "mode": "attack",
                "workload": "atftpd",
                "attack_index": 3,
                "forensics": True,
            },
            policy="quarantine",
        )
        result = client.result(sid)
        assert result["state"] == "alarmed"
        quarantined = [
            action
            for action in result["policy_actions"]
            if action["action"] == "quarantine"
        ]
        assert len(quarantined) == 1
        trace_path = quarantined[0]["path"]

        # The quarantined trace replays to the identical alarms —
        # through the daemon itself this time.
        replay_sid = client.submit(
            {
                "mode": "replay",
                "workload": "atftpd",
                "trace_text": open(trace_path, encoding="utf-8").read(),
            }
        )
        replayed = client.result(replay_sid)
        assert replayed["state"] == "alarmed"
        assert replayed["alarms"] == result["alarms"]
        client.shutdown()


def test_inline_source_and_explicit_tamper(daemon):
    from repro.interp import GLOBAL_BASE

    with ServeClient(socket_path=daemon.socket_path) as client:
        clean = client.submit(
            {
                "mode": "run",
                "source": FIGURE1,
                "source_name": "figure1",
                "inputs": [5, 1],
            }
        )
        tampered = client.submit(
            {
                "mode": "attack",
                "source": FIGURE1,
                "source_name": "figure1",
                "inputs": [5, 1],
                "tamper": {
                    "trigger_kind": "read",
                    "trigger": 2,
                    "address": hex(GLOBAL_BASE),
                    "value": 0,
                },
            }
        )
        results = client.results([clean, tampered])
        assert results[clean]["state"] == "completed"
        assert results[clean]["outputs"] == [200, 222]
        assert results[tampered]["state"] == "alarmed"
        assert results[tampered]["tamper_fired"] is True
        client.shutdown()


def test_protocol_errors_do_not_kill_the_daemon(daemon):
    with ServeClient(socket_path=daemon.socket_path) as client:
        with pytest.raises(ProtocolError):
            client._request("no-such-op")
        with pytest.raises(ProtocolError):
            client.submit({"mode": "attack", "workload": "telnetd"})
        with pytest.raises(ProtocolError):
            client.submit({"mode": "run", "workload": "telnetd", "bogus": 1})
        # Daemon never reads files on a client's behalf.
        sid = client.submit({"mode": "run", "workload": "/etc/hostname"})
        assert client.result(sid)["state"] == "failed"
        # Raw garbage on the wire is answered with an error event.
        client._sock.sendall(b"not json\n")
        message = client.wait_for(lambda m: m.get("event") == "error")
        assert "bad request line" in message["error"]
        assert client.hello()["protocol"] == 1
        assert client.kill("s999") is False
        client.shutdown()


def test_metrics_prometheus_format_and_histograms(daemon):
    import time

    from repro.observability import validate_exposition

    with ServeClient(socket_path=daemon.socket_path) as client:
        sid = client.submit(
            {"mode": "attack", "workload": "telnetd", "attack_index": 1}
        )
        assert client.result(sid)["state"] == "alarmed"

        # Session telemetry folds into the daemon registry on a loop
        # callback that races the next request: poll until it lands.
        for _ in range(200):
            metrics = client.metrics()
            if "histograms" in metrics:
                break
            time.sleep(0.01)
        assert metrics["uptime_monotonic_seconds"] > 0
        histograms = metrics["histograms"]
        assert histograms["session.wall_seconds"]["count"] == 1
        assert histograms["session.compile_seconds"]["count"] == 1
        assert histograms["serve.queue_wait_seconds"]["count"] == 1
        assert histograms["session.steps_per_sec"]["count"] == 1

        text = client.metrics_prometheus()
        assert validate_exposition(text) == []
        assert "repro_serve_submitted_total 1" in text
        assert 'repro_session_wall_seconds_bucket{le="+Inf"} 1' in text

        # Unknown formats are protocol errors; the daemon survives.
        with pytest.raises(ProtocolError):
            client._request("metrics", format="xml")
        assert client.hello()["protocol"] == 1
        client.shutdown()


def test_metrics_payload_zero_uptime_guard(daemon):
    import time

    daemon._started = time.monotonic() + 3600  # clock not yet advanced
    payload = daemon.metrics_payload()
    assert payload["uptime_monotonic_seconds"] == 0.0
    assert payload["steps_per_second"] == 0.0


def test_client_supplied_trace_context_parents_the_session(daemon):
    from repro.observability import Tracer

    client_tracer = Tracer(service="edge-client")
    with client_tracer.span("client-request"):
        context = client_tracer.current_context()

    with ServeClient(socket_path=daemon.socket_path) as client:
        traced = client.submit(
            {"mode": "attack", "workload": "telnetd", "attack_index": 1},
            trace=context.to_dict(),
        )
        plain = client.submit(
            {"mode": "attack", "workload": "telnetd", "attack_index": 0}
        )
        results = client.results([traced, plain])
        # The session joined the client's trace, not a daemon-local one.
        assert results[traced]["trace"]["trace_id"] == client_tracer.trace_id
        # Untraced submissions keep the historical result shape.
        assert "trace" not in results[plain]
        client.shutdown()


def test_daemon_trace_out_writes_one_connected_tree(tmp_path):
    from repro.observability import validate_chrome_trace

    trace_path = tmp_path / "daemon-trace.json"
    instance = DetectionDaemon(
        socket_path=str(tmp_path / "traced.sock"),
        max_workers=2,
        trace_out=str(trace_path),
    )
    thread = threading.Thread(target=instance.run, daemon=True)
    thread.start()
    assert instance.wait_ready(10)
    with ServeClient(socket_path=instance.socket_path) as client:
        sid = client.submit(
            {"mode": "attack", "workload": "telnetd", "attack_index": 1}
        )
        result = client.result(sid)
        assert result["state"] == "alarmed"
        assert result["trace"]["trace_id"] == instance.tracer.trace_id
        client.shutdown()
    thread.join(10)
    assert not thread.is_alive()

    document = json.loads(trace_path.read_text())
    assert validate_chrome_trace(document) == []
    names = {event["name"] for event in document["traceEvents"]}
    assert {"serve", "session", "session.compile", "session.attack"} <= names


def test_cli_serve_smoke(tmp_path, capsys):
    """``repro serve`` through the CLI entry point (in-process)."""
    from repro.cli import main

    socket_path = str(tmp_path / "cli.sock")
    rc_box = {}

    def serve():
        rc_box["rc"] = main(
            ["serve", "--socket", socket_path, "--max-workers", "2"]
        )

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    with ServeClient(socket_path=socket_path) as client:
        sid = client.submit(
            {"mode": "attack", "workload": "telnetd", "attack_index": 1}
        )
        assert client.result(sid)["state"] == "alarmed"
        client.shutdown()
    thread.join(10)
    assert rc_box["rc"] == 0
