"""Tests for the variable liveness analysis."""


from repro.analysis import VariableLiveness
from repro.ir import Store, lower_program
from repro.lang import parse_program


def liveness_for(source, fn_name="main"):
    module = lower_program(parse_program(source))
    from repro.analysis import analyze_aliases

    analyze_aliases(module)
    fn = module.function(fn_name)
    return module, fn, VariableLiveness(fn, module)


def store_positions(fn, var_name):
    return [
        (block.label, idx)
        for block in fn.blocks
        for idx, instruction in enumerate(block.instructions)
        if isinstance(instruction, Store) and instruction.var.name == var_name
    ]


def var_named(fn_or_module, name):
    candidates = getattr(fn_or_module, "frame_variables", None)
    if candidates is None:
        candidates = fn_or_module.globals
    for var in candidates:
        if var.name == name:
            return var
    raise AssertionError(name)


def test_store_then_load_keeps_live():
    module, fn, live = liveness_for("void main() { int x = 1; emit(x); }")
    x = var_named(fn, "x")
    ((label, idx),) = store_positions(fn, "x")
    assert x in live.live_after(label, idx)


def test_store_never_read_is_dead():
    module, fn, live = liveness_for("void main() { int x = 1; emit(2); }")
    x = var_named(fn, "x")
    ((label, idx),) = store_positions(fn, "x")
    assert x not in live.live_after(label, idx)


def test_overwritten_before_read_is_dead():
    module, fn, live = liveness_for(
        "void main() { int x = 1; x = 2; emit(x); }"
    )
    x = var_named(fn, "x")
    first, second = sorted(store_positions(fn, "x"), key=lambda p: p[1])
    assert x not in live.live_after(*first)
    assert x in live.live_after(*second)


def test_live_through_one_branch_arm():
    module, fn, live = liveness_for(
        """
        void main() {
          int x = 1;
          if (read_int()) { emit(x); } else { emit(0); }
        }
        """
    )
    x = var_named(fn, "x")
    ((label, idx),) = store_positions(fn, "x")
    # Some path reads x: live.
    assert x in live.live_after(label, idx)


def test_loop_carried_liveness():
    module, fn, live = liveness_for(
        """
        void main() {
          int s = 0;
          while (read_int()) { s = s + 1; }
          emit(s);
        }
        """
    )
    s = var_named(fn, "s")
    for position in store_positions(fn, "s"):
        assert s in live.live_after(*position)


def test_globals_live_at_return():
    module, fn, live = liveness_for("int g; void main() { g = 5; }")
    g = var_named(module, "g")
    ((label, idx),) = store_positions(fn, "g")
    assert g in live.live_after(label, idx)


def test_user_call_keeps_address_taken_and_globals_live():
    module, fn, live = liveness_for(
        """
        int g;
        void peek(int *p) { emit(*p); emit(g); }
        void main() {
          int x = 7;
          peek(&x);
        }
        """
    )
    x = var_named(fn, "x")
    g = var_named(module, "g")
    ((label, idx),) = store_positions(fn, "x")
    assert x in live.live_after(label, idx)
    # g also live across the call path.
    assert g in live.live_before(label, idx) or g in live.live_after(label, idx)


def test_builtin_call_reads_nothing():
    module, fn, live = liveness_for(
        "void main() { int x = 1; emit(9); x = 2; emit(x); }"
    )
    x = var_named(fn, "x")
    first, second = sorted(store_positions(fn, "x"), key=lambda p: p[1])
    # emit(9) between the stores does not read x: first store dead.
    assert x not in live.live_after(*first)


def test_unknown_indirect_load_keeps_everything_live():
    module, fn, live = liveness_for(
        """
        void main() {
          int x = 1;
          int wild = read_int();
          emit(*wild);
        }
        """
    )
    x = var_named(fn, "x")
    ((label, idx),) = store_positions(fn, "x")
    assert x in live.live_after(label, idx)


def test_indirect_load_with_alias_set_keeps_targets_live():
    module, fn, live = liveness_for(
        """
        void main() {
          int x = 1;
          int y = 2;
          int *p = &x;
          emit(*p);
          emit(y);
        }
        """
    )
    x = var_named(fn, "x")
    ((label, idx),) = store_positions(fn, "x")
    assert x in live.live_after(label, idx)
