"""Regenerate the timing-equivalence golden file.

The goldens pin, for every workload at opt 0/1/2:

* exact-model cycle counts (baseline and IPDS-attached) plus the
  Figure-9 normalized-performance inputs from one deterministic
  execution, and
* the full outcome of two deterministic attacks — including the IPDS
  alarm strings — run through the standard campaign recipe.

They were captured from the pre-batching per-instruction delivery path
and must stay byte-identical under the batched event path, the
ring-buffer RUU/LSQ rewrite, and any future timing-stack optimisation:
``tests/test_timing_equivalence.py`` recomputes everything and compares.

Only regenerate when the timing model's *semantics* intentionally
change (a parameter change, a new Table 1 configuration) — never to
paper over a mismatch introduced by a performance refactor::

    PYTHONPATH=src python tests/golden/gen_timing_equivalence.py
"""

from __future__ import annotations

import json
import random
from pathlib import Path

from repro.attacks.campaign import run_attack
from repro.cpu.simulator import normalized_performance
from repro.pipeline import compile_program
from repro.workloads import all_workloads

#: Input-session scale for the timing execution (small: the goldens run
#: inside the test suite; equivalence is exact at any scale).
SCALE = 6
#: Attacks pinned per (workload, opt) cell.
ATTACKS = 3
#: Seed namespace; distinct from campaign/bench seeds on purpose.
SEED_PREFIX = "golden:"
OPT_LEVELS = (0, 1, 2)

GOLDEN_PATH = Path(__file__).resolve().parent / "timing_equivalence.json"


def timing_inputs(workload) -> list:
    return workload.make_inputs(
        random.Random(f"{SEED_PREFIX}{workload.name}"), SCALE
    )


def collect() -> dict:
    data: dict = {
        "scale": SCALE,
        "attacks": ATTACKS,
        "seed_prefix": SEED_PREFIX,
        "workloads": {},
    }
    for workload in all_workloads():
        per_opt = {}
        for opt in OPT_LEVELS:
            program = compile_program(workload.source, workload.name, opt)
            comparison = normalized_performance(
                program, timing_inputs(workload), workload.name
            )
            outcomes = []
            for index in range(ATTACKS):
                outcome = run_attack(
                    program, workload, index, seed_prefix=SEED_PREFIX
                )
                outcomes.append(
                    {
                        "index": outcome.index,
                        "trigger_read": outcome.trigger_read,
                        "address": outcome.address,
                        "target_label": outcome.target_label,
                        "value": outcome.value,
                        "fired": outcome.fired,
                        "control_flow_changed": outcome.control_flow_changed,
                        "detected": outcome.detected,
                        "clean_status": outcome.clean_status.value,
                        "attack_status": outcome.attack_status.value,
                        "alarms": list(outcome.alarms),
                    }
                )
            per_opt[f"opt{opt}"] = {
                "timing": {
                    "baseline_cycles": comparison.baseline_cycles,
                    "ipds_cycles": comparison.ipds_cycles,
                    "instructions": comparison.instructions,
                    # repr() keeps the float exact through JSON.
                    "avg_check_latency": repr(comparison.avg_check_latency),
                    "commit_stalls": comparison.commit_stalls,
                    "normalized_performance": repr(
                        comparison.normalized_performance
                    ),
                },
                "attacks": outcomes,
            }
        data["workloads"][workload.name] = per_opt
    return data


def main() -> None:
    GOLDEN_PATH.write_text(
        json.dumps(collect(), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
