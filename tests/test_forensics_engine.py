"""The explanation engine: alarm -> setter -> provenance join, and the
honest degradation modes when pieces are missing."""

import pytest

from repro.forensics import (
    CODE_DEGRADED,
    CODE_EXPLAINED,
    AlarmReport,
    explain_alarms,
    explain_ipds,
    render_reports_text,
    reports_to_json,
)
from repro.interp import STACK_BASE, MemoryMap
from repro.interp.interpreter import TamperSpec
from repro.pipeline import compile_program, monitored_run
from repro.runtime.flight_recorder import FlightRecorder
from repro.workloads import get_workload

INPUTS = [5, 0, 1, 2, 3, 1, 1, 1, 0]


@pytest.fixture(scope="module")
def telnetd():
    workload = get_workload("telnetd")
    return compile_program(workload.source, "telnetd", 1)


@pytest.fixture(scope="module")
def tamper(telnetd):
    layout = MemoryMap(telnetd.module).frame_layouts["main"]
    offset = next(
        o for v, o in layout.offsets.items() if v.name == "authenticated"
    )
    return TamperSpec("read", 6, STACK_BASE + offset, 1)


def _attack(program, tamper, depth=64):
    recorder = FlightRecorder(depth)
    _, ipds = monitored_run(
        program, inputs=INPUTS, tamper=tamper, flight_recorder=recorder
    )
    assert ipds.detected
    return ipds


def test_full_explanation(telnetd, tamper):
    ipds = _attack(telnetd, tamper)
    reports = explain_ipds(ipds)
    assert len(reports) == len(ipds.alarms)
    report = reports[0]
    assert report.explained
    assert report.setter is not None and report.transition is not None
    # The named provenance record is the compiler's record for exactly
    # the (setter pc, setter direction, alarm pc) BAT entry.
    expected = telnetd.tables.tables_for(report.function).provenance_for(
        report.setter.pc, report.setter.taken, report.alarm.pc
    )
    assert report.provenance == expected
    # The setter's transition installed the status the alarm contradicted.
    assert report.transition.after == report.alarm.expected
    chain = report.causal_chain()
    assert "set by event" in chain and "because" in chain


def test_renderings(telnetd, tamper):
    reports = explain_ipds(_attack(telnetd, tamper))
    text = render_reports_text(reports)
    assert "violated correlation" in text
    assert "fully explained" in text
    document = reports_to_json(reports)
    assert '"explained": 1' in document
    diag = reports[0].to_diagnostic()
    assert diag.code == CODE_EXPLAINED
    assert diag.pass_name == "forensics"


def test_depth_one_degrades_with_eviction_note(telnetd, tamper):
    """With a 1-deep ring the setter is long gone: the report must list
    compile-time candidates and advise raising the depth, not guess."""
    ipds = _attack(telnetd, tamper, depth=1)
    report = explain_ipds(ipds)[0]
    assert not report.explained
    assert report.setter is None
    assert report.candidates, "must fall back to compile-time candidates"
    wanted = {"T": "SET_T", "NT": "SET_NT"}[report.expected]
    assert all(p.action == wanted for p in report.candidates)
    assert any("--flight-recorder-depth" in note for note in report.notes)
    assert report.to_diagnostic().code == CODE_DEGRADED
    assert "candidates" in report.causal_chain()


def test_no_recorder_degrades_with_note(telnetd, tamper):
    _, ipds = monitored_run(telnetd, inputs=INPUTS, tamper=tamper)
    assert ipds.detected
    reports = explain_alarms(telnetd.tables, None, ipds.alarms)
    assert all(not r.explained for r in reports)
    assert any("--forensics" in note for r in reports for note in r.notes)


def test_no_alarms_renders_empty():
    assert render_reports_text([]) == "no alarms"


def test_report_types_are_frozen(telnetd, tamper):
    report = explain_ipds(_attack(telnetd, tamper))[0]
    assert isinstance(report, AlarmReport)
    with pytest.raises(Exception):
        report.function = "other"
