"""Golden snapshot for the SARIF emitter.

The SARIF output is deliberately deterministic — sorted keys, sorted
diagnostics, fixed tool metadata, no timestamps — so CI artifact diffs
are meaningful.  This test pins the exact bytes for a fixed diagnostic
list; if the format changes intentionally, update the golden below.
"""

import json

from repro.staticcheck import (
    DiagnosticSink,
    diagnostics_to_sarif,
    sarif_report,
    write_output,
)

GOLDEN = """\
{
  "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
  "runs": [
    {
      "results": [
        {
          "level": "warning",
          "locations": [
            {
              "logicalLocations": [
                {
                  "fullyQualifiedName": "main/bb2"
                }
              ],
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "figure1.c"
                }
              }
            }
          ],
          "message": {
            "text": "the taken direction is infeasible for every value reaching this branch"
          },
          "properties": {
            "branchPc": 4194332
          },
          "ruleId": "DEAD403",
          "ruleIndex": 1
        },
        {
          "level": "error",
          "locations": [
            {
              "logicalLocations": [
                {
                  "fullyQualifiedName": "main/bb4"
                }
              ],
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "figure1.c"
                }
              }
            }
          ],
          "message": {
            "text": "action T fired on (bb1, T) predicts branch bb4 but is not provable on all feasible paths: value of @v.0 at the check is [1, 9], not within the claimed outcome set <0"
          },
          "properties": {
            "branchPc": 4194336
          },
          "ruleId": "COR205",
          "ruleIndex": 0
        }
      ],
      "tool": {
        "driver": {
          "name": "repro-staticcheck",
          "rules": [
            {
              "defaultConfiguration": {
                "level": "error"
              },
              "id": "COR205",
              "shortDescription": {
                "text": "BAT action not provable on all feasible paths"
              }
            },
            {
              "defaultConfiguration": {
                "level": "warning"
              },
              "id": "DEAD403",
              "shortDescription": {
                "text": "branch direction statically infeasible"
              }
            }
          ],
          "version": "1.0.0"
        }
      }
    }
  ],
  "version": "2.1.0"
}"""


def fixed_diagnostics():
    sink = DiagnosticSink("correlation-audit")
    sink.emit(
        "COR205",
        "action T fired on (bb1, T) predicts branch bb4 but is not "
        "provable on all feasible paths: value of @v.0 at the check is "
        "[1, 9], not within the claimed outcome set <0",
        function="main",
        block="bb4",
        pc=0x400020,
    )
    sink.emit(
        "DEAD403",
        "the taken direction is infeasible for every value reaching "
        "this branch",
        function="main",
        block="bb2",
        pc=0x40001C,
    )
    return sink.diagnostics


def test_sarif_golden_snapshot():
    assert (
        diagnostics_to_sarif(fixed_diagnostics(), artifact="figure1.c")
        == GOLDEN
    )


def test_sarif_is_deterministic():
    first = diagnostics_to_sarif(fixed_diagnostics(), artifact="a.c")
    second = diagnostics_to_sarif(list(reversed(fixed_diagnostics())), "a.c")
    assert first == second


def test_sarif_report_one_run_per_target():
    diags = fixed_diagnostics()
    log = json.loads(
        sarif_report([("telnetd@opt0", diags), ("ftpd@opt0", [])])
    )
    assert log["version"] == "2.1.0"
    assert len(log["runs"]) == 2
    first, second = log["runs"]
    uri = first["results"][0]["locations"][0]["physicalLocation"][
        "artifactLocation"
    ]["uri"]
    assert uri == "telnetd@opt0"
    assert second["results"] == []
    assert second["tool"]["driver"]["rules"] == []


def test_write_output_to_file_and_stdout(tmp_path, capsys):
    path = tmp_path / "out.sarif"
    write_output("payload", str(path))
    assert path.read_text() == "payload\n"
    write_output("payload", "-")
    assert capsys.readouterr().out == "payload\n"
