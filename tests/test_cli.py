"""Tests for the command-line interface."""

import pytest

from repro.cli import main

FIGURE1 = """
int user;
void main() {
  user = read_int();
  if (user == 0) { emit(100); } else { emit(200); }
  int someinput = read_int();
  if (user == 0) { emit(111); } else { emit(222); }
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "figure1.c"
    path.write_text(FIGURE1)
    return str(path)


def test_compile_dumps_tables(source_file, capsys):
    assert main(["compile", source_file]) == 0
    out = capsys.readouterr().out
    assert "tables for main" in out
    assert "BCV" in out
    assert "hash trials" in out


def test_compile_with_ir(source_file, capsys):
    assert main(["compile", source_file, "--ir"]) == 0
    out = capsys.readouterr().out
    assert "func main(" in out
    assert "br " in out


def test_run_clean(source_file, capsys):
    assert main(["run", source_file, "--inputs", "5 1"]) == 0
    out = capsys.readouterr().out
    assert "outputs: [200, 222]" in out
    assert "alarms : none" in out


def test_run_detects_nothing_on_admin(source_file, capsys):
    assert main(["run", source_file, "--inputs", "0,1"]) == 0
    out = capsys.readouterr().out
    assert "[100, 111]" in out


def test_attack_detected_exit_code(source_file, capsys):
    from repro.interp import GLOBAL_BASE

    rc = main(
        [
            "attack",
            source_file,
            "--inputs",
            "5 1",
            "--trigger",
            "2",
            "--address",
            hex(GLOBAL_BASE),
            "--value",
            "0",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 2
    assert "DETECTED" in out
    assert "control flow changed: True" in out


def test_attack_noop_value(source_file, capsys):
    from repro.interp import GLOBAL_BASE

    rc = main(
        [
            "attack",
            source_file,
            "--inputs",
            "5 1",
            "--trigger",
            "2",
            "--address",
            hex(GLOBAL_BASE),
            "--value",
            "5",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "control flow changed: False" in out


def test_campaign_small(capsys):
    assert main(["campaign", "sysklogd", "--attacks", "5"]) == 0
    out = capsys.readouterr().out
    assert "workload sysklogd" in out
    assert "detected of changed" in out


def test_timing_small(capsys):
    assert main(["timing", "telnetd", "--scale", "2"]) == 0
    out = capsys.readouterr().out
    assert "normalized perf" in out


def test_record_and_replay_clean(source_file, tmp_path, capsys):
    trace = str(tmp_path / "trace.jsonl")
    assert main(["record", source_file, "--inputs", "5 1", "--out", trace]) == 0
    capsys.readouterr()
    assert main(["replay", source_file, trace]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_replay_flags_tampered_trace(source_file, tmp_path, capsys):
    # Record a tampered run's events manually, then replay offline.
    from repro import TamperSpec, compile_program
    from repro.interp import GLOBAL_BASE, run_program
    from repro.runtime.replay import TraceRecorder, dump_trace

    program = compile_program(FIGURE1)
    recorder = TraceRecorder()
    run_program(
        program.module,
        inputs=[5, 1],
        tamper=TamperSpec("read", 2, GLOBAL_BASE, 0),
        event_listeners=[recorder],
    )
    trace = tmp_path / "bad.jsonl"
    with open(trace, "w") as handle:
        dump_trace(recorder.events, handle)
    rc = main(["replay", source_file, str(trace)])
    out = capsys.readouterr().out
    assert rc == 2
    assert "ALARM" in out


def test_attack_trace_out_replays_with_identical_alarm(
    source_file, tmp_path, capsys
):
    """CLI round trip: tampered attack --trace-out, then offline replay.

    The offline verdict must be the *same alarm* the online IPDS raised
    — same function, pc, expected status, and event index.
    """
    from repro.interp import GLOBAL_BASE

    trace = str(tmp_path / "attack.jsonl")
    rc = main(
        [
            "attack", source_file,
            "--inputs", "5 1",
            "--trigger", "2",
            "--address", hex(GLOBAL_BASE),
            "--value", "0",
            "--trace-out", trace,
        ]
    )
    out = capsys.readouterr().out
    assert rc == 2
    online = next(
        line.split(": ", 1)[1]
        for line in out.splitlines()
        if line.startswith("DETECTED")
    )

    rc = main(["replay", source_file, trace])
    out = capsys.readouterr().out
    assert rc == 2
    offline = next(
        line.split(": ", 1)[1]
        for line in out.splitlines()
        if line.startswith("ALARM:")
    )
    assert offline == online


def test_run_trace_out_is_replayable(source_file, tmp_path, capsys):
    trace = str(tmp_path / "run.jsonl")
    assert main(
        ["run", source_file, "--inputs", "5 1", "--trace-out", trace]
    ) == 0
    capsys.readouterr()
    assert main(["replay", source_file, trace]) == 0
    assert "clean" in capsys.readouterr().out


def test_run_allow_unprotected_flag_accepted(source_file, capsys):
    assert main(
        ["run", source_file, "--inputs", "5 1", "--allow-unprotected"]
    ) == 0
    assert "alarms : none" in capsys.readouterr().out


def test_metrics_out_manifests_for_all_commands(source_file, tmp_path, capsys):
    import json

    from repro.interp import GLOBAL_BASE

    manifest = tmp_path / "m.json"

    def read_manifest():
        payload = json.loads(manifest.read_text())
        assert payload["manifest_version"] == 1
        assert payload["finished_at"] is not None
        assert "counters" in payload["metrics"]
        return payload

    assert main(
        ["run", source_file, "--inputs", "5 1", "--metrics-out", str(manifest)]
    ) == 0
    payload = read_manifest()
    assert payload["command"] == "run"
    assert payload["results"]["status"] == "ok"
    assert payload["metrics"]["counters"]["interp.steps"] > 0

    assert main(
        [
            "attack", source_file,
            "--inputs", "5 1",
            "--trigger", "2",
            "--address", hex(GLOBAL_BASE),
            "--value", "0",
            "--metrics-out", str(manifest),
        ]
    ) == 2
    payload = read_manifest()
    assert payload["command"] == "attack"
    assert payload["results"]["detected"] is True

    assert main(
        ["campaign", "sysklogd", "--attacks", "2",
         "--metrics-out", str(manifest)]
    ) == 0
    payload = read_manifest()
    assert payload["command"] == "campaign"
    assert payload["metrics"]["counters"]["campaign.attacks"] == 2

    assert main(
        ["timing", "telnetd", "--scale", "2", "--metrics-out", str(manifest)]
    ) == 0
    payload = read_manifest()
    assert payload["command"] == "timing"
    assert payload["results"]["instructions"] > 0
    capsys.readouterr()


def test_metrics_out_jsonl_appends(source_file, tmp_path, capsys):
    import json

    log = tmp_path / "runs.jsonl"
    for _ in range(2):
        assert main(
            ["run", source_file, "--inputs", "5 1",
             "--metrics-out", str(log)]
        ) == 0
    capsys.readouterr()
    lines = log.read_text().splitlines()
    assert len(lines) == 2
    assert all(json.loads(line)["command"] == "run" for line in lines)


def test_campaign_trace_out_outcome_records(tmp_path, capsys):
    import json

    outcomes = tmp_path / "outcomes.jsonl"
    assert main(
        ["campaign", "sysklogd", "--attacks", "3",
         "--trace-out", str(outcomes)]
    ) == 0
    capsys.readouterr()
    records = [
        json.loads(line) for line in outcomes.read_text().splitlines()
    ]
    assert len(records) == 3
    assert [record["index"] for record in records] == [0, 1, 2]
    assert all(record["workload"] == "sysklogd" for record in records)
    assert {"detected", "control_flow_changed", "target"} <= records[0].keys()


# -- audit / lint ------------------------------------------------------

CLAMPED = """
int v;
void main() {
    v = read_int();
    if (v < 0) { v = 0; }
    if (v < 0) { emit(1); } else { emit(2); }
}
"""


@pytest.fixture()
def clamped_file(tmp_path):
    path = tmp_path / "clamped.c"
    path.write_text(CLAMPED)
    return str(path)


def test_audit_clean_file_exits_zero(source_file, capsys):
    assert main(["audit", source_file]) == 0
    out = capsys.readouterr().out
    assert "figure1.c@opt0" in out
    assert "0 error(s), 0 warning(s)" in out


def test_audit_missing_file_is_tool_error(capsys):
    assert main(["audit", "/nonexistent/prog.c"]) == 2
    assert "error:" in capsys.readouterr().err


def test_audit_parse_error_is_tool_error(tmp_path, capsys):
    bad = tmp_path / "bad.c"
    bad.write_text("int int int {{{")
    assert main(["audit", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_audit_findings_exit_distinct_from_tool_error(
    source_file, capsys, monkeypatch
):
    # Freshly compiled tables audit clean, so inject a finding to pin
    # the "diagnostics found" (1) vs "tool error" (2) distinction.
    import repro.staticcheck as staticcheck

    sink_diag = staticcheck.Diagnostic(
        code="COR205",
        severity=staticcheck.Severity.ERROR,
        message="injected",
    )
    monkeypatch.setattr(
        staticcheck, "run_passes", lambda *a, **k: [sink_diag]
    )
    assert main(["audit", source_file]) == 1
    assert "COR205" in capsys.readouterr().out


def test_lint_warnings_gate_exit_code(clamped_file, capsys):
    assert main(["lint", clamped_file]) == 1
    out = capsys.readouterr().out
    assert "DEAD403" in out
    assert main(["lint", clamped_file, "--fail-on", "never"]) == 0
    assert main(["lint", clamped_file, "--fail-on", "error"]) == 0


def test_audit_workload_target_and_reports(tmp_path, capsys):
    import json

    sarif = tmp_path / "audit.sarif"
    report = tmp_path / "audit.json"
    manifest = tmp_path / "m.json"
    assert main(
        [
            "audit", "telnetd",
            "--opt", "1",
            "--sarif", str(sarif),
            "--json", str(report),
            "--metrics-out", str(manifest),
        ]
    ) == 0
    capsys.readouterr()
    log = json.loads(sarif.read_text())
    assert log["version"] == "2.1.0"
    [run] = log["runs"]
    assert run["results"] == []
    payload = json.loads(report.read_text())
    assert payload["targets"][0]["name"] == "telnetd@opt1"
    record = json.loads(manifest.read_text())
    assert record["command"] == "audit"
    assert record["results"]["errors"] == 0
    assert "staticcheck.correlation-audit" in record["metrics"]["timers"]


def test_sarif_to_stdout(source_file, capsys):
    assert main(["audit", source_file, "--sarif", "-"]) == 0
    out = capsys.readouterr().out
    assert '"version": "2.1.0"' in out


def test_compile_check_flag(source_file, capsys):
    assert main(["compile", source_file, "--check"]) == 0
    assert "tables for main" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["campaign", "nginx"])


# -- predict / coverage --compare-opt -----------------------------------


def test_predict_emits_det_verdicts(source_file, capsys):
    assert main(["predict", source_file]) == 0
    out = capsys.readouterr().out
    assert "DET80" in out  # at least one verdict class reported
    assert "figure1.c@opt0" in out


def test_predict_workload_sarif_and_json(tmp_path, capsys):
    import json

    sarif = tmp_path / "predict.sarif"
    report = tmp_path / "predict.json"
    assert main(
        [
            "predict", "telnetd",
            "--opt", "2",
            "--sarif", str(sarif),
            "--json", str(report),
        ]
    ) == 0
    capsys.readouterr()
    log = json.loads(sarif.read_text())
    assert log["version"] == "2.1.0"
    [run] = log["runs"]
    rule_ids = {result["ruleId"] for result in run["results"]}
    assert rule_ids <= {"DET801", "DET802", "DET803"}
    assert rule_ids
    payload = json.loads(report.read_text())
    assert payload["targets"][0]["name"] == "telnetd@opt2"


def test_predict_never_gates_by_default(source_file):
    # Verdicts are notes — below every gating threshold.
    assert main(["predict", source_file]) == 0
    assert main(["predict", source_file, "--fail-on", "warning"]) == 0


def test_coverage_compare_opt_reports_monotonic_table(capsys):
    assert main(["coverage", "telnetd", "--compare-opt"]) == 0
    out = capsys.readouterr().out
    assert "== telnetd" in out
    assert "informational" in out  # the opt-1 row is not gated
    assert "vs opt2" in out  # per-opt delta column present
    assert "MONOTONICITY VIOLATION" not in out


def test_coverage_compare_opt_manifest(tmp_path, capsys):
    import json

    manifest = tmp_path / "m.json"
    assert main(
        ["coverage", "telnetd", "--compare-opt",
         "--metrics-out", str(manifest)]
    ) == 0
    capsys.readouterr()
    record = json.loads(manifest.read_text())
    assert record["command"] == "coverage"
    assert record["results"]["violations"] == 0


# -- forensics: explain / --forensics / bench-diff ----------------------


def _tampered_trace(source_file, tmp_path, capsys):
    from repro.interp import GLOBAL_BASE

    trace = str(tmp_path / "attack.jsonl")
    rc = main(
        [
            "attack", source_file,
            "--inputs", "5 1",
            "--trigger", "2",
            "--address", hex(GLOBAL_BASE),
            "--value", "0",
            "--trace-out", trace,
        ]
    )
    assert rc == 2
    capsys.readouterr()
    return trace


def test_explain_clean_trace_exits_zero(source_file, tmp_path, capsys):
    trace = str(tmp_path / "clean.jsonl")
    assert main(["record", source_file, "--inputs", "5 1", "--out", trace]) == 0
    capsys.readouterr()
    assert main(["explain", source_file, trace]) == 0
    assert "no alarms" in capsys.readouterr().out


def test_explain_tampered_trace_exits_one(source_file, tmp_path, capsys):
    trace = _tampered_trace(source_file, tmp_path, capsys)
    rc = main(["explain", source_file, trace])
    out = capsys.readouterr().out
    assert rc == 1
    assert "violated correlation" in out
    assert "causal chain" in out
    assert "fully explained" in out


def test_explain_missing_trace_is_tool_error(source_file, capsys):
    assert main(["explain", source_file, "/nonexistent.jsonl"]) == 2
    assert "error:" in capsys.readouterr().err


def test_explain_json_and_sarif(source_file, tmp_path, capsys):
    import json

    trace = _tampered_trace(source_file, tmp_path, capsys)
    report = tmp_path / "report.json"
    sarif = tmp_path / "report.sarif"
    rc = main([
        "explain", source_file, trace,
        "--json", str(report), "--sarif", str(sarif),
    ])
    assert rc == 1
    document = json.loads(report.read_text())
    assert document["tool"] == "repro-forensics"
    assert document["alarms"] >= 1
    assert document["alarms"] == document["explained"]
    assert document["reports"][0]["provenance"]["reason"] == "subsumption"
    runs = json.loads(sarif.read_text())["runs"]
    assert any(
        result["ruleId"] == "FOR501"
        for run in runs for result in run["results"]
    )


def test_attack_forensics_flag_and_report(source_file, tmp_path, capsys):
    import json

    from repro.interp import GLOBAL_BASE

    report = tmp_path / "forensics.json"
    rc = main(
        [
            "attack", source_file,
            "--inputs", "5 1",
            "--trigger", "2",
            "--address", hex(GLOBAL_BASE),
            "--value", "0",
            "--forensics",
            "--forensics-out", str(report),
        ]
    )
    out = capsys.readouterr().out
    assert rc == 2
    assert "forensics:" in out
    assert "violated correlation" in out
    document = json.loads(report.read_text())
    assert document["explained"] == document["alarms"] >= 1


def test_run_forensics_clean_reports_no_alarms(source_file, capsys):
    assert main(["run", source_file, "--inputs", "5 1", "--forensics"]) == 0
    out = capsys.readouterr().out
    assert "forensics:" in out
    assert "no alarms" in out


def test_campaign_forensics_summary(capsys):
    rc = main([
        "campaign", "telnetd", "--attacks", "3",
        "--forensics", "--flight-recorder-depth", "512",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "forensics:" in out


def test_bench_diff_subcommand(capsys):
    assert main(["bench-diff", "--require", "observer_overhead"]) == 0
    out = capsys.readouterr().out
    assert "0 regression(s)" in out


def test_bench_diff_missing_required_is_tool_error(tmp_path, capsys):
    rc = main([
        "bench-diff",
        "--baseline", str(tmp_path),
        "--require", "observer_overhead",
    ])
    assert rc == 2
