"""Tests for the command-line interface."""

import pytest

from repro.cli import main

FIGURE1 = """
int user;
void main() {
  user = read_int();
  if (user == 0) { emit(100); } else { emit(200); }
  int someinput = read_int();
  if (user == 0) { emit(111); } else { emit(222); }
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "figure1.c"
    path.write_text(FIGURE1)
    return str(path)


def test_compile_dumps_tables(source_file, capsys):
    assert main(["compile", source_file]) == 0
    out = capsys.readouterr().out
    assert "tables for main" in out
    assert "BCV" in out
    assert "hash trials" in out


def test_compile_with_ir(source_file, capsys):
    assert main(["compile", source_file, "--ir"]) == 0
    out = capsys.readouterr().out
    assert "func main(" in out
    assert "br " in out


def test_run_clean(source_file, capsys):
    assert main(["run", source_file, "--inputs", "5 1"]) == 0
    out = capsys.readouterr().out
    assert "outputs: [200, 222]" in out
    assert "alarms : none" in out


def test_run_detects_nothing_on_admin(source_file, capsys):
    assert main(["run", source_file, "--inputs", "0,1"]) == 0
    out = capsys.readouterr().out
    assert "[100, 111]" in out


def test_attack_detected_exit_code(source_file, capsys):
    from repro.interp import GLOBAL_BASE

    rc = main(
        [
            "attack",
            source_file,
            "--inputs",
            "5 1",
            "--trigger",
            "2",
            "--address",
            hex(GLOBAL_BASE),
            "--value",
            "0",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 2
    assert "DETECTED" in out
    assert "control flow changed: True" in out


def test_attack_noop_value(source_file, capsys):
    from repro.interp import GLOBAL_BASE

    rc = main(
        [
            "attack",
            source_file,
            "--inputs",
            "5 1",
            "--trigger",
            "2",
            "--address",
            hex(GLOBAL_BASE),
            "--value",
            "5",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "control flow changed: False" in out


def test_campaign_small(capsys):
    assert main(["campaign", "sysklogd", "--attacks", "5"]) == 0
    out = capsys.readouterr().out
    assert "workload sysklogd" in out
    assert "detected of changed" in out


def test_timing_small(capsys):
    assert main(["timing", "telnetd", "--scale", "2"]) == 0
    out = capsys.readouterr().out
    assert "normalized perf" in out


def test_record_and_replay_clean(source_file, tmp_path, capsys):
    trace = str(tmp_path / "trace.jsonl")
    assert main(["record", source_file, "--inputs", "5 1", "--out", trace]) == 0
    capsys.readouterr()
    assert main(["replay", source_file, trace]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_replay_flags_tampered_trace(source_file, tmp_path, capsys):
    # Record a tampered run's events manually, then replay offline.
    from repro import TamperSpec, compile_program
    from repro.interp import GLOBAL_BASE, run_program
    from repro.runtime.replay import TraceRecorder, dump_trace

    program = compile_program(FIGURE1)
    recorder = TraceRecorder()
    run_program(
        program.module,
        inputs=[5, 1],
        tamper=TamperSpec("read", 2, GLOBAL_BASE, 0),
        event_listeners=[recorder],
    )
    trace = tmp_path / "bad.jsonl"
    with open(trace, "w") as handle:
        dump_trace(recorder.events, handle)
    rc = main(["replay", source_file, str(trace)])
    out = capsys.readouterr().out
    assert rc == 2
    assert "ALARM" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["campaign", "nginx"])
