"""Tests for the Fig. 8 binary-size accounting."""

import pytest

from repro.correlation import (
    ACTION_BITS,
    BranchAction,
    FunctionTables,
    HashParams,
    ProgramTables,
    STATUS_BITS,
    summarize_sizes,
    table_sizes,
)
from repro.correlation.encoding import _pointer_bits
from repro.pipeline import compile_program


def make_tables(bits, bat):
    params = HashParams(1, 2, bits)
    pcs = []
    used = set()
    pc = 0x400000
    while len(pcs) < min(2, params.space):
        slot = params.slot(pc)
        if slot not in used:
            used.add(slot)
            pcs.append(pc)
        pc += 4
    return FunctionTables(
        function_name="f",
        hash_params=params,
        branch_pcs=tuple(pcs),
        bcv_slots=frozenset({params.slot(pcs[0])}),
        bat=bat,
    )


def test_pointer_bits():
    assert _pointer_bits(0) == 1
    assert _pointer_bits(1) == 1
    assert _pointer_bits(3) == 2
    assert _pointer_bits(7) == 3
    assert _pointer_bits(8) == 4


def test_bsv_is_two_bits_per_slot():
    tables = make_tables(4, {})
    sizes = table_sizes(tables)
    assert sizes.bsv_bits == STATUS_BITS * 16
    assert sizes.bcv_bits == 16
    assert sizes.hash_space == 16


def test_empty_bat_still_has_heads():
    tables = make_tables(3, {})
    sizes = table_sizes(tables)
    # Two head pointers per slot, pointer width 1 (nil only).
    assert sizes.bat_bits == 2 * 8 * 1
    assert sizes.action_entries == 0


def test_bat_entry_costs_slot_action_and_next():
    tables = make_tables(3, {})
    slot = tables.hash_params.slot(tables.branch_pcs[0])
    bat = {(slot, True): ((slot, BranchAction.SET_T),)}
    with_entry = make_tables(3, bat)
    sizes = table_sizes(with_entry)
    pointer = _pointer_bits(1)
    expected_entry = 3 + ACTION_BITS + pointer  # slot index + action + next
    assert sizes.bat_bits == 2 * 8 * pointer + expected_entry
    assert sizes.action_entries == 1


def test_total_bits_sums_components():
    tables = make_tables(4, {})
    sizes = table_sizes(tables)
    assert sizes.total_bits == sizes.bsv_bits + sizes.bcv_bits + sizes.bat_bits


def test_summary_averages_per_function():
    source = """
    int a;
    void one() { if (a < 1) { emit(1); } if (a < 2) { emit(2); } }
    void two() { emit(3); }
    void main() { one(); two(); }
    """
    program = compile_program(source)
    summary = summarize_sizes(program.tables)
    assert len(summary.per_function) == 3
    assert summary.avg_bsv_bits == pytest.approx(2 * summary.avg_bcv_bits)
    assert summary.avg_total_bits == pytest.approx(
        summary.avg_bsv_bits + summary.avg_bcv_bits + summary.avg_bat_bits
    )


def test_empty_program_summary():
    summary = summarize_sizes(ProgramTables())
    assert summary.avg_bsv_bits == 0.0
    assert summary.per_function == ()


def test_bat_dominates_on_real_code():
    source = """
    int x;
    void main() {
      while (read_int()) {
        if (x < 5) { emit(1); }
        if (x < 10) { emit(2); }
        if (x < 20) { emit(3); }
      }
    }
    """
    program = compile_program(source)
    summary = summarize_sizes(program.tables)
    assert summary.avg_bat_bits > summary.avg_bsv_bits > summary.avg_bcv_bits
