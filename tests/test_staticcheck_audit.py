"""Corruption tests for the correlation soundness auditor.

The auditor's job is to catch tables that break the paper's
zero-false-positive guarantee.  These tests compile small programs
whose branch correlations are *guaranteed live* (the predicted branch
always executes while the prediction is in the BSV), then corrupt the
tables one mutation at a time and assert the auditor flags every one.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.correlation.actions import BranchAction
from repro.correlation.hashing import HashParams
from repro.pipeline import compile_program
from repro.staticcheck import audit_image, audit_program, errors_in

# Two branches on the same unmodified global: both directions of the
# first branch imply the second, so the builder emits SET actions that
# are live on every path.
TWIN_TEMPLATE = """
int v;
void main() {{
    v = read_int();
    if (v {op} {bound}) {{ emit(1); }} else {{ emit(2); }}
    int x = read_int();
    if (v {op} {bound}) {{ emit(3); }} else {{ emit(4); }}
}}
"""

# The store to ``v`` on one path forces the builder to emit a SET_UN
# kill; deleting it leaves a stale prediction the auditor must reject.
KILL_SOURCE = """
int v;
void main() {
    v = read_int();
    if (v > 0) { emit(1); } else { emit(2); }
    int w = read_int();
    if (w > 5) { v = read_int(); emit(3); } else { emit(4); }
    if (v > 0) { emit(5); } else { emit(6); }
}
"""

OPS = ["==", "!=", "<", "<=", ">", ">="]


def twin_source(op: str = ">", bound: int = 3) -> str:
    return TWIN_TEMPLATE.format(op=op, bound=bound)


def set_entries(tables):
    """All (event key, index, entry) triples carrying a SET_T/SET_NT."""
    found = []
    for key, entries in tables.bat.items():
        for i, (target, action) in enumerate(entries):
            if action in (BranchAction.SET_T, BranchAction.SET_NT):
                found.append((key, i, (target, action)))
    return found


def flipped(action: BranchAction) -> BranchAction:
    return (
        BranchAction.SET_NT
        if action is BranchAction.SET_T
        else BranchAction.SET_T
    )


@pytest.mark.parametrize("opt", [0, 1])
def test_fresh_tables_audit_clean(opt):
    program = compile_program(twin_source(), opt_level=opt)
    assert audit_program(program) == []
    assert audit_image(program) == []


def test_twin_program_actually_correlates():
    # The corruption tests below are vacuous unless the builder emitted
    # SET actions for this shape; pin that it does.
    program = compile_program(twin_source())
    tables = program.tables.by_function["main"]
    assert set_entries(tables), tables.describe()


@pytest.mark.parametrize("opt", [0, 1])
def test_every_set_flip_is_flagged(opt):
    program = compile_program(twin_source(), opt_level=opt)
    tables = program.tables.by_function["main"]
    bat = dict(tables.bat)
    for key, index, (target, action) in set_entries(tables):
        original = bat[key]
        corrupt = list(original)
        corrupt[index] = (target, flipped(action))
        bat[key] = tuple(corrupt)
        tables.bat = bat
        try:
            errors = errors_in(audit_program(program))
            assert any(d.code == "COR205" for d in errors), (
                f"flip of {action.value} at {key} not flagged"
            )
        finally:
            bat[key] = original
            tables.bat = bat
    assert audit_program(program) == []  # restoration sanity


def test_deleting_a_kill_is_flagged():
    program = compile_program(KILL_SOURCE)
    tables = program.tables.by_function["main"]
    kills = [
        (key, i)
        for key, entries in tables.bat.items()
        for i, (_, action) in enumerate(entries)
        if action is BranchAction.SET_UN
    ]
    assert kills, "builder emitted no SET_UN kill for the clobbered path"
    bat = {
        key: tuple(
            entry
            for i, entry in enumerate(entries)
            if (key, i) not in kills
        )
        for key, entries in tables.bat.items()
    }
    tables.bat = {k: v for k, v in bat.items() if v}
    errors = errors_in(audit_program(program))
    assert any(d.code == "COR205" for d in errors)


@pytest.mark.parametrize("opt", [0, 1])
def test_every_bcv_bit_flip_is_flagged(opt):
    program = compile_program(twin_source(), opt_level=opt)
    tables = program.tables.by_function["main"]
    original = tables.bcv_slots
    for slot in range(tables.hash_params.space):
        tables.bcv_slots = original ^ {slot}
        try:
            diagnostics = audit_program(program)
            assert diagnostics, f"BCV flip of slot {slot} not flagged"
            codes = {d.code for d in diagnostics}
            # A flipped-on non-branch slot is an outright error; flips
            # on branch slots surface as dead-weight warnings.
            assert codes & {"COR202", "COR208", "COR209"}, codes
        finally:
            tables.bcv_slots = original
    assert audit_program(program) == []


def test_foreign_bat_source_slot_is_flagged():
    program = compile_program(twin_source())
    tables = program.tables.by_function["main"]
    bogus = tables.hash_params.space + 1
    some_target = next(iter(tables.bcv_slots))
    tables.bat = dict(tables.bat) | {
        (bogus, True): ((some_target, BranchAction.SET_UN),)
    }
    errors = errors_in(audit_program(program))
    assert any(d.code == "COR203" for d in errors)


def test_foreign_bat_target_slot_is_flagged():
    program = compile_program(twin_source())
    tables = program.tables.by_function["main"]
    bogus = tables.hash_params.space + 1
    key, _, _ = set_entries(tables)[0]
    bat = dict(tables.bat)
    bat[key] = bat[key] + ((bogus, BranchAction.SET_UN),)
    tables.bat = bat
    errors = errors_in(audit_program(program))
    assert any(d.code == "COR204" for d in errors)


def test_branch_pc_mismatch_is_flagged():
    program = compile_program(twin_source())
    tables = program.tables.by_function["main"]
    program.tables.by_function["main"] = dataclasses.replace(
        tables, branch_pcs=tables.branch_pcs[:-1]
    )
    errors = errors_in(audit_program(program))
    assert any(d.code == "COR210" for d in errors)


def test_degenerate_hash_params_are_flagged():
    program = compile_program(twin_source())
    tables = program.tables.by_function["main"]
    assert len(tables.branch_pcs) >= 2
    bad = HashParams(bits=0, shift1=1, shift2=1)  # space 1 < 2 branches
    program.tables.by_function["main"] = dataclasses.replace(
        tables, hash_params=bad
    )
    errors = errors_in(audit_program(program))
    assert any(d.code == "COR207" for d in errors)


def test_recomputed_hash_collision_is_flagged():
    program = compile_program(twin_source())
    tables = program.tables.by_function["main"]
    pcs = tables.branch_pcs
    bits = max(1, (len(pcs) - 1).bit_length())
    colliding = None
    for shift1 in range(1, 16):
        for shift2 in range(shift1, 16):
            params = HashParams(bits=bits, shift1=shift1, shift2=shift2)
            slots = [params.slot(pc) for pc in pcs]
            if len(set(slots)) < len(slots):
                colliding = params
                break
        if colliding:
            break
    assert colliding is not None, "no colliding parameters in search space"
    program.tables.by_function["main"] = dataclasses.replace(
        tables, hash_params=colliding
    )
    errors = errors_in(audit_program(program))
    assert any(d.code == "COR201" for d in errors)


# -- property tests: corruption is always caught ------------------------


@settings(max_examples=20, deadline=None)
@given(
    op=st.sampled_from(OPS),
    bound=st.integers(min_value=-8, max_value=8),
    opt=st.sampled_from([0, 1]),
)
def test_random_set_flips_always_flagged(op, bound, opt):
    program = compile_program(twin_source(op, bound), opt_level=opt)
    tables = program.tables.by_function["main"]
    assert audit_program(program) == []
    bat = dict(tables.bat)
    for key, index, (target, action) in set_entries(tables):
        original = bat[key]
        corrupt = list(original)
        corrupt[index] = (target, flipped(action))
        bat[key] = tuple(corrupt)
        tables.bat = bat
        try:
            assert any(
                d.code == "COR205" for d in audit_program(program)
            ), f"flip at {key} survived ({op} {bound}, opt {opt})"
        finally:
            bat[key] = original
            tables.bat = bat


@settings(max_examples=20, deadline=None)
@given(
    op=st.sampled_from(OPS),
    bound=st.integers(min_value=-8, max_value=8),
    slot_pick=st.integers(min_value=0, max_value=63),
)
def test_random_bcv_flips_always_flagged(op, bound, slot_pick):
    program = compile_program(twin_source(op, bound))
    tables = program.tables.by_function["main"]
    slot = slot_pick % tables.hash_params.space
    tables.bcv_slots = tables.bcv_slots ^ {slot}
    assert audit_program(program), f"BCV flip of slot {slot} survived"


# -- image audit --------------------------------------------------------


def test_image_audit_detects_missing_action_code(monkeypatch):
    program = compile_program(twin_source())
    import repro.staticcheck.audit as audit_mod

    pruned = {
        action: code
        for action, code in audit_mod._ACTION_CODES.items()
        if action is not BranchAction.SET_T
    }
    monkeypatch.setattr(audit_mod, "_ACTION_CODES", pruned)
    errors = errors_in(audit_image(program))
    assert any(d.code == "IMG303" for d in errors)


def test_image_audit_detects_decode_drift(monkeypatch):
    program = compile_program(twin_source())
    import repro.staticcheck.audit as audit_mod

    real_load = audit_mod.load_program

    def drifting_load(image):
        loaded, entries = real_load(image)
        name, tables = next(iter(loaded.by_function.items()))
        loaded.by_function[name] = dataclasses.replace(
            tables, bcv_slots=tables.bcv_slots ^ {0}
        )
        return loaded, entries

    monkeypatch.setattr(audit_mod, "load_program", drifting_load)
    errors = errors_in(audit_image(program))
    assert any(d.code == "IMG301" for d in errors)
