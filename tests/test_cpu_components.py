"""Unit tests for the timing-model components (caches, TLB, predictor,
parameters)."""

import pytest

from repro.cpu import (
    Cache,
    CacheParams,
    IPDSHardwareParams,
    MemoryHierarchy,
    ProcessorParams,
    TLB,
    TwoLevelPredictor,
)


# ----------------------------------------------------------------------
# Parameters (Table 1)
# ----------------------------------------------------------------------


def test_table1_defaults():
    p = ProcessorParams()
    assert p.clock_hz == 1_000_000_000
    assert p.fetch_queue == 32
    assert p.decode_width == p.issue_width == p.commit_width == 8
    assert p.ruu_size == 128
    assert p.lsq_size == 64
    assert p.l1i.size_bytes == 64 * 1024 and p.l1i.associativity == 2
    assert p.l1i.latency == 2 and p.l1i.block_bytes == 32
    assert p.l2.size_bytes == 512 * 1024 and p.l2.associativity == 4
    assert p.l2.latency == 10
    assert p.memory_first_chunk == 80
    assert p.memory_inter_chunk == 5
    assert p.tlb_miss_latency == 30


def test_ipds_buffer_defaults_match_table1():
    p = IPDSHardwareParams()
    assert p.bsv_stack_bits == 2 * 1024
    assert p.bcv_stack_bits == 1 * 1024
    assert p.bat_stack_bits == 32 * 1024
    assert p.table_access_latency == 1


def test_memory_latency_chunks():
    p = ProcessorParams()
    # 32-byte block over an 8-byte bus: 4 chunks.
    assert p.memory_latency(32) == 80 + 3 * 5
    assert p.memory_latency(8) == 80
    assert p.memory_latency(1) == 80


def test_cache_geometry():
    params = CacheParams(64 * 1024, 2, 32, 2)
    assert params.sets == 1024


# ----------------------------------------------------------------------
# Caches
# ----------------------------------------------------------------------


def test_cache_cold_miss_then_hit():
    cache = Cache(CacheParams(1024, 2, 32, 1))
    assert cache.access(0x100) is False
    assert cache.access(0x100) is True
    assert cache.access(0x104) is True  # same block
    assert cache.stats.misses == 1
    assert cache.stats.accesses == 3


def test_cache_lru_eviction():
    # 2-way, 2 sets, 32B blocks: set = block % 2.
    cache = Cache(CacheParams(128, 2, 32, 1))
    a, b, c = 0x000, 0x040, 0x080  # all map to set 0
    cache.access(a)
    cache.access(b)
    cache.access(c)  # evicts a
    assert cache.access(b) is True
    assert cache.access(a) is False  # a was evicted


def test_cache_lru_refresh_on_hit():
    cache = Cache(CacheParams(128, 2, 32, 1))
    a, b, c = 0x000, 0x040, 0x080
    cache.access(a)
    cache.access(b)
    cache.access(a)  # refresh a; b is now LRU
    cache.access(c)  # evicts b
    assert cache.access(a) is True
    assert cache.access(b) is False


def test_cache_distinct_sets_do_not_interfere():
    cache = Cache(CacheParams(128, 2, 32, 1))
    cache.access(0x000)  # set 0
    cache.access(0x020)  # set 1
    assert cache.access(0x000) is True
    assert cache.access(0x020) is True


def test_miss_rate():
    cache = Cache(CacheParams(1024, 2, 32, 1))
    cache.access(0)
    cache.access(0)
    assert cache.stats.miss_rate == pytest.approx(0.5)


# ----------------------------------------------------------------------
# TLB
# ----------------------------------------------------------------------


def test_tlb_hit_within_page():
    tlb = TLB(entries=4, page_bytes=4096)
    assert tlb.access(0) is False
    assert tlb.access(4095) is True
    assert tlb.access(4096) is False  # next page


def test_tlb_lru():
    tlb = TLB(entries=2, page_bytes=4096)
    tlb.access(0)
    tlb.access(4096)
    tlb.access(8192)  # evicts page 0
    assert tlb.access(0) is False


# ----------------------------------------------------------------------
# Memory hierarchy latencies
# ----------------------------------------------------------------------


def test_fetch_latency_levels():
    mh = MemoryHierarchy(ProcessorParams())
    p = ProcessorParams()
    cold = mh.fetch_latency(0x400000)
    warm = mh.fetch_latency(0x400000)
    assert cold == p.l1i.latency + p.l2.latency + p.memory_latency(32)
    assert warm == p.l1i.latency


def test_data_latency_includes_tlb_miss():
    mh = MemoryHierarchy(ProcessorParams())
    p = ProcessorParams()
    cold = mh.data_latency(0x1000)
    assert cold >= p.tlb_miss_latency  # first touch misses the TLB
    warm = mh.data_latency(0x1000)
    assert warm == p.l1d.latency


# ----------------------------------------------------------------------
# Branch predictor
# ----------------------------------------------------------------------


def test_predictor_learns_constant_direction():
    pred = TwoLevelPredictor(history_bits=8)
    pc = 0x400100
    for _ in range(10):
        pred.update(pc, True)
    assert pred.predict(pc) is True
    assert pred.stats.accuracy > 0.5


def test_predictor_learns_alternating_pattern():
    pred = TwoLevelPredictor(history_bits=8)
    pc = 0x400100
    # Train on an alternating pattern; the global history lets a
    # two-level predictor learn it where a bimodal one cannot.
    outcome = True
    for _ in range(200):
        pred.update(pc, outcome)
        outcome = not outcome
    # After training, accuracy over the last window should be high.
    correct = 0
    for _ in range(50):
        if pred.predict(pc) == outcome:
            correct += 1
        pred.update(pc, outcome)
        outcome = not outcome
    assert correct >= 45


def test_predictor_counts_mispredictions():
    pred = TwoLevelPredictor(history_bits=4)
    pc = 0x400000
    pred.update(pc, False)  # default weakly-taken: mispredict
    assert pred.stats.mispredictions >= 1
    assert pred.stats.predictions == 1
