"""Compile-time provenance: every BAT action carries its reason, and
the records survive the binary-image sidecar byte-identically."""

import json
import struct

import pytest

from repro.correlation.binary_image import (
    ImageError,
    load_program,
    pack_program,
)
from repro.correlation.provenance import (
    REASON_CONFLICT,
    REASON_FEASIBLE,
    REASON_INTERPROC,
    REASON_KILL,
    REASON_SUBSUMPTION,
    VALID_REASONS,
    ActionProvenance,
    index_records,
    sort_records,
)
from repro.pipeline import compile_program_cached
from repro.workloads import get_workload, workload_names


@pytest.fixture(
    scope="module", params=[0, 1, 2, 3], ids=["opt0", "opt1", "opt2", "opt3"]
)
def programs(request):
    out = {}
    for name in workload_names():
        workload = get_workload(name)
        out[name] = compile_program_cached(
            workload.source, workload.name, request.param
        )
    return out


def test_every_bat_entry_has_exactly_one_record(programs):
    """One provenance record per surviving BAT action — no more, no
    less — across every workload and both opt levels."""
    for name, program in programs.items():
        for tables in program.tables:
            entry_keys = set()
            for (source_slot, taken), entries in tables.bat.items():
                source_pc = tables.pc_of_slot(source_slot)
                for target_slot, _action in entries:
                    target_pc = tables.pc_of_slot(target_slot)
                    entry_keys.add((source_pc, taken, target_pc))
            record_keys = {r.key for r in tables.provenance}
            assert record_keys == entry_keys, (name, tables.function_name)
            assert len(tables.provenance) == tables.action_count


def test_record_fields_are_well_formed(programs):
    for name, program in programs.items():
        for tables in program.tables:
            for record in tables.provenance:
                assert record.reason in VALID_REASONS
                assert record.action in ("SET_T", "SET_NT", "SET_UN")
                if record.reason in (REASON_SUBSUMPTION, REASON_INTERPROC):
                    assert record.action in ("SET_T", "SET_NT")
                    assert record.var
                    assert record.link_kind in ("load", "store")
                    assert record.implied
                    assert record.check
                    assert record.witness is None
                    if record.reason == REASON_INTERPROC:
                        assert record.summary
                    else:
                        assert record.summary is None
                elif record.reason == REASON_FEASIBLE:
                    assert record.action in ("SET_T", "SET_NT")
                    assert record.var
                    assert record.implied
                    assert record.check
                    assert record.summary is None
                    assert record.witness is not None
                    for edge in record.witness:
                        label, sep, direction = edge.rpartition(":")
                        assert sep and label and direction in ("T", "NT")
                else:
                    assert record.action == "SET_UN"
                    assert record.var
                # The action named must be the one actually in the BAT.
                source_slot = tables.slot_of(record.source_pc)
                target_slot = tables.slot_of(record.target_pc)
                entries = tables.bat[(source_slot, record.taken)]
                assert (target_slot is not None) and any(
                    slot == target_slot and action.value == record.action
                    for slot, action in entries
                ), (name, record)


def test_describe_covers_all_reasons():
    base = dict(
        source_pc=0x40,
        source_block="bb1",
        taken=True,
        target_pc=0x80,
        target_block="bb2",
    )
    sub = ActionProvenance(
        **base,
        action="SET_T",
        reason=REASON_SUBSUMPTION,
        var="x",
        link_kind="store",
        link_index=0,
        implied="[1, 1]",
        check="x == 1",
    )
    assert "implies x in [1, 1]" in sub.describe()
    kill = ActionProvenance(
        **base, action="SET_UN", reason=REASON_KILL, var="x"
    )
    assert "killed to UNKNOWN" in kill.describe()
    conflict = ActionProvenance(
        **base, action="SET_UN", reason=REASON_CONFLICT, var="x"
    )
    assert "contradictory" in conflict.describe()
    interproc = ActionProvenance(
        **base,
        action="SET_T",
        reason=REASON_INTERPROC,
        var="x",
        link_kind="store",
        link_index=0,
        implied="[1, +inf]",
        check="x >= 0",
        summary="bump: x' = x + [1, 1]",
    )
    assert "calls preserve it (bump: x' = x + [1, 1])" in interproc.describe()
    feasible = ActionProvenance(
        **base,
        action="SET_T",
        reason=REASON_FEASIBLE,
        var="x",
        implied="[1, 1]",
        check="x == 1",
        witness=("bb3:T", "bb5:NT"),
    )
    assert "every feasible path" in feasible.describe()
    assert "bb3:T, bb5:NT" in feasible.describe()
    bare = ActionProvenance(
        **base,
        action="SET_T",
        reason=REASON_FEASIBLE,
        var="x",
        implied="[1, 1]",
        check="x == 1",
        witness=(),
    )
    assert "pruned infeasible edges: none" in bare.describe()


def test_unknown_reason_rejected():
    with pytest.raises(ValueError):
        ActionProvenance(
            source_pc=0,
            source_block="a",
            taken=True,
            target_pc=4,
            target_block="b",
            action="SET_T",
            reason="vibes",
        )


def test_dict_round_trip(programs):
    for program in programs.values():
        for tables in program.tables:
            for record in tables.provenance:
                assert ActionProvenance.from_dict(record.to_dict()) == record


def test_sort_and_index_agree(programs):
    for program in programs.values():
        for tables in program.tables:
            ordered = sort_records(tables.provenance)
            assert sorted(r.key for r in ordered) == [r.key for r in ordered]
            index = index_records(tables.provenance)
            assert len(index) == len(tables.provenance)


def test_sidecar_round_trip_is_byte_identical(programs):
    """pack -> load -> pack must reproduce the image exactly —
    provenance records and all."""
    for name, program in programs.items():
        image = program.to_image()
        loaded, entries = load_program(image)
        assert pack_program(loaded, entries) == image, name
        for fn_name, tables in program.tables.by_function.items():
            recovered = loaded.by_function[fn_name]
            assert sort_records(recovered.provenance) == sort_records(
                tables.provenance
            )


def test_corrupt_sidecar_raises_image_error(programs):
    program = next(iter(programs.values()))
    image = program.to_image()
    (sidecar_len,) = struct.unpack(">I", image[11:15])
    assert sidecar_len > 0
    # Truncate the sidecar mid-JSON: decode must fail loudly.
    corrupt = image[: len(image) - sidecar_len] + b"{" * sidecar_len
    with pytest.raises(ImageError):
        load_program(corrupt)


def test_sidecar_is_at_image_tail_and_is_json(programs):
    program = next(iter(programs.values()))
    image = program.to_image()
    (sidecar_len,) = struct.unpack(">I", image[11:15])
    document = json.loads(image[-sidecar_len:].decode("utf-8"))
    assert set(document) == {"functions"}
    for records in document["functions"].values():
        assert records  # only functions with provenance are stored
