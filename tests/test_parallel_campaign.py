"""Tests for the sharded campaign engine (repro.parallel.engine).

The engine's contract: for a fixed seed prefix, ``run_campaign`` merges
shard outcomes into *exactly* the serial campaign's outcome list at any
``jobs`` value, and the rendered Figure-7 report is byte-identical.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import (
    AttackOutcome,
    CampaignError,
    run_campaign,
    run_workload_campaign,
)
from repro.parallel import merge_outcomes, shard_indices
from repro.reporting import render_figure7
from repro.workloads import get_workload

WORKLOADS = ["telnetd", "httpd"]
ATTACKS = 6
SEED = "ptest:"


@pytest.fixture(scope="module")
def serial_summary():
    return run_campaign(WORKLOADS, attacks=ATTACKS, seed_prefix=SEED, jobs=1)


# ----------------------------------------------------------------------
# Shard derivation
# ----------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(count=st.integers(0, 500), shards=st.integers(1, 64))
def test_shard_indices_partition_exactly(count, shards):
    blocks = shard_indices(count, shards)
    flat = [i for block in blocks for i in block]
    assert flat == list(range(count))
    assert len(blocks) <= shards
    assert all(block for block in blocks)
    if blocks:
        sizes = [len(block) for block in blocks]
        assert max(sizes) - min(sizes) <= 1


def test_shard_indices_deterministic():
    assert shard_indices(100, 4) == shard_indices(100, 4)
    assert shard_indices(0, 4) == []
    assert shard_indices(3, 8) == [(0,), (1,), (2,)]


# ----------------------------------------------------------------------
# Serial/sharded equivalence — the satellite's headline assertion
# ----------------------------------------------------------------------


def test_jobs4_equals_jobs1(serial_summary):
    sharded = run_campaign(WORKLOADS, attacks=ATTACKS, seed_prefix=SEED, jobs=4)
    assert [r.workload for r in sharded.results] == WORKLOADS
    for left, right in zip(serial_summary.results, sharded.results):
        assert left.workload == right.workload
        assert left.vuln_kind == right.vuln_kind
        assert left.attacks == right.attacks


def test_reports_are_byte_identical(serial_summary):
    sharded = run_campaign(WORKLOADS, attacks=ATTACKS, seed_prefix=SEED, jobs=3)
    assert render_figure7(serial_summary) == render_figure7(sharded)


def test_run_workload_campaign_jobs_delegates(serial_summary):
    workload = get_workload("telnetd")
    sharded = run_workload_campaign(
        workload, attacks=ATTACKS, seed_prefix=SEED, jobs=2
    )
    assert sharded.attacks == serial_summary.results[0].attacks


def test_engine_serial_matches_legacy_loop(serial_summary):
    """The engine's jobs=1 path is the classic per-index loop."""
    workload = get_workload("telnetd")
    legacy = run_workload_campaign(workload, attacks=ATTACKS, seed_prefix=SEED)
    assert legacy.attacks == serial_summary.results[0].attacks


def test_seed_prefix_changes_outcomes():
    base = run_campaign(["telnetd"], attacks=4, seed_prefix="a:", jobs=1)
    other = run_campaign(["telnetd"], attacks=4, seed_prefix="b:", jobs=1)
    assert base.results[0].attacks != other.results[0].attacks


# ----------------------------------------------------------------------
# Merge validation and argument checking
# ----------------------------------------------------------------------


def _outcome(index):
    return AttackOutcome(
        index=index,
        trigger_read=2,
        address=0,
        target_label="f.x",
        value=1,
        fired=True,
        control_flow_changed=False,
        detected=False,
        clean_status=None,
        attack_status=None,
    )


def test_merge_outcomes_restores_index_order():
    workload = get_workload("telnetd")
    shards = [[_outcome(2), _outcome(3)], [_outcome(0), _outcome(1)]]
    merged = merge_outcomes(workload, 4, shards)
    assert [o.index for o in merged.attacks] == [0, 1, 2, 3]
    assert merged.workload == "telnetd"


def test_merge_outcomes_rejects_lost_work():
    workload = get_workload("telnetd")
    with pytest.raises(CampaignError, match="lost outcomes"):
        merge_outcomes(workload, 3, [[_outcome(0), _outcome(2)]])


def test_merge_outcomes_rejects_duplicates():
    workload = get_workload("telnetd")
    with pytest.raises(CampaignError, match="lost outcomes"):
        merge_outcomes(workload, 2, [[_outcome(0)], [_outcome(0)]])


def test_jobs_must_be_positive():
    with pytest.raises(ValueError, match="jobs"):
        run_campaign(["telnetd"], attacks=1, jobs=0)


def test_unknown_workload_fails_fast():
    with pytest.raises(KeyError, match="unknown workload"):
        run_campaign(["no-such-server"], attacks=1, jobs=2)


def test_zero_attacks_yields_empty_results():
    summary = run_campaign(["telnetd"], attacks=0, jobs=4)
    assert summary.results[0].attacks == []
