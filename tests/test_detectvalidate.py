"""The campaign join behind ``tools/validate_predictions.py``.

Covers address resolution through the deterministic memory layout,
the outcome join (including unjoined attacks), the soundness
accounting, and an end-to-end seeded smoke on a registry workload.
"""

import pytest

from repro.attacks.campaign import AttackOutcome, run_workload_campaign
from repro.interp.state import STACK_BASE, MemoryMap
from repro.interp.interpreter import RunStatus
from repro.pipeline import compile_program
from repro.staticcheck.detectvalidate import (
    UNJOINED,
    AttackJoin,
    SoundnessReport,
    WorkloadSoundness,
    join_outcomes,
    resolve_tamper_target,
    validate_workload,
)
from repro.workloads import get_workload

SOURCE = """
int g;
void helper(int p) {
    int inner = p + 1;
    if (inner > 3) { emit(1); } else { emit(2); }
}
void main() {
    g = read_int();
    int outer = read_int();
    helper(outer);
    if (g > 5) { emit(3); } else { emit(4); }
}
"""


@pytest.fixture()
def program():
    return compile_program(SOURCE)


def test_resolve_global_address(program):
    memory = MemoryMap(program.module)
    var = next(g for g in program.module.globals if g.name == "g")
    base = memory.global_addresses[var]
    assert resolve_tamper_target(memory, base, None) == (var, 0, None)


def test_resolve_unmapped_global_gap_is_none(program):
    memory = MemoryMap(program.module)
    top = max(
        base + var.size for var, base in memory.global_addresses.items()
    )
    assert resolve_tamper_target(memory, top, None) is None


def test_resolve_stack_slot_names_frame_and_owner(program):
    memory = MemoryMap(program.module)
    main_layout = memory.frame_layouts["main"]
    helper_layout = memory.frame_layouts["helper"]
    main_base = STACK_BASE
    helper_base = STACK_BASE + main_layout.size
    site = (
        ("main", "bb0", 3, main_base),
        ("helper", "bb0", 0, helper_base),
    )
    outer = next(v for v in main_layout.offsets if v.name == "outer")
    resolved = resolve_tamper_target(
        memory, main_base + main_layout.offsets[outer], site
    )
    assert resolved == (outer, 0, 0)
    inner = next(v for v in helper_layout.offsets if v.name == "inner")
    resolved = resolve_tamper_target(
        memory, helper_base + helper_layout.offsets[inner], site
    )
    assert resolved == (inner, 0, 1)


def test_resolve_stack_needs_a_site(program):
    memory = MemoryMap(program.module)
    assert resolve_tamper_target(memory, STACK_BASE, None) is None


def _outcome(program, **overrides):
    memory = MemoryMap(program.module)
    var = next(g for g in program.module.globals if g.name == "g")
    fields = dict(
        index=0,
        trigger_read=1,
        address=memory.global_addresses[var],
        target_label="<global>.g",
        value=99,
        fired=True,
        control_flow_changed=True,
        detected=True,
        clean_status=RunStatus.OK,
        attack_status=RunStatus.OK,
        tamper_site=(("main", "bb1", 0, STACK_BASE),),
    )
    fields.update(overrides)
    return AttackOutcome(**fields)


def test_join_unfired_attack_is_unjoined(program):
    joins = join_outcomes(
        program,
        [_outcome(program, fired=False, tamper_site=None, detected=False,
                  control_flow_changed=False,
                  attack_status=RunStatus.OK)],
        "demo",
    )
    assert [j.verdict for j in joins] == [UNJOINED]


def test_join_fired_attack_gets_a_det_verdict(program):
    joins = join_outcomes(program, [_outcome(program)], "demo")
    (join,) = joins
    assert join.verdict.startswith("DET8")
    assert join.detected and join.fired


def test_soundness_accounting_and_violation_directions():
    det801_escape = AttackJoin(
        index=0, target_label="t", address=1, value=2,
        verdict="DET801", fired=True,
        control_flow_changed=True, detected=False,
    )
    det803_alarm = AttackJoin(
        index=1, target_label="t", address=1, value=2,
        verdict="DET803", fired=True,
        control_flow_changed=True, detected=True,
    )
    benign = AttackJoin(
        index=2, target_label="t", address=1, value=2,
        verdict="DET802", fired=True,
        control_flow_changed=True, detected=True,
    )
    sound = WorkloadSoundness("w", 0, [benign])
    assert not sound.violations
    assert sound.predicted_lower_bound_pct == 0.0
    assert sound.measured_pct_detected_of_changed == 100.0
    unsound = WorkloadSoundness("w", 0, [det801_escape, det803_alarm, benign])
    assert unsound.det801_escapes == [det801_escape]
    assert unsound.det803_alarms == [det803_alarm]
    report = SoundnessReport([unsound])
    assert len(report.violations) == 2
    assert report.to_dict()["violations"] == 2


def test_lower_bound_uses_det801_over_changed():
    joins = [
        AttackJoin(
            index=i, target_label="t", address=1, value=2,
            verdict="DET801", fired=True,
            control_flow_changed=True, detected=True,
        )
        for i in range(2)
    ] + [
        AttackJoin(
            index=9, target_label="t", address=1, value=2,
            verdict="DET802", fired=True,
            control_flow_changed=True, detected=False,
        ),
        AttackJoin(
            index=10, target_label="t", address=1, value=2,
            verdict=UNJOINED, fired=False,
            control_flow_changed=False, detected=False,
        ),
    ]
    result = WorkloadSoundness("w", 3, joins)
    assert result.changed == 3
    assert result.predicted_lower_bound_pct == pytest.approx(200 / 3)
    document = result.to_dict()
    assert document["verdicts"]["DET801"] == 2
    assert document["verdicts"]["unjoined"] == 1


def test_seeded_workload_smoke_is_sound():
    result = validate_workload(
        get_workload("wu-ftpd"), opt_level=0, attacks=12
    )
    assert result.total == 12
    assert not result.violations
    assert sum(
        result.count(v) for v in ("DET801", "DET802", "DET803", UNJOINED)
    ) == result.total
    assert (
        result.predicted_lower_bound_pct
        <= result.measured_pct_detected_of_changed + 1e-9
    )
    # Every fired attack joined: the memory layout is total over the
    # tamper surface the campaign samples.
    fired = [j for j in result.joins if j.fired]
    assert all(j.verdict != UNJOINED for j in fired)


def test_campaign_reuse_skips_rerun():
    workload = get_workload("wu-ftpd")
    campaign = run_workload_campaign(workload, attacks=6)
    reused = validate_workload(workload, opt_level=0, result=campaign)
    fresh = validate_workload(workload, opt_level=0, attacks=6)
    assert [j.to_dict() for j in reused.joins] == [
        j.to_dict() for j in fresh.joins
    ]
