"""Local mirror of the CI ``mypy --strict`` gate.

CI type-checks the prover and analysis layers; this test runs the same
command when mypy happens to be installed locally so type regressions
surface before push.  The container image deliberately ships without
mypy, so the test skips cleanly there — the CI lint job remains the
authoritative gate.
"""

import os
import pathlib
import subprocess
import sys

import pytest

pytest.importorskip("mypy")

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_prover_and_analysis_layers_pass_mypy_strict():
    env = dict(os.environ, MYPYPATH="src")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--strict",
            "--follow-imports=silent",
            "-p",
            "repro.staticcheck",
            "-p",
            "repro.analysis",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
