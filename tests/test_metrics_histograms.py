"""Histograms and snapshot merging: the daemon's aggregation algebra.

The daemon folds each finished session's registry snapshot into its
own long-lived registry, and the sharded campaign engine does the same
with worker snapshots — so ``merge_snapshot`` must behave like a
proper monoid fold: associative, order-insensitive for accumulating
kinds, and safe under concurrent session completion.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import Histogram, MetricsRegistry, exponential_bounds

# Exact binary fractions with <= 6 decimal digits: immune to the
# snapshot round(…, 6) so merged floats compare exactly.
EXACT_SECONDS = st.sampled_from([0.0, 0.015625, 0.25, 0.5, 1.0, 2.5])

SNAPSHOTS = st.builds(
    lambda counters, timers, gauges, histograms: _make_snapshot(
        counters, timers, gauges, histograms
    ),
    st.dictionaries(
        st.sampled_from(["a", "b", "c"]), st.integers(0, 1000), max_size=3
    ),
    st.dictionaries(
        st.sampled_from(["t1", "t2"]),
        st.lists(EXACT_SECONDS, min_size=1, max_size=4),
        max_size=2,
    ),
    st.dictionaries(
        st.sampled_from(["g1", "g2"]), st.integers(0, 50), max_size=2
    ),
    st.dictionaries(
        st.sampled_from(["h1", "h2"]),
        st.lists(EXACT_SECONDS, min_size=1, max_size=5),
        max_size=2,
    ),
)


def _make_snapshot(counters, timers, gauges, histograms):
    registry = MetricsRegistry()
    for name, value in counters.items():
        registry.increment(name, value)
    for name, samples in timers.items():
        for sample in samples:
            registry.observe_seconds(name, sample)
    for name, value in gauges.items():
        registry.set_gauge(name, value)
    for name, samples in histograms.items():
        for sample in samples:
            registry.observe_histogram(name, sample)
    return registry.snapshot()


# ----------------------------------------------------------------------
# Histogram unit behaviour
# ----------------------------------------------------------------------


def test_histogram_observe_buckets_and_overflow():
    histogram = Histogram("h", bounds=(1.0, 10.0))
    for value in (0.5, 5.0, 50.0, 500.0):
        histogram.observe(value)
    assert histogram.counts == [1, 1, 2]  # final slot is overflow
    assert histogram.count == 4
    assert histogram.sum == 555.5
    assert histogram.cumulative_buckets() == [
        (1.0, 1), (10.0, 2), (float("inf"), 4),
    ]


def test_histogram_default_ladder_covers_both_unit_families():
    bounds = exponential_bounds()
    assert bounds[0] == pytest.approx(1e-6)
    assert bounds[-1] > 1e6  # covers steps/s as well as seconds


def test_histogram_merge_rejects_differing_bounds():
    histogram = Histogram("h", bounds=(1.0, 2.0))
    with pytest.raises(ValueError, match="differing bucket bounds"):
        histogram.merge(Histogram("h", bounds=(1.0,)).to_dict())
    with pytest.raises(ValueError, match="malformed"):
        histogram.merge({"bounds": [1.0, 2.0], "counts": [1]})


def test_registry_histogram_snapshot_key_is_conditional():
    registry = MetricsRegistry()
    assert "histograms" not in registry.snapshot()
    registry.observe_histogram("h", 0.5)
    snapshot = registry.snapshot()
    assert snapshot["histograms"]["h"]["count"] == 1
    # merging restores an identical distribution, bounds included
    merged = MetricsRegistry()
    merged.merge_snapshot(snapshot)
    assert merged.snapshot()["histograms"] == snapshot["histograms"]


# ----------------------------------------------------------------------
# Merge algebra (property-tested)
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(snapshots=st.lists(SNAPSHOTS, min_size=2, max_size=4))
def test_merge_snapshot_is_associative(snapshots):
    # Fold everything left-to-right into one registry ...
    flat = MetricsRegistry()
    for snapshot in snapshots:
        flat.merge_snapshot(snapshot)
    # ... versus pre-merging the tail into an intermediate registry
    # (the daemon-under-a-daemon / shard-of-shards shape).
    nested = MetricsRegistry()
    nested.merge_snapshot(snapshots[0])
    intermediate = MetricsRegistry()
    for snapshot in snapshots[1:]:
        intermediate.merge_snapshot(snapshot)
    nested.merge_snapshot(intermediate.snapshot())
    assert flat.snapshot() == nested.snapshot()


@settings(max_examples=40, deadline=None)
@given(snapshots=st.lists(SNAPSHOTS, min_size=1, max_size=4))
def test_merge_order_never_changes_accumulating_kinds(snapshots):
    forward = MetricsRegistry()
    for snapshot in snapshots:
        forward.merge_snapshot(snapshot)
    backward = MetricsRegistry()
    for snapshot in reversed(snapshots):
        backward.merge_snapshot(snapshot)
    left, right = forward.snapshot(), backward.snapshot()
    # Gauges are point-in-time (latest writer wins) so they may differ;
    # every accumulating kind must not.
    for kind in ("counters", "timers", "histograms"):
        assert left.get(kind, {}) == right.get(kind, {})
    assert sorted(s["name"] for s in left["spans"]) == sorted(
        s["name"] for s in right["spans"]
    )


def test_merge_snapshot_under_concurrent_daemon_sessions():
    """N worker threads finish sessions concurrently; the daemon folds
    each session registry on completion.  Totals must equal the serial
    sum regardless of completion interleaving."""
    daemon = MetricsRegistry()
    lock = threading.Lock()  # the daemon's loop-thread serialization
    sessions, samples_each = 8, 25

    def one_session(index):
        session = MetricsRegistry()
        for sample in range(samples_each):
            session.increment("serve.completed")
            session.observe_histogram("session.wall_seconds", 0.25 * sample)
            session.observe_histogram("serve.queue_wait_seconds", 0.5)
        with lock:
            daemon.merge_snapshot(session.snapshot())

    threads = [
        threading.Thread(target=one_session, args=(i,))
        for i in range(sessions)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    total = sessions * samples_each
    assert daemon.value("serve.completed") == total
    wall = daemon.histogram("session.wall_seconds")
    assert wall.count == total
    assert wall.sum == pytest.approx(sessions * 0.25 * sum(range(samples_each)))
    queue = daemon.histogram("serve.queue_wait_seconds")
    assert queue.count == total
    assert queue.cumulative_buckets()[-1] == (float("inf"), total)
