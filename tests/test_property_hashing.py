"""Property-based tests for the §5.2 perfect-hash search.

The contract under test: for any set of distinct branch PCs the search
either returns a parameterization that is *actually* collision-free, or
fails loudly with :class:`HashSearchError` — it must never hand back a
colliding configuration, because a collision silently merges two
branches' BSV/BCV/BAT slots and corrupts detection.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.correlation import hashing
from repro.correlation.hashing import (
    HashParams,
    HashSearchError,
    find_perfect_hash,
    minimum_bits,
)

#: Branch PCs are word-aligned instruction addresses.
pc_sets = st.lists(
    st.integers(0, (1 << 20) - 1).map(lambda word: word * 4),
    unique=True,
    min_size=0,
    max_size=48,
)


@settings(max_examples=150, deadline=None)
@given(pcs=pc_sets)
def test_search_result_is_collision_free(pcs):
    result = find_perfect_hash(pcs)
    slots = [result.params.slot(pc) for pc in pcs]
    assert len(set(slots)) == len(pcs), (pcs, result.params)
    assert result.collision_free
    assert all(0 <= slot < result.params.space for slot in slots)


@settings(max_examples=150, deadline=None)
@given(pcs=pc_sets)
def test_search_is_deterministic(pcs):
    first = find_perfect_hash(pcs)
    second = find_perfect_hash(pcs)
    assert first.params == second.params
    assert first.trials == second.trials


@settings(max_examples=100, deadline=None)
@given(pcs=pc_sets.filter(lambda pcs: len(pcs) >= 1))
def test_search_effort_and_space_bounds(pcs):
    result = find_perfect_hash(pcs)
    assert result.trials >= 1
    assert result.params.bits >= minimum_bits(len(pcs))
    assert result.params.bits <= hashing.MAX_BITS
    assert result.params.space >= len(pcs)
    assert 1 <= result.params.shift1 <= result.params.shift2 <= hashing.MAX_SHIFT


@settings(max_examples=100, deadline=None)
@given(
    pcs=pc_sets.filter(lambda pcs: len(pcs) >= 1),
    seed=st.integers(0, 2**32 - 1),
)
def test_slot_stays_inside_space(pcs, seed):
    params = find_perfect_hash(pcs).params
    # Arbitrary (even unregistered) PCs must still map inside the table.
    probe = (seed * 4) & 0xFFFFFFFF
    assert 0 <= params.slot(probe) < params.space


@settings(max_examples=60, deadline=None)
@given(pcs=pc_sets.filter(lambda pcs: len(pcs) >= 1))
def test_duplicate_pcs_fail_loudly(pcs):
    with pytest.raises(HashSearchError, match="duplicate"):
        find_perfect_hash(list(pcs) + [pcs[0]])


def test_exhausted_search_raises_not_returns(monkeypatch):
    """When no parameterization works, the search must raise — never
    return a colliding config."""
    monkeypatch.setattr(hashing, "MAX_SHIFT", 1)
    monkeypatch.setattr(hashing, "MAX_BITS", 1)
    # Words 0 and 2 collide in a 2-slot space for every (s1, s2) in the
    # shrunken window: slot(0)=0^0^0=0, slot(8>>2=2)=2^1^1=2 -> 0 mod 2.
    pcs = [0, 8, 4]
    with pytest.raises(HashSearchError, match="no collision-free hash"):
        find_perfect_hash(pcs)


def test_empty_set_gets_trivial_table():
    result = find_perfect_hash([])
    assert result.trials == 0
    assert result.params.space == 1


@settings(max_examples=100, deadline=None)
@given(
    shift1=st.integers(1, 12),
    shift2=st.integers(1, 12),
    bits=st.integers(0, 16),
    pc=st.integers(0, 2**32 - 1),
)
def test_hash_params_slot_range(shift1, shift2, bits, pc):
    params = HashParams(shift1, shift2, bits)
    assert 0 <= params.slot(pc) < params.space
