"""Named attack scenarios per server: the semantic attacks the paper
motivates, pinned as regression tests.

Each test targets a specific security property of one workload (the
kind of non-control-data attack Chen et al. [20] catalogued), tampering
the exact variable that carries the property and asserting the IPDS
catches the resulting infeasible path.
"""


from repro import TamperSpec, compile_program, monitored_run, unmonitored_run
from repro.interp import MemoryMap, STACK_BASE
from repro.workloads import get_workload


def stack_address(program, fn_name, var_name):
    """Address of a local in the entry activation of ``fn_name``."""
    mm = MemoryMap(program.module)
    layout = mm.frame_layouts[fn_name]
    offsets = [o for v, o in layout.offsets.items() if v.name == var_name]
    assert offsets, f"{var_name} not in frame of {fn_name}"
    return STACK_BASE + offsets[0]


def attack(program, inputs, trigger, address, value):
    clean = unmonitored_run(program, inputs=inputs)
    tampered, ipds = monitored_run(
        program,
        inputs=inputs,
        tamper=TamperSpec("read", trigger, address, value),
    )
    changed = tampered.branch_trace != clean.branch_trace
    return clean, tampered, changed, ipds


def sweep_triggers(program, inputs, address, value, max_trigger):
    """Try several tamper points; return (any_changed, any_detected)."""
    changed = detected = False
    for trigger in range(2, max_trigger + 1):
        _, _, chg, ipds = attack(program, inputs, trigger, address, value)
        changed = changed or chg
        detected = detected or ipds.detected
    return changed, detected


# ----------------------------------------------------------------------


def test_telnetd_privilege_escalation_detected():
    # Unauthenticated session; flip `authenticated` to 1 mid-session.
    workload = get_workload("telnetd")
    program = compile_program(workload.source, "telnetd")
    address = stack_address(program, "main", "authenticated")
    # uid=5, bad option, three failed passwords, then commands refused.
    inputs = [5, 0, 1, 2, 3, 1, 1, 1, 0]
    changed, detected = sweep_triggers(program, inputs, address, 1, 7)
    assert changed and detected


def test_telnetd_root_grant_detected():
    # Authenticated non-root session; flip `is_root`.
    workload = get_workload("telnetd")
    program = compile_program(workload.source, "telnetd")
    address = stack_address(program, "main", "is_root")
    # uid=1 -> password 20; then shell commands including cat-shadow.
    inputs = [1, 1, 20, 2, 2, 2, 0]
    changed, detected = sweep_triggers(program, inputs, address, 1, 6)
    assert changed and detected


def test_wuftpd_chroot_escape_detected():
    # Anonymous session is chrooted; clearing `chrooted` lets CWD ..
    # escape at depth 0.
    workload = get_workload("wu-ftpd")
    program = compile_program(workload.source, "wu-ftpd")
    address = stack_address(program, "main", "is_anonymous")
    # anonymous login, then STAT (consults is_anonymous/chrooted) twice.
    inputs = [0, 0, 6, 6, 6, 0]
    changed, detected = sweep_triggers(program, inputs, address, 0, 5)
    assert changed and detected


def test_sysklogd_threshold_suppression_detected():
    # Raising the threshold suppresses log lines (log-evasion attack).
    workload = get_workload("sysklogd")
    program = compile_program(workload.source, "sysklogd")
    address = stack_address(program, "main", "threshold")
    inputs = [2, 5, 0, 4, 101, 4, 102, 4, 103, -1]
    changed, detected = sweep_triggers(program, inputs, address, 99, 8)
    assert changed and detected


def test_httpd_realm_bypass_detected():
    workload = get_workload("httpd")
    program = compile_program(workload.source, "httpd")
    address = stack_address(program, "main", "authorized")
    # No credentials; protected GETs are denied until tampering.
    inputs = [512, 1111, 1, 60, 1, 70, 1, 80, 0]
    changed, detected = sweep_triggers(program, inputs, address, 1, 8)
    assert changed and detected


def test_sendmail_relay_bypass_detected():
    workload = get_workload("sendmail")
    program = compile_program(workload.source, "sendmail")
    address = stack_address(program, "main", "relay_allowed")
    # Remote sender (no relay) keeps RCPTing remote recipients.
    inputs = [5, 1, 9, 2, 500, 3, 1500, 3, 1500, 3, 1500, 4, 0]
    changed, detected = sweep_triggers(program, inputs, address, 1, 12)
    assert changed and detected


def test_sshd_uid_zero_grant_detected():
    workload = get_workload("sshd")
    program = compile_program(workload.source, "sshd")
    address = stack_address(program, "main", "auth_uid")
    # uid=7 authenticates (password 80), opens a channel, runs a
    # privileged command (>=100) repeatedly.
    inputs = [3, 1, 7, 80, 1, 2, 150, 2, 150, 0]
    changed, detected = sweep_triggers(program, inputs, address, 0, 9)
    assert changed and detected


def test_atftpd_transfer_state_corruption_detected():
    workload = get_workload("atftpd")
    program = compile_program(workload.source, "atftpd")
    address = stack_address(program, "main", "transfer_open")
    # RRQ of 3 blocks, stream them with status probes between.
    inputs = [1, 3, 4, 3, 1, 4, 3, 2, 4, 3, 3, 0]
    changed, detected = sweep_triggers(program, inputs, address, 0, 10)
    assert changed and detected


def test_xinetd_paranoid_flag_clear_detected():
    workload = get_workload("xinetd")
    program = compile_program(workload.source, "xinetd")
    address = stack_address(program, "main", "paranoid")
    # paranoid on, all services enabled; bad-source connects get 403
    # until the flag is cleared.
    inputs = [4, 1] + [1] * 8 + [1, 0, 2000, 3, 1, 0, 2000, 3, 0]
    changed, detected = sweep_triggers(program, inputs, address, 0, 16)
    assert changed and detected


def test_crond_capacity_overflow_detected():
    workload = get_workload("crond")
    program = compile_program(workload.source, "crond")
    address = stack_address(program, "main", "njobs")
    # Register a couple of jobs, tick a few times; blow up njobs.
    inputs = [0, 1, 2, 0, 1, 3, 0, 3, 3, 3, 0]
    changed, detected = sweep_triggers(
        program, inputs, address, 1000, 10
    )
    assert changed and detected


def test_portmap_caller_identity_flip_detected():
    workload = get_workload("portmap")
    program = compile_program(workload.source, "portmap")
    address = stack_address(program, "main", "caller_uid")
    # Unprivileged caller; flipping uid to 0 unlocks privileged ports.
    inputs = [5, 1, 10, 8080, 3, 10, 3, 10, 0]
    changed, detected = sweep_triggers(program, inputs, address, 0, 8)
    assert changed and detected


# ----------------------------------------------------------------------
# Negative scenario: data-only tampering that cannot change control
# flow is (correctly) invisible — the paper's stated scope limit.
# ----------------------------------------------------------------------


def test_pure_data_tampering_not_detected():
    workload = get_workload("telnetd")
    program = compile_program(workload.source, "telnetd")
    # termbuf cell 5 is summed into the checksum; writing a small
    # positive value keeps the checksum branch direction unchanged.
    address = stack_address(program, "main", "termbuf") + 5
    inputs = [1, 1, 20, 1, 1, 0]
    clean, tampered, changed, ipds = attack(
        program, inputs, trigger=4, address=address, value=3
    )
    assert not changed
    assert not ipds.detected
