"""Segment-mode accuracy matrix and campaign timing-mode plumbing.

``--timing-mode=segment`` is an opt-in approximation: straight-line
trace segments are timed exactly a few times, then replayed from a
memoized cycle delta.  Absolute cycle counts may drift (the memoized
delta is the segment's warm-cache steady state), but the quantity the
paper reports — the Figure 9 normalized-performance *ratio* between the
baseline and IPDS-attached models — must track the exact model within a
declared tolerance on every workload.  That tolerance is asserted here,
for all ten workloads, so any change to the segment heuristics that
degrades fidelity fails loudly.

The second half covers the campaign plumbing: ``timing_mode`` must be
validated, must not perturb detection outcomes, and shard merges must
refuse to mix timing modes.
"""

import random

import pytest

from repro.attacks.campaign import CampaignError, run_attack
from repro.cpu.simulator import normalized_performance
from repro.parallel.engine import ShardResult, merge_shard_results
from repro.pipeline import compile_program
from repro.workloads import all_workloads

#: Declared segment-mode tolerance: the Figure 9 ratio may deviate from
#: the exact model by at most this much, relative.  Worst observed
#: across the ten workloads at this scale is 1.81% (sendmail); the
#: margin absorbs benign retunings without letting a real fidelity
#: regression through.  Documented in EXPERIMENTS.md.
SEGMENT_RATIO_TOLERANCE = 0.025

#: Matrix parameters (seed namespace distinct from goldens/benches).
SCALE = 8
OPT_LEVEL = 1
SEED_PREFIX = "segacc:"

WORKLOADS = {workload.name: workload for workload in all_workloads()}


def _matrix_cell(name):
    workload = WORKLOADS[name]
    program = compile_program(workload.source, name, OPT_LEVEL)
    inputs = workload.make_inputs(
        random.Random(f"{SEED_PREFIX}{name}"), SCALE
    )
    exact = normalized_performance(program, inputs, name, timing_mode="exact")
    segment = normalized_performance(
        program, inputs, name, timing_mode="segment"
    )
    return exact, segment


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_segment_ratio_within_declared_tolerance(name):
    exact, segment = _matrix_cell(name)
    relative_error = abs(
        segment.normalized_performance - exact.normalized_performance
    ) / exact.normalized_performance
    assert relative_error <= SEGMENT_RATIO_TOLERANCE, (
        f"{name}: segment ratio {segment.normalized_performance:.6f} vs "
        f"exact {exact.normalized_performance:.6f} "
        f"({100 * relative_error:.2f}% > "
        f"{100 * SEGMENT_RATIO_TOLERANCE:.2f}%)"
    )
    # Instruction accounting is exact regardless of mode — only cycle
    # timing is approximated.
    assert segment.instructions == exact.instructions


# ----------------------------------------------------------------------
# Campaign plumbing
# ----------------------------------------------------------------------


def test_run_attack_rejects_unknown_timing_mode():
    workload = WORKLOADS["telnetd"]
    program = compile_program(workload.source, workload.name, 0)
    with pytest.raises(ValueError, match="unknown timing mode"):
        run_attack(program, workload, 0, timing_mode="approximate")


def test_timed_attack_records_cycles_without_perturbing_outcome():
    """Attaching the timing model is purely observational: every
    detection field matches the untimed run; only ``cycles`` differs."""
    workload = WORKLOADS["telnetd"]
    program = compile_program(workload.source, workload.name, 0)
    for index in range(3):
        untimed = run_attack(program, workload, index, seed_prefix="segm:")
        timed = run_attack(
            program,
            workload,
            index,
            seed_prefix="segm:",
            timing_mode="segment",
        )
        assert untimed.cycles is None
        assert isinstance(timed.cycles, int) and timed.cycles > 0
        for field in (
            "index",
            "trigger_read",
            "address",
            "target_label",
            "value",
            "fired",
            "control_flow_changed",
            "detected",
            "clean_status",
            "attack_status",
            "alarms",
        ):
            assert getattr(timed, field) == getattr(untimed, field), field


def test_merge_rejects_mixed_timing_modes():
    workload = WORKLOADS["telnetd"]
    shards = [
        ShardResult(outcomes=[], timing_mode="exact"),
        ShardResult(outcomes=[], timing_mode="segment"),
    ]
    with pytest.raises(CampaignError, match="mixed timing modes"):
        merge_shard_results(workload, 0, shards)
    # Timed + untimed is just as meaningless as two approximations.
    shards = [
        ShardResult(outcomes=[], timing_mode=None),
        ShardResult(outcomes=[], timing_mode="exact"),
    ]
    with pytest.raises(CampaignError, match="mixed timing modes"):
        merge_shard_results(workload, 0, shards)


def test_merge_accepts_uniform_timing_mode():
    workload = WORKLOADS["telnetd"]
    program = compile_program(workload.source, workload.name, 0)
    outcomes = [
        run_attack(
            program, workload, index, seed_prefix="segm:", timing_mode="exact"
        )
        for index in range(4)
    ]
    shards = [
        ShardResult(outcomes=outcomes[:2], timing_mode="exact"),
        ShardResult(outcomes=outcomes[2:], timing_mode="exact"),
    ]
    result = merge_shard_results(workload, 4, shards)
    assert result.timing_mode == "exact"
    assert [outcome.index for outcome in result.attacks] == [0, 1, 2, 3]
    assert all(outcome.cycles is not None for outcome in result.attacks)
