"""Unit tests for the §5.4 context-switch timing model."""

import random

import pytest

from repro.cpu import IPDSHardwareModel, IPDSHardwareParams, timed_run
from repro.pipeline import compile_program
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def program():
    workload = get_workload("sysklogd")
    return compile_program(workload.source, workload.name)


def test_disabled_by_default(program):
    hw = IPDSHardwareModel(program.tables, IPDSHardwareParams())
    assert hw.maybe_context_switch(10**9) == 0
    assert hw.stats.context_switches == 0


def test_switch_fires_on_interval(program):
    params = IPDSHardwareParams(context_switch_interval=1000)
    hw = IPDSHardwareModel(program.tables, params)
    hw.on_call("main", 0)
    assert hw.maybe_context_switch(500) == 0  # not yet
    stall = hw.maybe_context_switch(1000)
    assert stall > 0
    assert hw.stats.context_switches == 1
    # Next interval boundary.
    assert hw.maybe_context_switch(1500) == 0
    assert hw.maybe_context_switch(2100) > 0
    assert hw.stats.context_switches == 2


def test_lazy_stall_is_bounded_by_eager_bits(program):
    lazy = IPDSHardwareParams(
        context_switch_interval=1000, lazy_context_switch=True
    )
    eager = IPDSHardwareParams(
        context_switch_interval=1000, lazy_context_switch=False
    )
    hw_lazy = IPDSHardwareModel(program.tables, lazy)
    hw_eager = IPDSHardwareModel(program.tables, eager)
    for hw in (hw_lazy, hw_eager):
        hw.on_call("main", 0)
    stall_lazy = hw_lazy.maybe_context_switch(1000)
    stall_eager = hw_eager.maybe_context_switch(1000)
    assert stall_lazy <= stall_eager
    # Lazy stall covers at most context_switch_eager_bits of traffic.
    max_words = (lazy.context_switch_eager_bits + 63) // 64
    assert stall_lazy <= max_words * lazy.spill_word_latency


def test_switch_with_empty_stack_costs_nothing_live(program):
    params = IPDSHardwareParams(
        context_switch_interval=100, lazy_context_switch=False
    )
    hw = IPDSHardwareModel(program.tables, params)
    # No frames pushed: nothing to save.
    stall = hw.maybe_context_switch(100)
    assert stall == 0
    assert hw.stats.context_switches == 1


def test_end_to_end_switching_costs_cycles(program):
    workload = get_workload("sysklogd")
    inputs = workload.make_inputs(random.Random("cs"), 5)
    quiet = timed_run(program, inputs)
    noisy = timed_run(
        program,
        inputs,
        ipds_params=IPDSHardwareParams(
            context_switch_interval=2000, lazy_context_switch=False
        ),
    )
    assert noisy.ipds_stats.context_switches > 0
    assert noisy.cycles >= quiet.cycles
