"""Robustness fuzzing: the front end must fail cleanly, never crash.

Any byte soup must produce either a parsed program or a located
``LexError``/``ParseError`` — no other exception type, no hang.  Valid
programs printed from random ASTs must lex to the same token stream
after a comment-stripping round trip.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lang import (
    LexError,
    LoweringError,
    ParseError,
    parse_program,
    tokenize,
)
from repro.ir import lower_program, verify_module

from .test_zero_false_positives import programs


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=200))
def test_arbitrary_text_fails_cleanly(text):
    try:
        parse_program(text)
    except (LexError, ParseError):
        pass


@settings(max_examples=150, deadline=None)
@given(
    st.text(
        alphabet="intvoidwhileforreturn(){}[];=+-*/%<>!&|0123456789abc _\n",
        max_size=300,
    )
)
def test_c_flavoured_soup_fails_cleanly(text):
    try:
        program = parse_program(text)
        # If it parsed, lowering must also either succeed or raise a
        # located error.
        try:
            module = lower_program(program)
            verify_module(module)
        except LoweringError:
            pass
    except (LexError, ParseError):
        pass


@settings(max_examples=100, deadline=None)
@given(st.text(alphabet="0123456789xXabcdefABCDEF", min_size=1, max_size=12))
def test_numeric_soup_lexes_or_fails_cleanly(text):
    try:
        tokenize(text)
    except LexError:
        pass


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(source=programs())
def test_generated_programs_always_compile(source):
    """Random well-formed programs always make it through the whole
    front end (generator reused from the zero-FP suite)."""
    module = lower_program(parse_program(source))
    verify_module(module)


def test_deeply_nested_blocks_do_not_blow_up():
    depth = 150
    source = "void main() {" + "{" * depth + "emit(1);" + "}" * depth + "}"
    module = lower_program(parse_program(source))
    verify_module(module)


def test_long_operator_chain():
    # Left-deep folding recurses; 300 terms stays within Python's
    # default recursion budget (a documented practical limit).
    source = "void main() { emit(" + " + ".join(["1"] * 300) + "); }"
    program = parse_program(source)
    module = lower_program(program)
    from repro.interp import run_program

    assert run_program(module).outputs == [300]


def test_block_comments_do_not_nest():
    # C semantics: the comment ends at the *first* */ regardless of
    # inner /* markers.
    source = "void main() { /* outer /* inner */ emit(1); }"
    module = lower_program(parse_program(source))
    from repro.interp import run_program

    assert run_program(module).outputs == [1]


def test_very_long_comment():
    source = "void main() { /* " + "x" * 10_000 + " */ emit(1); }"
    module = lower_program(parse_program(source))
    from repro.interp import run_program

    assert run_program(module).outputs == [1]
