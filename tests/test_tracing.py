"""Hierarchical span tracing: trees, propagation, Chrome export."""

import json
import pickle
import threading

from repro.observability import (
    TraceContext,
    Tracer,
    chrome_trace,
    maybe_span,
    validate_chrome_trace,
    write_spans,
)


# ----------------------------------------------------------------------
# Span trees and context propagation
# ----------------------------------------------------------------------


def test_nested_spans_build_a_tree():
    tracer = Tracer()
    with tracer.span("outer", kind="campaign") as outer:
        with tracer.span("inner") as inner:
            pass
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert outer.trace_id == inner.trace_id == tracer.trace_id
    # finished in completion order: inner closes first
    assert [span.name for span in tracer.finished] == ["inner", "outer"]
    assert outer.attributes == {"kind": "campaign"}
    assert outer.duration_us >= inner.duration_us >= 0


def test_explicit_parent_overrides_the_stack():
    tracer = Tracer()
    elsewhere = TraceContext(trace_id=tracer.trace_id, span_id="beef" * 4)
    with tracer.span("top"):
        with tracer.span("detached", parent=elsewhere) as span:
            pass
    assert span.parent_id == elsewhere.span_id


def test_current_context_tracks_the_active_span():
    tracer = Tracer()
    root_context = tracer.current_context()
    assert root_context.trace_id == tracer.trace_id
    with tracer.span("s") as span:
        assert tracer.current_context() == span.context
    assert tracer.current_context() == root_context


def test_seeded_tracer_parents_under_the_remote_context():
    parent = Tracer()
    with parent.span("campaign") as root:
        handoff = parent.current_context()
    # ... the handoff crosses a process boundary as a pickle ...
    handoff = pickle.loads(pickle.dumps(handoff))
    worker = Tracer(context=handoff)
    assert worker.trace_id == parent.trace_id
    with worker.span("shard") as shard:
        pass
    assert shard.parent_id == root.span_id


def test_adopt_folds_worker_spans_into_one_valid_tree():
    parent = Tracer()
    with parent.span("campaign"):
        context = parent.current_context()
        worker = Tracer(context=context)
        with worker.span("shard"):
            with worker.span("shard.compile"):
                pass
        # shard results carry spans as plain dicts (picklable)
        shipped = json.loads(json.dumps(worker.span_dicts()))
    assert parent.adopt(shipped) == 2
    assert parent.adopt(None) == 0
    assert validate_chrome_trace(chrome_trace(parent.finished)) == []


def test_thread_local_stacks_do_not_cross_nest():
    tracer = Tracer()
    barrier = threading.Barrier(2)

    def worker(name):
        with tracer.span(name):
            barrier.wait()  # both spans provably open at once

    threads = [
        threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # Concurrent siblings: neither adopted the other as parent.
    assert {span.parent_id for span in tracer.finished} == {None}


def test_events_and_maybe_span():
    tracer = Tracer()
    tracer.event("ignored-outside-any-span")
    with maybe_span(tracer, "stage", workload="telnetd") as span:
        tracer.event("checkpoint", index=3)
    assert span.events[0]["name"] == "checkpoint"
    assert span.events[0]["index"] == 3
    # Disabled tracing degrades to a nullcontext
    with maybe_span(None, "stage") as nothing:
        assert nothing is None


# ----------------------------------------------------------------------
# Chrome export and validation
# ----------------------------------------------------------------------


def _sample_tracer():
    tracer = Tracer()
    with tracer.span("root", jobs=2):
        with tracer.span("child"):
            tracer.event("mark")
    return tracer


def test_chrome_trace_document_shape():
    tracer = _sample_tracer()
    document = chrome_trace(tracer.finished)
    assert document["otherData"]["tool"] == "repro-tracing"
    complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
    instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
    assert len(complete) == 2 and len(instants) == 1
    for event in complete:
        assert event["dur"] >= 1
        assert event["args"]["trace_id"] == tracer.trace_id
    assert validate_chrome_trace(document) == []


def test_validate_chrome_trace_rejects_broken_documents():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({}) == ["document needs a 'traceEvents' list"]

    def doc(span_parents):
        return chrome_trace(
            [
                {
                    "name": "s", "trace_id": "t", "span_id": sid,
                    "parent_id": parent, "start_us": 0, "duration_us": 1,
                    "pid": 1, "tid": 1,
                }
                for sid, parent in span_parents
            ]
        )

    # duplicate ids, unknown parent, two roots, parent cycle
    assert any("duplicate" in e
               for e in validate_chrome_trace(doc([("a", None), ("a", None)])))
    assert any("unknown parent" in e
               for e in validate_chrome_trace(doc([("a", None), ("b", "zz")])))
    assert any("one root" in e
               for e in validate_chrome_trace(doc([("a", None), ("b", None)])))
    assert any("not connected" in e
               for e in validate_chrome_trace(
                   doc([("r", None), ("a", "b"), ("b", "a")])))


def test_write_spans_jsonl_appends_and_json_overwrites(tmp_path):
    tracer = _sample_tracer()

    jsonl = tmp_path / "spans.jsonl"
    assert write_spans(tracer.finished, str(jsonl)) == 2
    assert write_spans(tracer.finished, str(jsonl)) == 2  # appends
    lines = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert len(lines) == 4
    assert {line["name"] for line in lines} == {"root", "child"}

    chrome = tmp_path / "trace.json"
    write_spans(tracer.finished, str(chrome))
    write_spans(tracer.finished, str(chrome))  # overwrites
    document = json.loads(chrome.read_text())
    assert validate_chrome_trace(document) == []
    assert len(document["traceEvents"]) == 3


# ----------------------------------------------------------------------
# The real propagation boundary: a sharded campaign
# ----------------------------------------------------------------------


def test_sharded_campaign_produces_one_connected_trace():
    from repro.parallel.engine import run_campaign

    tracer = Tracer()
    summary = run_campaign(
        workloads=["telnetd"], attacks=4, jobs=2, tracer=tracer
    )
    assert summary.results[0].attacks
    document = chrome_trace(tracer.finished)
    assert validate_chrome_trace(document) == []

    by_name = {}
    for span in tracer.finished:
        by_name.setdefault(span.name, []).append(span)
    campaign_root = by_name["campaign"][0]
    assert campaign_root.parent_id is None
    # Worker-process shard spans hang directly under the campaign root,
    # and were recorded in other processes.
    shards = by_name["shard"]
    assert len(shards) == 2
    for shard in shards:
        assert shard.parent_id == campaign_root.span_id
        assert shard.trace_id == campaign_root.trace_id
    compile_parents = {span.parent_id for span in by_name["shard.compile"]}
    assert compile_parents <= {span.span_id for span in shards}
