"""Unit tests for the mini-C lexer."""

import pytest

from repro.lang import LexError, TokenType, tokenize


def types(source):
    return [t.type for t in tokenize(source)]


def test_empty_source_yields_only_eof():
    assert types("") == [TokenType.EOF]


def test_whitespace_only_yields_only_eof():
    assert types("  \t\n\r\n  ") == [TokenType.EOF]


def test_decimal_literal():
    tokens = tokenize("42")
    assert tokens[0].type is TokenType.INT_LITERAL
    assert tokens[0].int_value == 42


def test_hex_literal():
    tokens = tokenize("0x2A")
    assert tokens[0].int_value == 42


def test_hex_literal_uppercase_prefix():
    assert tokenize("0XFF")[0].int_value == 255


def test_hex_literal_without_digits_rejected():
    with pytest.raises(LexError):
        tokenize("0x")


def test_literal_with_alpha_suffix_rejected():
    with pytest.raises(LexError):
        tokenize("123abc")


def test_identifier_with_underscore():
    tokens = tokenize("_my_var2")
    assert tokens[0].type is TokenType.IDENT
    assert tokens[0].text == "_my_var2"


def test_keywords_are_not_identifiers():
    assert types("int void if else while for return break continue") == [
        TokenType.KW_INT,
        TokenType.KW_VOID,
        TokenType.KW_IF,
        TokenType.KW_ELSE,
        TokenType.KW_WHILE,
        TokenType.KW_FOR,
        TokenType.KW_RETURN,
        TokenType.KW_BREAK,
        TokenType.KW_CONTINUE,
        TokenType.EOF,
    ]


def test_keyword_prefix_is_identifier():
    tokens = tokenize("iffy whiled")
    assert tokens[0].type is TokenType.IDENT
    assert tokens[1].type is TokenType.IDENT


def test_two_char_operators_take_precedence():
    assert types("<= >= == != && ||") == [
        TokenType.LE,
        TokenType.GE,
        TokenType.EQ,
        TokenType.NE,
        TokenType.AND_AND,
        TokenType.OR_OR,
        TokenType.EOF,
    ]


def test_adjacent_single_char_operators():
    # "<-" is LT then MINUS, not an arrow.
    assert types("<-") == [TokenType.LT, TokenType.MINUS, TokenType.EOF]


def test_assign_vs_eq():
    assert types("= ==") == [TokenType.ASSIGN, TokenType.EQ, TokenType.EOF]


def test_punctuation():
    assert types("(){}[],;") == [
        TokenType.LPAREN,
        TokenType.RPAREN,
        TokenType.LBRACE,
        TokenType.RBRACE,
        TokenType.LBRACKET,
        TokenType.RBRACKET,
        TokenType.COMMA,
        TokenType.SEMICOLON,
        TokenType.EOF,
    ]


def test_line_comment_skipped():
    assert types("1 // comment until end\n2") == [
        TokenType.INT_LITERAL,
        TokenType.INT_LITERAL,
        TokenType.EOF,
    ]


def test_line_comment_at_eof_without_newline():
    assert types("1 // trailing") == [TokenType.INT_LITERAL, TokenType.EOF]


def test_block_comment_skipped():
    assert types("1 /* a\nb */ 2") == [
        TokenType.INT_LITERAL,
        TokenType.INT_LITERAL,
        TokenType.EOF,
    ]


def test_unterminated_block_comment_rejected():
    with pytest.raises(LexError):
        tokenize("1 /* never closed")


def test_unexpected_character_rejected():
    with pytest.raises(LexError):
        tokenize("a $ b")


def test_locations_track_lines_and_columns():
    tokens = tokenize("a\n  b")
    assert tokens[0].location.line == 1
    assert tokens[0].location.column == 1
    assert tokens[1].location.line == 2
    assert tokens[1].location.column == 3


def test_location_in_error_message():
    with pytest.raises(LexError) as exc:
        tokenize("x\n  $", filename="prog.c")
    assert "prog.c:2:3" in str(exc.value)


def test_int_value_on_non_literal_raises():
    token = tokenize("abc")[0]
    with pytest.raises(ValueError):
        token.int_value
