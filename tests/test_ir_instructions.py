"""Unit tests for IR instruction helpers and renderings."""


from repro.ir import (
    AddrOf,
    BinOp,
    Call,
    Cmp,
    CondBranch,
    Const,
    Jump,
    Load,
    LoadIndirect,
    Reg,
    RelOp,
    Return,
    Store,
    StoreIndirect,
    UnOp,
    Variable,
    VarKind,
    defined_reg,
    used_regs,
)

V = Variable("x", VarKind.LOCAL, 1, 1)
G = Variable("g", VarKind.GLOBAL, 4, 2, is_array=True)


def test_variable_str_prefixes():
    assert str(V) == "%x.1"
    assert str(G) == "@g.2"
    assert str(Reg(3)) == "t3"


def test_instruction_renderings():
    cases = [
        (Const(Reg(0), 5), "t0 = 5"),
        (BinOp(Reg(1), "+", Reg(0), 2), "t1 = t0 + 2"),
        (UnOp(Reg(2), "-", Reg(1)), "t2 = -t1"),
        (Cmp(Reg(3), RelOp.LT, Reg(1), 7), "t3 = t1 < 7"),
        (Load(Reg(4), V), "t4 = load %x.1"),
        (Store(V, Reg(4)), "store %x.1, t4"),
        (AddrOf(Reg(5), G), "t5 = addr @g.2"),
        (LoadIndirect(Reg(6), Reg(5)), "t6 = load [t5]"),
        (StoreIndirect(Reg(5), 9), "store [t5], 9"),
        (Call(Reg(7), "f", [Reg(6), 1]), "t7 = call f(t6, 1)"),
        (Call(None, "emit", [3]), "call emit(3)"),
        (Jump("bb2"), "jump bb2"),
        (
            CondBranch(Reg(7), RelOp.GE, 0, "bb1", "bb2"),
            "br t7 >= 0 ? bb1 : bb2",
        ),
        (Return(Reg(7)), "ret t7"),
        (Return(None), "ret"),
    ]
    for instruction, expected in cases:
        assert str(instruction) == expected


def test_defined_reg():
    assert defined_reg(Const(Reg(0), 1)) == Reg(0)
    assert defined_reg(Store(V, 1)) is None
    assert defined_reg(Jump("bb0")) is None
    assert defined_reg(Call(None, "emit", [1])) is None
    assert defined_reg(Call(Reg(2), "f", [])) == Reg(2)


def test_used_regs():
    assert used_regs(BinOp(Reg(2), "+", Reg(0), Reg(1))) == [Reg(0), Reg(1)]
    assert used_regs(BinOp(Reg(2), "+", Reg(0), 5)) == [Reg(0)]
    assert used_regs(Store(V, Reg(3))) == [Reg(3)]
    assert set(used_regs(StoreIndirect(Reg(1), Reg(2)))) == {Reg(1), Reg(2)}
    assert used_regs(Call(Reg(0), "f", [Reg(4), 2, Reg(5)])) == [Reg(4), Reg(5)]
    assert used_regs(Return(None)) == []
    assert used_regs(Return(Reg(9))) == [Reg(9)]
    assert used_regs(Const(Reg(0), 7)) == []


def test_relop_str_values():
    assert RelOp.LT.value == "<"
    assert RelOp.NE.value == "!="


def test_relop_negate_involution():
    for op in RelOp:
        assert op.negate().negate() is op


def test_relop_swap_involution():
    for op in RelOp:
        assert op.swap().swap() is op


def test_variable_identity_is_by_fields():
    a = Variable("x", VarKind.LOCAL, 1, 1)
    b = Variable("x", VarKind.LOCAL, 1, 1)
    shadow = Variable("x", VarKind.LOCAL, 1, 2)
    assert a == b
    assert a != shadow
    assert hash(a) == hash(b)
