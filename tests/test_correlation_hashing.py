"""Tests for the §5.2 collision-free hash search."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.correlation import (
    HashParams,
    HashSearchError,
    find_perfect_hash,
    minimum_bits,
)
from repro.ir import CODE_BASE, INSTRUCTION_BYTES


def pcs_strategy(max_count=48):
    """Realistic branch PC sets: word-aligned, clustered in a function."""
    return st.lists(
        st.integers(min_value=0, max_value=4000),
        min_size=0,
        max_size=max_count,
        unique=True,
    ).map(lambda offsets: [CODE_BASE + o * INSTRUCTION_BYTES for o in offsets])


def test_minimum_bits():
    assert minimum_bits(0) == 0
    assert minimum_bits(1) == 0
    assert minimum_bits(2) == 1
    assert minimum_bits(3) == 2
    assert minimum_bits(16) == 4
    assert minimum_bits(17) == 5


def test_empty_pc_set_gets_trivial_hash():
    result = find_perfect_hash([])
    assert result.params.space == 1
    assert result.trials == 0


def test_single_branch():
    result = find_perfect_hash([CODE_BASE])
    assert result.params.space == 1
    assert result.params.slot(CODE_BASE) == 0


def test_duplicate_pcs_rejected():
    with pytest.raises(HashSearchError):
        find_perfect_hash([CODE_BASE, CODE_BASE])


def test_hash_params_slot_is_within_space():
    params = HashParams(3, 7, 5)
    for pc in range(CODE_BASE, CODE_BASE + 4000, 4):
        assert 0 <= params.slot(pc) < params.space


def test_str_renderings():
    assert "2^5" in str(HashParams(3, 7, 5))


@settings(max_examples=60, deadline=None)
@given(pcs=pcs_strategy())
def test_found_hash_is_collision_free(pcs):
    result = find_perfect_hash(pcs)
    slots = [result.params.slot(pc) for pc in pcs]
    assert len(set(slots)) == len(pcs)
    assert all(0 <= s < result.params.space for s in slots)


@settings(max_examples=30, deadline=None)
@given(pcs=pcs_strategy(max_count=24))
def test_space_at_least_minimal(pcs):
    result = find_perfect_hash(pcs)
    assert result.params.space >= len(pcs)


def test_search_is_deterministic():
    rng = random.Random("hash-det")
    pcs = sorted(
        {CODE_BASE + rng.randrange(0, 2000) * 4 for _ in range(30)}
    )
    a = find_perfect_hash(pcs)
    b = find_perfect_hash(pcs)
    assert a == b


def test_dense_consecutive_branches():
    # Worst case locality: branches in consecutive instruction slots.
    pcs = [CODE_BASE + i * INSTRUCTION_BYTES for i in range(64)]
    result = find_perfect_hash(pcs)
    assert len({result.params.slot(pc) for pc in pcs}) == 64
