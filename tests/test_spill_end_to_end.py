"""End-to-end table-stack spilling under deep call chains."""

import pytest

from repro.cpu import IPDSHardwareParams, timed_run
from repro.pipeline import compile_program, monitored_run

DEEP_RECURSION = """
int g;
int walk(int n) {
  if (g < 100) { emit(1); }
  if (n <= 0) { return 0; }
  if (n % 2 == 0) { emit(2); }
  return walk(n - 1) + 1;
}
void main() {
  g = read_int();
  emit(walk(read_int()));
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_program(DEEP_RECURSION)


def test_deep_recursion_is_functionally_clean(program):
    result, ipds = monitored_run(program, inputs=[5, 40])
    assert result.ok
    assert not ipds.detected
    assert ipds.stats.max_stack_depth >= 41


def test_tiny_buffers_spill_under_recursion(program):
    params = IPDSHardwareParams(
        bsv_stack_bits=32, bcv_stack_bits=16, bat_stack_bits=256
    )
    result = timed_run(program, inputs=[5, 40], ipds_params=params)
    assert result.ipds_stats.spill_events > 0
    assert result.ipds_stats.spill_cycles > 0


def test_roomy_buffers_do_not_spill(program):
    result = timed_run(program, inputs=[5, 10], ipds_params=IPDSHardwareParams())
    assert result.ipds_stats.spill_events == 0


def test_spilling_costs_cycles_not_correctness(program):
    roomy = timed_run(program, inputs=[5, 40])
    tight = timed_run(
        program,
        inputs=[5, 40],
        ipds_params=IPDSHardwareParams(
            bsv_stack_bits=32, bcv_stack_bits=16, bat_stack_bits=256
        ),
    )
    # Same committed work, spills only slow the checker (and possibly
    # the core through the shared queue).
    assert tight.timing.instructions == roomy.timing.instructions
    assert tight.cycles >= roomy.cycles


def test_paper_sized_buffers_cover_workload_call_chains():
    """Table 1 buffers (2K/1K/32K bits) hold the active call chains of
    every workload, as §6 asserts — no spills in normal runs."""
    import random

    from repro.workloads import all_workloads

    for workload in all_workloads():
        program = compile_program(workload.source, workload.name)
        inputs = workload.make_inputs(random.Random(f"spill:{workload.name}"))
        result = timed_run(program, inputs)
        assert result.ipds_stats.spill_events == 0, workload.name
