"""Tests for the figure/table renderers and the reporting CLI."""

import pytest

from repro.attacks import AttackOutcome, CampaignSummary, WorkloadResult
from repro.cpu import PerformanceComparison
from repro.reporting import (
    Fig8Row,
    figure8_data,
    figure9_data,
    main,
    render_figure7,
    render_figure8,
    render_figure9,
    render_latency,
    render_table1,
)
from repro.workloads import all_workloads


def small_summary():
    result = WorkloadResult(workload="telnetd", vuln_kind="bof")
    result.attacks = [
        AttackOutcome(0, 2, 0x100, "main.x", 1, True, True, True, None, None),
        AttackOutcome(1, 2, 0x101, "main.y", 0, True, False, False, None, None),
    ]
    return CampaignSummary([result])


def test_render_figure7_contains_rows_and_averages():
    text = render_figure7(small_summary())
    assert "telnetd" in text
    assert "50.0%" in text  # changed
    assert "average" in text
    assert "paper" in text


def test_render_figure8():
    rows = [Fig8Row("telnetd", 64.0, 32.0, 500.0)]
    avg = Fig8Row("average", 64.0, 32.0, 500.0)
    text = render_figure8(rows, avg)
    assert "BSV" in text and "BAT" in text
    assert "500.0" in text


def test_render_table1_contains_all_rows():
    text = render_table1()
    for fragment in ("1 GHz", "RUU size", "BAT stack", "2 Level"):
        assert fragment in text


def test_render_figure9_and_latency():
    comparisons = [
        PerformanceComparison(
            workload="httpd",
            baseline_cycles=1000,
            ipds_cycles=1010,
            instructions=5000,
            avg_check_latency=6.5,
            commit_stalls=3,
        )
    ]
    fig9 = render_figure9(comparisons)
    assert "httpd" in fig9 and "0.9901" in fig9
    latency = render_latency(comparisons)
    assert "6.5 cycles" in latency


def test_figure8_data_covers_single_workload():
    workload = all_workloads()[0]
    rows, average = figure8_data(workloads=[workload])
    assert len(rows) == 1
    assert rows[0].workload == workload.name
    assert average.avg_bsv == rows[0].avg_bsv


def test_figure9_data_single_workload_small_scale():
    workload = all_workloads()[0]
    (comparison,) = figure9_data(scale=1, workloads=[workload])
    assert comparison.workload == workload.name
    assert comparison.baseline_cycles <= comparison.ipds_cycles


def test_cli_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out


def test_cli_fig8(capsys):
    assert main(["fig8"]) == 0
    out = capsys.readouterr().out
    assert "Figure 8" in out


def test_cli_rejects_unknown_artifact():
    with pytest.raises(SystemExit):
        main(["fig42"])


def test_normalized_performance_properties():
    comparison = PerformanceComparison(
        workload="x",
        baseline_cycles=100,
        ipds_cycles=125,
        instructions=1,
        avg_check_latency=0.0,
        commit_stalls=0,
    )
    assert comparison.normalized_performance == pytest.approx(0.8)
    assert comparison.degradation_pct == pytest.approx(20.0)
    zero = PerformanceComparison("x", 0, 0, 0, 0.0, 0)
    assert zero.normalized_performance == 1.0
