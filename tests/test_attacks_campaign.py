"""Tests for the attack campaign framework (Figure 7 methodology)."""

import pytest

from repro.attacks import (
    AttackOutcome,
    CampaignSummary,
    WorkloadResult,
    run_attack,
    run_workload_campaign,
)
from repro.pipeline import compile_program
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def telnetd():
    workload = get_workload("telnetd")
    return workload, compile_program(workload.source, workload.name)


def test_attack_outcome_fields(telnetd):
    workload, program = telnetd
    outcome = run_attack(program, workload, index=0)
    assert outcome.fired
    assert outcome.trigger_read >= workload.min_trigger_read
    assert "." in outcome.target_label


def test_attacks_are_deterministic(telnetd):
    workload, program = telnetd
    a = run_attack(program, workload, index=3)
    b = run_attack(program, workload, index=3)
    assert a == b


def test_different_indices_differ(telnetd):
    workload, program = telnetd
    outcomes = [run_attack(program, workload, index=i) for i in range(12)]
    # Different attacks pick different targets/values at least sometimes.
    assert len({(o.address, o.value) for o in outcomes}) > 1


def test_detection_implies_change(telnetd):
    workload, program = telnetd
    for i in range(40):
        outcome = run_attack(program, workload, index=i)
        if outcome.detected:
            assert outcome.control_flow_changed, outcome


def test_workload_result_rates(telnetd):
    workload, program = telnetd
    result = run_workload_campaign(workload, attacks=25, program=program)
    assert result.total == 25
    assert 0 <= result.detected <= result.changed <= result.total
    if result.changed:
        assert result.pct_detected_of_changed == pytest.approx(
            100.0 * result.detected / result.changed
        )


def test_rates_on_empty_result():
    result = WorkloadResult(workload="empty", vuln_kind="bof")
    assert result.pct_changed == 0.0
    assert result.pct_detected == 0.0
    assert result.pct_detected_of_changed == 0.0


def test_campaign_summary_averages():
    r1 = WorkloadResult(workload="a", vuln_kind="bof")
    r2 = WorkloadResult(workload="b", vuln_kind="bof")
    r1.attacks = [
        AttackOutcome(0, 2, 0, "x.y", 1, True, True, True, None, None),
        AttackOutcome(1, 2, 0, "x.y", 1, True, False, False, None, None),
    ]
    r2.attacks = [
        AttackOutcome(0, 2, 0, "x.y", 1, True, True, False, None, None),
        AttackOutcome(1, 2, 0, "x.y", 1, True, True, True, None, None),
    ]
    summary = CampaignSummary([r1, r2])
    assert summary.avg_pct_changed == pytest.approx(75.0)
    assert summary.avg_pct_detected == pytest.approx(50.0)
    assert summary.avg_pct_detected_of_changed == pytest.approx(
        100.0 * 50.0 / 75.0
    )


def test_fmt_workload_can_target_globals():
    workload = get_workload("sysklogd")
    program = compile_program(workload.source, workload.name)
    outcomes = [run_attack(program, workload, index=i) for i in range(30)]
    # At least one attack should have landed on a global (the fmt
    # surface includes them).
    assert any(o.target_label.startswith("<global>") for o in outcomes)
