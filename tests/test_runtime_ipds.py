"""Unit tests for the IPDS runtime: statuses, actions, stack protocol."""

import pytest

from repro.correlation import (
    BranchAction,
    BranchStatus,
    FunctionTables,
    HashParams,
    ProgramTables,
)
from repro.runtime import (
    Alarm,
    BranchEvent,
    BSVFrame,
    CallEvent,
    IPDS,
    IPDSError,
    ReturnEvent,
)


# ----------------------------------------------------------------------
# Statuses and actions
# ----------------------------------------------------------------------


def test_unknown_matches_any_direction():
    assert BranchStatus.UNKNOWN.matches(True)
    assert BranchStatus.UNKNOWN.matches(False)


def test_definite_status_matches_only_its_direction():
    assert BranchStatus.TAKEN.matches(True)
    assert not BranchStatus.TAKEN.matches(False)
    assert BranchStatus.NOT_TAKEN.matches(False)
    assert not BranchStatus.NOT_TAKEN.matches(True)


def test_status_of():
    assert BranchStatus.of(True) is BranchStatus.TAKEN
    assert BranchStatus.of(False) is BranchStatus.NOT_TAKEN


def test_actions_apply():
    assert BranchAction.SET_T.apply(BranchStatus.UNKNOWN) is BranchStatus.TAKEN
    assert BranchAction.SET_NT.apply(BranchStatus.TAKEN) is BranchStatus.NOT_TAKEN
    assert BranchAction.SET_UN.apply(BranchStatus.TAKEN) is BranchStatus.UNKNOWN
    assert BranchAction.NC.apply(BranchStatus.TAKEN) is BranchStatus.TAKEN


def test_action_set_to():
    assert BranchAction.set_to(True) is BranchAction.SET_T
    assert BranchAction.set_to(False) is BranchAction.SET_NT


# ----------------------------------------------------------------------
# Hand-built tables for protocol tests
# ----------------------------------------------------------------------

PC_A = 0x400010  # checked branch
PC_B = 0x400020  # unchecked branch whose actions drive PC_A


def make_tables():
    params = HashParams(1, 2, 4)
    slot_a = params.slot(PC_A)
    slot_b = params.slot(PC_B)
    assert slot_a != slot_b
    tables = FunctionTables(
        function_name="f",
        hash_params=params,
        branch_pcs=(PC_A, PC_B),
        bcv_slots=frozenset({slot_a}),
        bat={
            (slot_a, True): ((slot_a, BranchAction.SET_T),),
            (slot_a, False): ((slot_a, BranchAction.SET_NT),),
            (slot_b, True): ((slot_a, BranchAction.SET_UN),),
        },
    )
    return ProgramTables(by_function={"f": tables}), slot_a, slot_b


def test_bsv_frame_starts_unknown():
    program, slot_a, _ = make_tables()
    frame = BSVFrame(program.tables_for("f"))
    assert frame.status(slot_a) is BranchStatus.UNKNOWN
    assert frame.known_count == 0


def test_bsv_frame_apply_and_snapshot():
    program, slot_a, _ = make_tables()
    frame = BSVFrame(program.tables_for("f"))
    frame.apply(slot_a, BranchAction.SET_T)
    assert frame.status(slot_a) is BranchStatus.TAKEN
    assert frame.snapshot() == {slot_a: BranchStatus.TAKEN}
    frame.apply(slot_a, BranchAction.SET_UN)
    assert frame.known_count == 0


def test_first_execution_never_alarms():
    program, *_ = make_tables()
    ipds = IPDS(program)
    ipds.process(CallEvent("f"))
    alarm = ipds.process(BranchEvent("f", PC_A, True))
    assert alarm is None


def test_repeat_same_direction_passes():
    program, *_ = make_tables()
    ipds = IPDS(program)
    ipds.process(CallEvent("f"))
    ipds.process(BranchEvent("f", PC_A, True))
    assert ipds.process(BranchEvent("f", PC_A, True)) is None
    assert not ipds.detected


def test_direction_flip_alarms():
    program, *_ = make_tables()
    ipds = IPDS(program)
    ipds.process(CallEvent("f"))
    ipds.process(BranchEvent("f", PC_A, True))
    alarm = ipds.process(BranchEvent("f", PC_A, False))
    assert isinstance(alarm, Alarm)
    assert alarm.expected is BranchStatus.TAKEN
    assert alarm.actual_taken is False
    assert "infeasible path" in str(alarm)


def test_kill_action_forgives_direction_flip():
    program, *_ = make_tables()
    ipds = IPDS(program)
    ipds.process(CallEvent("f"))
    ipds.process(BranchEvent("f", PC_A, True))
    # PC_B taken fires SET_UN for PC_A's slot.
    ipds.process(BranchEvent("f", PC_B, True))
    assert ipds.process(BranchEvent("f", PC_A, False)) is None
    assert not ipds.detected


def test_unchecked_branch_never_verified():
    program, _, slot_b = make_tables()
    ipds = IPDS(program)
    ipds.process(CallEvent("f"))
    ipds.process(BranchEvent("f", PC_B, True))
    ipds.process(BranchEvent("f", PC_B, False))
    assert not ipds.detected
    assert ipds.stats.checks == 0
    assert ipds.stats.updates >= 1


def test_fresh_frame_per_activation():
    program, *_ = make_tables()
    ipds = IPDS(program)
    ipds.process(CallEvent("f"))
    ipds.process(BranchEvent("f", PC_A, True))
    # Recursive call: new frame starts UNKNOWN, so the flip is fine.
    ipds.process(CallEvent("f"))
    assert ipds.process(BranchEvent("f", PC_A, False)) is None
    # Back in the outer frame, the old expectation still applies.
    ipds.process(ReturnEvent("f"))
    alarm = ipds.process(BranchEvent("f", PC_A, False))
    assert alarm is not None


def test_stack_depth_tracked():
    program, *_ = make_tables()
    ipds = IPDS(program)
    ipds.process(CallEvent("f"))
    ipds.process(CallEvent("f"))
    assert ipds.stack_depth == 2
    assert ipds.stats.max_stack_depth == 2
    ipds.process(ReturnEvent("f"))
    assert ipds.stack_depth == 1


def test_halt_on_alarm_stops_processing():
    program, *_ = make_tables()
    ipds = IPDS(program, halt_on_alarm=True)
    ipds.process(CallEvent("f"))
    ipds.process(BranchEvent("f", PC_A, True))
    ipds.process(BranchEvent("f", PC_A, False))  # alarm + halt
    ipds.process(BranchEvent("f", PC_A, False))  # ignored
    assert len(ipds.alarms) == 1


def test_run_consumes_stream():
    program, *_ = make_tables()
    ipds = IPDS(program)
    alarms = ipds.run(
        [
            CallEvent("f"),
            BranchEvent("f", PC_A, True),
            BranchEvent("f", PC_A, False),
            ReturnEvent("f"),
        ]
    )
    assert len(alarms) == 1


# ----------------------------------------------------------------------
# Protocol violations (runtime bugs, not attacks)
# ----------------------------------------------------------------------


def test_unknown_function_call_rejected():
    program, *_ = make_tables()
    ipds = IPDS(program)
    with pytest.raises(IPDSError):
        ipds.process(CallEvent("ghost"))


def test_return_with_empty_stack_rejected():
    program, *_ = make_tables()
    ipds = IPDS(program)
    with pytest.raises(IPDSError):
        ipds.process(ReturnEvent("f"))


def test_mismatched_return_rejected():
    tables_a, *_ = make_tables()
    tables_a.by_function["g"] = tables_a.by_function["f"]
    ipds = IPDS(tables_a)
    ipds.process(CallEvent("f"))
    with pytest.raises(IPDSError):
        ipds.process(ReturnEvent("g"))


def test_branch_with_empty_stack_rejected():
    program, *_ = make_tables()
    ipds = IPDS(program)
    with pytest.raises(IPDSError):
        ipds.process(BranchEvent("f", PC_A, True))


def test_branch_from_wrong_function_rejected():
    program, *_ = make_tables()
    program.by_function["g"] = program.by_function["f"]
    ipds = IPDS(program)
    ipds.process(CallEvent("f"))
    with pytest.raises(IPDSError):
        ipds.process(BranchEvent("g", PC_A, True))
