"""Tests for BAT/BCV construction against the paper's own examples."""

import pytest

from repro.correlation import (
    BranchAction,
    build_program_tables,
)
from repro.ir import lower_program
from repro.lang import parse_program


def tables_for(source, fn_name="f"):
    module = lower_program(parse_program(source))
    program, stats = build_program_tables(module)
    return module, program.by_function[fn_name], stats


def branch_pc_by_var(module, tables, var_name):
    """PC of the (sole) checked/analyzable branch on a variable."""
    pcs = [m.pc for m in tables.branch_meta if m.var_name == var_name]
    assert len(pcs) == 1, f"{var_name}: {tables.branch_meta}"
    return pcs[0]


def actions_of(tables, pc, taken):
    return {
        target: action for target, action in tables.actions_for(pc, taken)
    }


# ----------------------------------------------------------------------
# Figure 3.a / Figure 4: the paper's running example
# ----------------------------------------------------------------------

FIGURE_3A = """
int x;
int y;
void f() {
  while (read_int()) {
    if (y < 5) { emit(1); }              // BR1
    if (x > 10) { x = read_int(); }      // BR2; BB3 redefines x
    else { y = read_int(); }             // BB4 redefines y
    if (y < 10) { emit(2); }             // BR5
  }
}
"""


@pytest.fixture(scope="module")
def fig3a():
    module = lower_program(parse_program(FIGURE_3A))
    program, stats = build_program_tables(module)
    return module, program.by_function["f"]


def test_fig3a_br1_taken_sets_br5_taken(fig3a):
    module, tables = fig3a
    # Two branches are on y (BR1: y<5 and BR5: y<10); BR1 lowers first.
    y_pcs = sorted(m.pc for m in tables.branch_meta if m.var_name == "y")
    br1, br5 = y_pcs
    slot5 = tables.hash_params.slot(br5)
    slot1 = tables.hash_params.slot(br1)
    acts = actions_of(tables, br1, taken=True)
    # y < 5 subsumes y < 10: BR1 taken => BR5 taken, and BR1 itself.
    assert acts.get(slot5) is BranchAction.SET_T
    assert acts.get(slot1) is BranchAction.SET_T


def test_fig3a_br1_not_taken_does_not_determine_br5(fig3a):
    module, tables = fig3a
    y_pcs = sorted(m.pc for m in tables.branch_meta if m.var_name == "y")
    br1, br5 = y_pcs
    slot5 = tables.hash_params.slot(br5)
    acts = actions_of(tables, br1, taken=False)
    # y >= 5 does not decide y < 10 — no SET_T/SET_NT for BR5.
    assert acts.get(slot5) in (None, BranchAction.SET_UN)


def test_fig3a_br5_not_taken_sets_br1_not_taken(fig3a):
    module, tables = fig3a
    y_pcs = sorted(m.pc for m in tables.branch_meta if m.var_name == "y")
    br1, br5 = y_pcs
    slot1 = tables.hash_params.slot(br1)
    acts = actions_of(tables, br5, taken=False)
    # y >= 10 subsumes y >= 5: BR5 not-taken => BR1 not-taken.
    assert acts.get(slot1) is BranchAction.SET_NT


def test_fig3a_br2_taken_kills_br2(fig3a):
    # BR2 taken enters BB3 which redefines x => BR2's status UNKNOWN
    # (Figure 4's narrative).
    module, tables = fig3a
    br2 = branch_pc_by_var(module, tables, "x")
    slot2 = tables.hash_params.slot(br2)
    acts = actions_of(tables, br2, taken=True)
    assert acts.get(slot2) is BranchAction.SET_UN


def test_fig3a_br2_not_taken_keeps_self_correlation(fig3a):
    # BR2 not-taken goes through BB4 (redefines y, not x): next time
    # BR2 must again be not-taken (scenario 2).
    module, tables = fig3a
    br2 = branch_pc_by_var(module, tables, "x")
    slot2 = tables.hash_params.slot(br2)
    acts = actions_of(tables, br2, taken=False)
    assert acts.get(slot2) is BranchAction.SET_NT


def test_fig3a_br2_not_taken_kills_y_branches(fig3a):
    # BB4 redefines y: entering it must reset BR1/BR5 to unknown
    # (Figure 4: "This causes the status vector of BR5 to be unknown").
    module, tables = fig3a
    br2 = branch_pc_by_var(module, tables, "x")
    y_pcs = sorted(m.pc for m in tables.branch_meta if m.var_name == "y")
    br1, br5 = y_pcs
    acts = actions_of(tables, br2, taken=False)
    assert acts.get(tables.hash_params.slot(br5)) is BranchAction.SET_UN
    assert acts.get(tables.hash_params.slot(br1)) is BranchAction.SET_UN


def test_fig3a_bcv_contains_all_three_branches(fig3a):
    module, tables = fig3a
    y_pcs = sorted(m.pc for m in tables.branch_meta if m.var_name == "y")
    br2 = branch_pc_by_var(module, tables, "x")
    for pc in [*y_pcs, br2]:
        assert tables.is_checked(pc)


def test_fig3a_loop_driver_branch_not_checked(fig3a):
    # The while(read_int()) branch depends on a call result: never
    # checkable (the compiler cannot infer anything about it).
    module, tables = fig3a
    analyzed = {m.pc for m in tables.branch_meta if m.var_name is not None}
    all_pcs = set(tables.branch_pcs)
    unanalyzed = all_pcs - analyzed
    assert len(unanalyzed) == 1
    (driver_pc,) = unanalyzed
    assert not tables.is_checked(driver_pc)


# ----------------------------------------------------------------------
# Figure 2: loop with backward branch
# ----------------------------------------------------------------------


def test_figure2_subsumption_across_loop():
    # if (x < 0) … then the x < 10 check later must be taken.
    source = """
    int x;
    void f() {
      while (read_int()) {
        if (x < 0) { emit(1); }
        if (x < 10) { emit(2); }
      }
    }
    """
    module, tables, _ = tables_for(source)
    pcs = sorted(m.pc for m in tables.branch_meta if m.var_name == "x")
    br_neg, br_ten = pcs
    acts = actions_of(tables, br_neg, taken=True)
    assert acts.get(tables.hash_params.slot(br_ten)) is BranchAction.SET_T


# ----------------------------------------------------------------------
# Structural properties
# ----------------------------------------------------------------------


def test_unanalyzable_function_has_empty_tables():
    source = "void f() { emit(read_int()); }"
    module, tables, _ = tables_for(source)
    assert tables.branch_pcs == ()
    assert tables.bcv_slots == frozenset()
    assert dict(tables.bat) == {}


def test_branch_without_correlation_not_in_bcv():
    # A single branch on a variable that is redefined on every path to
    # re-reaching it cannot be predicted.
    source = """
    int x;
    void f() {
      while (read_int()) {
        if (x < 5) { emit(1); }
        x = read_int();
      }
    }
    """
    module, tables, _ = tables_for(source)
    # The x-branch's own-edge regions contain the x redefinition, so
    # every potential SET resolves to UN and the BCV stays empty.
    assert tables.bcv_slots == frozenset()


def test_kill_edges_cover_call_pseudo_stores():
    source = """
    int g;
    void clobber() { g = read_int(); }
    void f() {
      while (read_int()) {
        if (g < 5) { emit(1); }
        if (read_int()) { clobber(); }
      }
    }
    """
    module = lower_program(parse_program(source))
    program, _ = build_program_tables(module)
    tables = program.by_function["f"]
    g_pc = [m.pc for m in tables.branch_meta if m.var_name == "g"]
    if not tables.bcv_slots:
        pytest.skip("g branch not checkable in this lowering")
    (g_pc,) = g_pc
    g_slot = tables.hash_params.slot(g_pc)
    # The branch guarding the clobber() call must kill g's status on its
    # taken edge.
    kill_edges = [
        key
        for key, entries in tables.bat.items()
        if (g_slot, BranchAction.SET_UN) in entries
    ]
    assert kill_edges, tables.describe()


def test_conflicting_inferences_resolve_to_unknown():
    # if (x < 5) then inside: if (x > 20) — taken-taken is statically
    # infeasible; the builder must not emit contradictory SETs.
    source = """
    int x;
    void f() {
      while (read_int()) {
        if (x < 5) {
          if (x > 20) { emit(1); }
        }
      }
    }
    """
    module, tables, stats = tables_for(source)
    # x<5 taken implies x>20 not-taken: SET_NT, never SET_T.
    pcs = sorted(m.pc for m in tables.branch_meta if m.var_name == "x")
    outer, inner = pcs
    acts = actions_of(tables, outer, taken=True)
    inner_slot = tables.hash_params.slot(inner)
    assert acts.get(inner_slot) is BranchAction.SET_NT


def test_build_stats_populated():
    module, tables, stats = tables_for(FIGURE_3A)
    (fn_stats,) = stats
    assert fn_stats.branches == 4
    assert fn_stats.checked == 3
    assert fn_stats.hash_trials >= 1


def test_describe_renders():
    module, tables, _ = tables_for(FIGURE_3A)
    text = tables.describe()
    assert "tables for f" in text
    assert "BCV" in text
