"""Tests for the top-level pipeline API surface."""


from repro import (
    IPDS,
    ProtectedProgram,
    RunStatus,
    compile_program,
    monitored_run,
    unmonitored_run,
)
from repro.correlation.binary_image import load_program

SOURCE = """
int flag;
void main() {
  flag = read_int();
  while (read_int()) {
    if (flag == 1) { emit(1); } else { emit(2); }
  }
}
"""


def test_compile_program_returns_protected_program():
    program = compile_program(SOURCE, "api.c")
    assert isinstance(program, ProtectedProgram)
    assert program.source_name == "api.c"
    assert program.module.finalized
    assert program.build_stats


def test_new_ipds_instances_are_independent():
    program = compile_program(SOURCE)
    a = program.new_ipds()
    b = program.new_ipds()
    assert a is not b
    assert isinstance(a, IPDS)


def test_monitored_and_unmonitored_agree():
    program = compile_program(SOURCE)
    inputs = [1, 1, 1, 1, 0]
    bare = unmonitored_run(program, inputs=inputs)
    observed, ipds = monitored_run(program, inputs=inputs)
    assert bare.outputs == observed.outputs == [1, 1, 1]
    assert not ipds.detected


def test_step_limit_threads_through():
    program = compile_program("void main() { while (1) { } }")
    result, _ = monitored_run(program, step_limit=500)
    assert result.status is RunStatus.STEP_LIMIT


def test_entry_override():
    source = "void other() { emit(42); } void main() { emit(1); }"
    program = compile_program(source)
    result = unmonitored_run(program, entry="other")
    assert result.outputs == [42]


def test_to_image_roundtrip():
    program = compile_program(SOURCE)
    image = program.to_image()
    loaded, entries = load_program(image)
    assert set(loaded.by_function) == {"main"}
    assert entries["main"] == program.module.function_extent("main")[0]


def test_opt_level_changes_module_but_not_behaviour():
    plain = compile_program(SOURCE)
    opt = compile_program(SOURCE, opt_level=1)
    inputs = [1, 1, 1, 0]
    a = unmonitored_run(plain, inputs=inputs)
    b = unmonitored_run(opt, inputs=inputs)
    assert a.outputs == b.outputs
    # Optimization removed at least one instruction on this shape.
    assert b.steps <= a.steps


def test_version_exposed():
    import repro

    assert repro.__version__
