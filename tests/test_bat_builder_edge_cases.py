"""Deeper BAT-construction tests: calls, aliases, kills, recursion."""

import pytest

from repro.correlation import BranchAction, build_program_tables
from repro.ir import lower_program
from repro.lang import parse_program
from repro.pipeline import compile_program, monitored_run


def tables_for(source, fn_name="main"):
    module = lower_program(parse_program(source))
    program, stats = build_program_tables(module)
    return module, program.by_function[fn_name], stats


def branch_pcs_on(tables, var_name):
    return sorted(m.pc for m in tables.branch_meta if m.var_name == var_name)


# ----------------------------------------------------------------------
# Kills through calls (§5.3)
# ----------------------------------------------------------------------


def test_pure_callee_does_not_kill():
    source = """
    int g;
    int double_it(int v) { return v + v; }
    void main() {
      g = read_int();
      while (read_int()) {
        if (g < 5) { emit(double_it(g)); }
      }
    }
    """
    module, tables, _ = tables_for(source)
    (pc,) = branch_pcs_on(tables, "g")
    assert tables.is_checked(pc)
    slot = tables.hash_params.slot(pc)
    # The g-branch's own edges keep definite self-correlations.
    acts_taken = dict(tables.actions_for(pc, True))
    assert acts_taken.get(slot) is BranchAction.SET_T


def test_clobbering_callee_kills_via_call_site():
    source = """
    int g;
    void scramble() { g = read_int(); }
    void main() {
      g = read_int();
      while (read_int()) {
        if (g < 5) { scramble(); }
      }
    }
    """
    module, tables, _ = tables_for(source)
    pcs = branch_pcs_on(tables, "g")
    if not pcs:
        pytest.skip("branch not analyzable")
    (pc,) = pcs
    slot = tables.hash_params.slot(pc)
    # Taking the branch runs scramble(): that edge must kill.
    acts_taken = dict(tables.actions_for(pc, True))
    assert acts_taken.get(slot) in (None, BranchAction.SET_UN)
    # Not taking it leaves g alone: self-correlation survives.
    acts_fall = dict(tables.actions_for(pc, False))
    assert acts_fall.get(slot) is BranchAction.SET_NT


def test_pointer_callee_kills_local_check():
    source = """
    void poke(int *p) { *p = read_int(); }
    void main() {
      int x = read_int();
      while (read_int()) {
        if (x < 5) { poke(&x); }
      }
    }
    """
    module, tables, _ = tables_for(source)
    pcs = branch_pcs_on(tables, "x")
    if pcs:
        (pc,) = pcs
        slot = tables.hash_params.slot(pc)
        acts_taken = dict(tables.actions_for(pc, True))
        assert acts_taken.get(slot) in (None, BranchAction.SET_UN)
    # Soundness check at runtime regardless of static outcome.
    program = compile_program(source)
    _, ipds = monitored_run(program, inputs=[1, 1, 3, 1, 9, 1, 2, 0])
    assert not ipds.detected


def test_recursive_function_self_kills():
    # The recursive call clobbers the global; checks across the call
    # must be killed, and clean runs must stay alarm-free.
    source = """
    int g;
    void rec(int n) {
      if (g < 3) { emit(1); }
      if (n > 0) {
        g = g + 1;
        rec(n - 1);
      }
      if (g < 3) { emit(2); }
    }
    void main() { g = 0; rec(read_int()); }
    """
    program = compile_program(source)
    for n in (0, 1, 2, 3, 5, 8):
        _, ipds = monitored_run(program, inputs=[n])
        assert not ipds.detected, n


# ----------------------------------------------------------------------
# Aliased stores (§5.1)
# ----------------------------------------------------------------------


def test_aliased_store_kills_all_candidates():
    source = """
    void main() {
      int a = read_int();
      int b = read_int();
      int *p;
      if (read_int()) { p = &a; } else { p = &b; }
      while (read_int()) {
        if (a < 5) { emit(1); }
        *p = read_int();
        if (a < 5) { emit(2); }
      }
    }
    """
    # Whatever the static tables decide, dynamic behaviour must be
    # sound for both aliasing outcomes.
    program = compile_program(source)
    for selector in (1, 0):
        inputs = [3, 3, selector, 1, 9, 1, 2, 1, 7, 0]
        _, ipds = monitored_run(program, inputs=inputs)
        assert not ipds.detected, selector


def test_unknown_address_store_kills_everything():
    source = """
    int g;
    void main() {
      g = read_int();
      while (read_int()) {
        if (g < 5) { emit(1); }
        int wild = read_int();
        *wild = read_int();
        if (g < 5) { emit(2); }
      }
    }
    """
    module, tables, _ = tables_for(source)
    # The wild store makes every edge that reaches it kill g's checks;
    # there may be no checked branches left at all.
    program = compile_program(source)
    from repro.interp import GLOBAL_BASE

    # Even a run whose wild store hits g itself must not false-alarm.
    inputs = [3, 1, GLOBAL_BASE, 99, 1, GLOBAL_BASE, 2, 0]
    _, ipds = monitored_run(program, inputs=inputs)
    assert not ipds.detected


# ----------------------------------------------------------------------
# Cross-function isolation
# ----------------------------------------------------------------------


def test_tables_are_per_function():
    source = """
    int g;
    void helper() { if (g < 3) { emit(1); } }
    void main() {
      g = read_int();
      if (g < 3) { emit(2); }
      helper();
    }
    """
    module = lower_program(parse_program(source))
    program, _ = build_program_tables(module)
    main_tables = program.by_function["main"]
    helper_tables = program.by_function["helper"]
    assert set(main_tables.branch_pcs).isdisjoint(helper_tables.branch_pcs)
    # The helper's branch is not correlated with main's (per-function
    # analysis + per-activation BSV): each function has at most its own
    # entries.
    for entries in main_tables.bat.values():
        for slot, _ in entries:
            assert slot in {
                main_tables.hash_params.slot(pc)
                for pc in main_tables.branch_pcs
            }


def test_stats_conflict_counter():
    # Statically contradictory nesting exercises conflict resolution.
    source = """
    int x;
    void main() {
      while (read_int()) {
        if (x < 5) {
          if (x > 20) { emit(1); }
        }
      }
    }
    """
    module, tables, stats = tables_for(source)
    (fn_stats,) = [s for s in stats if s.function_name == "main"]
    assert fn_stats.conflicts >= 0  # structural smoke (no crash)
    assert fn_stats.branches == 3
