"""Integration tests for the timing model and the IPDS hardware model."""

import random

import pytest

from repro.cpu import IPDSHardwareModel, IPDSHardwareParams, normalized_performance, timed_run
from repro.pipeline import compile_program
from repro.workloads import get_workload

LOOPY = """
int n;
void main() {
  n = read_int();
  int s = 0;
  for (int i = 0; i < n; i = i + 1) {
    if (s < 1000) { s = s + i; }
  }
  emit(s);
}
"""


@pytest.fixture(scope="module")
def loopy():
    return compile_program(LOOPY)


def test_timed_run_executes_and_counts(loopy):
    result = timed_run(loopy, inputs=[50])
    assert result.run.ok
    assert result.timing.instructions == result.run.steps
    assert result.timing.cycles > 0
    assert 0 < result.ipc <= 8  # bounded by the commit width


def test_cycles_scale_with_work(loopy):
    small = timed_run(loopy, inputs=[10])
    large = timed_run(loopy, inputs=[1000])
    assert large.cycles > small.cycles * 5


def test_timed_run_deterministic(loopy):
    a = timed_run(loopy, inputs=[200])
    b = timed_run(loopy, inputs=[200])
    assert a.cycles == b.cycles
    assert a.timing.instructions == b.timing.instructions


def test_baseline_never_slower_than_ipds(loopy):
    comp = normalized_performance(loopy, inputs=[500])
    assert comp.baseline_cycles <= comp.ipds_cycles
    assert 0.0 <= comp.normalized_performance <= 1.0


def test_ipds_latency_positive_when_checked(loopy):
    result = timed_run(loopy, inputs=[100], with_ipds=True)
    assert result.ipds_stats is not None
    assert result.ipds_stats.requests > 0
    if result.ipds_stats.checks:
        assert result.ipds_stats.avg_check_latency > 0


def test_predictor_accuracy_high_on_regular_loop(loopy):
    result = timed_run(loopy, inputs=[2000])
    assert result.predictor_accuracy > 0.9


def test_tiny_queue_costs_performance():
    workload = get_workload("sendmail")
    program = compile_program(workload.source, workload.name)
    inputs = workload.make_inputs(random.Random("timing"), scale=5)
    roomy = normalized_performance(
        program, inputs, ipds_params=IPDSHardwareParams(request_queue_size=64)
    )
    tiny = normalized_performance(
        program, inputs, ipds_params=IPDSHardwareParams(request_queue_size=2)
    )
    assert tiny.ipds_cycles >= roomy.ipds_cycles
    assert tiny.commit_stalls >= roomy.commit_stalls


def test_workload_degradation_is_small():
    workload = get_workload("telnetd")
    program = compile_program(workload.source, workload.name)
    inputs = workload.make_inputs(random.Random("deg"), scale=10)
    comp = normalized_performance(program, inputs, workload.name)
    # The paper's headline: sub-percent degradation in most cases.
    assert comp.degradation_pct < 5.0
    assert comp.normalized_performance > 0.95


def test_check_latency_in_paper_ballpark():
    # §6 reports 11.7 cycles on average; ours should be the same order
    # (single digits to low tens).
    workload = get_workload("httpd")
    program = compile_program(workload.source, workload.name)
    inputs = workload.make_inputs(random.Random("lat"), scale=10)
    result = timed_run(program, inputs)
    assert 1.0 <= result.ipds_stats.avg_check_latency <= 40.0


# ----------------------------------------------------------------------
# IPDS hardware model in isolation
# ----------------------------------------------------------------------


def test_spill_fires_when_stack_outgrows_buffers():
    source = """
    int g;
    void leaf() { if (g < 1) { emit(1); } if (g < 2) { emit(2); } }
    void mid() { leaf(); if (g < 3) { emit(3); } }
    void main() { g = read_int(); mid(); if (g < 4) { emit(4); } }
    """
    program = compile_program(source)
    # Absurdly small buffers force spilling on every nested call.
    params = IPDSHardwareParams(
        bsv_stack_bits=4, bcv_stack_bits=2, bat_stack_bits=8
    )
    hw = IPDSHardwareModel(program.tables, params)
    hw.on_call("main", 0)
    hw.on_call("mid", 10)
    hw.on_call("leaf", 20)
    assert hw.stats.spill_events > 0
    spills_before = hw.stats.spill_events
    hw.on_return(30)  # leaf returns; mid's frame may need a fill
    assert hw.stats.spill_events >= spills_before


def test_no_spill_with_roomy_buffers():
    workload = get_workload("sysklogd")
    program = compile_program(workload.source, workload.name)
    hw = IPDSHardwareModel(program.tables, IPDSHardwareParams())
    hw.on_call("main", 0)
    assert hw.stats.spill_events == 0


def test_branch_in_unknown_function_is_free():
    workload = get_workload("telnetd")
    program = compile_program(workload.source, workload.name)
    hw = IPDSHardwareModel(program.tables)
    assert hw.on_branch("not_a_function", 0x400000, True, 0) == 0
    assert hw.stats.requests == 0


def test_queue_backpressure_stalls_commit():
    workload = get_workload("telnetd")
    program = compile_program(workload.source, workload.name)
    tables = program.tables.tables_for("main")
    pc = tables.branch_pcs[0]
    hw = IPDSHardwareModel(
        program.tables, IPDSHardwareParams(request_queue_size=2)
    )
    hw.on_call("main", 0)
    # Hammer the same cycle with requests; the third+ must stall.
    stalls = [hw.on_branch("main", pc, True, 0) for _ in range(6)]
    assert any(s > 0 for s in stalls)
    assert hw.stats.commit_stalls > 0
