"""docs/STATIC_CHECKS.md must stay in sync with the CODES catalog."""

import pathlib
import re

from repro.staticcheck import CODES

DOC = pathlib.Path(__file__).parent.parent / "docs" / "STATIC_CHECKS.md"


def documented_rows():
    rows = {}
    for line in DOC.read_text().splitlines():
        match = re.match(
            r"\| `([A-Z]+\d{3})` \| (error|warning|note) \| (.+) \|$", line
        )
        if match:
            rows[match.group(1)] = (match.group(2), match.group(3))
    return rows


def test_every_code_is_documented_exactly():
    rows = documented_rows()
    assert set(rows) == set(CODES)
    for code, info in CODES.items():
        severity, title = rows[code]
        assert severity == info.severity.value, code
        assert title == info.title, code
