"""Tests for trace serialization and offline replay."""

import io

import pytest

from repro import TamperSpec, compile_program
from repro.interp import MemoryMap, run_program
from repro.runtime import BranchEvent, CallEvent, ReturnEvent
from repro.runtime.replay import (
    TraceFormatError,
    TraceRecorder,
    dump_trace,
    event_from_json,
    event_to_json,
    load_trace,
    replay,
)

SOURCE = """
int user;
void main() {
  user = read_int();
  if (user == 0) { emit(1); } else { emit(2); }
  int x = read_int();
  if (user == 0) { emit(3); } else { emit(4); }
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_program(SOURCE)


def record(program, inputs, tamper=None):
    recorder = TraceRecorder()
    run_program(
        program.module,
        inputs=inputs,
        tamper=tamper,
        event_listeners=[recorder],
    )
    return recorder.events


def test_event_json_roundtrip():
    events = [
        CallEvent("main"),
        BranchEvent("main", 0x400010, True),
        BranchEvent("main", 0x400020, False),
        ReturnEvent("main"),
    ]
    for event in events:
        assert event_from_json(event_to_json(event)) == event


def test_bad_lines_rejected():
    with pytest.raises(TraceFormatError):
        event_from_json("not json")
    with pytest.raises(TraceFormatError):
        event_from_json('{"k": "mystery"}')
    with pytest.raises(TraceFormatError):
        event_from_json('{"k": "br"}')


def test_dump_and_load_stream(program):
    events = record(program, inputs=[5, 1])
    buffer = io.StringIO()
    count = dump_trace(events, buffer)
    assert count == len(events)
    buffer.seek(0)
    assert list(load_trace(buffer)) == events


def test_blank_lines_skipped():
    buffer = io.StringIO('\n{"k": "call", "fn": "main"}\n\n')
    assert list(load_trace(buffer)) == [CallEvent("main")]


def test_offline_replay_matches_online(program):
    address = MemoryMap(program.module).global_addresses[
        program.module.globals[0]
    ]
    tamper = TamperSpec("read", 2, address, 0)
    events = record(program, inputs=[5, 1], tamper=tamper)
    # Round-trip through serialization, then replay offline.
    buffer = io.StringIO()
    dump_trace(events, buffer)
    buffer.seek(0)
    alarms = replay(program.tables, load_trace(buffer))
    assert len(alarms) == 1
    assert alarms[0].function_name == "main"


def test_clean_replay_is_silent(program):
    events = record(program, inputs=[5, 1])
    assert replay(program.tables, events) == []


def test_replay_halt_on_alarm(program):
    address = MemoryMap(program.module).global_addresses[
        program.module.globals[0]
    ]
    events = record(
        program, inputs=[0, 1], tamper=TamperSpec("read", 2, address, 9)
    )
    alarms = replay(program.tables, events, halt_on_alarm=True)
    assert len(alarms) == 1
