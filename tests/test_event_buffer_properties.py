"""Property tests for the interpreter's flat event buffer.

The batched delivery path accumulates committed instructions in a
preallocated buffer and flushes it at control-flow and run boundaries.
Its contract (:mod:`repro.runtime.observer`): batching changes only the
*call granularity* — every observer sees the exact interleaving of
instructions and control-flow events the per-instruction path produced,
with nothing dropped, duplicated, or reordered.  These properties check
that over randomly generated mini-C programs, random tamperings (alarms
landing mid-segment), and a deliberately tiny flight recorder (ring
evictions during a flush).
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import TamperSpec, compile_program
from repro.interp import GLOBAL_BASE, STACK_BASE
from repro.interp.interpreter import Interpreter
from repro.runtime.flight_recorder import FlightRecorder
from repro.runtime.observer import ExecutionObserver

from .test_zero_false_positives import programs

INPUT_STREAMS = st.lists(st.integers(-50, 50), min_size=0, max_size=20)


class FlatLog(ExecutionObserver):
    """Records the full event interleaving one entry per instruction.

    Only ``on_instruction`` is overridden, so on the batched path the
    base-class unroll flattens each batch through it — the log is
    directly comparable between deliveries.
    """

    def __init__(self):
        self.entries = []
        self.finished = 0

    def on_call(self, event):
        self.entries.append(("call", event.function_name))

    def on_return(self, event):
        self.entries.append(("return", event.function_name))

    def on_branch(self, event):
        self.entries.append(
            ("branch", event.function_name, event.pc, event.taken)
        )

    def on_instruction(self, instruction, touched):
        # Instruction objects are interned per module, so identity is a
        # sound equality for cross-run comparison of the same program.
        self.entries.append(("insn", id(instruction), touched))

    def finish(self):
        self.finished += 1


class BatchLog(FlatLog):
    """A batch-aware recorder: copies each batch out of the reused
    buffer itself, checking the producer's buffer discipline."""

    def __init__(self):
        super().__init__()
        self.batches = 0

    def on_instruction_batch(self, instructions, touched, count):
        assert 0 < count <= len(instructions)
        assert len(touched) == len(instructions)
        self.batches += 1
        entries = self.entries
        for index in range(count):
            entries.append(("insn", id(instructions[index]), touched[index]))


def _run(program, inputs, observers, batched, tamper=None):
    interpreter = Interpreter(
        program.module,
        inputs=inputs,
        tamper=tamper,
        step_limit=20_000,
        observers=observers,
        trace_branches=False,
        batched_delivery=batched,
    )
    return interpreter.run()


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(source=programs(), inputs=INPUT_STREAMS)
def test_batched_interleaving_identical_to_reference(source, inputs):
    """Random interleavings of branches/calls/instructions flush in
    order: the batched log equals the per-instruction log exactly."""
    program = compile_program(source, "random.c")
    reference = FlatLog()
    ref_result = _run(program, inputs, [reference], batched=False)
    for log in (FlatLog(), BatchLog()):
        result = _run(program, inputs, [log], batched=True)
        assert result.status is ref_result.status
        assert result.steps == ref_result.steps
        assert result.outputs == ref_result.outputs
        assert log.entries == reference.entries, source
        assert log.finished == reference.finished == 1
    insn_count = sum(1 for e in reference.entries if e[0] == "insn")
    assert insn_count == ref_result.steps


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    source=programs(),
    inputs=st.lists(st.integers(-50, 50), min_size=2, max_size=15),
    seed=st.integers(0, 10_000),
)
def test_buffer_survives_mid_segment_alarms(source, inputs, seed):
    """A tampered run can raise IPDS alarms between flushes; the event
    stream and the alarm set must stay delivery-invariant."""
    program = compile_program(source, "random.c")
    rng = random.Random(seed)
    address = rng.choice(
        [GLOBAL_BASE + rng.randrange(0, 8), STACK_BASE + rng.randrange(0, 12)]
    )
    tamper = TamperSpec(
        "step",
        rng.randrange(1, 200),
        address,
        rng.choice([0, 1, -1, 7, -999, 0x41414141]),
    )
    ref_ipds = program.new_ipds()
    reference = FlatLog()
    _run(program, inputs, [ref_ipds, reference], batched=False, tamper=tamper)

    ipds = program.new_ipds()
    log = BatchLog()
    _run(program, inputs, [ipds, log], batched=True, tamper=tamper)

    assert log.entries == reference.entries
    assert [str(a) for a in ipds.alarms] == [str(a) for a in ref_ipds.alarms]
    assert ipds.detected == ref_ipds.detected


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    source=programs(),
    inputs=st.lists(st.integers(-50, 50), min_size=2, max_size=15),
    seed=st.integers(0, 10_000),
    depth=st.integers(1, 4),
)
def test_buffer_survives_flight_recorder_eviction(source, inputs, seed, depth):
    """A tiny flight-recorder ring evicts constantly while the buffer
    flushes; its final contents must still be delivery-invariant."""
    program = compile_program(source, "random.c")
    rng = random.Random(seed)
    tamper = TamperSpec(
        "step",
        rng.randrange(1, 200),
        GLOBAL_BASE + rng.randrange(0, 8),
        rng.choice([0, -1, 0x41414141]),
    )

    def capture(batched):
        recorder = FlightRecorder(depth=depth)
        ipds = program.new_ipds(flight_recorder=recorder)
        _run(program, inputs, [ipds], batched=batched, tamper=tamper)
        return (
            [str(a) for a in ipds.alarms],
            [r.to_dict() for r in recorder.records],
            recorder.total_recorded,
            recorder.evictions,
        )

    assert capture(batched=True) == capture(batched=False)
