"""Zero-false-positive regression: the paper's headline invariant.

Every registered workload, run clean under IPDS monitoring, must raise
no alarms — at opt levels 0, 1, 2 and 3, serially and sharded across two
worker processes.  Until now this was only spot-checked inside attack
campaigns; here it is a standing regression gate over the whole
registry.
"""

import random

import pytest

from repro.attacks import CampaignError
from repro.parallel import run_clean_sweep
from repro.pipeline import compile_program_cached, monitored_run
from repro.workloads import all_workloads, workload_names

SESSIONS = 3


@pytest.mark.parametrize(
    "opt_level", [0, 1, 2, 3], ids=["opt0", "opt1", "opt2", "opt3"]
)
@pytest.mark.parametrize("name", workload_names())
def test_clean_runs_never_alarm(name, opt_level):
    workload = next(w for w in all_workloads() if w.name == name)
    program = compile_program_cached(workload.source, workload.name, opt_level)
    for session in range(SESSIONS):
        rng = random.Random(f"zfp:{name}:{session}")
        inputs = workload.make_inputs(rng)
        result, ipds = monitored_run(program, inputs=inputs, step_limit=500_000)
        assert not ipds.detected, (
            name,
            opt_level,
            session,
            [str(alarm) for alarm in ipds.alarms],
        )


@pytest.mark.parametrize(
    "opt_level", [0, 1, 2, 3], ids=["opt0", "opt1", "opt2", "opt3"]
)
def test_clean_sweep_serial(opt_level):
    runs = run_clean_sweep(sessions=2, opt_level=opt_level, jobs=1)
    assert runs == 2 * len(workload_names())


@pytest.mark.parametrize(
    "opt_level", [0, 1, 2, 3], ids=["opt0", "opt1", "opt2", "opt3"]
)
def test_clean_sweep_sharded(opt_level):
    """The same invariant must hold through the parallel engine."""
    runs = run_clean_sweep(sessions=2, opt_level=opt_level, jobs=2)
    assert runs == 2 * len(workload_names())


def test_clean_sweep_raises_on_alarm(monkeypatch):
    """A single alarm anywhere must abort the sweep loudly."""
    from repro.parallel import engine

    real = engine._run_clean_shard

    def poisoned(task):
        alarms = real(task)
        if task.workload == "httpd":
            alarms = alarms + ["httpd[injected]: synthetic alarm"]
        return alarms

    monkeypatch.setattr(engine, "_run_clean_shard", poisoned)
    with pytest.raises(CampaignError, match="false positive"):
        engine.run_clean_sweep(sessions=1, jobs=1)
