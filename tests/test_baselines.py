"""Tests for the n-gram baseline detector and the comparison harness."""

import pytest

from repro.baselines import NGramDetector, capture_trace, compare_detectors
from repro.pipeline import compile_program
from repro.workloads import get_workload


# ----------------------------------------------------------------------
# NGramDetector
# ----------------------------------------------------------------------


def test_untrained_detector_flags_everything():
    detector = NGramDetector(n=3)
    assert detector.detects(["a", "b", "c"])


def test_trained_trace_is_clean():
    detector = NGramDetector(n=3)
    detector.train(["a", "b", "c", "d"])
    assert not detector.detects(["a", "b", "c", "d"])
    assert detector.mismatches(["a", "b", "c", "d"]) == 0


def test_novel_subsequence_detected():
    detector = NGramDetector(n=3)
    detector.train(["open", "read", "write", "close"])
    assert detector.detects(["open", "write", "read", "close"])


def test_prefix_windows_padded():
    detector = NGramDetector(n=4)
    detector.train(["a", "b"])
    # A different start is a different padded window.
    assert detector.detects(["b", "a"])
    assert not detector.detects(["a", "b"])


def test_mismatch_count_scales():
    detector = NGramDetector(n=2)
    detector.train(["a", "a", "a", "a"])
    assert detector.mismatches(["a", "b", "a", "b"]) >= 2


def test_empty_trace_never_flags():
    detector = NGramDetector(n=5)
    assert not detector.detects([])


def test_training_accumulates():
    detector = NGramDetector(n=2)
    detector.train(["a", "b"])
    detector.train(["b", "a"])
    assert detector.trained_traces == 2
    assert not detector.detects(["a", "b"])
    assert not detector.detects(["b", "a"])
    assert detector.profile_size > 0


# ----------------------------------------------------------------------
# Trace capture
# ----------------------------------------------------------------------


def test_capture_trace_symbols_are_call_sites():
    program = compile_program(
        "void main() { emit(read_int()); emit(2); }"
    )
    trace, branches, detected = capture_trace(program, inputs=[7])
    assert len(trace) == 3
    assert trace[0].startswith("read_int@")
    assert trace[1].startswith("emit@")
    # Two emit call sites are distinct symbols.
    assert trace[1] != trace[2]
    assert not detected


def test_capture_trace_reports_ipds_detection():
    from repro import TamperSpec
    from repro.interp import MemoryMap

    source = """
    int user;
    void main() {
      user = read_int();
      if (user == 0) { emit(1); } else { emit(2); }
      int x = read_int();
      if (user == 0) { emit(3); } else { emit(4); }
    }
    """
    program = compile_program(source)
    address = MemoryMap(program.module).global_addresses[
        program.module.globals[0]
    ]
    _, _, clean_detected = capture_trace(program, inputs=[5, 1])
    assert not clean_detected
    _, _, detected = capture_trace(
        program, inputs=[5, 1], tamper=TamperSpec("read", 2, address, 0)
    )
    assert detected


# ----------------------------------------------------------------------
# The comparison harness
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", ["httpd"])
def test_compare_detectors_end_to_end(name):
    workload = get_workload(name)
    result = compare_detectors(
        workload, attacks=15, train_sessions=15, test_sessions=10
    )
    assert result.workload == name
    assert result.profile_size > 0
    assert 0 <= result.ngram_false_positives <= result.clean_sessions_tested
    assert result.ipds_detected <= result.changed
    assert result.ngram_detected <= result.changed
    # Rates are well-defined.
    assert 0.0 <= result.ngram_fp_rate <= 100.0


def test_comparison_deterministic():
    workload = get_workload("sysklogd")
    program = compile_program(workload.source, workload.name)
    a = compare_detectors(
        workload, attacks=8, train_sessions=8, test_sessions=8, program=program
    )
    b = compare_detectors(
        workload, attacks=8, train_sessions=8, test_sessions=8, program=program
    )
    assert a == b
