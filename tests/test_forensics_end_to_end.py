"""Acceptance test for the forensics layer: over the attack registry's
detected attacks on all ten workloads at opt 0 and 1, every alarm is
explained against the provenance sidecar round-tripped through the
binary image, and forensics never perturbs campaign results."""

import dataclasses

import pytest

from repro.attacks import attack_rng, run_attack, run_workload_campaign
from repro.correlation.binary_image import load_program
from repro.forensics import explain_alarms
from repro.interp.interpreter import TamperSpec
from repro.pipeline import compile_program_cached, monitored_run
from repro.runtime.flight_recorder import FlightRecorder
from repro.workloads import get_workload, workload_names

#: Attack indices scanned per workload/opt; the sparsest workload
#: (portmap) first detects at index 29 under the registry's seeds.
MAX_SCAN = 36
#: Detected attacks verified per workload/opt (scan stops early).
WANTED = 2
#: Generous ring so setters stay resident and reports fully explain.
DEPTH = 512


def _detected_attacks(program, workload):
    found = 0
    for index in range(MAX_SCAN):
        outcome = run_attack(program, workload, index)
        if outcome.detected and outcome.fired:
            yield index, outcome
            found += 1
            if found >= WANTED:
                return


def _replay_with_recorder(program, workload, index, outcome):
    """Re-run attack ``index`` exactly (same rng-derived inputs, same
    tamper) with a flight recorder attached."""
    inputs = workload.make_inputs(attack_rng("", workload.name, index))
    recorder = FlightRecorder(DEPTH)
    tamper = TamperSpec(
        "read", outcome.trigger_read, outcome.address, outcome.value
    )
    _, ipds = monitored_run(
        program,
        inputs=inputs,
        tamper=tamper,
        step_limit=500_000,
        flight_recorder=recorder,
    )
    return recorder, ipds


@pytest.mark.parametrize("opt_level", [0, 1], ids=["opt0", "opt1"])
@pytest.mark.parametrize("name", workload_names())
def test_registry_alarms_explained_through_sidecar(name, opt_level):
    workload = get_workload(name)
    program = compile_program_cached(workload.source, name, opt_level)
    # The acceptance bar: explanations must come from tables that went
    # through the packed binary image, sidecar and all.
    roundtripped, _ = load_program(program.to_image())

    explained_any = False
    for index, outcome in _detected_attacks(program, workload):
        recorder, ipds = _replay_with_recorder(
            program, workload, index, outcome
        )
        assert ipds.detected, (name, index)
        reports = explain_alarms(roundtripped, recorder, ipds.alarms)
        assert len(reports) == len(ipds.alarms)
        for report in reports:
            if not report.explained:
                # Degradation is only legitimate when the setter truly
                # is not in the (deep) ring; it must say so.
                assert report.notes, (name, index, report)
                continue
            explained_any = True
            # The violated correlation must be the compiler's own
            # record for the setter->alarm BAT entry, as recovered
            # from the sidecar.
            compiled = program.tables.tables_for(
                report.function
            ).provenance_for(
                report.setter.pc, report.setter.taken, report.alarm.pc
            )
            assert compiled is not None
            assert report.provenance == compiled
            # And the record's action matches the installed status the
            # alarming branch contradicted.
            wanted = {"T": "SET_T", "NT": "SET_NT"}[report.expected]
            assert report.provenance.action == wanted
            assert report.transition.after == report.alarm.expected
    assert explained_any, (
        f"{name}@opt{opt_level}: no attack produced a fully explained "
        f"alarm in {MAX_SCAN} tries"
    )


@pytest.mark.parametrize("name", ["telnetd", "sshd"])
def test_forensics_does_not_perturb_campaigns(name):
    """Forensics on vs off: identical outcomes except the forensics-only
    fields (explanations, proof_reasons), which are empty when off — so
    forensics-off reports are byte-identical to a build without the
    feature."""
    workload = get_workload(name)
    program = compile_program_cached(workload.source, name, 0)
    base = run_workload_campaign(
        workload, attacks=10, program=program, forensics=False
    )
    traced = run_workload_campaign(
        workload, attacks=10, program=program, forensics=True
    )
    for off, on in zip(base.attacks, traced.attacks):
        assert off.explanations == ()
        assert off.proof_reasons == ()
        if on.detected:
            assert on.explanations
            assert len(on.proof_reasons) == len(on.alarms)
        assert dataclasses.replace(
            on, explanations=(), proof_reasons=()
        ) == off


def test_campaign_forensics_chains_name_the_correlation():
    workload = get_workload("telnetd")
    program = compile_program_cached(workload.source, "telnetd", 0)
    result = run_workload_campaign(
        workload,
        attacks=12,
        program=program,
        forensics=True,
        flight_recorder_depth=DEPTH,
    )
    chains = [c for o in result.attacks for c in o.explanations]
    assert chains
    assert any("because" in chain for chain in chains)
