"""Prometheus text exposition: rendering and the CI validator."""

import pytest

from repro.observability import (
    MetricsRegistry,
    render_prometheus,
    validate_exposition,
    write_prometheus,
)
from repro.observability.prometheus import sanitize_metric_name


def _loaded_registry():
    registry = MetricsRegistry()
    registry.increment("serve.submitted", 12)
    registry.set_gauge("serve.sessions_active", 3)
    registry.observe_seconds("compile", 0.25)
    registry.observe_seconds("compile", 0.75)
    registry.observe_histogram("session.wall_seconds", 0.002)
    registry.observe_histogram("session.wall_seconds", 0.004)
    registry.observe_histogram("session.steps_per_sec", 250_000.0)
    return registry


def test_render_covers_every_metric_kind():
    text = render_prometheus(_loaded_registry())
    assert "# TYPE repro_serve_submitted_total counter" in text
    assert "repro_serve_submitted_total 12" in text
    assert "# TYPE repro_serve_sessions_active gauge" in text
    assert "# TYPE repro_compile_seconds summary" in text
    assert "repro_compile_seconds_count 2" in text
    assert "repro_compile_seconds_sum 1.0" in text
    assert "# TYPE repro_session_wall_seconds histogram" in text
    assert 'repro_session_wall_seconds_bucket{le="+Inf"} 2' in text
    assert "repro_session_wall_seconds_count 2" in text


def test_rendered_exposition_validates_clean():
    assert validate_exposition(render_prometheus(_loaded_registry())) == []
    assert validate_exposition("") == []
    assert render_prometheus(MetricsRegistry()) == ""


def test_histogram_buckets_are_cumulative_and_end_at_count():
    text = render_prometheus(_loaded_registry())
    lines = [
        line for line in text.splitlines()
        if line.startswith("repro_session_wall_seconds_bucket")
    ]
    counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
    assert counts == sorted(counts)
    assert counts[-1] == 2
    assert lines[-1].startswith(
        'repro_session_wall_seconds_bucket{le="+Inf"}'
    )


def test_validator_catches_bad_grammar_and_broken_histograms():
    assert validate_exposition("not a metric line\n") != []
    non_cumulative = (
        'x_bucket{le="1"} 5\n'
        'x_bucket{le="+Inf"} 3\n'
        "x_count 3\n"
    )
    errors = validate_exposition(non_cumulative)
    assert any("not cumulative" in error for error in errors)
    mismatched = (
        'y_bucket{le="1"} 1\n'
        'y_bucket{le="+Inf"} 2\n'
        "y_count 5\n"
    )
    errors = validate_exposition(mismatched)
    assert any("!= _count" in error for error in errors)


def test_sanitize_metric_name():
    assert sanitize_metric_name("session.wall_seconds") == (
        "session_wall_seconds"
    )
    assert sanitize_metric_name("9lives") == "_9lives"
    assert sanitize_metric_name("ok_name:x") == "ok_name:x"


def test_render_accepts_plain_snapshots_identically():
    registry = _loaded_registry()
    assert render_prometheus(registry.snapshot()) == render_prometheus(
        registry
    )


def test_write_prometheus_round_trips_through_a_file(tmp_path):
    path = tmp_path / "metrics.prom"
    text = write_prometheus(_loaded_registry(), str(path))
    assert path.read_text() == text
    assert validate_exposition(path.read_text()) == []


def test_small_float_values_stay_parseable():
    registry = MetricsRegistry()
    registry.observe_histogram("tiny", 1e-6)
    registry.set_gauge("rate", 2e-06)
    assert validate_exposition(render_prometheus(registry)) == []


@pytest.mark.parametrize("prefix", ["repro", "acme"])
def test_prefix_is_applied_everywhere(prefix):
    text = render_prometheus(_loaded_registry(), prefix=prefix)
    for line in text.splitlines():
        name = line.split()[2] if line.startswith("#") else line.split()[0]
        assert name.startswith(f"{prefix}_")
