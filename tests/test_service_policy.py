"""Tests for the pluggable alarm policies (log / kill / quarantine)."""

import json

import pytest

from repro.cli import main
from repro.service import (
    DetectionSession,
    KillSessionPolicy,
    LogPolicy,
    QuarantinePolicy,
    SessionSpec,
    SessionState,
    make_policy,
)
from repro.workloads.registry import get_workload


def _attack_spec(workload="telnetd", index=1, **overrides):
    fields = dict(
        mode="attack", workload=workload, attack_index=index, forensics=True
    )
    fields.update(overrides)
    return SessionSpec(**fields)


def test_log_policy_records_every_alarm():
    session = DetectionSession(_attack_spec(), policy=LogPolicy())
    result = session.execute()
    assert session.state is SessionState.ALARMED
    assert result.alarms
    log_actions = [
        action for action in result.policy_actions
        if action["action"] == "log"
    ]
    assert len(log_actions) == len(result.alarms)
    assert result.alarms[0] in log_actions[0]["detail"]


def test_kill_policy_terminates_on_first_alarm():
    logged = DetectionSession(_attack_spec(), policy=LogPolicy())
    logged.execute()

    killed = DetectionSession(_attack_spec(), policy=KillSessionPolicy())
    result = killed.execute()
    assert killed.state is SessionState.KILLED
    # The first alarm is recorded before the kill, and it is the same
    # alarm the log-policy session saw first.
    assert result.alarms == logged.result.alarms[:1]
    assert result.policy_actions[0]["action"] == "kill-session"
    # The killed execution stopped at the alarm: no outcome record was
    # produced (the attack recipe never finished).
    assert result.outcome is None


def test_kill_policy_is_inert_on_clean_sessions():
    session = DetectionSession(
        _attack_spec(index=0), policy=KillSessionPolicy()
    )
    result = session.execute()
    assert session.state is SessionState.COMPLETED
    assert result.policy_actions == []
    assert result.outcome is not None


def test_quarantine_policy_writes_replayable_trace(tmp_path):
    quarantine = tmp_path / "quarantine"
    session = DetectionSession(
        _attack_spec(workload="atftpd", index=3),
        session_id="s42",
        policy=QuarantinePolicy(str(quarantine)),
    )
    result = session.execute()
    assert session.state is SessionState.ALARMED

    actions = {action["action"] for action in result.policy_actions}
    assert "quarantine" in actions
    trace_path = quarantine / "s42" / "trace.jsonl"
    manifest_path = quarantine / "s42" / "manifest.json"
    assert trace_path.exists()
    manifest = json.loads(manifest_path.read_text())
    assert manifest["session"] == "s42"
    assert manifest["program"] == "atftpd"
    assert manifest["alarms"] == result.alarms

    # Round trip: the quarantined trace replays through the offline
    # checker with the identical alarms.
    rc = main(["replay", "atftpd", str(trace_path)])
    assert rc == 2


def test_quarantined_trace_replays_with_same_alarms(tmp_path, capsys):
    quarantine = tmp_path / "quarantine"
    session = DetectionSession(
        _attack_spec(workload="atftpd", index=3),
        session_id="s1",
        policy=QuarantinePolicy(str(quarantine)),
    )
    result = session.execute()
    main(["replay", "atftpd", str(quarantine / "s1" / "trace.jsonl")])
    out = capsys.readouterr().out
    replayed = [
        line.split("ALARM: ", 1)[1]
        for line in out.splitlines()
        if line.startswith("ALARM: ")
    ]
    assert replayed == result.alarms


def test_quarantine_policy_skips_clean_sessions(tmp_path):
    quarantine = tmp_path / "quarantine"
    session = DetectionSession(
        _attack_spec(index=0), policy=QuarantinePolicy(str(quarantine))
    )
    result = session.execute()
    assert session.state is SessionState.COMPLETED
    assert result.policy_actions == []
    assert not quarantine.exists()


def test_make_policy_factory(tmp_path):
    assert make_policy(None).name == "log"
    assert make_policy("log").name == "log"
    assert make_policy("kill-session").name == "kill-session"
    policy = make_policy({"kind": "quarantine", "dir": str(tmp_path)})
    assert policy.name == "quarantine"
    assert policy.wants_trace is True
    fallback = make_policy("quarantine", quarantine_dir=str(tmp_path))
    assert fallback.directory == str(tmp_path)
    with pytest.raises(ValueError):
        make_policy("quarantine")
    with pytest.raises(ValueError):
        make_policy("detonate")
    with pytest.raises(ValueError):
        make_policy(42)
