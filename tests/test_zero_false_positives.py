"""Property-based soundness tests.

The paper's central guarantee is *zero false positives*: on any
untampered execution, the IPDS never raises an alarm (§6).  The dual
soundness property is that an alarm implies the tampering actually
changed control flow.  Both are checked here over randomly generated
mini-C programs and random single-word tamperings.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import TamperSpec, compile_program, monitored_run, unmonitored_run
from repro.interp import GLOBAL_BASE, STACK_BASE

# ----------------------------------------------------------------------
# A random-program generator
# ----------------------------------------------------------------------

GLOBALS = ["g0", "g1", "g2"]
LOCALS = ["a", "b", "c"]
ALL_VARS = GLOBALS + LOCALS
#: Scalars whose address may be taken (pointer targets).
POINTABLE = ["g0", "g1", "a", "b"]
RELOPS = ["<", "<=", ">", ">=", "==", "!="]

#: Helper functions available to generated programs: a pure one, a
#: global-clobbering one, and a pointer-writing one — exercising the
#: §5.3 purity classes.
HELPERS = """
int pure_inc(int v) { return v + 1; }
void clobber(int v) { g2 = v; }
void poke(int *p, int v) { *p = v; }
"""


def _safe_index(expr):
    """An always-in-bounds index for the 4-element array (UB-free)."""
    return f"(({expr}) % 4 + 4) % 4"


@st.composite
def expressions(draw):
    kind = draw(st.integers(0, 7))
    var = draw(st.sampled_from(ALL_VARS))
    const = draw(st.integers(-20, 20))
    if kind == 0:
        return str(const)
    if kind == 1:
        return var
    if kind == 2:
        return f"{var} + {const}"
    if kind == 3:
        return f"{var} - {const}"
    if kind == 4:
        return f"arr[{_safe_index(var)}]"
    if kind == 5:
        return f"pure_inc({var})"
    if kind == 6:
        return "*p"
    return "read_int()"


@st.composite
def conditions(draw):
    var = draw(st.sampled_from(ALL_VARS))
    op = draw(st.sampled_from(RELOPS))
    if draw(st.booleans()):
        rhs = str(draw(st.integers(-15, 15)))
    else:
        rhs = draw(st.sampled_from(ALL_VARS))
    return f"{var} {op} {rhs}"


@st.composite
def statements(draw, depth):
    kind = draw(st.integers(0, 9 if depth > 0 else 7))
    if kind == 0:
        var = draw(st.sampled_from(ALL_VARS))
        return [f"{var} = {draw(expressions())};"]
    if kind == 1:
        return [f"emit({draw(expressions())});"]
    if kind == 6:
        target = draw(st.sampled_from(POINTABLE))
        return [f"p = &{target};"]
    if kind == 7:
        choice = draw(st.integers(0, 3))
        value = draw(expressions())
        if choice == 0:
            return [f"*p = {value};"]
        if choice == 1:
            index_var = draw(st.sampled_from(ALL_VARS))
            return [f"arr[{_safe_index(index_var)}] = {value};"]
        if choice == 2:
            return [f"clobber({value});"]
        return [f"poke(p, {value});"]
    if kind == 2 or kind == 3:
        cond = draw(conditions())
        body = draw(blocks(depth - 1)) if depth > 0 else ["emit(0);"]
        lines = [f"if ({cond}) {{", *body, "}"]
        if draw(st.booleans()):
            else_body = draw(blocks(depth - 1)) if depth > 0 else ["emit(1);"]
            lines += ["else {", *else_body, "}"]
        return lines
    if kind == 4:
        # A counted loop (always terminates) with a free condition check
        # inside.
        bound = draw(st.integers(1, 6))
        counter = f"i{draw(st.integers(0, 99))}"
        body = draw(blocks(depth - 1))
        return [
            f"for (int {counter} = 0; {counter} < {bound}; "
            f"{counter} = {counter} + 1) {{",
            *body,
            "}",
        ]
    # Nested braces.
    return ["{", *draw(blocks(depth - 1)), "}"]


@st.composite
def blocks(draw, depth):
    count = draw(st.integers(1, 3))
    lines = []
    for _ in range(count):
        lines.extend(draw(statements(depth)))
    return lines


@st.composite
def programs(draw):
    body = draw(blocks(depth=2))
    decls = [f"int {name};" for name in GLOBALS]
    local_decls = [f"  int {name} = read_int();" for name in LOCALS]
    local_decls += ["  int arr[4];", "  int *p = &g0;"]
    return "\n".join(
        decls
        + [HELPERS]
        + ["void main() {"]
        + local_decls
        + ["  " + line for line in body]
        + ["}"]
    )


INPUT_STREAMS = st.lists(st.integers(-50, 50), min_size=0, max_size=30)


# ----------------------------------------------------------------------
# Property 1: no alarms on clean runs, ever.
# ----------------------------------------------------------------------


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(source=programs(), inputs=INPUT_STREAMS)
def test_clean_runs_never_alarm(source, inputs):
    program = compile_program(source, "random.c")
    result, ipds = monitored_run(program, inputs=inputs, step_limit=20_000)
    assert not ipds.detected, (
        source,
        inputs,
        [str(a) for a in ipds.alarms],
    )


# ----------------------------------------------------------------------
# Property 2: an alarm implies the tampering changed control flow.
# ----------------------------------------------------------------------


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    source=programs(),
    inputs=st.lists(st.integers(-50, 50), min_size=2, max_size=20),
    seed=st.integers(0, 10_000),
)
def test_alarm_implies_control_flow_change(source, inputs, seed):
    program = compile_program(source, "random.c")
    clean = unmonitored_run(program, inputs=inputs, step_limit=20_000)
    rng = random.Random(seed)
    address = rng.choice(
        [GLOBAL_BASE + rng.randrange(0, 8), STACK_BASE + rng.randrange(0, 12)]
    )
    tamper = TamperSpec(
        "step",
        rng.randrange(1, max(2, clean.steps or 2)),
        address,
        rng.choice([0, 1, -1, 7, -999, 0x41414141]),
    )
    attacked, ipds = monitored_run(
        program, inputs=inputs, tamper=tamper, step_limit=20_000
    )
    if ipds.detected:
        assert (
            attacked.branch_trace != clean.branch_trace
            or attacked.status is not clean.status
        ), (source, inputs, tamper)


# ----------------------------------------------------------------------
# Property 3: the monitored run is a pure observer — identical program
# behaviour with and without the IPDS attached.
# ----------------------------------------------------------------------


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(source=programs(), inputs=INPUT_STREAMS)
def test_monitoring_does_not_perturb_execution(source, inputs):
    program = compile_program(source, "random.c")
    bare = unmonitored_run(program, inputs=inputs, step_limit=20_000)
    observed, _ = monitored_run(program, inputs=inputs, step_limit=20_000)
    assert bare.outputs == observed.outputs
    assert bare.branch_trace == observed.branch_trace
    assert bare.status is observed.status
    assert bare.steps == observed.steps
