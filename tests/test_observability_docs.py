"""docs/OBSERVABILITY.md must stay in sync with the source catalogs.

Like the STATIC_CHECKS sync test, but the catalog is the source
itself: every histogram / trace-span name literal in ``src/repro``
must be documented, and every documented name must still exist in the
source — so the doc tables can neither rot nor invent.
"""

import pathlib
import re

DOC = pathlib.Path(__file__).parent.parent / "docs" / "OBSERVABILITY.md"
SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"

HISTOGRAM_CALL = re.compile(r'observe_histogram\(\s*"([^"]+)"')
SPAN_CALLS = (
    re.compile(r'maybe_span\(\s*(?:self\.)?[\w.]+,\s*"([^"]+)"'),
    re.compile(r'tracer\.span\(\s*"([^"]+)"'),
)


def source_names():
    histograms, spans = set(), set()
    for path in SRC.rglob("*.py"):
        text = path.read_text()
        histograms.update(HISTOGRAM_CALL.findall(text))
        for pattern in SPAN_CALLS:
            spans.update(pattern.findall(text))
    return histograms, spans


def documented_table(section):
    """First-column `code` names of the table under ``### <section>``."""
    text = DOC.read_text()
    match = re.search(
        rf"^### {section}$(.*?)(?=^#{{2,3}} |\Z)",
        text,
        re.MULTILINE | re.DOTALL,
    )
    assert match, f"docs/OBSERVABILITY.md lost its '### {section}' table"
    return set(re.findall(r"^\| `([^`]+)` \|", match.group(1), re.MULTILINE))


def test_every_histogram_is_documented_exactly():
    histograms, _spans = source_names()
    assert histograms, "histogram scan found nothing — regex rotted?"
    assert documented_table("Histograms") == histograms


def test_every_span_is_documented_exactly():
    _histograms, spans = source_names()
    assert spans, "span scan found nothing — regex rotted?"
    assert documented_table("Spans") == spans
