"""Tests for the diagnostics-based IR verifier (pass: ir-verify).

The legacy raise-on-first-error behavior of ``ir/validate.py`` is
covered by the existing IR test suite; these tests exercise what the
rewrite added — multiple findings per run, call-graph checks, CFG edge
agreement, and unreachability warnings.
"""

import pytest

from repro.ir import (
    BasicBlock,
    Call,
    IRError,
    Return,
    lower_program,
    verify_module,
)
from repro.lang import parse_program
from repro.staticcheck import Severity, verify_module_diagnostics

SOURCE = """
int x;
void helper(int a) { emit(a); }
void main() {
    x = read_int();
    helper(x);
    if (x > 0) { emit(1); } else { emit(2); }
}
"""


def lowered():
    return lower_program(parse_program(SOURCE))


def find_call(fn, callee):
    for block in fn.blocks:
        for instr in block.instructions:
            if isinstance(instr, Call) and instr.callee == callee:
                return instr
    raise AssertionError(f"no call to {callee}")


def test_clean_module_has_no_findings():
    assert verify_module_diagnostics(lowered()) == []


def test_call_to_unknown_function_is_ir111():
    module = lowered()
    find_call(module.function("main"), "helper").callee = "nope"
    codes = [d.code for d in verify_module_diagnostics(module)]
    assert "IR111" in codes


def test_call_arity_mismatch_is_ir112():
    module = lowered()
    call = find_call(module.function("main"), "helper")
    call.args = call.args + call.args
    codes = [d.code for d in verify_module_diagnostics(module)]
    assert "IR112" in codes


def test_value_use_of_void_builtin_is_ir112():
    module = lowered()
    main = module.function("main")
    emit_call = find_call(main, "emit")
    helper_call = find_call(main, "helper")
    emit_call.dest = find_call(main, "read_int").dest
    diagnostics = verify_module_diagnostics(module)
    # Reuses an existing register, so IR104 fires too — one run reports
    # every independent violation, unlike the old first-error verifier.
    codes = {d.code for d in diagnostics}
    assert {"IR104", "IR112"} <= codes
    assert helper_call.dest is None  # untouched call stays legal


def test_unreachable_block_is_a_warning_not_an_error():
    module = lowered()
    main = module.function("main")
    orphan = BasicBlock(label="orphan")
    ret = Return(value=None)
    # finalize() would sweep the unreachable block away, so place the
    # instruction address by hand to keep IR110 quiet.
    ret.address = (
        max(i.address for fn in module.functions for i in fn.instructions())
        + 4
    )
    orphan.instructions.append(ret)
    main.blocks.append(orphan)
    diagnostics = verify_module_diagnostics(module)
    [diag] = [d for d in diagnostics if d.code == "IR114"]
    assert diag.severity is Severity.WARNING
    assert diag.span.block == "orphan"
    # The compat shim only raises on errors; warnings pass through.
    verify_module(module)


def test_tampered_edge_lists_are_ir113():
    module = lowered()
    module.finalize()
    assert verify_module_diagnostics(module) == []
    main = module.function("main")
    for block in main.blocks:
        if block.succs:
            block.succs = list(reversed(block.succs)) + [block]
            break
    codes = [d.code for d in verify_module_diagnostics(module)]
    assert "IR113" in codes


def test_compat_shim_raises_with_span_in_message():
    module = lowered()
    find_call(module.function("main"), "helper").callee = "nope"
    with pytest.raises(IRError, match="main.*unknown function 'nope'"):
        verify_module(module)
