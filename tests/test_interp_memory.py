"""Tests for the memory map and frame layout."""

import pytest

from repro.interp import (
    GLOBAL_BASE,
    MemoryMap,
    STACK_BASE,
    layout_frame,
)
from repro.ir import lower_program
from repro.lang import parse_program


def lower(source):
    return lower_program(parse_program(source))


def var_named(holder, name):
    candidates = getattr(holder, "frame_variables", None)
    if candidates is None:
        candidates = holder.globals
    for var in candidates:
        if var.name == name:
            return var
    raise AssertionError(name)


def test_globals_laid_out_in_declaration_order():
    module = lower("int a; int b[3]; int c; void main() { }")
    mm = MemoryMap(module)
    a = mm.global_addresses[var_named(module, "a")]
    b = mm.global_addresses[var_named(module, "b")]
    c = mm.global_addresses[var_named(module, "c")]
    assert a == GLOBAL_BASE
    assert b == a + 1
    assert c == b + 3  # array occupies 3 words


def test_global_initializers_populate_memory():
    module = lower("int a = 5; int b = -2; void main() { }")
    mm = MemoryMap(module)
    assert mm.read(mm.global_addresses[var_named(module, "a")]) == 5
    assert mm.read(mm.global_addresses[var_named(module, "b")]) == -2


def test_uninitialized_reads_zero():
    module = lower("void main() { }")
    mm = MemoryMap(module)
    assert mm.read(0xDEADBEEF) == 0


def test_write_then_read():
    module = lower("void main() { }")
    mm = MemoryMap(module)
    mm.write(0x2000, -77)
    assert mm.read(0x2000) == -77


def test_frame_layout_params_then_locals():
    module = lower("void f(int p, int q) { int l; int arr[4]; int m; }")
    fn = module.function("f")
    layout = layout_frame(fn)
    p = layout.offsets[var_named(fn, "p")]
    q = layout.offsets[var_named(fn, "q")]
    loc = layout.offsets[var_named(fn, "l")]
    arr = layout.offsets[var_named(fn, "arr")]
    m = layout.offsets[var_named(fn, "m")]
    assert (p, q) == (0, 1)
    assert loc == 2
    assert arr == 3
    assert m == 7  # after the 4-word array
    assert layout.size == 8


def test_address_of_local_needs_frame_base():
    module = lower("void f() { int x; }")
    mm = MemoryMap(module)
    x = var_named(module.function("f"), "x")
    with pytest.raises(KeyError):
        mm.address_of(x, None)
    assert mm.address_of(x, STACK_BASE) == STACK_BASE


def test_address_of_global_ignores_frame():
    module = lower("int g; void main() { }")
    mm = MemoryMap(module)
    g = var_named(module, "g")
    assert mm.address_of(g, None) == GLOBAL_BASE
    assert mm.address_of(g, STACK_BASE) == GLOBAL_BASE


def test_live_stack_slots_enumerates_words():
    module = lower(
        "void inner(int a) { int buf[2]; } void main() { int x; inner(x); }"
    )
    mm = MemoryMap(module)
    main_base = STACK_BASE
    inner_base = STACK_BASE + mm.frame_size("main")
    slots = mm.live_stack_slots([("main", main_base), ("inner", inner_base)])
    names = [(fn, var) for _, fn, var in slots]
    assert ("main", "x") in names
    assert ("inner", "a") in names
    assert names.count(("inner", "buf")) == 2  # one entry per word
    addresses = [addr for addr, _, _ in slots]
    assert len(set(addresses)) == len(addresses)


def test_global_slots_cover_arrays():
    module = lower("int a; int b[3]; void main() { }")
    mm = MemoryMap(module)
    slots = mm.global_slots()
    assert len(slots) == 4
    assert all(fn == "<global>" for _, fn, _ in slots)


def test_frame_size():
    module = lower("void f(int a) { int b; int c[5]; }")
    mm = MemoryMap(module)
    assert mm.frame_size("f") == 7
