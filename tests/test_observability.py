"""Unit tests for the observability layer: metrics, manifests, telemetry."""

import io
import json

from repro.observability import (
    Counter,
    JsonlWriter,
    MetricsRegistry,
    RunManifest,
    Timer,
    export_trace,
    write_manifest,
    write_metrics_jsonl,
)
from repro.observability.manifest import MANIFEST_VERSION


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


def test_counter_increment():
    counter = Counter("x")
    assert counter.increment() == 1
    assert counter.increment(4) == 5
    assert counter.value == 5


def test_timer_aggregates_samples():
    timer = Timer("t")
    timer.observe(0.2)
    timer.observe(0.4)
    assert timer.count == 2
    assert abs(timer.total_seconds - 0.6) < 1e-9
    assert timer.min_seconds == 0.2
    assert timer.max_seconds == 0.4
    assert abs(timer.mean_seconds - 0.3) < 1e-9


def test_registry_counters_and_values():
    registry = MetricsRegistry()
    assert registry.value("missing") == 0
    registry.increment("a")
    registry.increment("a", 2)
    assert registry.value("a") == 3


def test_registry_span_records_timer_and_span():
    registry = MetricsRegistry()
    with registry.span("stage"):
        pass
    assert registry.timer("stage").count == 1
    assert len(registry.spans) == 1
    assert registry.spans[0].name == "stage"
    assert registry.spans[0].seconds >= 0.0


def test_span_recorded_even_when_body_raises():
    registry = MetricsRegistry()
    try:
        with registry.span("boom"):
            raise RuntimeError("x")
    except RuntimeError:
        pass
    assert registry.timer("boom").count == 1


def test_snapshot_is_plain_and_sorted():
    registry = MetricsRegistry()
    registry.increment("zebra")
    registry.increment("alpha", 2)
    registry.observe_seconds("t", 0.5)
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]) == ["alpha", "zebra"]
    assert snapshot["counters"]["alpha"] == 2
    assert snapshot["timers"]["t"]["count"] == 1
    # picklable/JSON-ready: round-trips through json untouched
    assert json.loads(json.dumps(snapshot)) == snapshot


def test_merge_snapshot_folds_counters_timers_spans():
    child = MetricsRegistry()
    child.increment("n", 5)
    child.observe_seconds("t", 0.1)
    child.observe_seconds("t", 0.3)
    with child.span("s"):
        pass

    parent = MetricsRegistry()
    parent.increment("n", 1)
    parent.observe_seconds("t", 0.2)
    parent.merge_snapshot(child.snapshot())

    assert parent.value("n") == 6
    timer = parent.timer("t")
    assert timer.count == 3
    assert abs(timer.total_seconds - 0.6) < 1e-6
    assert timer.min_seconds == 0.1
    assert timer.max_seconds == 0.3
    assert [span.name for span in parent.spans] == ["s"]


def test_merge_snapshot_tolerates_none_and_empty():
    registry = MetricsRegistry()
    registry.merge_snapshot(None)
    registry.merge_snapshot({})
    assert registry.snapshot() == {"counters": {}, "timers": {}, "spans": []}


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------


def test_manifest_lifecycle_and_payload():
    manifest = RunManifest.begin("demo", file="a.c", opt=1)
    manifest.record(phase="early")
    registry = MetricsRegistry()
    registry.increment("events", 7)
    manifest.finish(registry, status="ok")

    payload = manifest.to_dict()
    assert payload["manifest_version"] == MANIFEST_VERSION
    assert payload["command"] == "demo"
    assert payload["arguments"] == {"file": "a.c", "opt": 1}
    assert payload["results"] == {"phase": "early", "status": "ok"}
    assert payload["metrics"]["counters"]["events"] == 7
    assert payload["started_at"].endswith("Z")
    assert payload["finished_at"].endswith("Z")
    assert payload["duration_seconds"] >= 0.0
    # JSON-serializable end to end
    json.dumps(payload)


def test_unfinished_manifest_has_null_timing():
    payload = RunManifest.begin("demo").to_dict()
    assert payload["finished_at"] is None
    assert payload["duration_seconds"] is None


# ----------------------------------------------------------------------
# Telemetry writers
# ----------------------------------------------------------------------


def test_jsonl_writer_appends(tmp_path):
    path = tmp_path / "log.jsonl"
    writer = JsonlWriter(str(path))
    writer.write({"a": 1})
    writer.write_all([{"b": 2}, {"c": 3}])
    assert writer.records_written == 3
    lines = path.read_text().splitlines()
    assert [json.loads(line) for line in lines] == [
        {"a": 1}, {"b": 2}, {"c": 3}
    ]


def test_write_manifest_json_overwrites(tmp_path):
    path = tmp_path / "manifest.json"
    manifest = RunManifest.begin("demo").finish()
    write_manifest(manifest, str(path))
    write_manifest(manifest, str(path))
    payload = json.loads(path.read_text())
    assert payload["command"] == "demo"


def test_write_manifest_jsonl_appends(tmp_path):
    path = tmp_path / "manifests.jsonl"
    manifest = RunManifest.begin("demo").finish()
    write_manifest(manifest, str(path))
    write_manifest(manifest, str(path))
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    assert all(json.loads(line)["command"] == "demo" for line in lines)


def test_write_metrics_jsonl_kinds_and_label(tmp_path):
    registry = MetricsRegistry()
    registry.increment("c", 2)
    with registry.span("s"):
        pass
    path = tmp_path / "metrics.jsonl"
    count = write_metrics_jsonl(registry, str(path), label="run-1")
    records = [
        json.loads(line) for line in path.read_text().splitlines()
    ]
    assert count == len(records) == 3  # counter + timer + span
    assert {record["kind"] for record in records} == {
        "counter", "timer", "span"
    }
    assert all(record["label"] == "run-1" for record in records)


def test_export_trace_round_trips_through_replay(tmp_path):
    from repro.pipeline import compile_program, observed_run
    from repro.runtime.replay import TraceRecorder, load_trace, replay

    source = """
    int g;
    void main() {
      g = read_int();
      if (g == 0) { emit(1); } else { emit(2); }
    }
    """
    program = compile_program(source, "t.c")
    recorder = TraceRecorder()
    observed_run(program, observers=[recorder], inputs=[4])

    path = tmp_path / "trace.jsonl"
    count = export_trace(recorder.events, str(path))
    assert count == len(recorder.events)
    with open(path, "r", encoding="utf-8") as handle:
        events = list(load_trace(handle))
    assert events == recorder.events
    assert replay(program.tables, events) == []

    stream = io.StringIO()
    assert export_trace(recorder.events, stream) == count
    assert stream.getvalue() == path.read_text()
