"""Protocol-semantics tests: each server behaves like the daemon it
models, for fixed input scripts.

These pin the workloads' observable behaviour so later edits to the
mini-C sources cannot silently change the experiments' subject matter.
"""


from repro.pipeline import compile_program, unmonitored_run
from repro.workloads import get_workload


def run(name, inputs):
    workload = get_workload(name)
    program = compile_program(workload.source, name)
    result = unmonitored_run(program, inputs=inputs)
    assert result.ok, result.status
    return result.outputs


def test_telnetd_successful_login_and_ls():
    # uid=1 (password 20), echo on, one ls, quit.
    out = run("telnetd", [1, 1, 20, 1, 0])
    assert 100 in out  # login banner: authenticated
    assert 101 in out  # ls output


def test_telnetd_lockout_after_three_failures():
    out = run("telnetd", [1, 1, 5, 6, 7, 1, 0])
    assert 900 in out  # not authenticated
    assert 999 in out  # command refused


def test_telnetd_su_grants_root():
    # uid=1 logs in, su with root password 13 (0*7+13), then cat shadow.
    out = run("telnetd", [1, 1, 20, 6, 13, 2, 0])
    assert 106 in out  # su succeeded
    assert 102 in out  # shadow read as root


def test_wuftpd_anonymous_upload_denied():
    # anonymous login, STOR.
    out = run("wu-ftpd", [0, 0, 4, 0])
    assert 230 in out  # logged in
    assert 553 in out  # upload denied


def test_wuftpd_real_user_upload_allowed():
    user = 4
    out = run("wu-ftpd", [user, user * 3 + 7, 4, 0])
    assert 226 in out


def test_wuftpd_chroot_blocks_cdup_at_root():
    out = run("wu-ftpd", [0, 0, 1, -1, 0])  # anonymous, CWD ..
    assert 553 in out


def test_xinetd_disabled_service_404():
    inputs = [4, 0] + [0] * 8 + [1, 3, 10, 0]
    out = run("xinetd", inputs)
    assert 404 in out


def test_xinetd_connection_cap_enforced():
    # limit 1, service 0 enabled, two connects to it.
    inputs = [1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 10, 1, 0, 11, 0]
    out = run("xinetd", inputs)
    assert 200 in out  # first admitted
    assert 503 in out  # second refused


def test_crond_job_runs_on_period():
    # register a period-1 job as uid 0, tick twice.
    out = run("crond", [0, 1, 1, 0, 3, 3, 0])
    assert 201 in out  # registered
    assert 500 in out  # slot-0 job ran
    assert out[-2] >= 2  # runs counter


def test_crond_non_root_cannot_register_privileged():
    out = run("crond", [5, 1, 1, 1, 0])
    assert 401 in out


def test_sysklogd_threshold_filters():
    # threshold 4, console 7: priority 2 dropped, 5 written, 7 console.
    out = run("sysklogd", [4, 7, 0, 2, 111, 5, 222, 7, 333, -1])
    assert 111 not in out
    assert 222 in out
    assert 7007 in out  # console sink for priority 7
    written, dropped = out[-4], out[-3]
    assert (written, dropped) == (2, 1)


def test_atftpd_full_transfer_completes():
    out = run("atftpd", [1, 2, 3, 1, 3, 2, 0])
    assert 226 in out  # transfer complete
    assert out[-2] == 1  # completed count


def test_atftpd_wrong_block_retries():
    out = run("atftpd", [1, 2, 3, 9, 3, 1, 3, 2, 0])
    assert 425 in out  # retry on out-of-order block


def test_httpd_protected_path_requires_auth():
    out = run("httpd", [512, 1, 1, 60, 0])  # wrong credentials
    assert 401 in out
    out = run("httpd", [512, 4242, 1, 60, 0])
    assert 201 in out


def test_httpd_body_limit_413():
    out = run("httpd", [100, 0, 2, 5000, 0])
    assert 413 in out


def test_sendmail_remote_relay_denied_for_remote_sender():
    # HELO, MAIL from remote (1500), RCPT to remote (2000).
    out = run("sendmail", [5, 1, 9, 2, 1500, 3, 2000, 0])
    assert 550 in out


def test_sendmail_local_sender_may_relay():
    out = run("sendmail", [5, 1, 9, 2, 50, 3, 2000, 4, 0])
    assert 251 in out
    assert 354 in out  # delivered


def test_sshd_auth_then_exec():
    uid = 7
    out = run("sshd", [3, 1, uid, uid * 11 + 3, 1, 2, 50, 0])
    assert 52 in out  # auth ok
    assert 90 in out  # channel open
    assert 94 in out  # exec ok


def test_sshd_privileged_exec_needs_root():
    uid = 7
    out = run("sshd", [3, 1, uid, uid * 11 + 3, 1, 2, 150, 0])
    assert 96 in out  # privileged exec denied
    out = run("sshd", [3, 1, 0, 3, 1, 2, 150, 0])
    assert 95 in out  # root allowed


def test_portmap_set_then_getport():
    out = run("portmap", [0, 1, 12, 2049, 3, 12, 0])
    assert 200 in out  # registered
    assert 2049 in out  # lookup returns the port


def test_portmap_privileged_port_needs_root():
    out = run("portmap", [5, 1, 12, 80, 0])
    assert 401 in out
    out = run("portmap", [0, 1, 12, 80, 0])
    assert 200 in out


def test_scale_parameter_lengthens_sessions():
    import random

    for name in ("telnetd", "httpd", "portmap"):
        workload = get_workload(name)
        short = workload.make_inputs(random.Random("s"), 1)
        long = workload.make_inputs(random.Random("s"), 10)
        assert len(long) > len(short) * 3
