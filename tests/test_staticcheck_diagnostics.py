"""Tests for the diagnostics engine: codes, severities, sinks, emitters."""

import json

import pytest

from repro.staticcheck import (
    CODES,
    Diagnostic,
    DiagnosticSink,
    Severity,
    Span,
    StaticCheckError,
    diagnostics_to_json,
    errors_in,
    max_severity,
    render_text,
)


def test_every_code_has_prefix_family_and_title():
    for code, info in CODES.items():
        assert info.code == code
        assert code[:-3].isalpha() and code[-3:].isdigit(), code
        assert info.title
        assert isinstance(info.severity, Severity)


def test_unknown_code_rejected():
    with pytest.raises(ValueError):
        Diagnostic(code="XX999", severity=Severity.ERROR, message="nope")


def test_sink_defaults_severity_from_catalog():
    sink = DiagnosticSink("test-pass")
    diag = sink.emit("COR205", "bad action", function="main", block="bb1", pc=4)
    assert diag.severity is Severity.ERROR
    assert diag.pass_name == "test-pass"
    assert sink.diagnostics == [diag]
    warn = sink.emit("IR114", "unreachable", function="main")
    assert warn.severity is Severity.WARNING


def test_severity_ordering():
    assert Severity.ERROR.at_least(Severity.WARNING)
    assert Severity.WARNING.at_least(Severity.NOTE)
    assert not Severity.NOTE.at_least(Severity.WARNING)


def test_span_and_str_rendering():
    diag = Diagnostic(
        code="COR201",
        severity=Severity.ERROR,
        message="collision",
        span=Span(function="f", block="bb2", pc=0x400010),
    )
    text = str(diag)
    assert "COR201" in text and "f/bb2@0x400010" in text and "collision" in text


def test_max_severity_and_errors_in():
    sink = DiagnosticSink("p")
    assert max_severity(sink.diagnostics) is None
    sink.emit("IR114", "w")
    assert max_severity(sink.diagnostics) is Severity.WARNING
    sink.emit("IR101", "e")
    assert max_severity(sink.diagnostics) is Severity.ERROR
    assert [d.code for d in errors_in(sink.diagnostics)] == ["IR101"]


def test_render_text_sorts_and_tallies():
    sink = DiagnosticSink("p")
    sink.emit("DEAD403", "later", function="z")
    sink.emit("IR101", "earlier", function="a")
    text = render_text(sink.diagnostics)
    assert text.index("IR101") < text.index("DEAD403")
    assert "1 error(s), 1 warning(s), 0 note(s)" in text


def test_json_report_roundtrips():
    sink = DiagnosticSink("p")
    sink.emit("COR210", "pcs disagree", function="main")
    payload = json.loads(diagnostics_to_json(sink.diagnostics))
    assert payload["version"] == 1
    [entry] = payload["diagnostics"]
    assert entry["code"] == "COR210"
    assert entry["severity"] == "error"
    assert entry["function"] == "main"
    assert entry["pass"] == "p"


def test_staticcheck_error_carries_diagnostics():
    sink = DiagnosticSink("p")
    sink.emit("COR205", "unprovable", function="main")
    error = StaticCheckError(sink.diagnostics)
    assert error.diagnostics == sink.diagnostics
    assert "COR205" in str(error)
