"""Differential equivalence harness for the batched timing stack.

The goldens in ``tests/golden/timing_equivalence.json`` were captured
from the pre-batching per-instruction delivery path.  Every cell —
exact-model cycle counts, Figure-9 normalized-performance inputs, and
full attack outcomes including rendered IPDS alarm strings — must stay
byte-identical under the batched event path, the ring-buffer RUU/LSQ
rewrite, and the branch-plan fast path.  A mismatch here means a
performance refactor changed reported numbers, which is exactly the
bug class this harness exists to catch; never "fix" it by
regenerating the goldens.

The second half is an in-process differential: ``batched_delivery=False``
forces the reference per-instruction path, and both deliveries must
produce identical cycle accounting from the same execution.
"""

import json
from pathlib import Path

import pytest

from repro.attacks.campaign import run_attack
from repro.cpu.simulator import normalized_performance
from repro.pipeline import compile_program
from repro.workloads import all_workloads

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "timing_equivalence.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

SCALE = GOLDEN["scale"]
ATTACKS = GOLDEN["attacks"]
SEED_PREFIX = GOLDEN["seed_prefix"]
OPT_LEVELS = (0, 1, 2)

WORKLOADS = {workload.name: workload for workload in all_workloads()}

_PROGRAM_CACHE = {}


def _program(name, opt):
    key = (name, opt)
    if key not in _PROGRAM_CACHE:
        workload = WORKLOADS[name]
        _PROGRAM_CACHE[key] = compile_program(workload.source, name, opt)
    return _PROGRAM_CACHE[key]


def _timing_inputs(name):
    import random

    return WORKLOADS[name].make_inputs(
        random.Random(f"{SEED_PREFIX}{name}"), SCALE
    )


def _timing_dict(comparison):
    return {
        "baseline_cycles": comparison.baseline_cycles,
        "ipds_cycles": comparison.ipds_cycles,
        "instructions": comparison.instructions,
        "avg_check_latency": repr(comparison.avg_check_latency),
        "commit_stalls": comparison.commit_stalls,
        "normalized_performance": repr(comparison.normalized_performance),
    }


def _outcome_dict(outcome):
    return {
        "index": outcome.index,
        "trigger_read": outcome.trigger_read,
        "address": outcome.address,
        "target_label": outcome.target_label,
        "value": outcome.value,
        "fired": outcome.fired,
        "control_flow_changed": outcome.control_flow_changed,
        "detected": outcome.detected,
        "clean_status": outcome.clean_status.value,
        "attack_status": outcome.attack_status.value,
        "alarms": list(outcome.alarms),
    }


CELLS = [
    (name, opt) for name in sorted(GOLDEN["workloads"]) for opt in OPT_LEVELS
]


def test_golden_covers_every_workload():
    assert sorted(GOLDEN["workloads"]) == sorted(WORKLOADS)
    for per_opt in GOLDEN["workloads"].values():
        assert sorted(per_opt) == [f"opt{o}" for o in OPT_LEVELS]


@pytest.mark.parametrize(
    "name,opt", CELLS, ids=[f"{n}-opt{o}" for n, o in CELLS]
)
def test_batched_timing_matches_pre_batching_golden(name, opt):
    """Batched delivery reproduces the pinned exact-model cycle counts."""
    golden = GOLDEN["workloads"][name][f"opt{opt}"]["timing"]
    comparison = normalized_performance(
        _program(name, opt), _timing_inputs(name), name
    )
    assert _timing_dict(comparison) == golden


@pytest.mark.parametrize(
    "name,opt", CELLS, ids=[f"{n}-opt{o}" for n, o in CELLS]
)
def test_unbatched_reference_matches_golden(name, opt):
    """The per-instruction reference path agrees with the same goldens —
    so batched and unbatched deliveries are transitively identical."""
    golden = GOLDEN["workloads"][name][f"opt{opt}"]["timing"]
    comparison = normalized_performance(
        _program(name, opt),
        _timing_inputs(name),
        name,
        batched_delivery=False,
    )
    assert _timing_dict(comparison) == golden


@pytest.mark.parametrize(
    "name,opt", CELLS, ids=[f"{n}-opt{o}" for n, o in CELLS]
)
def test_attack_outcomes_and_alarms_match_golden(name, opt):
    """The campaign recipe — clean + probe + attack runs, IPDS alarm
    strings included — is byte-identical to the pre-batching capture."""
    golden = GOLDEN["workloads"][name][f"opt{opt}"]["attacks"]
    program = _program(name, opt)
    workload = WORKLOADS[name]
    recomputed = [
        _outcome_dict(
            run_attack(program, workload, index, seed_prefix=SEED_PREFIX)
        )
        for index in range(ATTACKS)
    ]
    assert recomputed == golden


def test_segment_mode_is_deterministic():
    """Segment mode memoizes per-batch, so it is *not* delivery-invariant
    (segments are keyed by batch identity; the per-instruction path sees
    count-1 batches) — but for a fixed delivery it must be a pure
    function of the execution: two fresh runs agree exactly."""
    for name in ("telnetd", "sendmail"):
        program = _program(name, 1)
        inputs = _timing_inputs(name)
        first = normalized_performance(
            program, inputs, name, timing_mode="segment"
        )
        second = normalized_performance(
            program, inputs, name, timing_mode="segment"
        )
        assert _timing_dict(first) == _timing_dict(second)
