"""Scripted client for the ``repro serve`` detection daemon.

Doubles as the CI smoke test: spawn a daemon, drive two concurrent
sessions through the socket — one benign run and one tampered attack
with the quarantine policy — then assert the alarm, the policy action,
the replay round trip, and the shared-cache metrics.

Usage::

    # against a daemon you started yourself
    python -m repro.cli serve --socket /tmp/repro.sock &
    python examples/serve_client.py --socket /tmp/repro.sock

    # spawn-and-drive (what CI runs)
    python examples/serve_client.py --spawn
"""

import argparse
import os
import subprocess
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.interp import GLOBAL_BASE  # noqa: E402
from repro.service import ServeClient  # noqa: E402

FIGURE1 = """
int user;
void main() {
  user = read_int();
  if (user == 0) { emit(100); } else { emit(200); }
  int someinput = read_int();
  if (user == 0) { emit(111); } else { emit(222); }
}
"""


def drive(socket_path: str, quarantine_dir: str) -> None:
    with ServeClient(socket_path=socket_path) as client:
        hello = client.hello()
        print(f"connected: protocol v{hello['protocol']}, "
              f"{hello['max_workers']} workers")

        # Two concurrent sessions: a benign run and a tampered attack
        # (the paper's Figure 1 program, with the global `user` flag
        # flipped after the first correlated branch committed).
        benign = client.submit(
            {
                "mode": "run",
                "source": FIGURE1,
                "source_name": "figure1",
                "inputs": [5, 1],
            }
        )
        tampered = client.submit(
            {
                "mode": "attack",
                "source": FIGURE1,
                "source_name": "figure1",
                "inputs": [5, 1],
                "tamper": {
                    "trigger_kind": "read",
                    "trigger": 2,
                    "address": hex(GLOBAL_BASE),
                    "value": 0,
                },
            },
            policy={"kind": "quarantine", "dir": quarantine_dir},
        )
        results = client.results([benign, tampered])

        clean = results[benign]
        assert clean["state"] == "completed", clean
        assert clean["outputs"] == [200, 222], clean
        print(f"{benign}: benign run completed, outputs {clean['outputs']}")

        attacked = results[tampered]
        assert attacked["state"] == "alarmed", attacked
        assert attacked["tamper_fired"] is True, attacked
        print(f"{tampered}: ALARM {attacked['alarms'][0]}")

        quarantined = [
            action
            for action in attacked["policy_actions"]
            if action["action"] == "quarantine"
        ]
        assert quarantined, attacked["policy_actions"]
        trace_path = quarantined[0]["path"]
        print(f"{tampered}: quarantined -> {trace_path}")

        # Round trip: the quarantined trace replays (through the same
        # daemon) to the identical alarms.
        with open(trace_path, encoding="utf-8") as handle:
            trace_text = handle.read()
        replayed = client.result(
            client.submit(
                {
                    "mode": "replay",
                    "source": FIGURE1,
                    "source_name": "figure1",
                    "trace_text": trace_text,
                }
            )
        )
        assert replayed["alarms"] == attacked["alarms"], replayed
        print(f"replay round trip: {len(replayed['alarms'])} identical "
              f"alarm(s)")

        metrics = client.metrics()
        cache = metrics["compile_cache"]
        assert cache["hits"] >= 1, cache  # figure1 compiled once, shared
        print(f"metrics: {metrics['sessions']} sessions, "
              f"cache hit rate {cache['hit_rate']:.2f}, "
              f"{metrics['steps_per_second']} steps/s")
        client.shutdown()
        print("daemon shut down cleanly")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--socket", default=None,
                        help="socket of an already-running daemon")
    parser.add_argument("--spawn", action="store_true",
                        help="spawn a daemon subprocess for the demo")
    args = parser.parse_args()
    if bool(args.socket) == bool(args.spawn):
        parser.error("need exactly one of --socket or --spawn")

    with tempfile.TemporaryDirectory() as workdir:
        quarantine_dir = os.path.join(workdir, "quarantine")
        if args.spawn:
            socket_path = os.path.join(workdir, "repro.sock")
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, [sys.path[0], env.get("PYTHONPATH", "")])
            )
            daemon = subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "serve",
                 "--socket", socket_path],
                env=env,
            )
            try:
                drive(socket_path, quarantine_dir)
                assert daemon.wait(timeout=30) == 0
            finally:
                if daemon.poll() is None:
                    daemon.terminate()
        else:
            drive(args.socket, quarantine_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
