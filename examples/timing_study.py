"""Timing study: what does IPDS protection cost? (Figure 9 style)

Run:  python examples/timing_study.py [workload] [scale]

Simulates one server's trace on the Table 1 processor twice — without
and with the IPDS hardware — and reports cycles, IPC, the normalized
performance, detection latency, and an IPDS queue-size sensitivity
sweep (the design knob that keeps checking off the critical path).
"""

import random
import sys

from repro.cpu import IPDSHardwareParams, normalized_performance, timed_run
from repro.pipeline import compile_program
from repro.workloads import get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "httpd"
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 15
    workload = get_workload(name)
    program = compile_program(workload.source, name)
    inputs = workload.make_inputs(random.Random(f"timing:{name}"), scale)

    baseline = timed_run(program, inputs, with_ipds=False)
    protected = timed_run(program, inputs, with_ipds=True)
    print(f"workload {name}, {baseline.timing.instructions} instructions")
    print(f"  baseline : {baseline.cycles:8d} cycles  IPC {baseline.ipc:.2f}")
    print(f"  with IPDS: {protected.cycles:8d} cycles  IPC {protected.ipc:.2f}")
    comp = normalized_performance(program, inputs, name)
    print(f"  normalized performance: {comp.normalized_performance:.4f} "
          f"({comp.degradation_pct:.3f}% degradation)")
    stats = protected.ipds_stats
    print(f"  IPDS: {stats.requests} requests, {stats.checks} checked, "
          f"mean verdict latency {stats.avg_check_latency:.1f} cycles")
    print(f"  predictor accuracy {protected.predictor_accuracy:.1%}, "
          f"L1D miss rate {protected.l1d_miss_rate:.1%}")

    print("\nqueue-size sensitivity:")
    for queue in (2, 4, 8, 16, 32):
        params = IPDSHardwareParams(request_queue_size=queue)
        comp = normalized_performance(program, inputs, name, ipds_params=params)
        print(f"  queue {queue:2d}: degradation {comp.degradation_pct:6.3f}%  "
              f"(stalls {comp.commit_stalls})")


if __name__ == "__main__":
    main()
