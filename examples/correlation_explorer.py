"""Explore branch correlations the compiler finds in your code.

Run:  python examples/correlation_explorer.py

Walks the paper's Figure 3.a example end to end: shows the lowered IR,
the per-branch facts (check predicates and implied ranges), and the
final BAT action lists — then replays a short execution and prints each
branch event with the BSV status it was verified against.
"""

from repro.analysis import analyze_branches, analyze_definitions, analyze_purity, analyze_aliases
from repro.ir import format_function, lower_program
from repro.lang import parse_program
from repro.pipeline import compile_program
from repro.runtime import BranchEvent
from repro.interp import run_program

SOURCE = """
int x;
int y;
void main() {
  x = read_int();
  y = read_int();
  while (read_int()) {
    if (y < 5) { emit(1); }            // BR1
    if (x > 10) { x = read_int(); }    // BR2 (BB3 redefines x)
    else { y = read_int(); }           // BB4 redefines y
    if (y < 10) { emit(2); }           // BR5
  }
}
"""


def main() -> None:
    module = lower_program(parse_program(SOURCE, "fig3a.c"))
    print("=== lowered IR ===")
    print(format_function(module.function("main"), show_addresses=True))

    analyze_aliases(module)
    purity = analyze_purity(module)
    fn = module.function("main")
    def_map, _ = analyze_definitions(fn, module, purity)
    print("\n=== branch facts ===")
    for pc, facts in sorted(analyze_branches(fn, def_map).items()):
        check = facts.check
        if check:
            print(
                f"{pc:#x} [{facts.block_label}]: checkable on {check.var.name} "
                f"({check.var.name} {check.op.value} {check.bound}); "
                f"taken-set {check.taken_set}"
            )
        for inf in facts.inferences:
            print(
                f"        inference via {inf.kind}: direction reveals "
                f"{inf.var.name} {inf.op.value} {inf.bound}"
            )

    program = compile_program(SOURCE, "fig3a.c")
    tables = program.tables.tables_for("main")
    print("\n=== compiled tables ===")
    print(tables.describe())

    print("\n=== monitored replay ===")
    ipds = program.new_ipds()

    def narrate(event):
        if isinstance(event, BranchEvent):
            frame = ipds.current_frame()
            slot = frame.tables.slot_of(event.pc) if frame else None
            status = frame.status(slot).value if slot is not None else "-"
            checked = frame.tables.is_checked(event.pc) if frame else False
            mark = "CHECKED" if checked else "       "
            print(
                f"  branch {event.pc:#x} {event.direction:>2s} "
                f"{mark} expected={status}"
            )
        ipds.process(event)

    run_program(
        program.module,
        inputs=[3, 2, 1, 7, 1, 20, 1, 4, 0],
        event_listeners=[narrate],
    )
    print(f"\nalarms: {ipds.alarms or 'none (clean run)'}")


if __name__ == "__main__":
    main()
