"""Extension studies: optimization effects and the n-gram baseline.

Run:  python examples/optimization_and_baselines.py

Part 1 shows the paper's §6 remark in action — "compiler optimizations
can remove some correlations, reducing the detection rate": the same
program compiled with and without optimization, with the checked-branch
count dropping as store-to-load forwarding erases the re-loads the
correlations hang off.

Part 2 runs the related-work comparison: a call-site-aware n-gram
syscall detector (trained on clean sessions) against the IPDS on the
same attacks — detection vs. the false positives training can't avoid.
"""

from repro.baselines import compare_detectors
from repro.pipeline import compile_program
from repro.workloads import get_workload

DOUBLE_CHECK = """
int audit;
void main() {
  int user = read_int();
  if (user < 100) { emit(1); } else { emit(2); }
  audit = audit + 1;
  if (user < 100) { emit(3); } else { emit(4); }   // correlated re-check
}
"""


def main() -> None:
    print("=== part 1: optimization removes correlations ===")
    plain = compile_program(DOUBLE_CHECK, "double_check.c")
    opt = compile_program(DOUBLE_CHECK, "double_check.c", opt_level=1)
    print(f"unoptimized: {plain.tables.total_branches} branches, "
          f"{plain.tables.total_checked} checked")
    print(f"optimized  : {opt.tables.total_branches} branches, "
          f"{opt.tables.total_checked} checked")
    print("(here the correlation survives: forwarding erased gate 1's")
    print(" load, but the store of `user` feeds gate 1's register, so")
    print(" the Fig. 3.b store-based inference still predicts gate 2 —")
    print(" only correlations whose re-loads span blocks are lost, as")
    print(" the per-server totals below show)")

    print("\nacross the ten servers:")
    total_plain = total_opt = 0
    for name in ("telnetd", "wu-ftpd", "crond", "portmap"):
        workload = get_workload(name)
        p = compile_program(workload.source, name)
        o = compile_program(workload.source, name, opt_level=1)
        total_plain += p.tables.total_checked
        total_opt += o.tables.total_checked
        print(f"  {name:10s} checked branches {p.tables.total_checked:3d} "
              f"-> {o.tables.total_checked:3d}")
    print(f"  total: {total_plain} -> {total_opt}")

    print("\n=== part 2: IPDS vs. trained n-gram baseline ===")
    print(f"{'server':10s} {'ngram FP':>9s} {'ngram det':>10s} "
          f"{'IPDS FP':>8s} {'IPDS det':>9s}   (det = of control-flow-changing)")
    for name in ("telnetd", "httpd"):
        workload = get_workload(name)
        r = compare_detectors(
            workload, attacks=25, train_sessions=25, test_sessions=25
        )
        print(f"{name:10s} {r.ngram_fp_rate:8.1f}% "
              f"{r.ngram_detection_of_changed:9.1f}% "
              f"{'0.0%':>8s} {r.ipds_detection_of_changed:8.1f}%")
    print("\nthe n-gram detector needs training and pays with false")
    print("positives; the IPDS needs none and cannot produce one.")


if __name__ == "__main__":
    main()
