"""Quickstart: protect a program, attack it, watch the IPDS catch it.

Run:  python examples/quickstart.py

The program is the paper's Figure 1 scenario: a privilege flag is
checked twice; in between, a vulnerable input lets an attacker
overwrite that flag in memory.  No code is injected — yet the control
flow becomes one no untampered execution could produce, and the IPDS
flags it.
"""

from repro import TamperSpec, compile_program, monitored_run
from repro.interp import MemoryMap

SOURCE = """
int user;   // 0 = admin, anything else = unprivileged

void main() {
  user = read_int();                 // authentication result
  if (user == 0) { emit(100); } else { emit(200); }   // first gate

  int someinput = read_int();        // the vulnerable input (overflow!)

  if (user == 0) { emit(111); } else { emit(222); }   // second gate
}
"""


def main() -> None:
    # 1. Compile: parse -> IR -> branch-correlation analysis -> tables.
    program = compile_program(SOURCE, "figure1.c")
    tables = program.tables.tables_for("main")
    print("compiled tables:")
    print(tables.describe())
    print()

    # 2. A clean run: the unprivileged user stays unprivileged.
    result, ipds = monitored_run(program, inputs=[5, 42])
    print(f"clean run      outputs={result.outputs}  alarms={ipds.alarms}")
    assert not ipds.detected

    # 3. The attack: input #2 overflows a buffer and overwrites `user`
    #    with 0, granting admin at the second gate.
    address = MemoryMap(program.module).global_addresses[
        next(v for v in program.module.globals if v.name == "user")
    ]
    tamper = TamperSpec(
        trigger_kind="read", trigger_value=2, address=address, value=0
    )
    result, ipds = monitored_run(program, inputs=[5, 42], tamper=tamper)
    print(f"attacked run   outputs={result.outputs}")
    print(f"IPDS verdict:  {ipds.alarms[0]}")
    assert ipds.detected, "the privilege escalation must be detected"
    print()
    print("the attack reached the admin path (111) but the path "
          "(gate1 not-taken, gate2 taken) is infeasible -> alarm.")


if __name__ == "__main__":
    main()
