"""Attack campaign against the synthetic servers (Figure 7, small run).

Run:  python examples/server_campaign.py [attacks-per-server]

Attacks three of the paper's ten servers with independent random
single-word memory tamperings and reports, per server: how many
tamperings changed control flow, and how many the IPDS detected.
Use ``python -m repro.reporting fig7`` for the full ten-server version.
"""

import sys

from repro.attacks import run_workload_campaign
from repro.workloads import get_workload


def main() -> None:
    attacks = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    print(f"{attacks} independent attacks per server\n")
    print(f"{'server':10s} {'vuln':4s} {'changed':>8s} {'detected':>9s} "
          f"{'det/changed':>12s}")
    for name in ("telnetd", "wu-ftpd", "sendmail"):
        workload = get_workload(name)
        result = run_workload_campaign(workload, attacks=attacks)
        print(
            f"{name:10s} {workload.vuln_kind:4s} "
            f"{result.pct_changed:7.1f}% {result.pct_detected:8.1f}% "
            f"{result.pct_detected_of_changed:11.1f}%"
        )
    print("\nevery campaign also re-validates zero false positives on the")
    print("clean run of each attack (it raises if an alarm fires there).")


if __name__ == "__main__":
    main()
