"""Figure and table renderers — regenerates every result in §6.

Each ``render_*`` function returns the text of one paper artifact;
``python -m repro.reporting <fig7|fig8|fig9|table1|latency|all>`` prints
them.  The benchmark harness under ``benchmarks/`` calls the same
underlying experiment functions, so the numbers here and there agree.
"""

from __future__ import annotations

import argparse
import random
import sys
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .attacks.campaign import CampaignSummary, run_campaign
from .correlation.encoding import SizeSummary, summarize_sizes
from .cpu.params import IPDSHardwareParams, ProcessorParams
from .cpu.simulator import PerformanceComparison, normalized_performance
from .observability import MetricsRegistry, RunManifest, write_manifest
from .pipeline import compile_program_cached
from .workloads.registry import Workload, all_workloads


def _bar(value: float, scale: float = 1.0, width: int = 40) -> str:
    filled = int(round(min(value * scale, 100.0) / 100.0 * width))
    return "#" * filled


# ----------------------------------------------------------------------
# Figure 7: detection rate for simulated attacks
# ----------------------------------------------------------------------


def figure7_data(
    attacks: int = 100,
    workloads: Optional[Sequence[Workload]] = None,
    jobs: int = 1,
    seed_prefix: str = "",
    metrics: Optional[MetricsRegistry] = None,
) -> CampaignSummary:
    """Run the Figure 7 campaign (100 independent attacks/server).

    ``jobs`` shards the campaign across processes.  Because attacks are
    seeded purely by ``(seed_prefix, workload, index)`` and shard
    outcomes are merged back into index order, the summary — and hence
    :func:`render_figure7`'s text — is byte-identical at any ``jobs``.
    ``metrics`` collects campaign telemetry without affecting the data.
    """
    return run_campaign(
        workloads,
        attacks=attacks,
        seed_prefix=seed_prefix,
        jobs=jobs,
        metrics=metrics,
    )


def render_figure7(summary: CampaignSummary) -> str:
    lines = [
        "Figure 7. Detection rate for simulated attacks",
        "(per benchmark: % of tamperings changing control flow, and % detected)",
        "",
        f"{'benchmark':12s} {'vuln':4s} {'ctrl-flow-chg':>13s} "
        f"{'detected':>9s} {'det/changed':>11s}",
    ]
    for result in summary.results:
        lines.append(
            f"{result.workload:12s} {result.vuln_kind:4s} "
            f"{result.pct_changed:12.1f}% {result.pct_detected:8.1f}% "
            f"{result.pct_detected_of_changed:10.1f}%"
        )
    lines.append("-" * 56)
    lines.append(
        f"{'average':12s}      {summary.avg_pct_changed:12.1f}% "
        f"{summary.avg_pct_detected:8.1f}% "
        f"{summary.avg_pct_detected_of_changed:10.1f}%"
    )
    lines.append("")
    lines.append(
        "paper: avg 49.4% of tamperings change control flow; IPDS detects"
    )
    lines.append("29.3% of all tamperings = 59.3% of control-flow-changing ones")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 8: average table sizes in bits
# ----------------------------------------------------------------------


@dataclass
class Fig8Row:
    workload: str
    avg_bsv: float
    avg_bcv: float
    avg_bat: float


def figure8_data(
    workloads: Optional[Sequence[Workload]] = None,
) -> Tuple[List[Fig8Row], Fig8Row]:
    """Per-workload and overall average table sizes."""
    chosen = list(workloads) if workloads is not None else all_workloads()
    rows: List[Fig8Row] = []
    all_sizes: List[SizeSummary] = []
    for workload in chosen:
        program = compile_program_cached(workload.source, workload.name)
        summary = summarize_sizes(program.tables)
        all_sizes.append(summary)
        rows.append(
            Fig8Row(
                workload.name,
                summary.avg_bsv_bits,
                summary.avg_bcv_bits,
                summary.avg_bat_bits,
            )
        )
    count = len(rows) or 1
    average = Fig8Row(
        "average",
        sum(r.avg_bsv for r in rows) / count,
        sum(r.avg_bcv for r in rows) / count,
        sum(r.avg_bat for r in rows) / count,
    )
    return rows, average


def render_figure8(rows: List[Fig8Row], average: Fig8Row) -> str:
    lines = [
        "Figure 8. Average sizes (in bits) of BSV, BCV and BAT tables",
        "",
        f"{'benchmark':12s} {'BSV':>8s} {'BCV':>8s} {'BAT':>10s}",
    ]
    for row in rows:
        lines.append(
            f"{row.workload:12s} {row.avg_bsv:8.1f} {row.avg_bcv:8.1f} "
            f"{row.avg_bat:10.1f}"
        )
    lines.append("-" * 42)
    lines.append(
        f"{average.workload:12s} {average.avg_bsv:8.1f} "
        f"{average.avg_bcv:8.1f} {average.avg_bat:10.1f}"
    )
    lines.append("")
    lines.append("paper: BSV 34 bits, BCV 17 bits, BAT 393 bits (averages)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table 1: simulated processor parameters
# ----------------------------------------------------------------------


def render_table1(
    processor: ProcessorParams = ProcessorParams(),
    ipds: IPDSHardwareParams = IPDSHardwareParams(),
) -> str:
    l1 = processor.l1i
    l2 = processor.l2
    rows = [
        ("Clock frequency", f"{processor.clock_hz // 10**9} GHz"),
        ("Fetch queue", f"{processor.fetch_queue} entries"),
        ("Decode width", str(processor.decode_width)),
        ("Issue width", str(processor.issue_width)),
        ("Commit width", str(processor.commit_width)),
        ("RUU size", str(processor.ruu_size)),
        ("LSQ size", str(processor.lsq_size)),
        ("Branch predictor", "2 Level"),
        (
            "L1 I/D",
            f"{l1.size_bytes // 1024}K, {l1.associativity} way, "
            f"{l1.latency} cycle, {l1.block_bytes}B block",
        ),
        (
            "Unified L2",
            f"{l2.size_bytes // 1024}K, {l2.associativity} way, "
            f"{l2.block_bytes}B block, latency {l2.latency} cycles",
        ),
        ("Memory bus", f"200M, {processor.memory_bus_bytes} Byte wide"),
        (
            "Memory latency",
            f"first chunk: {processor.memory_first_chunk} cycles, "
            f"inter chunk: {processor.memory_inter_chunk} cycles",
        ),
        ("TLB miss", f"{processor.tlb_miss_latency} cycles"),
        ("BSV stack", f"{ipds.bsv_stack_bits // 1024}K bits"),
        ("BCV stack", f"{ipds.bcv_stack_bits // 1024}K bits"),
        ("BAT stack", f"{ipds.bat_stack_bits // 1024}K bits"),
    ]
    width = max(len(label) for label, _ in rows)
    lines = ["Table 1. Default parameters of the processor simulated", ""]
    lines.extend(f"{label:<{width}s}  {value}" for label, value in rows)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 9: normalized performance
# ----------------------------------------------------------------------


def figure9_data(
    scale: int = 20,
    workloads: Optional[Sequence[Workload]] = None,
    processor: ProcessorParams = ProcessorParams(),
    ipds_params: IPDSHardwareParams = IPDSHardwareParams(),
) -> List[PerformanceComparison]:
    """Baseline-vs-IPDS timing runs for every workload."""
    chosen = list(workloads) if workloads is not None else all_workloads()
    comparisons: List[PerformanceComparison] = []
    for workload in chosen:
        program = compile_program_cached(workload.source, workload.name)
        rng = random.Random(f"fig9:{workload.name}")
        inputs = workload.make_inputs(rng, scale)
        comparisons.append(
            normalized_performance(
                program,
                inputs,
                workload.name,
                processor=processor,
                ipds_params=ipds_params,
            )
        )
    return comparisons


def render_figure9(comparisons: List[PerformanceComparison]) -> str:
    lines = [
        "Figure 9. Normalized performance (baseline = 1.0)",
        "",
        f"{'benchmark':12s} {'normalized':>10s} {'degradation':>12s} "
        f"{'insns':>9s} {'chk-latency':>12s}",
    ]
    for comp in comparisons:
        lines.append(
            f"{comp.workload:12s} {comp.normalized_performance:10.4f} "
            f"{comp.degradation_pct:11.3f}% {comp.instructions:9d} "
            f"{comp.avg_check_latency:9.1f} cy"
        )
    count = len(comparisons) or 1
    avg_deg = sum(c.degradation_pct for c in comparisons) / count
    avg_lat = sum(c.avg_check_latency for c in comparisons) / count
    lines.append("-" * 60)
    lines.append(
        f"{'average':12s} {1 - avg_deg / 100:10.4f} {avg_deg:11.3f}% "
        f"{'':9s} {avg_lat:9.1f} cy"
    )
    lines.append("")
    lines.append(
        "paper: average degradation 0.79%; mean detection latency 11.7 cycles"
    )
    return "\n".join(lines)


def render_latency(comparisons: List[PerformanceComparison]) -> str:
    count = len(comparisons) or 1
    avg = sum(c.avg_check_latency for c in comparisons) / count
    lines = [
        "Detection latency (branch sent to IPDS -> infeasible-path verdict)",
        "",
    ]
    for comp in comparisons:
        lines.append(
            f"{comp.workload:12s} {comp.avg_check_latency:6.1f} cycles"
        )
    lines.append("-" * 24)
    lines.append(f"{'average':12s} {avg:6.1f} cycles   (paper: 11.7 cycles)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.reporting",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "artifact",
        choices=["fig7", "fig8", "fig9", "table1", "latency", "all"],
    )
    parser.add_argument(
        "--attacks", type=int, default=100,
        help="attacks per benchmark for fig7 (default 100)",
    )
    parser.add_argument(
        "--scale", type=int, default=20,
        help="session-length multiplier for fig9 traces (default 20)",
    )
    parser.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="shard the fig7 campaign across N processes "
             "(byte-identical output at any value)",
    )
    parser.add_argument(
        "--metrics-out", default=None,
        help="write a JSON (or append-mode .jsonl) run manifest with "
             "per-artifact spans and campaign counters",
    )
    args = parser.parse_args(argv)

    registry = MetricsRegistry()
    manifest = RunManifest.begin(
        "reporting",
        artifact=args.artifact,
        attacks=args.attacks,
        scale=args.scale,
        jobs=args.jobs,
    )
    wants = (
        ["fig7", "fig8", "table1", "fig9", "latency"]
        if args.artifact == "all"
        else [args.artifact]
    )
    blocks: List[str] = []
    fig9 = None
    for artifact in wants:
        with registry.span(f"artifact.{artifact}"):
            if artifact == "fig7":
                blocks.append(
                    render_figure7(
                        figure7_data(
                            attacks=args.attacks,
                            jobs=args.jobs,
                            metrics=registry,
                        )
                    )
                )
            elif artifact == "fig8":
                blocks.append(render_figure8(*figure8_data()))
            elif artifact == "table1":
                blocks.append(render_table1())
            elif artifact in ("fig9", "latency"):
                if fig9 is None:
                    fig9 = figure9_data(scale=args.scale)
                blocks.append(
                    render_figure9(fig9)
                    if artifact == "fig9"
                    else render_latency(fig9)
                )
    print("\n\n".join(blocks))
    if args.metrics_out:
        manifest.finish(registry, artifacts=wants)
        write_manifest(manifest, args.metrics_out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
