"""IPDS runtime: event types, BSV state, and the checker."""

from .bsv import BSVFrame
from .events import BranchEvent, CallEvent, Event, ReturnEvent
from .ipds import IPDS, Alarm, IPDSError, IPDSStats
from .replay import (
    TraceFormatError,
    TraceRecorder,
    dump_trace,
    event_from_json,
    event_to_json,
    load_trace,
    replay,
)

__all__ = [
    "Alarm",
    "BSVFrame",
    "BranchEvent",
    "CallEvent",
    "Event",
    "IPDS",
    "IPDSError",
    "IPDSStats",
    "ReturnEvent",
    "TraceFormatError",
    "TraceRecorder",
    "dump_trace",
    "event_from_json",
    "event_to_json",
    "load_trace",
    "replay",
]
