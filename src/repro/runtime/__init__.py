"""IPDS runtime: event types, the observer bus, BSV state, the checker."""

from .bsv import BSVFrame
from .events import BranchEvent, CallEvent, Event, ReturnEvent
from .flight_recorder import (
    DEFAULT_DEPTH,
    BranchRecord,
    BSVTransition,
    FlightRecorder,
    FrameRecord,
)
from .ipds import IPDS, Alarm, IPDSError, IPDSStats
from .observer import (
    CallbackObserver,
    ExecutionObserver,
    InstructionCallbackObserver,
    ObserverBus,
    as_observer,
    build_bus,
)
from .replay import (
    TraceFormatError,
    TraceRecorder,
    dump_trace,
    event_from_json,
    event_to_json,
    load_trace,
    replay,
)

__all__ = [
    "Alarm",
    "BSVFrame",
    "BSVTransition",
    "BranchEvent",
    "BranchRecord",
    "CallEvent",
    "CallbackObserver",
    "DEFAULT_DEPTH",
    "Event",
    "ExecutionObserver",
    "FlightRecorder",
    "FrameRecord",
    "IPDS",
    "IPDSError",
    "IPDSStats",
    "InstructionCallbackObserver",
    "ObserverBus",
    "ReturnEvent",
    "TraceFormatError",
    "TraceRecorder",
    "as_observer",
    "build_bus",
    "dump_trace",
    "event_from_json",
    "event_to_json",
    "load_trace",
    "replay",
]
