"""Branch Status Vector runtime state (§5.1).

One :class:`BSVFrame` exists per *activation* of a protected function.
All statuses start UNKNOWN; the BAT actions fired by committed branches
move them between TAKEN / NOT_TAKEN / UNKNOWN.
"""

from __future__ import annotations

from typing import Dict

from ..correlation.actions import BranchAction, BranchStatus
from ..correlation.tables import FunctionTables


class BSVFrame:
    """The 2-bit-per-slot status vector of one function activation."""

    def __init__(self, tables: FunctionTables, frame_id: int = 0):
        self.tables = tables
        #: Activation identity assigned by the IPDS (monotonic per run);
        #: lets the flight recorder attribute records to one activation.
        self.frame_id = frame_id
        self._status: Dict[int, BranchStatus] = {}

    def status(self, slot: int) -> BranchStatus:
        return self._status.get(slot, BranchStatus.UNKNOWN)

    def apply(self, slot: int, action: BranchAction) -> None:
        if action is BranchAction.NC:
            return
        updated = action.apply(self.status(slot))
        if updated is BranchStatus.UNKNOWN:
            self._status.pop(slot, None)
        else:
            self._status[slot] = updated

    def apply_all(self, actions: "tuple") -> None:
        """Apply a whole BAT action list in one call.

        Semantically identical to calling :meth:`apply` per entry —
        the per-action enum dispatch is inlined because this sits on
        the IPDS per-branch hot path.
        """
        status = self._status
        for slot, action in actions:
            if action is BranchAction.SET_T:
                status[slot] = BranchStatus.TAKEN
            elif action is BranchAction.SET_NT:
                status[slot] = BranchStatus.NOT_TAKEN
            elif action is BranchAction.SET_UN:
                status.pop(slot, None)

    def snapshot(self) -> Dict[int, BranchStatus]:
        """Copy of all non-UNKNOWN statuses (diagnostics)."""
        return dict(self._status)

    @property
    def known_count(self) -> int:
        return len(self._status)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{slot}:{status.value}" for slot, status in sorted(self._status.items())
        )
        return f"BSVFrame({self.tables.function_name}; {inner})"
