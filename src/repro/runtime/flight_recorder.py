"""Bounded flight recorder: the last N committed control-flow events.

A black-box ring buffer the IPDS fills while checking (the IPDS itself
is the :class:`~repro.runtime.observer.ExecutionObserver` on the
interpreter's bus; the recorder enriches the raw bus events with the
BSV internals only the checker can see — which slots each fired BAT
action moved, and through which statuses).  On alarm, the forensics
engine (:mod:`repro.forensics`) walks the ring backwards to find the
*setting event* — the committed branch whose action installed the
expectation the alarming branch contradicted — and joins it with the
compiler's :class:`~repro.correlation.provenance.ActionProvenance`.

The ring is bounded (``depth`` records, default 64) so recording cost
and memory stay O(1) per event; an alarm whose setter has already been
evicted is reported as degraded rather than guessed at.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple, Union

from ..correlation.actions import BranchAction, BranchStatus

#: Default ring depth; CLI flag --flight-recorder-depth overrides.
DEFAULT_DEPTH = 64


def _status_name(status: Optional[BranchStatus]) -> Optional[str]:
    return None if status is None else status.value


@dataclass(frozen=True)
class BSVTransition:
    """One BAT action firing: slot moved ``before`` -> ``after``."""

    slot: int
    target_pc: Optional[int]  # branch PC owning the slot (None if unmapped)
    action: BranchAction
    before: BranchStatus
    after: BranchStatus

    def describe(self) -> str:
        where = f"slot {self.slot}"
        if self.target_pc is not None:
            where += f" ({self.target_pc:#x})"
        return (
            f"{self.action.value} {where}: "
            f"{self.before.value} -> {self.after.value}"
        )

    def to_dict(self) -> dict:
        return {
            "slot": self.slot,
            "target_pc": self.target_pc,
            "action": self.action.value,
            "before": self.before.value,
            "after": self.after.value,
        }


@dataclass(frozen=True)
class BranchRecord:
    """One committed conditional branch, with everything the IPDS did."""

    seq: int  # IPDS event index (matches Alarm.event_index)
    frame_id: int  # activation that observed the branch
    function: str
    pc: int
    taken: bool
    checked: bool  # was the slot marked in the BCV?
    expected: Optional[BranchStatus]  # BSV status at verify time
    alarmed: bool
    transitions: Tuple[BSVTransition, ...]  # BAT actions this event fired

    @property
    def direction(self) -> str:
        return "T" if self.taken else "NT"

    def describe(self) -> str:
        parts = [f"#{self.seq} br {self.function}@{self.pc:#x} {self.direction}"]
        if self.checked:
            parts.append(f"checked(expected {_status_name(self.expected)})")
        if self.alarmed:
            parts.append("ALARM")
        if self.transitions:
            fired = "; ".join(t.describe() for t in self.transitions)
            parts.append(f"[{fired}]")
        return " ".join(parts)

    def to_dict(self) -> dict:
        return {
            "kind": "branch",
            "seq": self.seq,
            "frame_id": self.frame_id,
            "function": self.function,
            "pc": self.pc,
            "taken": self.taken,
            "checked": self.checked,
            "expected": _status_name(self.expected),
            "alarmed": self.alarmed,
            "transitions": [t.to_dict() for t in self.transitions],
        }


@dataclass(frozen=True)
class FrameRecord:
    """A call/return boundary — activation context for the history."""

    seq: int
    kind: str  # "call" | "return"
    function: str
    frame_id: Optional[int]  # None for unprotected sentinel frames

    def describe(self) -> str:
        frame = "unprotected" if self.frame_id is None else f"frame {self.frame_id}"
        return f"#{self.seq} {self.kind} {self.function} ({frame})"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "seq": self.seq,
            "function": self.function,
            "frame_id": self.frame_id,
        }


FlightRecord = Union[BranchRecord, FrameRecord]


class FlightRecorder:
    """Fixed-depth ring of :class:`BranchRecord`/:class:`FrameRecord`."""

    def __init__(self, depth: int = DEFAULT_DEPTH):
        if depth < 1:
            raise ValueError("flight recorder depth must be >= 1")
        self.depth = depth
        self._ring: Deque[FlightRecord] = deque(maxlen=depth)
        self._total = 0  # records ever written (eviction detection)

    # -- producer side (IPDS) -------------------------------------------

    def record(self, entry: FlightRecord) -> None:
        self._ring.append(entry)
        self._total += 1

    def clear(self) -> None:
        self._ring.clear()
        self._total = 0

    # -- consumer side (forensics) --------------------------------------

    @property
    def records(self) -> Tuple[FlightRecord, ...]:
        return tuple(self._ring)

    @property
    def branch_records(self) -> Tuple[BranchRecord, ...]:
        return tuple(r for r in self._ring if isinstance(r, BranchRecord))

    @property
    def total_recorded(self) -> int:
        return self._total

    @property
    def evictions(self) -> int:
        return self._total - len(self._ring)

    def find_setter(
        self, frame_id: int, slot: int, before_seq: int
    ) -> Optional[Tuple[BranchRecord, BSVTransition]]:
        """Latest record before ``before_seq`` whose actions wrote ``slot``
        in activation ``frame_id`` — the event that installed the
        expectation an alarm at ``before_seq`` contradicted."""
        for entry in reversed(self._ring):
            if not isinstance(entry, BranchRecord):
                continue
            if entry.seq >= before_seq or entry.frame_id != frame_id:
                continue
            for transition in reversed(entry.transitions):
                if transition.slot == slot:
                    return entry, transition
        return None

    def history(self, before_seq: int, limit: int) -> Tuple[FlightRecord, ...]:
        """The up-to-``limit`` records at or before ``before_seq``."""
        selected = [r for r in self._ring if r.seq <= before_seq]
        return tuple(selected[-limit:])

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(depth={self.depth}, held={len(self._ring)}, "
            f"total={self._total})"
        )
