"""The execution-observer protocol and the event bus.

The paper's runtime is a single committed-control-flow stream fanned
out to consumers (§5.4: the IPDS checker, the timing hardware, the
audit log).  :class:`ExecutionObserver` is the typed contract every
consumer implements; :class:`ObserverBus` is the fan-out point the
interpreter drives — each event is dispatched exactly once, through
``event.dispatch(observer)``, instead of every consumer re-classifying
the event with its own isinstance chain.

Hooks (all optional — the base class implementations are no-ops):

* ``on_call(event)``    — a function activation was pushed;
* ``on_return(event)``  — a function activation was popped;
* ``on_branch(event)``  — a conditional branch committed;
* ``on_instruction(instruction, touched)`` — any instruction committed
  (``touched`` is the data address it accessed, or ``None``);
* ``on_instruction_batch(instructions, touched, count)`` — a *batch*
  of consecutive committed instructions (see below);
* ``finish()``          — the execution ended; flush/aggregate.

The bus pre-filters subscribers per hook: observers that keep a
base-class no-op never pay that hook's dispatch, and when *no* observer
overrides a hook the producer-facing sink (``call_sink`` /
``return_sink`` / ``branch_sink`` / ``instruction_sink``) is None, so
the interpreter skips even allocating the event.  This is what makes
attaching control-flow-only consumers (IPDS, trace recorders)
essentially free on the instruction hot path, and instruction-only
consumers free on the control-flow stream.

Batched instruction delivery: producers that buffer committed
instructions (the interpreter's flat event buffer) deliver them through
``instruction_batch_sink()`` instead of one ``emit_instruction`` call
per step.  A batch is always flushed *before* any control-flow event
is dispatched, so every observer still sees the exact interleaving the
per-instruction path produced — batching changes the call granularity,
never the order.  Observers override ``on_instruction_batch`` to
process the whole buffer in one call (the timing model's fast path);
the base-class default loops over ``on_instruction``, so plain
per-instruction observers ride batches unchanged.  The buffers passed
to a batch hook are owned by the producer and reused after the call
returns — consumers must copy anything they keep.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence

from .events import BranchEvent, CallEvent, Event, ReturnEvent


class ExecutionObserver:
    """Base class for committed-execution consumers.

    Subclass and override the hooks you need; every default is a no-op
    so observers state only what they consume.
    """

    def on_call(self, event: CallEvent) -> Any:
        """A function activation was pushed."""

    def on_return(self, event: ReturnEvent) -> Any:
        """A function activation was popped."""

    def on_branch(self, event: BranchEvent) -> Any:
        """A conditional branch committed."""

    def on_instruction(self, instruction: Any, touched: Optional[int]) -> Any:
        """Any instruction committed (``touched`` = data address or None)."""

    def on_instruction_batch(
        self,
        instructions: Sequence[Any],
        touched: Sequence[Optional[int]],
        count: int,
    ) -> Any:
        """A batch of consecutive committed instructions.

        ``instructions[:count]`` / ``touched[:count]`` are the valid
        entries (the producer reuses a preallocated buffer, so the
        lists may be longer than ``count`` and are overwritten after
        this call returns).  The default unrolls the batch through
        ``on_instruction`` in order, so observers that only implement
        the per-instruction hook see an identical event sequence.
        """
        on_instruction = self.on_instruction
        for index in range(count):
            on_instruction(instructions[index], touched[index])

    def finish(self) -> None:
        """The observed execution ended."""


class ProgressObserver(ExecutionObserver):
    """Periodic liveness callback for long executions.

    Counts committed control-flow events (calls, returns, branches) and
    invokes ``callback(events_seen)`` every ``every`` events — the hook
    the detection daemon uses to stream step progress for a running
    session and to poll for operator kill requests.  Purely
    observational: it subscribes only to the control-flow stream, so
    instruction-hot-path cost is zero and detection results are
    untouched.
    """

    def __init__(
        self, callback: Callable[[int], None], every: int = 10_000
    ) -> None:
        if every < 1:
            raise ValueError(f"progress interval must be >= 1, got {every}")
        self._callback = callback
        self._every = every
        self.events_seen = 0

    def _tick(self) -> None:
        self.events_seen += 1
        if self.events_seen % self._every == 0:
            self._callback(self.events_seen)

    def on_call(self, event: CallEvent) -> None:
        self._tick()

    def on_return(self, event: ReturnEvent) -> None:
        self._tick()

    def on_branch(self, event: BranchEvent) -> None:
        self._tick()


class CallbackObserver(ExecutionObserver):
    """Adapts a legacy ``Callable[[Event], None]`` listener to the bus.

    Keeps the pre-bus listener style working: the callable receives
    every control-flow event, exactly as ``event_listeners`` used to.
    """

    def __init__(self, callback: Callable[[Event], None]) -> None:
        self._callback = callback

    def on_call(self, event: CallEvent) -> None:
        self._callback(event)

    def on_return(self, event: ReturnEvent) -> None:
        self._callback(event)

    def on_branch(self, event: BranchEvent) -> None:
        self._callback(event)


class InstructionCallbackObserver(ExecutionObserver):
    """Adapts a legacy ``(instruction, touched)`` listener to the bus."""

    def __init__(
        self, callback: Callable[[Any, Optional[int]], None]
    ) -> None:
        self._callback = callback

    def on_instruction(self, instruction: Any, touched: Optional[int]) -> None:
        self._callback(instruction, touched)


def as_observer(consumer: Any) -> ExecutionObserver:
    """Coerce a consumer to the observer protocol.

    Observers pass through; bare callables (legacy event listeners) are
    wrapped in a :class:`CallbackObserver`.
    """
    if isinstance(consumer, ExecutionObserver):
        return consumer
    if callable(consumer):
        return CallbackObserver(consumer)
    raise TypeError(
        f"not an ExecutionObserver or event callable: {consumer!r}"
    )


class ObserverBus:
    """Single-dispatch fan-out for one execution's event stream."""

    __slots__ = (
        "observers",
        "_instruction_observers",
        "_call_observers",
        "_return_observers",
        "_branch_observers",
    )

    def __init__(self, observers: Iterable[Any] = ()) -> None:
        self.observers: List[ExecutionObserver] = [
            as_observer(observer) for observer in observers
        ]
        # Per-hook pre-filtering: only observers that actually override
        # a hook pay its dispatch — and when nobody overrides it, the
        # producer's sink is None and the event is never even built.
        # Overriding either instruction hook subscribes to the
        # instruction stream (the default batch hook unrolls into
        # on_instruction, and vice versa a batch-only observer still
        # consumes per-instruction emission through its batch hook).
        self._instruction_observers = self._overriders(
            "on_instruction", "on_instruction_batch"
        )
        self._call_observers = self._overriders("on_call")
        self._return_observers = self._overriders("on_return")
        self._branch_observers = self._overriders("on_branch")

    def _overriders(self, *hooks: str) -> List[ExecutionObserver]:
        bases = tuple(getattr(ExecutionObserver, hook) for hook in hooks)
        return [
            observer
            for observer in self.observers
            if any(
                getattr(type(observer), hook) is not base
                for hook, base in zip(hooks, bases)
            )
        ]

    def __len__(self) -> int:
        return len(self.observers)

    @property
    def wants_instructions(self) -> bool:
        return bool(self._instruction_observers)

    def emit(self, event: Event) -> None:
        """Dispatch one control-flow event to every observer, once."""
        for observer in self.observers:
            event.dispatch(observer)

    @staticmethod
    def _instruction_target(
        observer: ExecutionObserver,
    ) -> Callable[[Any, Optional[int]], None]:
        """Per-instruction dispatch target for one subscriber.

        Observers that override ``on_instruction`` get it directly; a
        batch-only observer gets an adapter that wraps each instruction
        in a one-element batch, so no event is ever dropped on the
        unbatched delivery path.
        """
        if (
            type(observer).on_instruction
            is not ExecutionObserver.on_instruction
        ):
            return observer.on_instruction
        batch_hook = observer.on_instruction_batch

        def single(instruction: Any, touched: Optional[int]) -> None:
            batch_hook([instruction], [touched], 1)

        return single

    def emit_instruction(self, instruction: Any, touched: Optional[int]) -> None:
        """Dispatch one committed instruction to subscribers only."""
        for observer in self._instruction_observers:
            self._instruction_target(observer)(instruction, touched)

    @staticmethod
    def _sink(
        subscribers: List[ExecutionObserver], hook: str
    ) -> Optional[Callable[..., None]]:
        """Pre-bound dispatch target for one hook's subscriber list.

        None when nobody overrides the hook — the producer then skips
        the call *and* the event allocation.  The lone subscriber's
        bound method when there is exactly one (the common case),
        cutting out the fan-out loop; a small fan-out closure otherwise.
        """
        if not subscribers:
            return None
        if len(subscribers) == 1:
            return getattr(subscribers[0], hook)
        hooks = [getattr(subscriber, hook) for subscriber in subscribers]

        def fan_out(*args: Any) -> None:
            for bound in hooks:
                bound(*args)

        return fan_out

    def call_sink(self) -> Optional[Callable[[CallEvent], None]]:
        return self._sink(self._call_observers, "on_call")

    def return_sink(self) -> Optional[Callable[[ReturnEvent], None]]:
        return self._sink(self._return_observers, "on_return")

    def branch_sink(self) -> Optional[Callable[[BranchEvent], None]]:
        return self._sink(self._branch_observers, "on_branch")

    def instruction_sink(
        self,
    ) -> Optional[Callable[[Any, Optional[int]], None]]:
        subscribers = self._instruction_observers
        if not subscribers:
            return None
        targets = [
            self._instruction_target(subscriber) for subscriber in subscribers
        ]
        if len(targets) == 1:
            return targets[0]

        def fan_out(instruction: Any, touched: Optional[int]) -> None:
            for target in targets:
                target(instruction, touched)

        return fan_out

    def instruction_batch_sink(
        self,
    ) -> Optional[Callable[[Sequence[Any], Sequence[Optional[int]], int], None]]:
        """Pre-bound dispatch target for batched instruction delivery.

        None when nobody subscribes to the instruction stream.  Every
        subscriber receives the whole batch through its
        ``on_instruction_batch`` hook — the base-class default unrolls
        into ``on_instruction``, so per-instruction observers see the
        identical event sequence at batch granularity.
        """
        return self._sink(self._instruction_observers, "on_instruction_batch")

    def finish(self) -> None:
        """Signal end-of-execution to every observer."""
        for observer in self.observers:
            observer.finish()


def build_bus(
    observers: Sequence[Any] = (),
    event_listeners: Sequence[Callable[[Event], None]] = (),
    instruction_listener: Optional[Callable[[Any, Optional[int]], None]] = None,
) -> ObserverBus:
    """One bus from the new protocol plus legacy listener kwargs.

    Ordering is stable: protocol observers first (in the order given),
    then wrapped legacy event listeners, then the wrapped legacy
    instruction listener — matching the pre-bus emission order.
    """
    members: List[Any] = list(observers)
    members.extend(CallbackObserver(listener) for listener in event_listeners)
    if instruction_listener is not None:
        members.append(InstructionCallbackObserver(instruction_listener))
    return ObserverBus(members)
