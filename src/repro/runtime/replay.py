"""Event-trace serialization and offline replay.

The IPDS is an online checker, but its event stream is small and
serializable — which enables an audit-log deployment style: record the
committed control-flow events cheaply, re-check them offline (or on
another machine) against the program's tables.  Alarms from a replay
are identical to online alarms because the checker is deterministic.

Format: one JSON object per line (`jsonl`), tagged by event kind.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator, List, Union

from ..correlation.tables import ProgramTables
from ..lang.errors import ReproError
from .events import BranchEvent, CallEvent, Event, ReturnEvent
from .ipds import IPDS, Alarm


class TraceFormatError(ReproError):
    """Malformed serialized trace."""


def event_to_json(event: Event) -> str:
    """One event as a compact JSON line (no trailing newline)."""
    if isinstance(event, CallEvent):
        return json.dumps({"k": "call", "fn": event.function_name})
    if isinstance(event, ReturnEvent):
        return json.dumps({"k": "ret", "fn": event.function_name})
    if isinstance(event, BranchEvent):
        return json.dumps(
            {
                "k": "br",
                "fn": event.function_name,
                "pc": event.pc,
                "t": int(event.taken),
            }
        )
    raise TraceFormatError(f"unknown event {event!r}")


def event_from_json(line: str) -> Event:
    """Parse one JSON line back into an event."""
    try:
        record = json.loads(line)
        kind = record["k"]
        if kind == "call":
            return CallEvent(record["fn"])
        if kind == "ret":
            return ReturnEvent(record["fn"])
        if kind == "br":
            return BranchEvent(record["fn"], record["pc"], bool(record["t"]))
    except (json.JSONDecodeError, KeyError, TypeError) as error:
        raise TraceFormatError(f"bad trace line {line!r}: {error}") from None
    raise TraceFormatError(f"unknown event kind {record['k']!r}")


def dump_trace(events: Iterable[Event], stream: IO[str]) -> int:
    """Write events as jsonl; returns the event count."""
    count = 0
    for event in events:
        stream.write(event_to_json(event))
        stream.write("\n")
        count += 1
    return count


def load_trace(stream: IO[str]) -> Iterator[Event]:
    """Stream events back from jsonl (lazy)."""
    for line in stream:
        line = line.strip()
        if line:
            yield event_from_json(line)


class TraceRecorder:
    """An event listener that accumulates the stream for later dumping."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __call__(self, event: Event) -> None:
        self.events.append(event)


def replay(
    tables: ProgramTables,
    events: Iterable[Event],
    halt_on_alarm: bool = False,
) -> List[Alarm]:
    """Re-check a recorded event stream offline."""
    checker = IPDS(tables, halt_on_alarm=halt_on_alarm)
    return checker.run(events)
