"""Event-trace serialization and offline replay.

The IPDS is an online checker, but its event stream is small and
serializable — which enables an audit-log deployment style: record the
committed control-flow events cheaply, re-check them offline (or on
another machine) against the program's tables.  Alarms from a replay
are identical to online alarms because the checker is deterministic.

Format: one JSON object per line (`jsonl`), tagged by event kind.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator, List

from ..correlation.tables import ProgramTables
from ..lang.errors import ReproError
from .events import BranchEvent, CallEvent, Event, ReturnEvent
from .ipds import IPDS, Alarm
from .observer import ExecutionObserver


class TraceFormatError(ReproError):
    """Malformed serialized trace."""


def event_to_json(event: Event) -> str:
    """One event as a compact JSON line (no trailing newline)."""
    to_json_dict = getattr(event, "to_json_dict", None)
    if to_json_dict is None:
        raise TraceFormatError(f"unknown event {event!r}")
    return json.dumps(to_json_dict())


def event_from_json(line: str) -> Event:
    """Parse one JSON line back into an event."""
    try:
        record = json.loads(line)
        kind = record["k"]
        if kind == "call":
            return CallEvent(record["fn"])
        if kind == "ret":
            return ReturnEvent(record["fn"])
        if kind == "br":
            return BranchEvent(record["fn"], record["pc"], bool(record["t"]))
    except (json.JSONDecodeError, KeyError, TypeError) as error:
        raise TraceFormatError(f"bad trace line {line!r}: {error}") from None
    raise TraceFormatError(f"unknown event kind {record['k']!r}")


def dump_trace(events: Iterable[Event], stream: IO[str]) -> int:
    """Write events as jsonl; returns the event count."""
    count = 0
    for event in events:
        stream.write(event_to_json(event))
        stream.write("\n")
        count += 1
    return count


def load_trace(stream: IO[str]) -> Iterator[Event]:
    """Stream events back from jsonl (lazy)."""
    for line in stream:
        line = line.strip()
        if line:
            yield event_from_json(line)


class TraceRecorder(ExecutionObserver):
    """An observer that accumulates the stream for later dumping.

    Attaches to the interpreter bus as an
    :class:`~repro.runtime.observer.ExecutionObserver`; it also stays
    callable so legacy ``event_listeners=[recorder]`` wiring works.
    """

    def __init__(self) -> None:
        self.events: List[Event] = []

    def on_call(self, event: CallEvent) -> None:
        self.events.append(event)

    def on_return(self, event: ReturnEvent) -> None:
        self.events.append(event)

    def on_branch(self, event: BranchEvent) -> None:
        self.events.append(event)

    def __call__(self, event: Event) -> None:
        self.events.append(event)


def replay(
    tables: ProgramTables,
    events: Iterable[Event],
    halt_on_alarm: bool = False,
    allow_unprotected: bool = False,
) -> List[Alarm]:
    """Re-check a recorded event stream offline.

    ``allow_unprotected`` tolerates calls into functions absent from
    ``tables`` (e.g. a trace recorded against a build with more
    functions than the replaying tables cover).
    """
    checker = IPDS(
        tables,
        halt_on_alarm=halt_on_alarm,
        allow_unprotected=allow_unprotected,
    )
    return checker.run(events)
