"""The IPDS runtime checker (§5.4).

Consumes the committed control-flow event stream and maintains the
BSV/BCV/BAT stack:

* ``CallEvent`` — push a fresh all-UNKNOWN BSV frame for the callee;
* ``ReturnEvent`` — pop it, resuming the caller's frame;
* ``BranchEvent`` — if the branch is marked in the BCV, *verify* its
  actual direction against the BSV (a definite mismatch is an
  infeasible path ⇒ alarm), then *update* the BSV by firing the BAT
  actions for (branch, direction).

Verification-before-update ordering matters: the event's own actions
describe the world *after* this branch, so they must not influence its
own check.

The checker is an :class:`~repro.runtime.observer.ExecutionObserver`:
it plugs straight onto the interpreter's event bus (``on_call`` /
``on_return`` / ``on_branch``), and :meth:`IPDS.process` remains as the
single-event entry point for offline replay.

The functional checker here decides *what* is detected; timing (queue
occupancy, spills, detection latency) is modeled separately in
:mod:`repro.cpu`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from ..correlation.actions import BranchStatus
from ..correlation.tables import ProgramTables
from ..lang.errors import ReproError
from .bsv import BSVFrame
from .events import BranchEvent, CallEvent, Event, ReturnEvent
from .flight_recorder import (
    BranchRecord,
    BSVTransition,
    FlightRecorder,
    FrameRecord,
)
from .observer import ExecutionObserver


class IPDSError(ReproError):
    """Protocol violation in the event stream (runtime bug, not attack)."""


@dataclass(frozen=True)
class Alarm:
    """One detected infeasible path."""

    function_name: str
    pc: int
    expected: BranchStatus
    actual_taken: bool
    event_index: int
    #: BSV slot whose expectation was violated and the activation that
    #: held it — forensics join keys (defaulted for legacy callers).
    slot: int = -1
    frame_id: int = -1

    def __str__(self) -> str:
        actual = "T" if self.actual_taken else "NT"
        return (
            f"infeasible path in {self.function_name}@{self.pc:#x}: "
            f"expected {self.expected.value}, saw {actual} "
            f"(event #{self.event_index})"
        )


@dataclass
class IPDSStats:
    """Counters for one monitored execution."""

    events: int = 0
    branch_events: int = 0
    checks: int = 0
    updates: int = 0
    actions_fired: int = 0
    max_stack_depth: int = 0
    unprotected_calls: int = 0
    unprotected_branches: int = 0


class IPDS(ExecutionObserver):
    """Infeasible Path Detection System runtime.

    ``halt_on_alarm`` mirrors a deployment that kills the process on
    the first alarm; the default records alarms and keeps checking so
    campaigns can observe everything.

    ``allow_unprotected`` selects the tolerant partial-coverage mode:
    a call into a function with no compiled tables pushes a sentinel
    frame that is counted (``stats.unprotected_calls``) and skipped —
    branches committed inside it are counted but never checked or used
    for updates — instead of hard-raising :class:`IPDSError`.  This is
    the deployment reality of a binary linked against unanalyzed
    libraries.

    ``alarm_sink`` is an optional callback invoked with each
    :class:`Alarm` immediately after it is recorded — the hook an
    alarm-response policy (log / kill session / quarantine) hangs off.
    A sink that raises aborts the monitored execution; the alarm is
    already recorded when the sink runs, so observers of ``alarms``
    see identical state with or without a sink.
    """

    def __init__(
        self,
        tables: ProgramTables,
        halt_on_alarm: bool = False,
        allow_unprotected: bool = False,
        flight_recorder: Optional[FlightRecorder] = None,
        alarm_sink: Optional[Callable[[Alarm], None]] = None,
    ):
        self._tables = tables
        self._stack: List[Optional[BSVFrame]] = []
        self._halt_on_alarm = halt_on_alarm
        self._allow_unprotected = allow_unprotected
        self._halted = False
        # Frame ids are assigned whether or not a recorder is attached,
        # so alarms (which carry frame_id) are identical either way.
        self._next_frame_id = 0
        self.flight_recorder = flight_recorder
        self.alarm_sink = alarm_sink
        self.alarms: List[Alarm] = []
        self.stats = IPDSStats()

    # -- event interface ----------------------------------------------------

    def process(self, event: Event) -> Optional[Alarm]:
        """Consume one event; returns an alarm if this event raised one."""
        dispatch = getattr(event, "dispatch", None)
        if dispatch is None:
            raise IPDSError(f"unknown event {event!r}")
        return dispatch(self)

    def on_call(self, event: CallEvent) -> None:
        if self._halted:
            return None
        self.stats.events += 1
        self._push(event.function_name)
        return None

    def on_return(self, event: ReturnEvent) -> None:
        if self._halted:
            return None
        self.stats.events += 1
        self._pop(event.function_name)
        return None

    def on_branch(self, event: BranchEvent) -> Optional[Alarm]:
        if self._halted:
            return None
        self.stats.events += 1
        return self._branch(event)

    def run(self, events: Iterable[Event]) -> List[Alarm]:
        """Consume a whole stream; returns all alarms raised."""
        for event in events:
            self.process(event)
            if self._halted:
                break
        return self.alarms

    @property
    def detected(self) -> bool:
        return bool(self.alarms)

    @property
    def tables(self) -> ProgramTables:
        return self._tables

    @property
    def stack_depth(self) -> int:
        return len(self._stack)

    def current_frame(self) -> Optional[BSVFrame]:
        return self._stack[-1] if self._stack else None

    # -- internals ---------------------------------------------------------

    def _push(self, function_name: str) -> None:
        frame_id: Optional[int] = None
        try:
            tables = self._tables.tables_for(function_name)
        except KeyError:
            if not self._allow_unprotected:
                raise IPDSError(
                    f"call into unprotected function {function_name!r}"
                ) from None
            # Tolerant mode: account for the frame so returns stay
            # balanced, but there is nothing to check inside it.
            self.stats.unprotected_calls += 1
            self._stack.append(None)
        else:
            self._next_frame_id += 1
            frame_id = self._next_frame_id
            self._stack.append(BSVFrame(tables, frame_id=frame_id))
        self.stats.max_stack_depth = max(
            self.stats.max_stack_depth, len(self._stack)
        )
        if self.flight_recorder is not None:
            self.flight_recorder.record(
                FrameRecord(
                    seq=self.stats.events,
                    kind="call",
                    function=function_name,
                    frame_id=frame_id,
                )
            )

    def _pop(self, function_name: str) -> None:
        if not self._stack:
            raise IPDSError("return event with empty table stack")
        frame = self._stack.pop()
        if self.flight_recorder is not None:
            self.flight_recorder.record(
                FrameRecord(
                    seq=self.stats.events,
                    kind="return",
                    function=function_name,
                    frame_id=None if frame is None else frame.frame_id,
                )
            )
        if frame is None:
            return  # unprotected sentinel: nothing to verify
        if frame.tables.function_name != function_name:
            raise IPDSError(
                f"return from {function_name!r} but top of stack is "
                f"{frame.tables.function_name!r}"
            )

    def _branch(self, event: BranchEvent) -> Optional[Alarm]:
        stack = self._stack
        if not stack:
            raise IPDSError("branch event with empty table stack")
        frame = stack[-1]
        stats = self.stats
        if frame is None:
            # Branch inside an unprotected frame: observed, not checked.
            stats.unprotected_branches += 1
            return None
        tables = frame.tables
        if tables.function_name != event.function_name:
            raise IPDSError(
                f"branch event from {event.function_name!r} but active "
                f"frame is {tables.function_name!r}"
            )
        stats.branch_events += 1
        taken = event.taken
        # One precomputed int-keyed lookup replaces slot_of + BCV
        # membership + the (slot, taken) BAT lookup on every committed
        # branch (see FunctionTables.branch_plan).
        plan = tables._plan_by_pc.get(event.pc)
        if plan is None:
            slot: Optional[int] = None
            checked = False
            actions: tuple = ()
        else:
            slot = plan[0]
            checked = plan[1]
            actions = plan[2] if taken else plan[3]
        recorder = self.flight_recorder
        alarm: Optional[Alarm] = None

        # Verify first (only branches marked in the BCV).  The status
        # read and UNKNOWN-matches-anything test are inlined (slot
        # absent from the frame's dict means UNKNOWN, which can never
        # alarm) — this path runs once per committed checked branch.
        expected: Optional[BranchStatus] = None
        if checked:
            stats.checks += 1
            expected = frame._status.get(slot, BranchStatus.UNKNOWN)
            if (
                expected is not BranchStatus.UNKNOWN
                and (expected is BranchStatus.TAKEN) != taken
            ):
                alarm = Alarm(
                    function_name=event.function_name,
                    pc=event.pc,
                    expected=expected,
                    actual_taken=taken,
                    event_index=stats.events,
                    slot=slot,
                    frame_id=frame.frame_id,
                )
                self.alarms.append(alarm)
                if self._halt_on_alarm:
                    self._halted = True
                    if recorder is not None:
                        recorder.record(
                            self._branch_record(event, frame, checked, expected, True, ())
                        )
                    if self.alarm_sink is not None:
                        self.alarm_sink(alarm)
                    return alarm

        # Then update, whether or not the branch is checked (§5.4).
        if actions:
            stats.updates += 1
            if recorder is None:
                frame.apply_all(actions)
                stats.actions_fired += len(actions)
            else:
                transitions = []
                for target_slot, action in actions:
                    before = frame.status(target_slot)
                    frame.apply(target_slot, action)
                    self.stats.actions_fired += 1
                    transitions.append(
                        BSVTransition(
                            slot=target_slot,
                            target_pc=tables.pc_of_slot(target_slot),
                            action=action,
                            before=before,
                            after=frame.status(target_slot),
                        )
                    )
                recorder.record(
                    self._branch_record(
                        event, frame, checked, expected,
                        alarm is not None, tuple(transitions),
                    )
                )
                if alarm is not None and self.alarm_sink is not None:
                    self.alarm_sink(alarm)
                return alarm
        if recorder is not None:
            recorder.record(
                self._branch_record(event, frame, checked, expected, alarm is not None, ())
            )
        if alarm is not None and self.alarm_sink is not None:
            self.alarm_sink(alarm)
        return alarm

    def _branch_record(
        self,
        event: BranchEvent,
        frame: BSVFrame,
        checked: bool,
        expected: Optional[BranchStatus],
        alarmed: bool,
        transitions: tuple,
    ) -> BranchRecord:
        return BranchRecord(
            seq=self.stats.events,
            frame_id=frame.frame_id,
            function=event.function_name,
            pc=event.pc,
            taken=event.taken,
            checked=checked,
            expected=expected,
            alarmed=alarmed,
            transitions=transitions,
        )
