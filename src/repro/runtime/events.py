"""Runtime event stream vocabulary.

The execution substrate (interpreter or CPU model) feeds consumers a
stream of *committed* control-flow events: function calls, returns, and
conditional-branch outcomes.  Consumers never see data values — exactly
the paper's hardware interface (§5.4: "each committed branch is sent to
the IPDS").

Each event knows how to ``dispatch`` itself to an
:class:`~repro.runtime.observer.ExecutionObserver`, so consumers get a
typed callback (``on_call`` / ``on_return`` / ``on_branch``) instead of
re-discovering the event kind with an isinstance chain, and how to
serialize itself for the audit-log trace format
(:mod:`repro.runtime.replay`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Union


@dataclass(frozen=True, slots=True)
class CallEvent:
    """Entering a function: push fresh tables for it."""

    function_name: str

    def dispatch(self, observer: Any) -> Any:
        return observer.on_call(self)

    def to_json_dict(self) -> Dict[str, Any]:
        return {"k": "call", "fn": self.function_name}


@dataclass(frozen=True, slots=True)
class ReturnEvent:
    """Leaving a function: pop its tables."""

    function_name: str

    def dispatch(self, observer: Any) -> Any:
        return observer.on_return(self)

    def to_json_dict(self) -> Dict[str, Any]:
        return {"k": "ret", "fn": self.function_name}


@dataclass(frozen=True, slots=True)
class BranchEvent:
    """A committed conditional branch."""

    function_name: str
    pc: int
    taken: bool

    @property
    def direction(self) -> str:
        return "T" if self.taken else "NT"

    def dispatch(self, observer: Any) -> Any:
        return observer.on_branch(self)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "k": "br",
            "fn": self.function_name,
            "pc": self.pc,
            "t": int(self.taken),
        }


Event = Union[CallEvent, ReturnEvent, BranchEvent]
