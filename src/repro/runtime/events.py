"""Runtime event stream vocabulary.

The execution substrate (interpreter or CPU model) feeds the IPDS a
stream of *committed* control-flow events: function calls, returns, and
conditional-branch outcomes.  The IPDS never sees data values — exactly
the paper's hardware interface (§5.4: "each committed branch is sent to
the IPDS").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class CallEvent:
    """Entering a function: push fresh tables for it."""

    function_name: str


@dataclass(frozen=True)
class ReturnEvent:
    """Leaving a function: pop its tables."""

    function_name: str


@dataclass(frozen=True)
class BranchEvent:
    """A committed conditional branch."""

    function_name: str
    pc: int
    taken: bool

    @property
    def direction(self) -> str:
        return "T" if self.taken else "NT"


Event = Union[CallEvent, ReturnEvent, BranchEvent]
