"""BAT and BCV construction — the paper's Figure 5 algorithm.

Per function, the compiler:

1. runs alias analysis and identifies memory-resident values (done by
   :mod:`repro.analysis.alias`; every named variable here is memory
   resident by construction);
2. builds reaching definitions over stores, aliased stores, and call
   pseudo-stores (:mod:`repro.analysis.defs`);
3. extracts, for each conditional branch, a *check* predicate (its
   outcome as a function of a loaded value) and *inference* predicates
   (ranges its direction implies for variables), see
   :mod:`repro.analysis.branch_info`;
4. for every (source branch, direction, checked branch) triple decides
   one action — ``SET_T`` / ``SET_NT`` when the implied range subsumes
   one outcome set of the checked branch (Fig. 5 lines 6–15), or
   ``SET_UN`` when the direction's *branch-free region* contains a
   potential store to the checked variable (the kill placement derived
   in DESIGN.md §4, standing in for Fig. 5 lines 19–21);
5. marks every branch that received at least one SET_T/SET_NT in the
   BCV, then finds a collision-free hash for the function's branch PCs
   (§5.2) and renders everything into slot-indexed tables.

Soundness rule: **kills win**.  If a direction's region reaches a store
of the variable, the entry is ``SET_UN`` regardless of any subsumption
— the conservative choice that preserves the zero-false-positive
guarantee at some cost in detection.

At ``--opt 2`` the rule gains one interprocedural exception: a kill
whose *only* cause is call pseudo-stores may be **suppressed** when the
edge's own SET on the same target is provably preserved by every
callee's transfer summary (:mod:`repro.analysis.summaries`).  The
suppression is sound because the edge's own action overwrites the BSV
slot at commit, before the region executes — the edge's claim is the
only live prediction on that slot while the calls run — and the
summaries prove no callee write can move the variable out of the
claimed outcome set.  Surviving entries carry ``interproc`` provenance
with the summary text, independently re-proved by the ``IP5xx`` audit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.branch_info import BranchFacts, analyze_branches
from ..analysis.defs import DefinitionMap, ReachingDefinitions, analyze_definitions
from ..analysis.feasible import FeasibleAnalysis, FeasibleFinding, analyze_feasible
from ..analysis.purity import PurityResult, analyze_purity
from ..analysis.alias import analyze_aliases
from ..analysis.summaries import (
    ProgramSummaries,
    analyze_summaries,
    render_region_summary,
)
from ..ir.cfg import CondEdge, edge_target, reachable_blocks, regions_by_edge
from ..ir.function import IRFunction, IRModule
from ..ir.instructions import Call, VarKind, Variable
from .actions import BranchAction
from .hashing import find_perfect_hash
from .provenance import (
    REASON_CONFLICT,
    REASON_FEASIBLE,
    REASON_INTERPROC,
    REASON_KILL,
    REASON_SUBSUMPTION,
    ActionProvenance,
    sort_records,
)
from .tables import BranchMeta, EventKey, FunctionTables, ProgramTables


@dataclass
class BuildStats:
    """Counters describing one function's construction run."""

    function_name: str
    branches: int
    analyzable: int
    checked: int
    set_entries: int
    kill_entries: int
    conflicts: int
    hash_trials: int
    interproc_kills_suppressed: int = 0
    feasible_sets: int = 0


def build_function_tables(
    fn: IRFunction,
    module: IRModule,
    purity: PurityResult,
    summaries: Optional[ProgramSummaries] = None,
    feasible: bool = False,
) -> Tuple[FunctionTables, BuildStats]:
    """Run the Figure-5 construction for one function."""
    def_map, reaching = analyze_definitions(fn, module, purity)
    facts_by_pc = analyze_branches(fn, def_map)
    feas: Optional[FeasibleAnalysis] = (
        analyze_feasible(fn, def_map, facts_by_pc) if feasible else None
    )
    branches = fn.cond_branches()
    branch_pcs = tuple(sorted(b.address for b in branches))
    block_of_pc = {
        block.terminator.address: block
        for block in fn.blocks
        if block.ends_in_cond_branch()
    }

    # -- step 1: candidate SET actions from subsumption ------------------
    # candidate[(bs_pc, dir)][bl_pc] -> set of proposed actions
    candidates: Dict[Tuple[int, bool], Dict[int, Set[BranchAction]]] = {}
    # evidence[(bs_pc, dir)][bl_pc][action] -> the inference that first
    # proposed it (kept for provenance; iteration order is deterministic).
    evidence: Dict[Tuple[int, bool], Dict[int, Dict[BranchAction, object]]] = {}
    checked_pcs: Set[int] = set()
    conflicts = 0

    reachable_from_edge: Dict[Tuple[int, bool], Set[str]] = {}
    for block in fn.blocks:
        if not block.ends_in_cond_branch():
            continue
        pc = block.terminator.address
        for taken in (True, False):
            edge = CondEdge(block.label, taken)
            target = edge_target(fn, edge)
            reachable_from_edge[(pc, taken)] = reachable_blocks(fn, target)

    for bl_pc, bl_facts in facts_by_pc.items():
        check = bl_facts.check
        if check is None:
            continue
        for bs_pc, bs_facts in facts_by_pc.items():
            for inference in bs_facts.inferences:
                if inference.var != check.var:
                    continue
                if not _source_feeds_check(
                    fn, def_map, reaching, bs_facts, inference, bl_facts
                ):
                    continue
                for taken in (True, False):
                    if bl_facts.block_label not in reachable_from_edge[
                        (bs_pc, taken)
                    ]:
                        continue
                    implied = inference.implied_set(taken)
                    if implied.is_trivial:
                        continue
                    if check.taken_set.superset_of_outcome(implied):
                        action = BranchAction.SET_T
                    elif check.nottaken_set.superset_of_outcome(implied):
                        action = BranchAction.SET_NT
                    else:
                        continue
                    candidates.setdefault((bs_pc, taken), {}).setdefault(
                        bl_pc, set()
                    ).add(action)
                    evidence.setdefault((bs_pc, taken), {}).setdefault(
                        bl_pc, {}
                    ).setdefault(action, inference)

    # Resolve candidates; contradictions (both SET_T and SET_NT implied)
    # mean the direction is statically infeasible — fall back to UNKNOWN.
    resolved: Dict[Tuple[int, bool], Dict[int, BranchAction]] = {}
    for key, per_target in candidates.items():
        for bl_pc, actions in per_target.items():
            if len(actions) == 1:
                (action,) = actions
            else:
                action = BranchAction.SET_UN
                conflicts += 1
            resolved.setdefault(key, {})[bl_pc] = action
            if action is not BranchAction.SET_UN:
                checked_pcs.add(bl_pc)

    # -- step 1b (opt 3): feasible-path actions ---------------------------
    # The per-edge feasible-path MFP proves forced outcomes the pairwise
    # subsumption test cannot see (constant stores along the way, pruned
    # infeasible merges).  New actions are only *added* where subsumption
    # proposed nothing; existing resolutions — including conflicts — win,
    # keeping opt <= 2 results byte-identical.
    feas_records: Dict[Tuple[EventKey, int], FeasibleFinding] = {}
    if feas is not None:
        for key, per_target in sorted(feas.findings.items()):
            for bl_pc, finding in sorted(per_target.items()):
                if resolved.get(key, {}).get(bl_pc) is not None:
                    continue
                action = (
                    BranchAction.SET_T if finding.forced else BranchAction.SET_NT
                )
                resolved.setdefault(key, {})[bl_pc] = action
                checked_pcs.add(bl_pc)
                feas_records[(key, bl_pc)] = finding

    # Drop entries targeting branches that never became checkable: their
    # BSV slots are never verified, so updates to them are dead weight.
    for key in list(resolved):
        resolved[key] = {
            bl_pc: action
            for bl_pc, action in resolved[key].items()
            if bl_pc in checked_pcs
        }
        if not resolved[key]:
            del resolved[key]

    set_entries = sum(len(v) for v in resolved.values())

    # -- step 2: kill placement ------------------------------------------
    # For every conditional edge whose branch-free region contains a
    # potential store to a checked variable, force SET_UN (kills win).
    # At opt 2 a call-only kill may be suppressed when the edge's own
    # claim is preserved by every callee's transfer summary.
    kill_entries = 0
    suppressed = 0
    killed: Set[Tuple[EventKey, int]] = set()
    saved: Dict[Tuple[EventKey, int], str] = {}
    regions = regions_by_edge(fn)
    for edge, region in regions.items():
        bs_pc = fn.block(edge.block_label).terminator.address
        key: EventKey = (bs_pc, edge.taken)
        for bl_pc in checked_pcs:
            var = facts_by_pc[bl_pc].check.var
            sites = [
                site
                for site in def_map.of_var(var)
                if site.block_label in region
            ]
            if not sites:
                continue
            previous = resolved.get(key, {}).get(bl_pc)
            if summaries is not None:
                summary_text = _suppressible_kill(
                    fn, summaries, facts_by_pc[bl_pc], var, sites, previous
                )
                if summary_text is not None:
                    saved[(key, bl_pc)] = summary_text
                    suppressed += 1
                    continue
            if feas is not None and previous in (
                BranchAction.SET_T,
                BranchAction.SET_NT,
            ):
                # Feasible-path aversion: the MFP already pushed every
                # store on every feasible path from this edge through
                # its transfer, so a claim it re-proves holds at every
                # later execution of the target — no kill needed.  This
                # covers direct stores, which interprocedural summaries
                # (call-only) cannot.
                finding = feas.for_edge(*key).get(bl_pc)
                if finding is not None and finding.forced == (
                    previous is BranchAction.SET_T
                ):
                    feas_records[(key, bl_pc)] = finding
                    continue
            if previous is not BranchAction.SET_UN:
                if previous is not None:
                    set_entries -= 1
                kill_entries += 1
            resolved.setdefault(key, {})[bl_pc] = BranchAction.SET_UN
            killed.add((key, bl_pc))

    # A branch whose every SET was overridden by kills can never be
    # predicted — checking it would only ever compare against UNKNOWN.
    # Recompute the BCV from the surviving SET entries and drop the now
    # dead action entries.
    surviving: Set[int] = set()
    for per_target in resolved.values():
        for bl_pc, action in per_target.items():
            if action is not BranchAction.SET_UN:
                surviving.add(bl_pc)
    if surviving != checked_pcs:
        checked_pcs = surviving
        for key in list(resolved):
            resolved[key] = {
                bl_pc: action
                for bl_pc, action in resolved[key].items()
                if bl_pc in checked_pcs
            }
            if not resolved[key]:
                del resolved[key]

    feas_records = {
        (key, bl_pc): finding
        for (key, bl_pc), finding in feas_records.items()
        if resolved.get(key, {}).get(bl_pc)
        in (BranchAction.SET_T, BranchAction.SET_NT)
    }

    provenance = _render_provenance(
        resolved, facts_by_pc, block_of_pc, evidence, killed, saved, feas_records
    )

    # -- step 3: hash + render --------------------------------------------
    search = find_perfect_hash(branch_pcs)
    params = search.params
    slot_of = {pc: params.slot(pc) for pc in branch_pcs}
    bat: Dict[EventKey, Tuple[Tuple[int, BranchAction], ...]] = {}
    for (bs_pc, taken), per_target in resolved.items():
        entries = tuple(
            sorted(
                (slot_of[bl_pc], action) for bl_pc, action in per_target.items()
            )
        )
        if entries:
            bat[(slot_of[bs_pc], taken)] = entries
    bcv_slots = frozenset(slot_of[pc] for pc in checked_pcs)
    meta = tuple(
        BranchMeta(
            pc=pc,
            slot=slot_of[pc],
            block_label=block_of_pc[pc].label,
            var_name=(
                facts_by_pc[pc].check.var.name
                if pc in facts_by_pc and facts_by_pc[pc].check is not None
                else None
            ),
        )
        for pc in branch_pcs
    )
    tables = FunctionTables(
        function_name=fn.name,
        hash_params=params,
        branch_pcs=branch_pcs,
        bcv_slots=bcv_slots,
        bat=bat,
        branch_meta=meta,
        provenance=provenance,
    )
    stats = BuildStats(
        function_name=fn.name,
        branches=len(branch_pcs),
        analyzable=len(facts_by_pc),
        checked=len(checked_pcs),
        set_entries=set_entries,
        kill_entries=kill_entries,
        conflicts=conflicts,
        hash_trials=search.trials,
        interproc_kills_suppressed=suppressed,
        feasible_sets=len(feas_records),
    )
    return tables, stats


def _suppressible_kill(
    fn: IRFunction,
    summaries: ProgramSummaries,
    bl_facts: BranchFacts,
    var: Variable,
    sites,
    previous: Optional[BranchAction],
) -> Optional[str]:
    """Summary text when this kill may be dropped, else ``None``.

    Requirements (each one load-bearing for soundness):

    * the edge's own pre-kill entry on the target is a ``SET_T`` /
      ``SET_NT`` — it overwrites the BSV slot at commit, so it is the
      only prediction live while the region runs;
    * the variable is a global scalar (call pseudo-stores to frame
      variables mean address-taken locals — out of summary scope);
    * every definition site in the region is a call pseudo-store (any
      direct or indirect store keeps the kill);
    * every callee's transfer summary preserves the claimed outcome set.
    """
    if previous not in (BranchAction.SET_T, BranchAction.SET_NT):
        return None
    if var.kind is not VarKind.GLOBAL or var.is_pointer or var.is_array:
        return None
    if any(site.kind != "call" for site in sites):
        return None
    callees = []
    for site in sites:
        instruction = fn.block(site.block_label).instructions[site.index]
        assert isinstance(instruction, Call)
        callees.append(instruction.callee)
    claimed = bl_facts.check.outcome_set(previous is BranchAction.SET_T)
    for callee in set(callees):
        if not summaries.transfer_for(callee, var).preserves(claimed):
            return None
    return render_region_summary(summaries, tuple(callees), var.name, var)


def _render_provenance(
    resolved: Dict[Tuple[int, bool], Dict[int, BranchAction]],
    facts_by_pc: Dict[int, BranchFacts],
    block_of_pc,
    evidence: Dict[Tuple[int, bool], Dict[int, Dict[BranchAction, object]]],
    killed: Set[Tuple[EventKey, int]],
    saved: Dict[Tuple[EventKey, int], str],
    feasible: Optional[Dict[Tuple[EventKey, int], FeasibleFinding]] = None,
) -> Tuple[ActionProvenance, ...]:
    """One :class:`ActionProvenance` per surviving BAT entry.

    Runs after the final pruning so the records describe exactly the
    entries the runtime will fire — forensics joins against these.
    """
    feasible = feasible or {}
    records: List[ActionProvenance] = []
    for (bs_pc, taken), per_target in resolved.items():
        for bl_pc, action in per_target.items():
            check = facts_by_pc[bl_pc].check
            common = dict(
                source_pc=bs_pc,
                source_block=block_of_pc[bs_pc].label,
                taken=taken,
                target_pc=bl_pc,
                target_block=block_of_pc[bl_pc].label,
                action=action.value,
                var=check.var.name,
                check=f"{check.var.name} {check.op.value} {check.bound}",
            )
            finding = feasible.get(((bs_pc, taken), bl_pc))
            if finding is not None:
                records.append(
                    ActionProvenance(
                        reason=REASON_FEASIBLE,
                        implied=finding.implied,
                        witness=finding.witness,
                        **common,
                    )
                )
            elif action is not BranchAction.SET_UN:
                inference = evidence[(bs_pc, taken)][bl_pc][action]
                summary = saved.get(((bs_pc, taken), bl_pc))
                records.append(
                    ActionProvenance(
                        reason=(
                            REASON_SUBSUMPTION
                            if summary is None
                            else REASON_INTERPROC
                        ),
                        link_kind=inference.kind,
                        link_index=inference.index,
                        implied=str(inference.implied_set(taken)),
                        summary=summary,
                        **common,
                    )
                )
            elif ((bs_pc, taken), bl_pc) in killed:
                records.append(ActionProvenance(reason=REASON_KILL, **common))
            else:
                # Conflict: both SET_T and SET_NT were implied.  Keep the
                # link of the lexically-first action for the record.
                origins = evidence[(bs_pc, taken)][bl_pc]
                first = origins[min(origins, key=lambda a: a.value)]
                records.append(
                    ActionProvenance(
                        reason=REASON_CONFLICT,
                        link_kind=first.kind,
                        link_index=first.index,
                        **common,
                    )
                )
    return sort_records(tuple(records))


def _source_feeds_check(
    fn: IRFunction,
    def_map: DefinitionMap,
    reaching: ReachingDefinitions,
    bs_facts: BranchFacts,
    inference,
    bl_facts: BranchFacts,
) -> bool:
    """Does the inference access plausibly constrain the checked load?

    * store source (Fig. 5 lines 6–9): the store's definition must
      reach the checked load;
    * load source (lines 11–15): the paper asks for consecutive uses of
      the variable; redefinitions in between are handled dynamically by
      kill edges, so static reachability of the checked block (verified
      by the caller via ``reachable_from_edge``) suffices here.
    """
    if inference.kind != "store":
        return True
    check = bl_facts.check
    assert check is not None
    for site in def_map.at(bs_facts.block_label, inference.index):
        if site.var == inference.var:
            if reaching.reaches_load(
                site, bl_facts.block_label, check.load_index
            ):
                return True
    return False


def build_program_tables(
    module: IRModule,
    interproc: bool = False,
    feasible: bool = False,
) -> Tuple[ProgramTables, List[BuildStats]]:
    """Run the whole compiler side: alias → purity → per-function BATs.

    ``interproc=True`` (the ``--opt 2`` configuration) additionally
    computes bottom-up transfer summaries and lets the per-function
    construction suppress call-only kills they prove harmless.

    ``feasible=True`` (the ``--opt 3`` configuration) additionally runs
    the per-function feasible-path MFP (:mod:`repro.analysis.feasible`),
    adding SET entries for branch outcomes forced on every feasible
    path from an edge and averting kills those proofs cover.

    This is the main compiler entry point; the result is what gets
    "attached to the program binary" (§5.4).
    """
    analyze_aliases(module)
    purity = analyze_purity(module)
    summaries = analyze_summaries(module) if interproc else None
    program = ProgramTables()
    stats: List[BuildStats] = []
    for fn in module.functions:
        tables, fn_stats = build_function_tables(
            fn, module, purity, summaries, feasible=feasible
        )
        program.by_function[fn.name] = tables
        stats.append(fn_stats)
    return program, stats
