"""Branch status values and BAT actions (§5.1).

``BranchStatus`` is the 2-bit state stored per branch in the BSV;
``BranchAction`` is the 2-bit action stored per (branch, direction,
affected branch) in the BAT: ``SET_T``, ``SET_NT``, ``SET_UN``, ``NC``.
"""

from __future__ import annotations

import enum


class BranchStatus(enum.Enum):
    """Expected direction of a branch, as tracked in the BSV."""

    TAKEN = "T"
    NOT_TAKEN = "NT"
    UNKNOWN = "UN"

    def matches(self, taken: bool) -> bool:
        """Does an actual direction match this expectation?

        ``UNKNOWN`` matches any direction — verification only fails
        when the status is definite and contradicted (zero false
        positives, §6).
        """
        if self is BranchStatus.UNKNOWN:
            return True
        return (self is BranchStatus.TAKEN) == taken

    @staticmethod
    def of(taken: bool) -> "BranchStatus":
        return BranchStatus.TAKEN if taken else BranchStatus.NOT_TAKEN


class BranchAction(enum.Enum):
    """BAT entry: how one branch event updates another branch's status."""

    SET_T = "SET_T"
    SET_NT = "SET_NT"
    SET_UN = "SET_UN"
    NC = "NC"

    def apply(self, current: BranchStatus) -> BranchStatus:
        if self is BranchAction.SET_T:
            return BranchStatus.TAKEN
        if self is BranchAction.SET_NT:
            return BranchStatus.NOT_TAKEN
        if self is BranchAction.SET_UN:
            return BranchStatus.UNKNOWN
        return current

    @staticmethod
    def set_to(taken: bool) -> "BranchAction":
        return BranchAction.SET_T if taken else BranchAction.SET_NT
