"""Binary encoding model and bit-size accounting for BSV/BCV/BAT.

Figure 8 of the paper reports *average table sizes in bits per
function* (BSV 34, BCV 17, BAT 393 on their benchmarks).  This module
defines a concrete encoding matching the paper's description and
computes those sizes for our compiled tables:

* **BSV** — 2 bits per hash slot (taken / not-taken / unknown);
* **BCV** — 1 bit per hash slot (checked?);
* **BAT** — a linked-list structure ("the BAT table (which implements a
  link list)", §6): per hash slot two list heads (taken / not-taken
  direction), each entry holding a target slot index, a 2-bit action,
  and a next pointer.

Pointer width is the minimum needed to address every entry plus a nil
value.  Slot-index width equals the hash exponent.  The tagless design
is what the collision-free hash buys (§5.2): no per-slot PC tags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .tables import FunctionTables, ProgramTables

#: Bits for one BSV status entry.
STATUS_BITS = 2
#: Bits for one BAT action.
ACTION_BITS = 2


def _pointer_bits(entry_count: int) -> int:
    """Width of a next/head pointer addressing ``entry_count`` entries
    plus a distinguished nil."""
    values = entry_count + 1  # +1 for nil
    bits = 0
    while (1 << bits) < values:
        bits += 1
    return max(bits, 1)


@dataclass(frozen=True)
class TableSizes:
    """Bit sizes of one function's tables."""

    function_name: str
    bsv_bits: int
    bcv_bits: int
    bat_bits: int
    hash_space: int
    action_entries: int

    @property
    def total_bits(self) -> int:
        return self.bsv_bits + self.bcv_bits + self.bat_bits


def table_sizes(tables: FunctionTables) -> TableSizes:
    """Compute the encoded size of one function's tables."""
    space = tables.space
    entries = tables.action_count
    pointer = _pointer_bits(entries)
    slot_bits = max(tables.hash_params.bits, 1)
    # Two heads per slot (taken / not-taken event of the slot's branch).
    head_bits = 2 * space * pointer
    entry_bits = entries * (slot_bits + ACTION_BITS + pointer)
    return TableSizes(
        function_name=tables.function_name,
        bsv_bits=STATUS_BITS * space,
        bcv_bits=space,
        bat_bits=head_bits + entry_bits,
        hash_space=space,
        action_entries=entries,
    )


@dataclass(frozen=True)
class SizeSummary:
    """Average table sizes over a set of functions (the Fig. 8 rows)."""

    per_function: tuple
    avg_bsv_bits: float
    avg_bcv_bits: float
    avg_bat_bits: float

    @property
    def avg_total_bits(self) -> float:
        return self.avg_bsv_bits + self.avg_bcv_bits + self.avg_bat_bits


def summarize_sizes(program: ProgramTables) -> SizeSummary:
    """Average per-function sizes across a whole program."""
    sizes: List[TableSizes] = [table_sizes(t) for t in program]
    if not sizes:
        return SizeSummary((), 0.0, 0.0, 0.0)
    count = len(sizes)
    return SizeSummary(
        per_function=tuple(sizes),
        avg_bsv_bits=sum(s.bsv_bits for s in sizes) / count,
        avg_bcv_bits=sum(s.bcv_bits for s in sizes) / count,
        avg_bat_bits=sum(s.bat_bits for s in sizes) / count,
    )
