"""Collision-free branch-PC hashing (§5.2).

A per-function hash maps branch PCs into a tagless table.  The paper's
compiler "utilizes a parameterizable hash function with only shift and
XOR operations" and searches parameters by trial and error, enlarging
the hash space when no collision-free parameterization is found.

Ours is the same scheme::

    word  = pc >> 2                      (instructions are 4 bytes)
    h(pc) = (word ^ (word >> s1) ^ (word >> s2)) mod 2**bits

The search walks ``bits`` upward from ``ceil(log2(n))`` and tries all
``(s1, s2)`` pairs in a small window at each size, counting trials so
experiments can report search effort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..lang.errors import ReproError

#: Largest shift amount tried for either parameter.
MAX_SHIFT = 12

#: Largest hash-space exponent before the search gives up.
MAX_BITS = 16


class HashSearchError(ReproError):
    """No collision-free parameterization exists within the limits."""


@dataclass(frozen=True)
class HashParams:
    """Parameters of one per-function perfect hash."""

    shift1: int
    shift2: int
    bits: int  # hash space is 2**bits slots

    @property
    def space(self) -> int:
        return 1 << self.bits

    def slot(self, pc: int) -> int:
        """Hash a branch PC into its table slot."""
        word = pc >> 2
        return (word ^ (word >> self.shift1) ^ (word >> self.shift2)) & (
            self.space - 1
        )

    def __str__(self) -> str:
        return f"h(pc)=w^(w>>{self.shift1})^(w>>{self.shift2}) mod 2^{self.bits}"


@dataclass(frozen=True)
class HashSearchResult:
    """A found hash plus how hard the compiler worked to find it."""

    params: HashParams
    trials: int
    collision_free: bool = True


def _is_collision_free(params: HashParams, pcs: Sequence[int]) -> bool:
    seen = set()
    for pc in pcs:
        slot = params.slot(pc)
        if slot in seen:
            return False
        seen.add(slot)
    return True


def minimum_bits(count: int) -> int:
    """Smallest exponent whose space can hold ``count`` distinct slots."""
    bits = 0
    while (1 << bits) < count:
        bits += 1
    return bits


def find_perfect_hash(pcs: Sequence[int]) -> HashSearchResult:
    """Search for a collision-free hash for a set of branch PCs.

    Empty input gets a trivial 1-slot table.  Raises
    :class:`HashSearchError` if every parameterization up to
    ``MAX_BITS`` collides (cannot happen for realistic functions — the
    space doubles until sparse).
    """
    unique = sorted(set(pcs))
    if len(unique) != len(pcs):
        raise HashSearchError("duplicate branch PCs passed to hash search")
    if not unique:
        return HashSearchResult(HashParams(1, 2, 0), trials=0)
    trials = 0
    for bits in range(minimum_bits(len(unique)), MAX_BITS + 1):
        for shift1 in range(1, MAX_SHIFT + 1):
            for shift2 in range(shift1, MAX_SHIFT + 1):
                trials += 1
                params = HashParams(shift1, shift2, bits)
                if _is_collision_free(params, unique):
                    return HashSearchResult(params, trials)
    raise HashSearchError(
        f"no collision-free hash for {len(unique)} branches "
        f"within 2^{MAX_BITS} slots"
    )
