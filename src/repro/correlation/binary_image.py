"""Binary packaging of the tables — §5.4's function information table.

"BSVs, BCVs and BATs are constructed on a function basis ... They are
attached to the program binary by the compiler and mapped into a
reserved memory space of the program once the program is loaded.  The
compiler conveys basic information for each function to the runtime
system through a function information table.  The information includes
entry addresses of BSV, BCV and BAT, the entry address of the
function, hash function parameters etc."

This module implements exactly that: :func:`pack_program` serializes a
:class:`~repro.correlation.tables.ProgramTables` into a byte image
(function info table + per-function table blobs laid out at offsets
within the reserved region), and :func:`load_program` reconstructs
semantically identical tables from the image.  The packed BCV/BAT blobs
use the same bit layout as the Fig. 8 size accounting in
:mod:`repro.correlation.encoding`, so their byte sizes are the encoded
bit sizes rounded up — a property the tests pin.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Tuple

from ..lang.errors import ReproError
from .actions import BranchAction
from .encoding import ACTION_BITS, _pointer_bits
from .hashing import HashParams
from .provenance import ActionProvenance, sort_records
from .tables import FunctionTables, ProgramTables

#: Image magic and format version.  Version 2 added the provenance
#: sidecar (header gained a 4-byte sidecar length; see pack_program).
MAGIC = b"IPDS"
VERSION = 2

#: Action encodings on the wire (2 bits).
_ACTION_CODES = {
    BranchAction.NC: 0,
    BranchAction.SET_T: 1,
    BranchAction.SET_NT: 2,
    BranchAction.SET_UN: 3,
}
_CODE_ACTIONS = {v: k for k, v in _ACTION_CODES.items()}


class ImageError(ReproError):
    """Malformed or incompatible table image."""


class BitWriter:
    """MSB-first bit packer."""

    def __init__(self) -> None:
        self._bits: List[int] = []

    def write(self, value: int, width: int) -> None:
        if value < 0 or value >= (1 << width):
            raise ImageError(f"value {value} does not fit in {width} bits")
        for position in range(width - 1, -1, -1):
            self._bits.append((value >> position) & 1)

    @property
    def bit_length(self) -> int:
        return len(self._bits)

    def to_bytes(self) -> bytes:
        data = bytearray((len(self._bits) + 7) // 8)
        for index, bit in enumerate(self._bits):
            if bit:
                data[index // 8] |= 0x80 >> (index % 8)
        return bytes(data)


class BitReader:
    """MSB-first bit unpacker."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._cursor = 0

    def read(self, width: int) -> int:
        value = 0
        for _ in range(width):
            byte_index, bit_index = divmod(self._cursor, 8)
            if byte_index >= len(self._data):
                raise ImageError("bit stream exhausted")
            bit = (self._data[byte_index] >> (7 - bit_index)) & 1
            value = (value << 1) | bit
            self._cursor += 1
        return value


# ----------------------------------------------------------------------
# Per-function blobs
# ----------------------------------------------------------------------


def _pack_bcv(tables: FunctionTables) -> bytes:
    writer = BitWriter()
    for slot in range(tables.space):
        writer.write(1 if slot in tables.bcv_slots else 0, 1)
    return writer.to_bytes()


def _unpack_bcv(data: bytes, space: int) -> frozenset:
    reader = BitReader(data)
    return frozenset(s for s in range(space) if reader.read(1))


def _pack_bat(tables: FunctionTables) -> Tuple[bytes, int]:
    """Pack the BAT: head-pointer array then the entry array.

    Layout matches :mod:`repro.correlation.encoding`: two heads per
    slot (taken/not-taken), each entry = slot index + 2-bit action +
    next pointer; pointer value 0 is nil, entries are 1-indexed.
    Returns (blob, entry_count).
    """
    entries: List[Tuple[int, BranchAction, int]] = []  # (slot, action, next)
    heads: Dict[Tuple[int, bool], int] = {}
    for key in sorted(tables.bat.keys()):
        chain = tables.bat[key]
        previous = 0
        # Build the chain back-to-front so "next" pointers are known.
        indices: List[int] = []
        for target_slot, action in reversed(chain):
            entries.append((target_slot, action, previous))
            previous = len(entries)  # 1-indexed
            indices.append(previous)
        heads[key] = previous
    pointer = _pointer_bits(len(entries))
    slot_bits = max(tables.hash_params.bits, 1)
    writer = BitWriter()
    for slot in range(tables.space):
        for taken in (True, False):
            writer.write(heads.get((slot, taken), 0), pointer)
    for target_slot, action, next_index in entries:
        writer.write(target_slot, slot_bits)
        writer.write(_ACTION_CODES[action], ACTION_BITS)
        writer.write(next_index, pointer)
    return writer.to_bytes(), len(entries)


def _unpack_bat(
    data: bytes, space: int, bits: int, entry_count: int
) -> Dict[Tuple[int, bool], Tuple[Tuple[int, BranchAction], ...]]:
    pointer = _pointer_bits(entry_count)
    slot_bits = max(bits, 1)
    reader = BitReader(data)
    heads: Dict[Tuple[int, bool], int] = {}
    for slot in range(space):
        for taken in (True, False):
            heads[(slot, taken)] = reader.read(pointer)
    raw_entries: List[Tuple[int, BranchAction, int]] = []
    for _ in range(entry_count):
        target = reader.read(slot_bits)
        action = _CODE_ACTIONS[reader.read(ACTION_BITS)]
        next_index = reader.read(pointer)
        raw_entries.append((target, action, next_index))
    bat: Dict[Tuple[int, bool], Tuple[Tuple[int, BranchAction], ...]] = {}
    for key, head in heads.items():
        if head == 0:
            continue
        chain: List[Tuple[int, BranchAction]] = []
        cursor = head
        seen = set()
        while cursor != 0:
            if cursor in seen:
                raise ImageError("cycle in BAT chain")
            seen.add(cursor)
            target, action, cursor = raw_entries[cursor - 1]
            chain.append((target, action))
        bat[key] = tuple(chain)
    return bat


# ----------------------------------------------------------------------
# Provenance sidecar
# ----------------------------------------------------------------------


def _pack_sidecar(program: ProgramTables) -> bytes:
    """Serialize per-function provenance as a deterministic JSON blob.

    Canonical form (sorted function names, canonical record order,
    sorted keys, no whitespace) makes ``pack -> load -> pack``
    byte-identical — pinned by the image round-trip tests.
    """
    functions = {
        name: [r.to_dict() for r in sort_records(tables.provenance)]
        for name, tables in sorted(program.by_function.items())
        if tables.provenance
    }
    if not functions:
        return b""
    payload = json.dumps(
        {"functions": functions}, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return payload


def _unpack_sidecar(
    payload: bytes,
) -> Dict[str, Tuple[ActionProvenance, ...]]:
    try:
        document = json.loads(payload.decode("utf-8"))
        functions = document["functions"]
        return {
            name: sort_records(
                tuple(ActionProvenance.from_dict(r) for r in records)
            )
            for name, records in functions.items()
        }
    except (ValueError, KeyError, TypeError) as exc:
        raise ImageError(f"malformed provenance sidecar: {exc}") from exc


# ----------------------------------------------------------------------
# The whole image
# ----------------------------------------------------------------------

#: Function info record: name length is variable; fixed part packs the
#: function entry address, hash params, branch count, table offsets and
#: the BAT entry count.
_RECORD = struct.Struct(">IBBBHIIII")  # entry, s1, s2, bits, nbr, bcv_off, bat_off, bat_entries, pcs_off


def pack_program(
    program: ProgramTables, function_entries: Dict[str, int]
) -> bytes:
    """Serialize all tables into one image.

    ``function_entries`` maps function name → code entry address (from
    :meth:`IRModule.function_extent`), stored so the runtime can
    associate the active function with its tables.
    """
    blobs = bytearray()
    records: List[bytes] = []
    for name in sorted(program.by_function):
        tables = program.by_function[name]
        bcv_blob = _pack_bcv(tables)
        bat_blob, entry_count = _pack_bat(tables)
        pcs_blob = b"".join(struct.pack(">I", pc) for pc in tables.branch_pcs)
        bcv_off = len(blobs)
        blobs.extend(bcv_blob)
        bat_off = len(blobs)
        blobs.extend(bat_blob)
        pcs_off = len(blobs)
        blobs.extend(pcs_blob)
        name_bytes = name.encode("utf-8")
        record = (
            struct.pack(">H", len(name_bytes))
            + name_bytes
            + _RECORD.pack(
                function_entries.get(name, 0),
                tables.hash_params.shift1,
                tables.hash_params.shift2,
                tables.hash_params.bits,
                len(tables.branch_pcs),
                bcv_off,
                bat_off,
                entry_count,
                pcs_off,
            )
        )
        records.append(record)
    header = MAGIC + struct.pack(">BH", VERSION, len(records))
    record_block = b"".join(records)
    sidecar = _pack_sidecar(program)
    return (
        header
        + struct.pack(">I", len(record_block))
        + struct.pack(">I", len(sidecar))
        + record_block
        + bytes(blobs)
        + sidecar
    )


def load_program(image: bytes) -> Tuple[ProgramTables, Dict[str, int]]:
    """Reconstruct tables from an image built by :func:`pack_program`."""
    if image[:4] != MAGIC:
        raise ImageError("bad magic")
    version, record_count = struct.unpack(">BH", image[4:7])
    if version != VERSION:
        raise ImageError(f"unsupported version {version}")
    (record_len,) = struct.unpack(">I", image[7:11])
    (sidecar_len,) = struct.unpack(">I", image[11:15])
    cursor = 15
    blob_base = 15 + record_len
    provenance_by_function: Dict[str, Tuple[ActionProvenance, ...]] = {}
    if sidecar_len:
        if sidecar_len > len(image):
            raise ImageError("sidecar length exceeds image size")
        provenance_by_function = _unpack_sidecar(image[-sidecar_len:])
    program = ProgramTables()
    entries: Dict[str, int] = {}
    for _ in range(record_count):
        (name_len,) = struct.unpack(">H", image[cursor : cursor + 2])
        cursor += 2
        name = image[cursor : cursor + name_len].decode("utf-8")
        cursor += name_len
        (
            entry,
            shift1,
            shift2,
            bits,
            branch_count,
            bcv_off,
            bat_off,
            bat_entries,
            pcs_off,
        ) = _RECORD.unpack(image[cursor : cursor + _RECORD.size])
        cursor += _RECORD.size
        params = HashParams(shift1, shift2, bits)
        space = params.space
        bcv_bytes = (space + 7) // 8
        bcv = _unpack_bcv(image[blob_base + bcv_off :][:bcv_bytes], space)
        bat = _unpack_bat(
            image[blob_base + bat_off :],
            space,
            bits,
            bat_entries,
        )
        pcs = tuple(
            struct.unpack(
                ">I", image[blob_base + pcs_off + 4 * i :][:4]
            )[0]
            for i in range(branch_count)
        )
        program.by_function[name] = FunctionTables(
            function_name=name,
            hash_params=params,
            branch_pcs=pcs,
            bcv_slots=bcv,
            bat=bat,
            branch_meta=(),
            provenance=provenance_by_function.get(name, ()),
        )
        entries[name] = entry
    return program, entries
