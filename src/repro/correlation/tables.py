"""The compiler-emitted tables: BSV layout, BCV, and BAT (§5.1, §5.2).

One :class:`FunctionTables` per function holds everything the runtime
needs: the perfect hash, which slots are checked (BCV), and the action
lists fired by each (branch, direction) event (BAT).  The tables are
pure data — the runtime in :mod:`repro.runtime` interprets them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from .actions import BranchAction
from .hashing import HashParams
from .provenance import ActionProvenance, index_records

#: One BAT action entry: (target slot, action).
ActionEntry = Tuple[int, BranchAction]

#: BAT event key: (source slot, taken?).
EventKey = Tuple[int, bool]


@dataclass(frozen=True)
class BranchMeta:
    """Debug/diagnostic info the compiler keeps per branch."""

    pc: int
    slot: int
    block_label: str
    var_name: Optional[str]  # checked variable, if the branch is checked


@dataclass
class FunctionTables:
    """BCV + BAT + hash for one function; BSV state lives in the runtime."""

    function_name: str
    hash_params: HashParams
    branch_pcs: Tuple[int, ...]  # all conditional-branch PCs, sorted
    bcv_slots: FrozenSet[int]  # slots verified at runtime
    bat: Mapping[EventKey, Tuple[ActionEntry, ...]]
    branch_meta: Tuple[BranchMeta, ...] = ()
    #: Compile-time reasoning behind every BAT entry, in canonical
    #: (source_pc, direction, target_pc) order; carried through the
    #: binary-image sidecar and consumed by :mod:`repro.forensics`.
    provenance: Tuple[ActionProvenance, ...] = ()

    def __post_init__(self) -> None:
        self._slot_by_pc: Dict[int, int] = {
            pc: self.hash_params.slot(pc) for pc in self.branch_pcs
        }
        # Per-branch runtime plan, precomputed once so the IPDS hot path
        # pays a single int-keyed lookup per committed branch instead of
        # slot_of + BCV membership + a (slot, taken)-tuple BAT lookup.
        self._plan_by_pc: Dict[
            int, Tuple[int, bool, Tuple[ActionEntry, ...], Tuple[ActionEntry, ...]]
        ] = {
            pc: (
                slot,
                slot in self.bcv_slots,
                self.bat.get((slot, True), ()),
                self.bat.get((slot, False), ()),
            )
            for pc, slot in self._slot_by_pc.items()
        }
        self._prov_index: Optional[
            Dict[Tuple[int, bool, int], ActionProvenance]
        ] = None

    # -- queries ---------------------------------------------------------

    @property
    def space(self) -> int:
        return self.hash_params.space

    def slot_of(self, pc: int) -> Optional[int]:
        """Slot of a branch PC, or None if the PC is not a branch here."""
        return self._slot_by_pc.get(pc)

    def branch_plan(
        self, pc: int
    ) -> Optional[
        Tuple[int, bool, Tuple[ActionEntry, ...], Tuple[ActionEntry, ...]]
    ]:
        """The precomputed ``(slot, checked, taken_actions,
        not_taken_actions)`` runtime plan for a branch PC, or None if the
        PC is not a branch of this function."""
        return self._plan_by_pc.get(pc)

    def pc_of_slot(self, slot: int) -> Optional[int]:
        """Inverse of :meth:`slot_of` — well-defined because the hash is
        collision-free over ``branch_pcs`` (audited by COR201)."""
        for pc, pc_slot in self._slot_by_pc.items():
            if pc_slot == slot:
                return pc
        return None

    def is_checked(self, pc: int) -> bool:
        slot = self._slot_by_pc.get(pc)
        return slot is not None and slot in self.bcv_slots

    def actions_for(self, pc: int, taken: bool) -> Tuple[ActionEntry, ...]:
        slot = self._slot_by_pc.get(pc)
        if slot is None:
            return ()
        return self.bat.get((slot, taken), ())

    def provenance_for(
        self, source_pc: int, taken: bool, target_pc: int
    ) -> Optional[ActionProvenance]:
        """The compiler's reason for BAT entry (source, dir) -> target."""
        if self._prov_index is None:
            self._prov_index = index_records(self.provenance)
        return self._prov_index.get((source_pc, taken, target_pc))

    def provenance_targeting(
        self, target_pc: int
    ) -> Tuple[ActionProvenance, ...]:
        """All records whose action writes the slot of ``target_pc``."""
        return tuple(
            record
            for record in self.provenance
            if record.target_pc == target_pc
        )

    @property
    def checked_count(self) -> int:
        return len(self.bcv_slots)

    @property
    def action_count(self) -> int:
        return sum(len(entries) for entries in self.bat.values())

    def describe(self) -> str:
        """Multi-line human-readable dump (for docs and debugging)."""
        slot_names = {m.slot: f"{m.block_label}@{m.pc:#x}" for m in self.branch_meta}
        lines = [
            f"tables for {self.function_name}: "
            f"{len(self.branch_pcs)} branches, {self.hash_params}",
            f"  BCV: {sorted(self.bcv_slots)}",
        ]
        for (slot, taken), entries in sorted(self.bat.items()):
            direction = "T " if taken else "NT"
            rendered = ", ".join(
                f"{action.value}->{slot_names.get(target, target)}"
                for target, action in entries
            )
            lines.append(
                f"  BAT[{slot_names.get(slot, slot)}][{direction}]: {rendered}"
            )
        return "\n".join(lines)


@dataclass
class ProgramTables:
    """All per-function tables of one protected program."""

    by_function: Dict[str, FunctionTables] = field(default_factory=dict)

    def tables_for(self, function_name: str) -> FunctionTables:
        return self.by_function[function_name]

    def __iter__(self):
        return iter(self.by_function.values())

    @property
    def total_checked(self) -> int:
        return sum(t.checked_count for t in self.by_function.values())

    @property
    def total_branches(self) -> int:
        return sum(len(t.branch_pcs) for t in self.by_function.values())
