"""Branch correlation: the paper's primary contribution.

:func:`build_program_tables` runs the full compiler side (alias →
purity → branch facts → Fig. 5 BAT/BCV construction → §5.2 perfect
hashing) and returns the tables the runtime consumes.
"""

from .actions import BranchAction, BranchStatus
from .binary_image import (
    BitReader,
    BitWriter,
    ImageError,
    load_program,
    pack_program,
)
from .bat_builder import (
    BuildStats,
    build_function_tables,
    build_program_tables,
)
from .encoding import (
    ACTION_BITS,
    STATUS_BITS,
    SizeSummary,
    TableSizes,
    summarize_sizes,
    table_sizes,
)
from .hashing import (
    HashParams,
    HashSearchError,
    HashSearchResult,
    MAX_BITS,
    MAX_SHIFT,
    find_perfect_hash,
    minimum_bits,
)
from .tables import BranchMeta, FunctionTables, ProgramTables

__all__ = [
    "ACTION_BITS",
    "BitReader",
    "BitWriter",
    "BranchAction",
    "BranchMeta",
    "BranchStatus",
    "BuildStats",
    "ImageError",
    "load_program",
    "pack_program",
    "FunctionTables",
    "HashParams",
    "HashSearchError",
    "HashSearchResult",
    "MAX_BITS",
    "MAX_SHIFT",
    "ProgramTables",
    "STATUS_BITS",
    "SizeSummary",
    "TableSizes",
    "build_function_tables",
    "build_program_tables",
    "find_perfect_hash",
    "minimum_bits",
    "summarize_sizes",
    "table_sizes",
]
