"""Compile-time provenance for BAT actions — the forensics ground truth.

Every action the Figure-5 construction places in the BAT exists for a
reason the compiler can articulate: *this* branch direction implies
*this* range for *this* variable, which subsumes one outcome set of
*that* checked branch (a ``SET_T``/``SET_NT``), or the direction's
branch-free region may overwrite the variable (a kill ``SET_UN``), or
two inferences contradicted each other (a conflict ``SET_UN``).  The
runtime only ever sees the anonymous 2-bit action — so when the IPDS
raises an alarm, "slot 3 expected NT" is all it can say.

:class:`ActionProvenance` keeps the compiler's reasoning alongside the
tables: the correlating branch pair, the load/store and variable that
link them, the value range proved, the check predicate, and the IR
spans (function/block/branch PC — the mini-C pipeline's span
vocabulary, see :mod:`repro.staticcheck.diagnostics`).  The records
ride the binary image in a sidecar section
(:mod:`repro.correlation.binary_image`) and are joined with the
runtime flight recorder by :mod:`repro.forensics` to explain alarms in
source terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: Why an action exists.
REASON_SUBSUMPTION = "subsumption"  # implied range subsumes one outcome set
REASON_KILL = "kill"  # branch-free region may store to the variable
REASON_CONFLICT = "conflict"  # contradictory inferences -> forced UNKNOWN
REASON_INTERPROC = "interproc"  # kill suppressed by callee transfer summaries
REASON_FEASIBLE = "feasible-path"  # forced outcome on every feasible path

VALID_REASONS = (
    REASON_SUBSUMPTION,
    REASON_KILL,
    REASON_CONFLICT,
    REASON_INTERPROC,
    REASON_FEASIBLE,
)


@dataclass(frozen=True)
class ActionProvenance:
    """Why one BAT entry ``(source branch, direction) -> target`` exists.

    ``link_kind``/``link_index`` name the access in the source block
    that connects the branch to the variable's memory copy (the Fig. 3
    store-then-branch or consecutive-load patterns); ``implied`` is the
    value set the direction proves for ``var``; ``check`` is the target
    branch's predicate over the same variable.  Kill and conflict
    entries carry only what is meaningful for them (the overwritten
    variable, no proved range).
    """

    source_pc: int
    source_block: str
    taken: bool
    target_pc: int
    target_block: str
    action: str  # BranchAction.value: "SET_T" | "SET_NT" | "SET_UN"
    reason: str  # one of VALID_REASONS
    var: Optional[str] = None
    link_kind: Optional[str] = None  # "load" | "store"
    link_index: Optional[int] = None  # instruction index in source block
    implied: Optional[str] = None  # e.g. "[1, +inf]" or "Z\\{0}"
    check: Optional[str] = None  # e.g. "authenticated == 0"
    summary: Optional[str] = None  # interproc: callee transfers that kept it
    witness: Optional[Tuple[str, ...]] = None  # feasible: pruned edges

    def __post_init__(self) -> None:
        if self.reason not in VALID_REASONS:
            raise ValueError(f"unknown provenance reason {self.reason!r}")

    @property
    def key(self) -> Tuple[int, bool, int]:
        return (self.source_pc, self.taken, self.target_pc)

    @property
    def direction(self) -> str:
        return "T" if self.taken else "NT"

    def describe(self) -> str:
        """One-line human-readable rendering (forensics reports)."""
        where = (
            f"({self.source_block}@{self.source_pc:#x}, {self.direction}) "
            f"-> {self.action} {self.target_block}@{self.target_pc:#x}"
        )
        if self.reason == REASON_SUBSUMPTION:
            return (
                f"{where}: direction {self.direction} implies "
                f"{self.var} in {self.implied} (via {self.link_kind}), "
                f"subsuming one outcome of check '{self.check}'"
            )
        if self.reason == REASON_KILL:
            return (
                f"{where}: the direction's branch-free region may store "
                f"to {self.var} — prediction killed to UNKNOWN"
            )
        if self.reason == REASON_INTERPROC:
            return (
                f"{where}: direction {self.direction} implies "
                f"{self.var} in {self.implied} (via {self.link_kind}), "
                f"subsuming one outcome of check '{self.check}'; the "
                f"region's calls preserve it ({self.summary})"
            )
        if self.reason == REASON_FEASIBLE:
            pruned = ", ".join(self.witness) if self.witness else "none"
            return (
                f"{where}: on every feasible path from the edge, "
                f"{self.var} stays in {self.implied}, forcing check "
                f"'{self.check}' (pruned infeasible edges: {pruned})"
            )
        return (
            f"{where}: contradictory inferences about {self.var} — "
            f"direction statically infeasible, forced UNKNOWN"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source_pc": self.source_pc,
            "source_block": self.source_block,
            "taken": self.taken,
            "target_pc": self.target_pc,
            "target_block": self.target_block,
            "action": self.action,
            "reason": self.reason,
            "var": self.var,
            "link_kind": self.link_kind,
            "link_index": self.link_index,
            "implied": self.implied,
            "check": self.check,
            "summary": self.summary,
            "witness": (
                list(self.witness) if self.witness is not None else None
            ),
        }

    @staticmethod
    def from_dict(record: Dict[str, Any]) -> "ActionProvenance":
        return ActionProvenance(
            source_pc=int(record["source_pc"]),
            source_block=str(record["source_block"]),
            taken=bool(record["taken"]),
            target_pc=int(record["target_pc"]),
            target_block=str(record["target_block"]),
            action=str(record["action"]),
            reason=str(record["reason"]),
            var=record.get("var"),
            link_kind=record.get("link_kind"),
            link_index=record.get("link_index"),
            implied=record.get("implied"),
            check=record.get("check"),
            summary=record.get("summary"),
            witness=(
                tuple(record["witness"])
                if record.get("witness") is not None
                else None
            ),
        )


def sort_records(
    records: Tuple[ActionProvenance, ...]
) -> Tuple[ActionProvenance, ...]:
    """Canonical record order: (source_pc, direction, target_pc).

    Both the builder and the sidecar loader normalize through this, so
    ``pack -> load -> pack`` is byte-identical.
    """
    return tuple(sorted(records, key=lambda r: r.key))


def index_records(
    records: Tuple[ActionProvenance, ...]
) -> Dict[Tuple[int, bool, int], ActionProvenance]:
    """Lookup table keyed by (source_pc, taken, target_pc)."""
    return {record.key: record for record in records}
