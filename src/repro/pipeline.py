"""End-to-end convenience API: source → protected program → monitored run.

This is the "whole system" wrapper a downstream user starts from::

    from repro import compile_program, monitored_run

    program = compile_program(source)
    result, ipds = monitored_run(program, inputs=[1, 2, 3])
    assert not ipds.detected

For multi-consumer runs, :func:`observed_run` executes the program
*once* and fans the committed event stream out to any set of
:class:`~repro.runtime.observer.ExecutionObserver` instances — the
IPDS checker, timing models, trace recorders and baseline capture all
ride the same execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .correlation.bat_builder import BuildStats, build_program_tables
from .correlation.tables import ProgramTables
from .interp.interpreter import Interpreter, RunResult, TamperSpec, run_program
from .ir.function import IRModule
from .ir.builder import lower_program
from .ir.validate import verify_module
from .lang.parser import parse_program
from .runtime.ipds import IPDS


@dataclass
class ProtectedProgram:
    """A compiled program plus its IPDS protection tables."""

    module: IRModule
    tables: ProgramTables
    build_stats: List[BuildStats]
    source_name: str = "<source>"
    #: The optimization level the tables were built at.  Static passes
    #: that consume level-gated facts (the opt-3 feasible-path pruning)
    #: key off this instead of re-deriving it from table contents.
    opt_level: int = 0

    def new_ipds(
        self,
        halt_on_alarm: bool = False,
        allow_unprotected: bool = False,
        flight_recorder=None,
        alarm_sink=None,
    ) -> IPDS:
        """A fresh IPDS instance for one monitored execution."""
        return IPDS(
            self.tables,
            halt_on_alarm=halt_on_alarm,
            allow_unprotected=allow_unprotected,
            flight_recorder=flight_recorder,
            alarm_sink=alarm_sink,
        )

    def to_image(self) -> bytes:
        """The §5.4 binary table image: function information table plus
        packed BCV/BAT blobs, as the compiler would attach to the
        program binary."""
        from .correlation.binary_image import pack_program

        entries = {
            fn.name: self.module.function_extent(fn.name)[0]
            for fn in self.module.functions
        }
        return pack_program(self.tables, entries)


def compile_program(
    source: str,
    name: str = "<source>",
    opt_level: int = 0,
    check: bool = False,
) -> ProtectedProgram:
    """Parse, lower, verify and protect a mini-C program.

    ``opt_level=1`` runs the standard optimization pipeline (constant
    propagation, store-to-load forwarding, DCE) before the correlation
    analysis — the configuration the paper notes "can remove some
    correlations, reducing the detection rate".

    ``opt_level=2`` additionally runs the bottom-up interprocedural
    summary analysis (:mod:`repro.analysis.summaries`), letting the BAT
    construction keep predictions alive across calls it proves harmless
    — strictly more actions, same zero-false-positive guarantee.

    ``opt_level=3`` additionally runs the feasible-path MFP
    (:mod:`repro.analysis.feasible`): infeasible CFG edges are pruned
    from the per-edge range propagation, so outcomes forced on every
    *feasible* path become SET actions (``reason=feasible-path``
    provenance with the pruned-edge witness) instead of being diluted
    by ranges flowing along paths that can never execute.

    ``check=True`` runs the static soundness auditor
    (:mod:`repro.staticcheck`) over the freshly emitted tables and
    raises :class:`~repro.staticcheck.StaticCheckError` on any
    error-severity diagnostic — a self-distrusting compile that refuses
    to ship tables it cannot independently re-prove.
    """
    ast = parse_program(source, name)
    module = lower_program(ast)
    verify_module(module)
    if opt_level > 0:
        from .opt import optimize_module

        optimize_module(module)
        verify_module(module)
    tables, stats = build_program_tables(
        module,
        interproc=opt_level >= 2,
        feasible=opt_level >= 3,
    )
    program = ProtectedProgram(
        module=module,
        tables=tables,
        build_stats=stats,
        source_name=name,
        opt_level=opt_level,
    )
    if check:
        from .staticcheck import AUDIT_PASSES, errors_in, run_passes
        from .staticcheck.diagnostics import StaticCheckError

        errors = errors_in(run_passes(program, names=AUDIT_PASSES))
        if errors:
            raise StaticCheckError(errors)
    return program


def compile_program_cached(
    source: str, name: str = "<source>", opt_level: int = 0
) -> ProtectedProgram:
    """:func:`compile_program` behind the content-addressed cache.

    Same result, but each distinct ``(name, opt_level, source)`` is
    compiled at most once per process (and once per cache directory
    when ``REPRO_COMPILE_CACHE`` points at one).  Callers must treat
    the returned program as shared and immutable.  See
    :mod:`repro.parallel.cache`.
    """
    from .parallel.cache import cached_compile

    return cached_compile(source, name, opt_level)


def observed_run(
    program: ProtectedProgram,
    observers: Sequence[object] = (),
    inputs: Sequence[int] = (),
    entry: str = "main",
    tamper: Optional[TamperSpec] = None,
    step_limit: int = 2_000_000,
    trace_branches: bool = True,
) -> RunResult:
    """Execute once, fanning events out to every observer.

    One execution drives any number of consumers simultaneously —
    checker, timing models, trace recorder, baseline capture — each
    event dispatched exactly once through the observer bus::

        ipds = program.new_ipds()
        recorder = TraceRecorder()
        result = observed_run(program, [ipds, recorder], inputs=[...])
    """
    interpreter = Interpreter(
        program.module,
        inputs=inputs,
        entry=entry,
        tamper=tamper,
        step_limit=step_limit,
        observers=observers,
        trace_branches=trace_branches,
    )
    return interpreter.run()


def monitored_run(
    program: ProtectedProgram,
    inputs: Sequence[int] = (),
    entry: str = "main",
    tamper: Optional[TamperSpec] = None,
    step_limit: int = 2_000_000,
    halt_on_alarm: bool = False,
    allow_unprotected: bool = False,
    flight_recorder=None,
    observers: Sequence[object] = (),
    alarm_sink=None,
) -> Tuple[RunResult, IPDS]:
    """Run a protected program with the IPDS attached.

    Extra ``observers`` (timing models, recorders) ride the same
    execution behind the IPDS on the bus.  ``alarm_sink`` is forwarded
    to the IPDS — the per-alarm hook an online alarm policy uses.
    """
    ipds = program.new_ipds(
        halt_on_alarm=halt_on_alarm,
        allow_unprotected=allow_unprotected,
        flight_recorder=flight_recorder,
        alarm_sink=alarm_sink,
    )
    result = observed_run(
        program,
        observers=[ipds, *observers],
        inputs=inputs,
        entry=entry,
        tamper=tamper,
        step_limit=step_limit,
    )
    return result, ipds


def resolve_target(target: str, read_files: bool = True) -> Tuple[str, str]:
    """Resolve a program spec to ``(source text, name)``.

    One rule shared by every front end (CLI verbs, the detection
    daemon): a registered workload name resolves from the registry;
    anything else is treated as a path to a mini-C file (when
    ``read_files``) or rejected.  Raises ``KeyError`` for an unknown
    workload when file reading is disabled, ``OSError`` for an
    unreadable path.
    """
    from .workloads.registry import get_workload, workload_names

    if target in workload_names():
        return get_workload(target).source, target
    if not read_files:
        raise KeyError(
            f"unknown workload {target!r} and file access is disabled"
        )
    with open(target, "r", encoding="utf-8") as handle:
        return handle.read(), target


def unmonitored_run(
    program: ProtectedProgram,
    inputs: Sequence[int] = (),
    entry: str = "main",
    tamper: Optional[TamperSpec] = None,
    step_limit: int = 2_000_000,
) -> RunResult:
    """Run without the IPDS (baseline behaviour / clean trace capture)."""
    return run_program(
        program.module,
        inputs=inputs,
        entry=entry,
        tamper=tamper,
        step_limit=step_limit,
    )
