"""telnetd: login daemon with a post-auth command shell (BOF model).

Per-connection session state (authentication flag, effective
privilege, terminal options) lives on the handler's *stack* — the
memory a buffer overflow reaches — and is re-checked on every shell
command, the double-check structure of the paper's Figure 1.
"""

from __future__ import annotations

import random
from typing import List

from .registry import Workload, register

SOURCE = """
// telnetd -- synthetic login + shell daemon.

int sessions_served;     // global, non-security bookkeeping
int commands_handled;    // global accounting, bumped via helper

void note_command() {
  commands_handled = commands_handled + 1;
}

int check_password(int uid, int pass) {
  // Deterministic "password database".
  if (pass == uid * 7 + 13) { return 1; }
  return 0;
}

void main() {
  int authenticated = 0;   // session state on the handler stack
  int is_root = 0;
  int echo_mode = 0;
  int failed = 0;
  int termbuf[8];          // terminal input buffer: the overflow target
  int history = 0;

  int uid = read_int();
  int opt = read_int();
  if (opt > 0) { echo_mode = 1; }

  while (failed < 3) {
    int pass = read_int();               // overflowable read
    if (check_password(uid, pass) == 1) {
      authenticated = 1;
      if (uid == 0) { is_root = 1; }
      failed = 99;                       // leave the auth loop
    } else {
      failed = failed + 1;
    }
  }
  if (authenticated == 1) { emit(100); } else { emit(900); }

  int cmd = read_int();
  while (cmd != 0) {
    if (authenticated == 1) {
      if (cmd == 1) {                    // ls
        emit(101);
      }
      if (cmd == 2) {                    // cat /etc/shadow
        if (is_root == 1) { emit(102); } else { emit(902); }
      }
      if (cmd == 3) {                    // stty echo
        if (echo_mode == 1) { emit(103); } else { emit(903); }
      }
      if (cmd == 4) {                    // type a line into the buffer
        termbuf[history % 8] = read_int();
        history = history + 1;
        emit(104);
      }
      if (cmd == 5) {                    // replay the buffer
        emit(termbuf[0] + termbuf[1] + termbuf[2] + termbuf[3]);
      }
      if (cmd == 6) {                    // su
        int pw = read_int();
        if (check_password(0, pw) == 1) { is_root = 1; emit(106); }
        else { emit(906); }
      }
    } else {
      emit(999);                         // command refused
    }
    // Session sanity sweep, every iteration: root implies
    // authenticated; option flags are stable; the terminal buffer
    // checksum stays sane.
    if (is_root == 1) {
      if (authenticated == 1) { emit(110); } else { emit(911); }
    }
    if (echo_mode == 1) { emit(3); } else { emit(4); }
    if (history > 0) { emit(5); }
    if (uid >= 0) { emit(8); } else { emit(9); }
    if (failed >= 0) { emit(10); } else { emit(11); }
    if (termbuf[0] + termbuf[1] + termbuf[2] + termbuf[3]
        + termbuf[4] + termbuf[5] + termbuf[6] + termbuf[7] >= 0) {
      emit(6);
    } else { emit(7); }
    // Accounting sweep: the counter is monotone, so the sanity check
    // survives the helper call (interprocedurally at --opt 2).
    if (commands_handled >= 0) { emit(12); } else { emit(13); }
    note_command();
    if (commands_handled >= 0) { emit(14); } else { emit(15); }
    cmd = read_int();
  }
  sessions_served = sessions_served + 1;
  emit(history);
}
"""


def make_inputs(rng: random.Random, scale: int = 1) -> List[int]:
    uid = rng.choice([0, 1, 2, 5, 100])
    inputs = [uid, rng.randint(-2, 3)]
    correct = uid * 7 + 13
    for _ in range(rng.randint(0, 2)):
        inputs.append(correct + rng.randint(1, 50))  # failed attempts
    if rng.random() < 0.85:
        inputs.append(correct)
    else:
        inputs.extend(correct + rng.randint(1, 9) for _ in range(4))
    for _ in range(rng.randint(4 * scale, 12 * scale)):
        cmd = rng.randint(1, 6)
        inputs.append(cmd)
        if cmd == 4:
            inputs.append(rng.randint(1, 200))
        elif cmd == 6:
            inputs.append(13 if rng.random() < 0.3 else rng.randint(1, 99))
    inputs.append(0)
    return inputs


register(
    Workload(
        name="telnetd",
        vuln_kind="bof",
        source=SOURCE,
        make_inputs=make_inputs,
        description="login daemon; auth/privilege flags re-checked per command",
        min_trigger_read=3,
    )
)
