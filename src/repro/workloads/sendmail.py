"""sendmail: SMTP state machine with relay control (BOF model)."""

from __future__ import annotations

import random
from typing import List

from .registry import Workload, register

SOURCE = """
// sendmail -- synthetic SMTP daemon.

int lifetime_msgs;             // global counter

void main() {
  int state = 0;               // 0 init, 1 helo, 2 mail, 3 rcpt
  int relay_allowed = 0;
  int rcpt_count = 0;
  int max_rcpt = 0;
  int delivered = 0;
  int rejected = 0;
  int rcptbuf[6];              // recipient scratch (overflow target)

  max_rcpt = read_int();
  if (max_rcpt < 1) { max_rcpt = 1; }
  if (max_rcpt > 6) { max_rcpt = 6; }
  emit(220);

  int verb = read_int();
  while (verb != 0) {
    if (verb == 1) {                     // HELO
      int domain = read_int();
      if (state == 0) {
        if (domain > 0) { state = 1; emit(250); } else { emit(501); }
      } else { emit(503); }
    }
    if (verb == 2) {                     // MAIL FROM
      int sender = read_int();
      if (state >= 1) {
        if (sender < 100) { relay_allowed = 1; } else { relay_allowed = 0; }
        state = 2;
        rcpt_count = 0;
        emit(250);
      } else { emit(503); }
    }
    if (verb == 3) {                     // RCPT TO
      int rcpt = read_int();
      if (state >= 2) {
        state = 3;
        if (rcpt_count < max_rcpt) {
          if (rcpt >= 1000) {
            // remote recipient: relay permission consulted again
            if (relay_allowed == 1) {
              rcptbuf[rcpt_count % 6] = rcpt;
              rcpt_count = rcpt_count + 1;
              emit(251);
            } else { rejected = rejected + 1; emit(550); }
          } else {
            rcptbuf[rcpt_count % 6] = rcpt;
            rcpt_count = rcpt_count + 1;
            emit(250);
          }
        } else { emit(452); }
      } else { emit(503); }
    }
    if (verb == 4) {                     // DATA
      if (state == 3) {
        if (rcpt_count > 0) {
          // bound re-checked just before delivery
          if (rcpt_count <= max_rcpt) {
            delivered = delivered + rcpt_count;
            lifetime_msgs = lifetime_msgs + 1;
            emit(354);
            state = 1;
          } else { emit(500); }          // infeasible untampered
        } else { emit(554); }
      } else { emit(503); }
    }
    if (verb == 5) {                     // RSET
      if (state >= 1) { state = 1; }
      rcpt_count = 0;
      emit(250);
    }
    // Protocol sanity sweep, every verb: recipients only exist at or
    // past the RCPT state; bounds and buffers stay sane.
    if (rcpt_count > 0) {
      if (state >= 3) { emit(1); } else { emit(-1); }
    }
    if (relay_allowed == 1) { emit(2); } else { emit(3); }
    if (max_rcpt >= 1) {
      if (max_rcpt <= 6) { emit(4); } else { emit(-4); }
    } else { emit(-5); }
    if (delivered >= 0) { emit(5); } else { emit(-6); }
    if (rejected >= 0) { emit(7); } else { emit(-8); }
    if (state >= 0) {
      if (state <= 3) { emit(8); } else { emit(-9); }
    } else { emit(-10); }
    if (rcptbuf[0] + rcptbuf[1] + rcptbuf[2]
        + rcptbuf[3] + rcptbuf[4] + rcptbuf[5] >= 0) { emit(6); }
    else { emit(-7); }
    verb = read_int();
  }
  emit(delivered);
  emit(rejected);
  emit(rcptbuf[0]);
  emit(221);
}
"""


def make_inputs(rng: random.Random, scale: int = 1) -> List[int]:
    inputs = [rng.randint(1, 8)]
    inputs.extend([1, rng.randint(1, 50)])  # HELO
    for _ in range(rng.randint(1 * scale, 3 * scale)):  # messages
        inputs.extend([2, rng.choice([5, 50, 500, 1500])])  # MAIL
        for _ in range(rng.randint(1, 5)):
            inputs.extend([3, rng.choice([10, 500, 1200, 2000])])  # RCPT
        inputs.append(4)  # DATA
        if rng.random() < 0.2:
            inputs.append(5)  # RSET
    inputs.append(0)
    return inputs


register(
    Workload(
        name="sendmail",
        vuln_kind="bof",
        source=SOURCE,
        make_inputs=make_inputs,
        description="SMTP daemon; relay permission + recipient bounds",
        min_trigger_read=2,
    )
)
