"""sshd: SSH daemon with bounded auth attempts and post-auth uid (BOF)."""

from __future__ import annotations

import random
from typing import List

from .registry import Workload, register

SOURCE = """
// sshd -- synthetic SSH daemon.

int lifetime_sessions;         // global counter

int try_password(int uid, int pass) {
  if (pass == uid * 11 + 3) { return 1; }
  return 0;
}

void main() {
  int kex_done = 0;
  int authed = 0;
  int auth_uid = -1;
  int attempts = 0;
  int max_attempts = 0;
  int channels_open = 0;
  int exec_count = 0;
  int keybuf[8];               // kex scratch (overflow target)

  max_attempts = read_int();
  if (max_attempts < 1) { max_attempts = 1; }
  if (max_attempts > 6) { max_attempts = 6; }
  int client_algo = read_int();
  keybuf[0] = client_algo;
  if (client_algo > 0) { kex_done = 1; emit(20); } else { emit(21); }

  while (attempts < max_attempts) {
    int uid = read_int();
    int pass = read_int();
    if (kex_done == 1) {
      if (try_password(uid, pass) == 1) {
        authed = 1;
        auth_uid = uid;
        attempts = 99;                   // leave the auth loop
        emit(52);
      } else {
        emit(51);
        attempts = attempts + 1;
      }
    } else {
      emit(50);
      attempts = attempts + 1;
    }
  }
  if (authed == 1) { emit(60); } else { emit(61); }

  int op = read_int();
  while (op != 0) {
    if (op == 1) {                       // channel open
      if (authed == 1) {
        if (channels_open < 4) { channels_open = channels_open + 1; emit(90); }
        else { emit(91); }
      } else { emit(92); }
    }
    if (op == 2) {                       // exec
      int cmd = read_int();
      if (authed == 1) {
        if (channels_open > 0) {
          exec_count = exec_count + 1;
          // privileged commands need uid 0, checked at dispatch time
          if (cmd >= 100) {
            if (auth_uid == 0) { emit(95); } else { emit(96); }
          } else { emit(94); }
        } else { emit(93); }
      } else { emit(92); }
    }
    if (op == 3) {                       // channel close
      if (channels_open > 0) { channels_open = channels_open - 1; emit(97); }
      else { emit(98); }
    }
    // Session sanity sweep: an authenticated session carries a uid,
    // the channel count stays within its cap, the handshake is stable.
    if (authed == 1) {
      if (auth_uid >= 0) { emit(70); } else { emit(71); }
    }
    if (channels_open >= 0) {
      if (channels_open <= 4) { emit(2); } else { emit(-2); }
    } else { emit(-3); }
    if (kex_done == 1) { emit(3); } else { emit(-4); }
    if (exec_count >= 0) { emit(4); } else { emit(-5); }
    if (max_attempts <= 6) { emit(6); } else { emit(-7); }
    if (attempts >= 0) { emit(7); } else { emit(-8); }
    if (keybuf[0] + keybuf[1] + keybuf[2] + keybuf[3]
        + keybuf[4] + keybuf[5] + keybuf[6] + keybuf[7] >= 0) { emit(5); }
    else { emit(-6); }
    op = read_int();
  }
  lifetime_sessions = lifetime_sessions + 1;
  emit(exec_count);
  emit(keybuf[0]);
}
"""


def make_inputs(rng: random.Random, scale: int = 1) -> List[int]:
    inputs = [rng.randint(2, 4), rng.randint(0, 3)]
    uid = rng.choice([0, 1, 7, 50])
    correct = uid * 11 + 3
    for _ in range(rng.randint(0, 2)):
        inputs.extend([uid, correct + rng.randint(1, 10)])
    if rng.random() < 0.85:
        inputs.extend([uid, correct])
    else:
        inputs.extend([uid, correct + 1] * 4)
    for _ in range(rng.randint(3 * scale, 10 * scale)):
        op = rng.randint(1, 3)
        inputs.append(op)
        if op == 2:
            inputs.append(rng.choice([5, 50, 120, 150]))
    inputs.append(0)
    return inputs


register(
    Workload(
        name="sshd",
        vuln_kind="bof",
        source=SOURCE,
        make_inputs=make_inputs,
        description="SSH daemon; auth state and uid checked at dispatch",
        min_trigger_read=3,
    )
)
