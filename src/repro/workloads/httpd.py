"""httpd: HTTP server with auth realm and keep-alive session (BOF)."""

from __future__ import annotations

import random
from typing import List

from .registry import Workload, register

SOURCE = """
// httpd -- synthetic HTTP server with keep-alive.

int lifetime_requests;        // global counter

void account_request() {
  lifetime_requests = lifetime_requests + 1;
}

void main() {
  int authorized = 0;         // Basic-auth result for the realm
  int keepalive = 1;
  int served = 0;
  int errors = 0;
  int body_limit = 0;
  int urlbuf[8];              // request-line buffer (overflow target)
  int reqno = 0;

  body_limit = read_int();
  if (body_limit < 64) { body_limit = 64; }
  if (body_limit > 4096) { body_limit = 4096; }
  int credentials = read_int();
  if (credentials == 4242) { authorized = 1; }

  while (keepalive == 1) {
    int method = read_int();
    if (method == 0) {
      keepalive = 0;
    } else {
      reqno = reqno + 1;
      // Accounting via helper; the counter is monotone, so the sanity
      // checks straddling the call survive interprocedurally (--opt 2).
      if (lifetime_requests >= 0) { emit(8); } else { emit(-8); }
      account_request();
      if (lifetime_requests >= 0) { emit(9); } else { emit(-9); }
      if (method == 1) {                 // GET
        int path = read_int();
        urlbuf[reqno % 8] = path;
        if (path >= 50) {
          // Protected realm: authorization consulted at routing and
          // again inside the handler (defense in depth).
          if (authorized == 1) {
            if (path < 100) { served = served + 1; emit(201); }
            else { errors = errors + 1; emit(404); }
          } else { errors = errors + 1; emit(401); }
        } else {
          if (path >= 0) { served = served + 1; emit(200); }
          else { errors = errors + 1; emit(400); }
        }
      }
      if (method == 2) {                 // POST
        int length = read_int();
        if (length <= body_limit) {
          // hard cap re-check: body_limit <= 4096 is invariant
          if (length <= 4096) { served = served + 1; emit(204); }
          else { emit(500); }            // infeasible untampered
        } else { errors = errors + 1; emit(413); }
      }
      if (method == 3) {                 // HEAD
        emit(200);
      }
      if (method > 3) {
        errors = errors + 1;
        emit(405);
      }
      // Session sanity sweep, re-checked per request.
      if (authorized == 1) { emit(1); } else { emit(2); }
      if (body_limit >= 64) {
        if (body_limit <= 4096) { emit(3); } else { emit(-3); }
      } else { emit(-4); }
      if (reqno > 0) { emit(4); }
      if (served >= 0) { emit(6); } else { emit(-6); }
      if (errors >= 0) { emit(7); } else { emit(-7); }
      if (urlbuf[0] + urlbuf[1] + urlbuf[2] + urlbuf[3]
          + urlbuf[4] + urlbuf[5] + urlbuf[6] + urlbuf[7] >= 0 - 40) {
        emit(5);
      } else { emit(-5); }
    }
  }
  emit(served);
  emit(errors);
  emit(urlbuf[0] + urlbuf[1]);
}
"""


def make_inputs(rng: random.Random, scale: int = 1) -> List[int]:
    inputs = [
        rng.choice([100, 512, 2048, 8000]),
        4242 if rng.random() < 0.5 else rng.randint(0, 9999),
    ]
    for _ in range(rng.randint(3 * scale, 12 * scale)):
        method = rng.randint(1, 4)
        inputs.append(method)
        if method == 1:
            inputs.append(rng.randint(-5, 120))
        elif method == 2:
            inputs.append(rng.randint(0, 6000))
    inputs.append(0)
    return inputs


register(
    Workload(
        name="httpd",
        vuln_kind="bof",
        source=SOURCE,
        make_inputs=make_inputs,
        description="HTTP server; auth realm + body-limit correlations",
        min_trigger_read=3,
    )
)
