"""sysklogd: syslog daemon with priority filtering (FMT model)."""

from __future__ import annotations

import random
from typing import List

from .registry import Workload, register

SOURCE = """
// sysklogd -- synthetic syslog daemon.

int lifetime_msgs;            // global counter

void note_msg() {
  lifetime_msgs = lifetime_msgs + 1;
}

void main() {
  int threshold = 0;          // minimum priority written to the file
  int console_level = 0;      // stricter bound for the console
  int remote_enabled = 0;
  int written = 0;
  int dropped = 0;
  int console_msgs = 0;
  int ringbuf[8];             // recent-message ring (tamper surface)
  int head = 0;

  threshold = read_int();
  if (threshold < 0) { threshold = 0; }
  if (threshold > 7) { threshold = 7; }
  console_level = read_int();
  if (console_level < threshold) { console_level = threshold; }
  if (console_level > 7) { console_level = 7; }
  remote_enabled = read_int();
  if (remote_enabled != 1) { remote_enabled = 0; }

  int priority = read_int();
  while (priority >= 0) {
    int msg = read_int();               // the format-string hole
    if (priority > 7) { priority = 7; }
    // Accounting via helper; the counter is monotone, so the sanity
    // checks straddling the call survive interprocedurally (--opt 2).
    if (lifetime_msgs >= 0) { emit(9); } else { emit(-9); }
    note_msg();
    if (lifetime_msgs >= 0) { emit(10); } else { emit(-10); }
    ringbuf[head % 8] = msg;
    head = head + 1;
    // File sink: filter by the configured threshold.
    if (priority >= threshold) {
      written = written + 1;
      emit(msg);
      // Console sink: console_level >= threshold always, so reaching a
      // console write implies the file write happened too.
      if (priority >= console_level) {
        console_msgs = console_msgs + 1;
        emit(7000 + priority);
      }
      if (remote_enabled == 1) { emit(8000 + priority); }
    } else {
      dropped = dropped + 1;
    }
    // Configuration sanity re-checked per message: thresholds are set
    // once and never move.
    if (threshold >= 0) {
      if (threshold <= 7) { emit(1); } else { emit(-1); }
    } else { emit(-2); }
    if (console_level >= threshold) { emit(2); } else { emit(-3); }
    if (remote_enabled == 1) { emit(3); } else { emit(4); }
    if (head > 0) { emit(5); }
    if (written >= 0) { emit(7); } else { emit(-7); }
    if (dropped >= 0) { emit(8); } else { emit(-8); }
    if (ringbuf[0] + ringbuf[1] + ringbuf[2] + ringbuf[3]
        + ringbuf[4] + ringbuf[5] + ringbuf[6] + ringbuf[7] >= 0) { emit(6); }
    else { emit(-6); }
    priority = read_int();
  }
  emit(written);
  emit(dropped);
  emit(console_msgs);
  emit(ringbuf[0] + ringbuf[1]);
}
"""


def make_inputs(rng: random.Random, scale: int = 1) -> List[int]:
    inputs = [rng.randint(0, 5), rng.randint(3, 7), rng.randint(0, 1)]
    for _ in range(rng.randint(5 * scale, 15 * scale)):
        inputs.append(rng.randint(0, 9))  # priority
        inputs.append(rng.randint(100, 999))  # message
    inputs.append(-1)  # shutdown
    return inputs


register(
    Workload(
        name="sysklogd",
        vuln_kind="fmt",
        source=SOURCE,
        make_inputs=make_inputs,
        description="syslog daemon; correlated priority thresholds",
        min_trigger_read=4,
    )
)
