"""crond: periodic job scheduler with per-job ownership checks (BOF)."""

from __future__ import annotations

import random
from typing import List

from .registry import Workload, register

SOURCE = """
// crond -- synthetic cron daemon.

int lifetime_runs;           // global counter
int ops_handled;             // per-op accounting, bumped via helper

void note_op() {
  ops_handled = ops_handled + 1;
}

void main() {
  int job_user[6];           // owner uid per slot (-1 = free)
  int job_period[6];
  int job_priv[6];           // 1 = runs as root
  int njobs = 0;
  int clock_now = 0;
  int runs = 0;
  int caller_uid = 0;

  for (int i = 0; i < 6; i = i + 1) {
    job_user[i] = -1;
    job_period[i] = 1;
    job_priv[i] = 0;
  }
  caller_uid = read_int();           // who talks to the daemon socket

  int op = read_int();
  while (op != 0) {
    if (op == 1) {                   // register a job
      int period = read_int();
      int priv = read_int();
      if (period < 1) { period = 1; }
      if (njobs < 6) {
        int placed = 0;
        for (int i = 0; i < 6; i = i + 1) {
          if (placed == 0) {
            if (job_user[i] == -1) {
              job_user[i] = caller_uid;
              job_period[i] = period;
              // only root registers privileged jobs
              if (priv == 1) {
                if (caller_uid == 0) { job_priv[i] = 1; }
                else { job_priv[i] = 0; emit(401); }
              } else { job_priv[i] = 0; }
              njobs = njobs + 1;
              placed = 1;
              emit(201);
            }
          }
        }
      } else { emit(507); }
    }
    if (op == 2) {                   // remove a job
      int slot = read_int();
      if (slot >= 0 && slot < 6) {
        if (job_user[slot] == caller_uid) {
          job_user[slot] = -1;
          njobs = njobs - 1;
          emit(204);
        } else {
          if (caller_uid == 0) {
            job_user[slot] = -1;
            njobs = njobs - 1;
            emit(205);
          } else { emit(403); }
        }
      } else { emit(400); }
    }
    if (op == 3) {                   // tick
      clock_now = clock_now + 1;
      for (int i = 0; i < 6; i = i + 1) {
        if (job_user[i] != -1) {
          if (clock_now % job_period[i] == 0) {
            // privilege bit consulted again at execution time: a
            // privileged job must belong to root.
            if (job_priv[i] == 1) {
              if (job_user[i] == 0) { emit(600 + i); runs = runs + 1; }
              else { emit(666); }    // infeasible untampered
            } else {
              emit(500 + i);
              runs = runs + 1;
            }
            lifetime_runs = lifetime_runs + 1;
          }
        }
      }
    }
    // Per-command sanity sweep: occupancy bounds, stable caller
    // identity, table checksums.
    if (njobs >= 0) {
      if (njobs <= 6) { emit(1); } else { emit(-1); }
    } else { emit(-2); }
    if (caller_uid == 0) { emit(2); } else { emit(3); }
    if (clock_now >= 0) { emit(4); } else { emit(-4); }
    if (runs >= 0) { emit(7); } else { emit(-7); }
    if (clock_now <= 100000) { emit(8); } else { emit(-8); }
    if (job_user[0] + job_user[1] + job_user[2]
        + job_user[3] + job_user[4] + job_user[5] >= 0 - 6) { emit(5); }
    else { emit(-5); }
    if (job_period[0] + job_period[1] + job_period[2]
        + job_period[3] + job_period[4] + job_period[5] >= 6) { emit(6); }
    else { emit(-6); }
    // Accounting sweep: the counter is monotone, so the sanity check
    // survives the helper call (interprocedurally at --opt 2).
    if (ops_handled >= 0) { emit(9); } else { emit(-9); }
    note_op();
    if (ops_handled >= 0) { emit(10); } else { emit(-10); }
    op = read_int();
  }
  emit(runs);
  emit(njobs);
}
"""


def make_inputs(rng: random.Random, scale: int = 1) -> List[int]:
    inputs = [rng.choice([0, 0, 1, 5])]  # caller uid
    for _ in range(rng.randint(6 * scale, 16 * scale)):
        op = rng.choices([1, 2, 3], weights=[3, 1, 5])[0]
        inputs.append(op)
        if op == 1:
            inputs.extend([rng.randint(1, 4), rng.randint(0, 1)])
        elif op == 2:
            inputs.append(rng.randint(0, 6))
    inputs.append(0)
    return inputs


register(
    Workload(
        name="crond",
        vuln_kind="bof",
        source=SOURCE,
        make_inputs=make_inputs,
        description="cron daemon; job ownership and privilege re-checked",
        min_trigger_read=2,
    )
)
