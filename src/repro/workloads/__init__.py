"""The ten synthetic vulnerable server workloads (§6)."""

from .registry import Workload, all_workloads, get_workload, workload_names

__all__ = ["Workload", "all_workloads", "get_workload", "workload_names"]
