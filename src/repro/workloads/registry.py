"""Workload registry: the ten vulnerable server programs (§6).

The paper attacks ten real servers with known vulnerabilities
(telnetd, wu-ftpd, xinetd, crond, sysklogd, atftpd, httpd, sendmail,
sshd, portmap).  We model each as a synthetic mini-C server with the
same *shape*: session/authentication state held in memory, a command
dispatch loop, and privilege or bounds checks that are evaluated
repeatedly — the structure that gives branch correlations teeth.
The vulnerability class matches the paper (format string for wu-ftpd
and sysklogd — arbitrary-address tampering; buffer overflow for the
rest — live-stack tampering).

Each workload provides an input generator so attack campaigns can
drive varied but realistic sessions from a seeded RNG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple


@dataclass(frozen=True)
class Workload:
    """One synthetic server program."""

    name: str
    vuln_kind: str  # "bof" (stack tampering) | "fmt" (arbitrary address)
    source: str
    make_inputs: Callable[[random.Random], List[int]]
    description: str
    #: Earliest input index eligible as the tamper trigger (the first
    #: few reads are typically connection setup the attacker cannot
    #: reach past).
    min_trigger_read: int = 2

    def __post_init__(self) -> None:
        if self.vuln_kind not in ("bof", "fmt"):
            raise ValueError(f"bad vulnerability kind {self.vuln_kind!r}")


_REGISTRY: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    """Add a workload to the global registry (import-time hook)."""
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    return _REGISTRY[name]


def all_workloads() -> List[Workload]:
    """All registered workloads, in the paper's order."""
    _ensure_loaded()
    order = [
        "telnetd",
        "wu-ftpd",
        "xinetd",
        "crond",
        "sysklogd",
        "atftpd",
        "httpd",
        "sendmail",
        "sshd",
        "portmap",
    ]
    return [_REGISTRY[name] for name in order if name in _REGISTRY]


def workload_names() -> List[str]:
    return [w.name for w in all_workloads()]


def _ensure_loaded() -> None:
    """Import the workload modules so they self-register."""
    if _REGISTRY:
        return
    from . import (  # noqa: F401
        atftpd,
        crond,
        httpd,
        portmap,
        sendmail,
        sshd,
        sysklogd,
        telnetd,
        wu_ftpd,
        xinetd,
    )
