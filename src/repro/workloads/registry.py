"""Workload registry: the ten vulnerable server programs (§6).

The paper attacks ten real servers with known vulnerabilities
(telnetd, wu-ftpd, xinetd, crond, sysklogd, atftpd, httpd, sendmail,
sshd, portmap).  We model each as a synthetic mini-C server with the
same *shape*: session/authentication state held in memory, a command
dispatch loop, and privilege or bounds checks that are evaluated
repeatedly — the structure that gives branch correlations teeth.
The vulnerability class matches the paper (format string for wu-ftpd
and sysklogd — arbitrary-address tampering; buffer overflow for the
rest — live-stack tampering).

Each workload provides an input generator so attack campaigns can
drive varied but realistic sessions from a seeded RNG.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union


@dataclass(frozen=True)
class Workload:
    """One synthetic server program."""

    name: str
    vuln_kind: str  # "bof" (stack tampering) | "fmt" (arbitrary address)
    source: str
    make_inputs: Callable[[random.Random], List[int]]
    description: str
    #: Earliest input index eligible as the tamper trigger (the first
    #: few reads are typically connection setup the attacker cannot
    #: reach past).
    min_trigger_read: int = 2

    def __post_init__(self) -> None:
        if self.vuln_kind not in ("bof", "fmt"):
            raise ValueError(f"bad vulnerability kind {self.vuln_kind!r}")

    def fingerprint(self) -> str:
        """Content address of this workload's program source.

        Stable across processes and sessions; campaign shards and the
        compile cache key off the source text this digest covers, so
        two workloads with equal fingerprints compile identically.
        """
        digest = hashlib.sha256()
        digest.update(f"{self.name}\n{self.vuln_kind}\n".encode("utf-8"))
        digest.update(self.source.encode("utf-8"))
        return digest.hexdigest()


_REGISTRY: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    """Add a workload to the global registry (import-time hook)."""
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown workload {name!r} (known: {known})") from None


def all_workloads() -> List[Workload]:
    """All registered workloads, in the paper's order."""
    _ensure_loaded()
    order = [
        "telnetd",
        "wu-ftpd",
        "xinetd",
        "crond",
        "sysklogd",
        "atftpd",
        "httpd",
        "sendmail",
        "sshd",
        "portmap",
    ]
    return [_REGISTRY[name] for name in order if name in _REGISTRY]


def workload_names() -> List[str]:
    return [w.name for w in all_workloads()]


def resolve_workloads(
    specs: Optional[Sequence[Union[Workload, str]]] = None,
) -> List[Workload]:
    """Normalize a mixed name/instance list to :class:`Workload` objects.

    ``None`` means every registered workload, in the paper's order —
    the shape every campaign entry point (serial CLI, sharded engine,
    reporting) funnels through.
    """
    if specs is None:
        return all_workloads()
    return [
        spec if isinstance(spec, Workload) else get_workload(spec)
        for spec in specs
    ]


def _ensure_loaded() -> None:
    """Import the workload modules so they self-register."""
    if _REGISTRY:
        return
    from . import (  # noqa: F401
        atftpd,
        crond,
        httpd,
        portmap,
        sendmail,
        sshd,
        sysklogd,
        telnetd,
        wu_ftpd,
        xinetd,
    )
