"""xinetd: super-server with per-service accounting (BOF model)."""

from __future__ import annotations

import random
from typing import List

from .registry import Workload, register

SOURCE = """
// xinetd -- synthetic super-server.

int lifetime_conns;          // global counter
int ops_handled;             // per-op accounting, bumped via helper

void note_op() {
  ops_handled = ops_handled + 1;
}

void main() {
  int conns[8];              // per-service live connections (stack)
  int enabled[8];
  int svc_limit = 0;
  int paranoid = 0;
  int total = 0;
  int rejected = 0;

  svc_limit = read_int();
  if (svc_limit < 1) { svc_limit = 1; }
  if (svc_limit > 16) { svc_limit = 16; }
  paranoid = read_int();
  if (paranoid != 1) { paranoid = 0; }
  for (int i = 0; i < 8; i = i + 1) {
    enabled[i] = read_int();
    conns[i] = 0;
  }

  int op = read_int();
  while (op != 0) {
    if (op == 1) {                       // incoming connection
      int svc = read_int();
      int src = read_int();
      if (svc >= 0 && svc < 8) {
        if (enabled[svc] == 1) {
          int blocked = 0;
          if (paranoid == 1) {
            if (src < 0) { blocked = 1; }
            if (src > 1000) { blocked = 1; }
          }
          if (blocked == 0) {
            // admission cap checked, then re-validated after update:
            // the correlated-bounds pattern.
            if (conns[svc] < svc_limit) {
              conns[svc] = conns[svc] + 1;
              total = total + 1;
              lifetime_conns = lifetime_conns + 1;
              if (conns[svc] <= svc_limit) { emit(200); }
              else { emit(500); }        // infeasible untampered
            } else { emit(503); }
          } else { rejected = rejected + 1; emit(403); }
        } else { emit(404); }
      } else { emit(400); }
    }
    if (op == 2) {                       // connection closed
      int svc = read_int();
      if (svc >= 0 && svc < 8) {
        if (conns[svc] > 0) { conns[svc] = conns[svc] - 1; }
      }
    }
    if (op == 3) {                       // status probe
      if (paranoid == 1) { emit(301); } else { emit(300); }
      emit(total);
    }
    // Per-iteration sanity sweep: the limit is configured once and
    // never moves; counters stay within bounds; table checksums hold.
    if (svc_limit >= 1) {
      if (svc_limit <= 16) { emit(1); } else { emit(-1); }
    } else { emit(-2); }
    if (paranoid == 1) { emit(2); } else { emit(3); }
    if (total >= 0) { emit(4); } else { emit(-4); }
    if (rejected >= 0) { emit(7); } else { emit(-7); }
    if (total <= 4096) { emit(8); } else { emit(-8); }
    if (conns[0] + conns[1] + conns[2] + conns[3]
        + conns[4] + conns[5] + conns[6] + conns[7] >= 0) { emit(5); }
    else { emit(-5); }
    if (enabled[0] + enabled[1] + enabled[2] + enabled[3]
        + enabled[4] + enabled[5] + enabled[6] + enabled[7] <= 8) { emit(6); }
    else { emit(-6); }
    // Accounting sweep: the counter is monotone, so the sanity check
    // survives the helper call (interprocedurally at --opt 2).
    if (ops_handled >= 0) { emit(9); } else { emit(-9); }
    note_op();
    if (ops_handled >= 0) { emit(10); } else { emit(-10); }
    op = read_int();
  }
  emit(total);
  emit(rejected);
}
"""


def make_inputs(rng: random.Random, scale: int = 1) -> List[int]:
    inputs = [rng.randint(1, 6), rng.randint(0, 1)]
    inputs.extend(rng.randint(0, 1) for _ in range(8))
    for _ in range(rng.randint(5 * scale, 14 * scale)):
        op = rng.choices([1, 2, 3], weights=[6, 2, 2])[0]
        inputs.append(op)
        if op == 1:
            inputs.append(rng.randint(-1, 9))
            inputs.append(rng.randint(-10, 1200))
        elif op == 2:
            inputs.append(rng.randint(0, 7))
    inputs.append(0)
    return inputs


register(
    Workload(
        name="xinetd",
        vuln_kind="bof",
        source=SOURCE,
        make_inputs=make_inputs,
        description="super-server; connection caps checked twice",
        min_trigger_read=11,
    )
)
