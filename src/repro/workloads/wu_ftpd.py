"""wu-ftpd: FTP daemon with login, transfer modes, chroot flag (FMT model).

The format-string vulnerability writes an arbitrary address, so
campaigns against this workload tamper globals as well as the stack.
Session state is stack-resident in the command loop, with the
anonymous/chroot invariant re-checked late in every iteration.
"""

from __future__ import annotations

import random
from typing import List

from .registry import Workload, register

SOURCE = """
// wu-ftpd -- synthetic FTP daemon.

int total_xfers;           // global transfer counter (bookkeeping)
int commands_seen;         // per-command accounting, bumped via helper

void note_command() {
  commands_seen = commands_seen + 1;
}

int valid_user(int user, int pass) {
  if (user == 0) { return 1; }          // anonymous always allowed
  if (pass == user * 3 + 7) { return 1; }
  return 0;
}

void main() {
  int logged_in = 0;
  int is_anonymous = 0;
  int chrooted = 0;
  int binary_mode = 0;
  int cwd_depth = 0;
  int xfers = 0;
  int namebuf[6];            // filename buffer (overflow surface)

  emit(220);                 // banner
  int user = read_int();
  int pass = read_int();
  if (valid_user(user, pass) == 1) {
    logged_in = 1;
    if (user == 0) {
      is_anonymous = 1;
      chrooted = 1;
    }
    emit(230);
  } else {
    emit(530);
  }

  int cmd = read_int();
  while (cmd != 0) {
    if (logged_in == 1) {
      if (cmd == 1) {                    // CWD
        int dir = read_int();
        if (dir > 0) {
          if (cwd_depth < 8) { cwd_depth = cwd_depth + 1; emit(250); }
          else { emit(550); }
        } else {
          if (cwd_depth > 0) { cwd_depth = cwd_depth - 1; emit(250); }
          else {
            if (chrooted == 1) { emit(553); } else { emit(250); }
          }
        }
      }
      if (cmd == 2) {                    // TYPE
        int t = read_int();
        if (t == 1) { binary_mode = 1; } else { binary_mode = 0; }
        emit(200);
      }
      if (cmd == 3) {                    // RETR
        int name = read_int();
        namebuf[name % 6] = name;
        if (binary_mode == 1) { emit(150); } else { emit(151); }
        xfers = xfers + 1;
        total_xfers = total_xfers + 1;
        emit(226);
      }
      if (cmd == 4) {                    // STOR
        if (is_anonymous == 1) { emit(553); }
        else { xfers = xfers + 1; total_xfers = total_xfers + 1; emit(226); }
      }
      if (cmd == 5) {                    // SITE LOG (the fmt hole)
        emit(read_int());
      }
      if (cmd == 6) {                    // STAT
        emit(namebuf[0] + namebuf[1]);
        if (is_anonymous == 1) {
          if (chrooted == 1) { emit(211); } else { emit(411); }
        } else { emit(212); }
      }
    } else {
      emit(530);
    }
    // Session sanity sweep: depth bounds (correlated with the CWD
    // checks above), stable session flags, buffer checksum.
    if (cwd_depth >= 0) {
      if (cwd_depth <= 8) { emit(1); } else { emit(-1); }
    } else { emit(-2); }
    if (logged_in == 1) { emit(3); } else { emit(4); }
    if (binary_mode == 1) { emit(5); } else { emit(6); }
    if (is_anonymous == 1) { emit(9); } else { emit(10); }
    if (xfers >= 0) { emit(11); } else { emit(12); }
    if (user >= 0) { emit(13); } else { emit(14); }
    if (namebuf[0] + namebuf[1] + namebuf[2]
        + namebuf[3] + namebuf[4] + namebuf[5] >= 0) { emit(7); }
    else { emit(8); }
    // Accounting sweep: the counter is monotone, so the sanity check
    // survives the helper call (interprocedurally at --opt 2).
    if (commands_seen >= 0) { emit(15); } else { emit(16); }
    note_command();
    if (commands_seen >= 0) { emit(17); } else { emit(18); }
    cmd = read_int();
  }
  emit(xfers);
  emit(221);
}
"""


def make_inputs(rng: random.Random, scale: int = 1) -> List[int]:
    if rng.random() < 0.5:
        user, password = 0, rng.randint(0, 5)  # anonymous
    else:
        user = rng.randint(1, 20)
        password = user * 3 + 7 if rng.random() < 0.85 else rng.randint(0, 5)
    inputs = [user, password]
    for _ in range(rng.randint(4 * scale, 12 * scale)):
        cmd = rng.randint(1, 6)
        inputs.append(cmd)
        if cmd == 1:
            inputs.append(rng.choice([-1, 1, 1, 1]))
        elif cmd == 2:
            inputs.append(rng.randint(0, 1))
        elif cmd == 3:
            inputs.append(rng.randint(1, 500))
        elif cmd == 5:
            inputs.append(rng.randint(1, 500))
    inputs.append(0)
    return inputs


register(
    Workload(
        name="wu-ftpd",
        vuln_kind="fmt",
        source=SOURCE,
        make_inputs=make_inputs,
        description="FTP daemon; anonymous/chroot invariants re-checked",
        min_trigger_read=3,
    )
)
