"""atftpd: TFTP daemon with block sequencing and retry bounds (BOF)."""

from __future__ import annotations

import random
from typing import List

from .registry import Workload, register

SOURCE = """
// atftpd -- synthetic TFTP daemon.

int lifetime_transfers;       // global counter

void main() {
  int transfer_open = 0;
  int write_mode = 0;
  int block_expected = 0;
  int retries = 0;
  int max_block = 0;
  int completed = 0;
  int window[4];              // reassembly window (tamper surface)

  for (int i = 0; i < 4; i = i + 1) { window[i] = 0; }

  int op = read_int();
  while (op != 0) {
    if (op == 1 || op == 2) {            // RRQ / WRQ
      int nblocks = read_int();
      if (transfer_open == 1) { emit(409); }
      else {
        if (nblocks >= 1) {
          if (nblocks <= 64) {
            transfer_open = 1;
            block_expected = 1;
            retries = 0;
            max_block = nblocks;
            if (op == 2) { write_mode = 1; } else { write_mode = 0; }
            emit(200);
          } else { emit(413); }
        } else { emit(400); }
      }
    }
    if (op == 3) {                       // DATA / ACK
      int block = read_int();
      if (transfer_open == 1) {
        if (block == block_expected) {
          retries = 0;
          window[block % 4] = block;
          emit(block);
          // Sequencing invariant: the expected block never exceeds the
          // announced transfer length.
          if (block <= max_block) {
            if (block == max_block) {
              transfer_open = 0;
              completed = completed + 1;
              lifetime_transfers = lifetime_transfers + 1;
              emit(226);
            } else {
              block_expected = block_expected + 1;
            }
          } else { emit(500); }          // infeasible untampered
        } else {
          retries = retries + 1;
          if (retries < 5) { emit(425); }
          else { transfer_open = 0; emit(408); }
        }
      } else { emit(404); }
    }
    if (op == 4) {                       // status probe
      if (transfer_open == 1) {
        if (write_mode == 1) { emit(302); } else { emit(301); }
        // An open transfer always has a sane expected block.
        if (block_expected >= 1) {
          if (block_expected <= max_block) { emit(3); } else { emit(-3); }
        } else { emit(-4); }
      } else { emit(300); }
    }
    // Per-packet sanity sweep: retry bound, mode flag, window checksum.
    if (retries >= 0) {
      if (retries <= 5) { emit(1); } else { emit(-1); }
    } else { emit(-2); }
    if (write_mode == 1) { emit(2); } else { emit(3); }
    if (completed >= 0) { emit(4); } else { emit(-4); }
    if (max_block <= 64) { emit(6); } else { emit(-6); }
    if (block_expected >= 0) { emit(7); } else { emit(-7); }
    if (window[0] + window[1] + window[2] + window[3] >= 0) { emit(5); }
    else { emit(-5); }
    op = read_int();
  }
  emit(completed);
  emit(window[0] + window[1] + window[2] + window[3]);
}
"""


def make_inputs(rng: random.Random, scale: int = 1) -> List[int]:
    inputs: List[int] = []
    sessions = rng.randint(1 * scale, 3 * scale)
    for _ in range(sessions):
        nblocks = rng.randint(1, 6)
        inputs.extend([rng.choice([1, 2]), nblocks])
        block = 1
        while block <= nblocks:
            if rng.random() < 0.15:
                inputs.extend([3, rng.randint(0, 70)])  # out-of-order
            inputs.extend([3, block])
            block += 1
            if rng.random() < 0.25:
                inputs.append(4)
    inputs.append(0)
    return inputs


register(
    Workload(
        name="atftpd",
        vuln_kind="bof",
        source=SOURCE,
        make_inputs=make_inputs,
        description="TFTP daemon; block sequencing bounds correlated",
        min_trigger_read=2,
    )
)
