"""portmap: RPC portmapper with ownership-guarded mutations (BOF)."""

from __future__ import annotations

import random
from typing import List

from .registry import Workload, register

SOURCE = """
// portmap -- synthetic RPC portmapper.

int lifetime_lookups;          // global counter

void main() {
  int map_prog[6];             // registered program per slot (-1 free)
  int map_port[6];
  int map_owner[6];
  int entries = 0;
  int lookups = 0;
  int caller_uid = 0;

  for (int i = 0; i < 6; i = i + 1) {
    map_prog[i] = -1;
    map_port[i] = 0;
    map_owner[i] = -1;
  }
  caller_uid = read_int();

  int op = read_int();
  while (op != 0) {
    if (op == 1) {                       // SET
      int prog = read_int();
      int port = read_int();
      int ok = 1;
      if (prog < 1) { ok = 0; }
      if (port < 1) { ok = 0; }
      if (port > 65535) { ok = 0; }
      // privileged ports need root, re-verified at registration
      if (port < 1024) {
        if (caller_uid != 0) { ok = 0; emit(401); }
      }
      if (ok == 1) {
        int placed = 0;
        for (int i = 0; i < 6; i = i + 1) {
          if (placed == 0) {
            if (map_prog[i] == -1) {
              map_prog[i] = prog;
              map_port[i] = port;
              map_owner[i] = caller_uid;
              entries = entries + 1;
              placed = 1;
              emit(200);
            }
          }
        }
        if (placed == 0) { emit(507); }
      } else { emit(400); }
    }
    if (op == 2) {                       // UNSET
      int prog = read_int();
      int found = 0;
      for (int i = 0; i < 6; i = i + 1) {
        if (found == 0) {
          if (map_prog[i] == prog) {
            found = 1;
            if (map_owner[i] == caller_uid) {
              map_prog[i] = -1;
              entries = entries - 1;
              emit(204);
            } else {
              if (caller_uid == 0) {
                // consistency: a privileged port must show a root owner
                if (map_port[i] < 1024) {
                  if (map_owner[i] == 0) { emit(205); }
                  else { emit(666); }    // infeasible untampered
                } else { emit(206); }
                map_prog[i] = -1;
                entries = entries - 1;
              } else { emit(403); }
            }
          }
        }
      }
      if (found == 0) { emit(404); }
    }
    if (op == 3) {                       // GETPORT
      int prog = read_int();
      lookups = lookups + 1;
      lifetime_lookups = lifetime_lookups + 1;
      int answer = 0;
      for (int i = 0; i < 6; i = i + 1) {
        if (map_prog[i] == prog) { answer = map_port[i]; }
      }
      emit(answer);
    }
    if (op == 4) {                       // DUMP
      if (entries >= 0) {
        if (entries <= 6) { emit(300 + entries); } else { emit(666); }
      } else { emit(667); }
    }
    // Per-request sanity sweep: caller identity is fixed for the
    // connection; occupancy and table checksums stay sane.
    if (caller_uid == 0) { emit(1); } else { emit(2); }
    if (entries >= 0) {
      if (entries <= 6) { emit(3); } else { emit(-3); }
    } else { emit(-4); }
    if (lookups >= 0) { emit(4); } else { emit(-5); }
    if (lookups <= 100000) { emit(6); } else { emit(-7); }
    if (op >= 1) { emit(7); } else { emit(-8); }
    if (map_port[0] + map_port[1] + map_port[2]
        + map_port[3] + map_port[4] + map_port[5] >= 0) { emit(5); }
    else { emit(-6); }
    op = read_int();
  }
  emit(lookups);
}
"""


def make_inputs(rng: random.Random, scale: int = 1) -> List[int]:
    inputs = [rng.choice([0, 0, 1, 5])]  # caller uid
    known_progs: List[int] = []
    for _ in range(rng.randint(5 * scale, 14 * scale)):
        op = rng.choices([1, 2, 3, 4], weights=[4, 2, 3, 1])[0]
        inputs.append(op)
        if op == 1:
            prog = rng.randint(1, 30)
            known_progs.append(prog)
            inputs.extend([prog, rng.choice([80, 111, 2049, 8080, 30000])])
        elif op == 2:
            prog = rng.choice(known_progs) if known_progs else rng.randint(1, 30)
            inputs.append(prog)
        elif op == 3:
            prog = rng.choice(known_progs) if known_progs else rng.randint(1, 30)
            inputs.append(prog)
    inputs.append(0)
    return inputs


register(
    Workload(
        name="portmap",
        vuln_kind="bof",
        source=SOURCE,
        make_inputs=make_inputs,
        description="RPC portmapper; ownership/consistency invariants",
        min_trigger_read=2,
    )
)
