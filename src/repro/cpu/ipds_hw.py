"""Timing model of the IPDS hardware (§5.4, §6).

The functional checker (:mod:`repro.runtime`) decides *what* is
detected; this model decides *when*: request queueing, table-access
cycles, BAT link-list walks, and the spilling of BSV/BCV/BAT stack
frames when the active call chain outgrows the on-chip buffers
(2K/1K/32K bits in Table 1).

The paper's key scheduling property is preserved: requests are
processed in order by a dedicated engine, and the pipeline only stalls
when the bounded request queue is full at commit time — otherwise
checking proceeds entirely off the critical path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..correlation.encoding import table_sizes
from ..correlation.tables import ProgramTables
from .params import IPDSHardwareParams


@dataclass
class IPDSTimingStats:
    """Counters from one timed execution."""

    requests: int = 0
    checks: int = 0
    commit_stalls: int = 0
    stall_cycles: int = 0
    spill_events: int = 0
    spill_cycles: int = 0
    total_check_latency: int = 0
    max_queue_depth: int = 0
    context_switches: int = 0
    context_switch_stall_cycles: int = 0

    @property
    def avg_check_latency(self) -> float:
        """Mean cycles from request enqueue to verdict (§6: 11.7)."""
        return self.total_check_latency / self.checks if self.checks else 0.0


@dataclass
class _Frame:
    bsv_bits: int
    bcv_bits: int
    bat_bits: int
    spilled: bool = False

    @property
    def total_bits(self) -> int:
        return self.bsv_bits + self.bcv_bits + self.bat_bits


class IPDSHardwareModel:
    """Cycle accounting for the IPDS engine."""

    def __init__(
        self,
        tables: ProgramTables,
        params: IPDSHardwareParams = IPDSHardwareParams(),
    ):
        self._params = params
        self._tables = tables
        self._sizes: Dict[str, Tuple[int, int, int]] = {}
        for fn_tables in tables:
            sizes = table_sizes(fn_tables)
            self._sizes[fn_tables.function_name] = (
                sizes.bsv_bits,
                sizes.bcv_bits,
                sizes.bat_bits,
            )
        self._stack: List[_Frame] = []
        self._onchip = [0, 0, 0]  # bsv, bcv, bat bits resident
        self._engine_free = 0
        self._pending: Deque[int] = deque()  # finish times, FIFO
        self._next_switch = (
            params.context_switch_interval
            if params.context_switch_interval > 0
            else None
        )
        self.stats = IPDSTimingStats()

    # -- helpers ----------------------------------------------------------

    def _spill_fill_cost(self, bits: int) -> int:
        words = (bits + 63) // 64
        return words * self._params.spill_word_latency

    def _engine_work(
        self, at_cycle: int, occupancy: int, latency: Optional[int] = None
    ) -> Tuple[int, int]:
        """Schedule one engine request issued at ``at_cycle``.

        The engine is pipelined: ``occupancy`` is how long the request
        holds the issue stage (normally one cycle; more when a long BAT
        walk monopolizes the BAT port), ``latency`` is when its verdict
        is available.  Returns ``(stall_until, finish)``; the request
        occupies a queue slot until ``finish``, and when the queue is
        full the requester (commit) waits for the oldest pending
        request.
        """
        if latency is None:
            latency = occupancy
        while self._pending and self._pending[0] <= at_cycle:
            self._pending.popleft()
        stall_until = at_cycle
        while len(self._pending) >= self._params.request_queue_size:
            stall_until = self._pending.popleft()
        start = max(self._engine_free, stall_until)
        finish = start + latency
        if self._pending:
            finish = max(finish, self._pending[-1])  # verdicts in order
        self._engine_free = start + occupancy
        self._pending.append(finish)
        self.stats.max_queue_depth = max(
            self.stats.max_queue_depth, len(self._pending)
        )
        return stall_until, finish

    def maybe_context_switch(self, cycle: int) -> int:
        """Model a context switch when the interval elapses (§5.4).

        Returns the cycles the *program* must wait before resuming.
        Under the eager scheme the whole live table state (both the
        outgoing and incoming process's, modeled symmetrically) is
        swapped before execution resumes; under the paper's lazy scheme
        only ~1K bits swap up-front and the remainder moves in the
        background (engine work that may delay later verdicts).
        """
        if self._next_switch is None or cycle < self._next_switch:
            return 0
        self._next_switch += self._params.context_switch_interval
        self.stats.context_switches += 1
        live_bits = sum(frame.total_bits for frame in self._stack if not frame.spilled)
        total_swap = 2 * live_bits  # save ours + restore theirs
        if self._params.lazy_context_switch:
            eager_bits = min(total_swap, self._params.context_switch_eager_bits)
            background_bits = total_swap - eager_bits
        else:
            eager_bits = total_swap
            background_bits = 0
        stall = self._spill_fill_cost(eager_bits)
        if background_bits:
            self._engine_work(cycle, self._spill_fill_cost(background_bits))
        self.stats.context_switch_stall_cycles += stall
        return stall

    # -- event interface ------------------------------------------------------

    def on_call(self, function_name: str, cycle: int) -> int:
        """Push a frame; returns the commit stall (usually 0)."""
        bsv, bcv, bat = self._sizes.get(function_name, (0, 0, 0))
        frame = _Frame(bsv, bcv, bat)
        self._stack.append(frame)
        for i, bits in enumerate((bsv, bcv, bat)):
            self._onchip[i] += bits
        spill_bits = 0
        capacities = (
            self._params.bsv_stack_bits,
            self._params.bcv_stack_bits,
            self._params.bat_stack_bits,
        )
        if any(used > cap for used, cap in zip(self._onchip, capacities)):
            # Spill the deepest unspilled frames (below the top) until
            # everything fits; the active frame always stays on chip.
            for victim in self._stack[:-1]:
                if victim.spilled:
                    continue
                victim.spilled = True
                spill_bits += victim.total_bits
                self._onchip[0] -= victim.bsv_bits
                self._onchip[1] -= victim.bcv_bits
                self._onchip[2] -= victim.bat_bits
                if all(
                    used <= cap for used, cap in zip(self._onchip, capacities)
                ):
                    break
        if spill_bits:
            cost = self._spill_fill_cost(spill_bits)
            self.stats.spill_events += 1
            self.stats.spill_cycles += cost
            self._engine_work(cycle, cost)
        return 0

    def on_return(self, cycle: int) -> int:
        """Pop a frame; fill the caller's frame if it was spilled."""
        if not self._stack:
            return 0
        frame = self._stack.pop()
        if not frame.spilled:
            self._onchip[0] -= frame.bsv_bits
            self._onchip[1] -= frame.bcv_bits
            self._onchip[2] -= frame.bat_bits
        if self._stack and self._stack[-1].spilled:
            caller = self._stack[-1]
            caller.spilled = False
            self._onchip[0] += caller.bsv_bits
            self._onchip[1] += caller.bcv_bits
            self._onchip[2] += caller.bat_bits
            cost = self._spill_fill_cost(caller.total_bits)
            self.stats.spill_events += 1
            self.stats.spill_cycles += cost
            self._engine_work(cycle, cost)
        return 0

    def on_branch(
        self, function_name: str, pc: int, taken: bool, cycle: int
    ) -> int:
        """A committed conditional branch; returns commit stall cycles."""
        try:
            tables = self._tables.tables_for(function_name)
        except KeyError:
            return 0
        access = self._params.table_access_latency
        checked = tables.is_checked(pc)
        actions = tables.actions_for(pc, taken)
        # BCV, BSV and the BAT head are separate SRAMs read in parallel
        # in the request's first cycle; linked-list entries beyond the
        # first batch add BAT-port cycles (several entries per access —
        # they are ~20 bits wide).  Occupancy = BAT-port cycles;
        # verdict latency adds the fixed two-stage lookup/compare.
        per = max(1, self._params.bat_entries_per_access)
        batches = (len(actions) + per - 1) // per if actions else 0
        occupancy = access * max(1, batches)
        latency = occupancy + 2 * access
        self.stats.requests += 1
        stall_until, finish = self._engine_work(cycle, occupancy, latency)
        if checked:
            self.stats.checks += 1
            self.stats.total_check_latency += finish - cycle
        if stall_until > cycle:
            self.stats.commit_stalls += 1
            self.stats.stall_cycles += stall_until - cycle
            return stall_until - cycle
        return 0
