"""Glue: run a protected program through the timing model.

:func:`timed_run` executes one program once, with or without the IPDS
hardware attached, and returns timing plus IPDS statistics.
:func:`normalized_performance` performs the Figure 9 experiment for one
workload: baseline run vs. IPDS run, same inputs, reporting the
performance ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..interp.interpreter import Interpreter, RunResult
from ..pipeline import ProtectedProgram
from ..runtime.events import BranchEvent, CallEvent, Event, ReturnEvent
from .ipds_hw import IPDSHardwareModel, IPDSTimingStats
from .params import IPDSHardwareParams, ProcessorParams
from .pipeline import TimingModel, TimingStats


@dataclass
class TimedRun:
    """One program execution with cycle accounting."""

    run: RunResult
    timing: TimingStats
    ipds_stats: Optional[IPDSTimingStats]
    predictor_accuracy: float
    l1d_miss_rate: float

    @property
    def cycles(self) -> int:
        return self.timing.cycles

    @property
    def ipc(self) -> float:
        return self.timing.ipc


def timed_run(
    program: ProtectedProgram,
    inputs: Sequence[int] = (),
    entry: str = "main",
    with_ipds: bool = True,
    processor: ProcessorParams = ProcessorParams(),
    ipds_params: IPDSHardwareParams = IPDSHardwareParams(),
    step_limit: int = 2_000_000,
) -> TimedRun:
    """Execute once under the timing model."""
    ipds_hw = (
        IPDSHardwareModel(program.tables, ipds_params) if with_ipds else None
    )
    model = TimingModel(processor, ipds_hw)

    def event_listener(event: Event) -> None:
        if isinstance(event, BranchEvent):
            model.on_branch_outcome(event.function_name, event.pc, event.taken)
        elif isinstance(event, CallEvent):
            model.on_call(event.function_name)
        elif isinstance(event, ReturnEvent):
            model.on_return()

    interpreter = Interpreter(
        program.module,
        inputs=inputs,
        entry=entry,
        step_limit=step_limit,
        event_listeners=[event_listener],
        instruction_listener=model.on_instruction,
        trace_branches=False,
    )
    result = interpreter.run()
    return TimedRun(
        run=result,
        timing=model.stats,
        ipds_stats=ipds_hw.stats if ipds_hw else None,
        predictor_accuracy=model.predictor.stats.accuracy,
        l1d_miss_rate=model.memory.l1d.stats.miss_rate,
    )


@dataclass
class PerformanceComparison:
    """Figure 9 data point for one workload."""

    workload: str
    baseline_cycles: int
    ipds_cycles: int
    instructions: int
    avg_check_latency: float
    commit_stalls: int

    @property
    def normalized_performance(self) -> float:
        """IPDS performance relative to baseline (1.0 = no slowdown)."""
        if not self.ipds_cycles:
            return 1.0
        return self.baseline_cycles / self.ipds_cycles

    @property
    def degradation_pct(self) -> float:
        return 100.0 * (1.0 - self.normalized_performance)


def normalized_performance(
    program: ProtectedProgram,
    inputs: Sequence[int],
    workload_name: str = "",
    processor: ProcessorParams = ProcessorParams(),
    ipds_params: IPDSHardwareParams = IPDSHardwareParams(),
    step_limit: int = 2_000_000,
) -> PerformanceComparison:
    """Run baseline and IPDS configurations on the same inputs."""
    baseline = timed_run(
        program, inputs, with_ipds=False,
        processor=processor, step_limit=step_limit,
    )
    protected = timed_run(
        program, inputs, with_ipds=True,
        processor=processor, ipds_params=ipds_params, step_limit=step_limit,
    )
    return PerformanceComparison(
        workload=workload_name,
        baseline_cycles=baseline.cycles,
        ipds_cycles=protected.cycles,
        instructions=protected.timing.instructions,
        avg_check_latency=(
            protected.ipds_stats.avg_check_latency
            if protected.ipds_stats
            else 0.0
        ),
        commit_stalls=(
            protected.ipds_stats.commit_stalls if protected.ipds_stats else 0
        ),
    )
