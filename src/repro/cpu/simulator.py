"""Glue: run a protected program through the timing model.

:class:`TimingObserver` adapts a :class:`TimingModel` to the
execution-observer protocol, so timing rides the same event bus as the
IPDS checker and trace recorders.  :func:`timed_run` executes one
program once, with or without the IPDS hardware attached, and returns
timing plus IPDS statistics.  :func:`normalized_performance` performs
the Figure 9 experiment for one workload in a **single pass**: one
execution drives the baseline timing model and the IPDS-attached
timing model simultaneously (the model is trace-driven, so both see
the identical committed stream the two separate runs used to produce).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..interp.interpreter import Interpreter, RunResult
from ..ir.instructions import Instruction
from ..pipeline import ProtectedProgram
from ..runtime.events import BranchEvent, CallEvent, ReturnEvent
from ..runtime.observer import ExecutionObserver
from .ipds_hw import IPDSHardwareModel, IPDSTimingStats
from .params import IPDSHardwareParams, ProcessorParams
from .pipeline import TimingModel, TimingStats


class TimingObserver(ExecutionObserver):
    """Feeds one :class:`TimingModel` from the execution bus.

    Each committed control-flow event and instruction is forwarded to
    the model's cycle-accounting hooks; several independent observers
    (e.g. baseline and IPDS-attached models) can ride one execution.
    """

    def __init__(self, model: TimingModel) -> None:
        self.model = model
        # The bus binds hooks per instance (``getattr`` at sink-build
        # time), so shadowing the class methods with the model's bound
        # methods removes one call frame from every dispatch.  The
        # class-level overrides below still exist — they are what makes
        # the bus's override detection subscribe this observer.
        self.on_instruction = model.on_instruction
        self.on_instruction_batch = model.on_instructions
        outcome = model.on_branch_outcome

        def _on_branch(event: BranchEvent, _outcome=outcome) -> None:
            _outcome(event.function_name, event.pc, event.taken)

        self.on_branch = _on_branch

    def on_branch(self, event: BranchEvent) -> None:
        self.model.on_branch_outcome(event.function_name, event.pc, event.taken)

    def on_call(self, event: CallEvent) -> None:
        self.model.on_call(event.function_name)

    def on_return(self, event: ReturnEvent) -> None:
        self.model.on_return()

    def on_instruction(
        self, instruction: Instruction, touched: Optional[int]
    ) -> None:
        self.model.on_instruction(instruction, touched)

    def on_instruction_batch(
        self,
        instructions: Sequence[Instruction],
        touched: Sequence[Optional[int]],
        count: int,
    ) -> None:
        # The model's batch loop holds pipeline state in locals for the
        # whole buffer — this is the timing fast path.
        self.model.on_instructions(instructions, touched, count)


@dataclass
class TimedRun:
    """One program execution with cycle accounting."""

    run: RunResult
    timing: TimingStats
    ipds_stats: Optional[IPDSTimingStats]
    predictor_accuracy: float
    l1d_miss_rate: float

    @property
    def cycles(self) -> int:
        return self.timing.cycles

    @property
    def ipc(self) -> float:
        return self.timing.ipc


def timed_run(
    program: ProtectedProgram,
    inputs: Sequence[int] = (),
    entry: str = "main",
    with_ipds: bool = True,
    processor: ProcessorParams = ProcessorParams(),
    ipds_params: IPDSHardwareParams = IPDSHardwareParams(),
    step_limit: int = 2_000_000,
    observers: Sequence[object] = (),
    timing_mode: str = "exact",
    batched_delivery: bool = True,
) -> TimedRun:
    """Execute once under the timing model.

    Extra ``observers`` share the same execution — e.g. a
    :class:`~repro.runtime.replay.TraceRecorder` for an audit trace of
    the timed run.  ``timing_mode="segment"`` opts into the memoized
    segment approximation; ``batched_delivery=False`` forces the
    per-instruction reference path (the differential-equivalence
    baseline).
    """
    ipds_hw = (
        IPDSHardwareModel(program.tables, ipds_params) if with_ipds else None
    )
    model = TimingModel(processor, ipds_hw, mode=timing_mode)
    interpreter = Interpreter(
        program.module,
        inputs=inputs,
        entry=entry,
        step_limit=step_limit,
        observers=[TimingObserver(model), *observers],
        trace_branches=False,
        batched_delivery=batched_delivery,
    )
    result = interpreter.run()
    return TimedRun(
        run=result,
        timing=model.stats,
        ipds_stats=ipds_hw.stats if ipds_hw else None,
        predictor_accuracy=model.predictor.stats.accuracy,
        l1d_miss_rate=model.memory.l1d.stats.miss_rate,
    )


@dataclass
class PerformanceComparison:
    """Figure 9 data point for one workload."""

    workload: str
    baseline_cycles: int
    ipds_cycles: int
    instructions: int
    avg_check_latency: float
    commit_stalls: int

    @property
    def normalized_performance(self) -> float:
        """IPDS performance relative to baseline (1.0 = no slowdown)."""
        if not self.ipds_cycles:
            return 1.0
        return self.baseline_cycles / self.ipds_cycles

    @property
    def degradation_pct(self) -> float:
        return 100.0 * (1.0 - self.normalized_performance)


def normalized_performance(
    program: ProtectedProgram,
    inputs: Sequence[int],
    workload_name: str = "",
    processor: ProcessorParams = ProcessorParams(),
    ipds_params: IPDSHardwareParams = IPDSHardwareParams(),
    step_limit: int = 2_000_000,
    observers: Sequence[object] = (),
    timing_mode: str = "exact",
    batched_delivery: bool = True,
) -> PerformanceComparison:
    """Baseline and IPDS configurations measured from **one** execution.

    The timing model is trace-driven, so the baseline model and the
    IPDS-attached model consume the identical committed stream; running
    them as two observers of a single execution halves the experiment's
    interpreter work while producing cycle counts identical to the old
    two-pass protocol.  Extra ``observers`` (recorders, metrics taps)
    ride the same pass.  ``timing_mode="segment"`` applies the memoized
    segment approximation to *both* models; ``batched_delivery=False``
    forces per-instruction event delivery (the equivalence reference).
    """
    baseline_model = TimingModel(processor, None, mode=timing_mode)
    ipds_hw = IPDSHardwareModel(program.tables, ipds_params)
    protected_model = TimingModel(processor, ipds_hw, mode=timing_mode)
    interpreter = Interpreter(
        program.module,
        inputs=inputs,
        step_limit=step_limit,
        observers=[
            TimingObserver(baseline_model),
            TimingObserver(protected_model),
            *observers,
        ],
        trace_branches=False,
        batched_delivery=batched_delivery,
    )
    interpreter.run()
    return PerformanceComparison(
        workload=workload_name,
        baseline_cycles=baseline_model.stats.cycles,
        ipds_cycles=protected_model.stats.cycles,
        instructions=protected_model.stats.instructions,
        avg_check_latency=ipds_hw.stats.avg_check_latency,
        commit_stalls=ipds_hw.stats.commit_stalls,
    )
