"""Timing substrate: Table 1 processor model + IPDS hardware timing."""

from .caches import Cache, CacheStats, MemoryHierarchy, TLB
from .ipds_hw import IPDSHardwareModel, IPDSTimingStats
from .params import (
    CacheParams,
    DEFAULT_IPDS_HW,
    DEFAULT_PROCESSOR,
    IPDSHardwareParams,
    ProcessorParams,
)
from .pipeline import TimingModel, TimingStats
from .predictor import PredictorStats, TwoLevelPredictor
from .simulator import (
    PerformanceComparison,
    TimedRun,
    TimingObserver,
    normalized_performance,
    timed_run,
)

__all__ = [
    "Cache",
    "CacheParams",
    "CacheStats",
    "DEFAULT_IPDS_HW",
    "DEFAULT_PROCESSOR",
    "IPDSHardwareModel",
    "IPDSHardwareParams",
    "IPDSTimingStats",
    "MemoryHierarchy",
    "PerformanceComparison",
    "PredictorStats",
    "ProcessorParams",
    "TLB",
    "TimedRun",
    "TimingModel",
    "TimingObserver",
    "TimingStats",
    "TwoLevelPredictor",
    "normalized_performance",
    "timed_run",
]
