"""Two-level adaptive branch predictor (Table 1: "2 Level")."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class PredictorStats:
    predictions: int = 0
    mispredictions: int = 0

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions


class TwoLevelPredictor:
    """GAg-style two-level predictor: global history indexing a pattern
    history table of 2-bit saturating counters, XOR-folded with the PC
    (gshare)."""

    def __init__(self, history_bits: int = 12):
        self._history_bits = history_bits
        self._mask = (1 << history_bits) - 1
        self._history = 0
        self._pht: Dict[int, int] = {}
        self.stats = PredictorStats()

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        counter = self._pht.get(self._index(pc), 2)  # weakly taken
        return counter >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Record the outcome; returns True if it was predicted right."""
        self.stats.predictions += 1
        index = self._index(pc)
        counter = self._pht.get(index, 2)
        predicted = counter >= 2
        if taken:
            self._pht[index] = min(3, counter + 1)
        else:
            self._pht[index] = max(0, counter - 1)
        self._history = ((self._history << 1) | int(taken)) & self._mask
        if predicted != taken:
            self.stats.mispredictions += 1
        return predicted == taken
