"""Two-level adaptive branch predictor (Table 1: "2 Level")."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class PredictorStats:
    predictions: int = 0
    mispredictions: int = 0

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions


class TwoLevelPredictor:
    """GAg-style two-level predictor: global history indexing a pattern
    history table of 2-bit saturating counters, XOR-folded with the PC
    (gshare)."""

    def __init__(self, history_bits: int = 12):
        self._history_bits = history_bits
        self._mask = (1 << history_bits) - 1
        self._history = 0
        self._pht: Dict[int, int] = {}
        self.stats = PredictorStats()

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        counter = self._pht.get(self._index(pc), 2)  # weakly taken
        return counter >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Record the outcome; returns True if it was predicted right.

        Index computation and the saturating-counter move are inlined:
        this runs once per committed conditional branch and sits on the
        timing stack's hot path.
        """
        stats = self.stats
        stats.predictions += 1
        mask = self._mask
        index = ((pc >> 2) ^ self._history) & mask
        pht = self._pht
        counter = pht.get(index, 2)
        predicted = counter >= 2
        if taken:
            pht[index] = counter + 1 if counter < 3 else 3
            self._history = ((self._history << 1) | 1) & mask
        else:
            pht[index] = counter - 1 if counter > 0 else 0
            self._history = (self._history << 1) & mask
        if predicted != taken:
            stats.mispredictions += 1
            return False
        return True
