"""Set-associative caches and TLB for the timing model."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Tuple

from .params import CacheParams, ProcessorParams


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One level of set-associative cache with LRU replacement."""

    def __init__(self, params: CacheParams, name: str = "cache"):
        self.params = params
        self.name = name
        self.stats = CacheStats()
        # set index -> OrderedDict of tags (LRU order: oldest first).
        self._sets: Dict[int, "OrderedDict[int, bool]"] = {}

    def _locate(self, address: int) -> Tuple[int, int]:
        block = address // self.params.block_bytes
        index = block % self.params.sets
        tag = block // self.params.sets
        return index, tag

    def access(self, address: int) -> bool:
        """Touch an address; returns True on hit.  Fills on miss."""
        self.stats.accesses += 1
        index, tag = self._locate(address)
        ways = self._sets.setdefault(index, OrderedDict())
        if tag in ways:
            ways.move_to_end(tag)
            return True
        self.stats.misses += 1
        ways[tag] = True
        if len(ways) > self.params.associativity:
            ways.popitem(last=False)
        return False


class TLB:
    """Fully-associative LRU translation buffer."""

    def __init__(self, entries: int, page_bytes: int):
        self._entries = entries
        self._page_bytes = page_bytes
        self._pages: "OrderedDict[int, bool]" = OrderedDict()
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        self.stats.accesses += 1
        page = address // self._page_bytes
        if page in self._pages:
            self._pages.move_to_end(page)
            return True
        self.stats.misses += 1
        self._pages[page] = True
        if len(self._pages) > self._entries:
            self._pages.popitem(last=False)
        return False


class MemoryHierarchy:
    """L1I + L1D + unified L2 + DRAM + TLB, returning access latencies."""

    def __init__(self, params: ProcessorParams):
        self._params = params
        self.l1i = Cache(params.l1i, "L1I")
        self.l1d = Cache(params.l1d, "L1D")
        self.l2 = Cache(params.l2, "L2")
        self.dtlb = TLB(params.tlb_entries, params.page_bytes)

    def fetch_latency(self, pc: int) -> int:
        """Instruction-fetch latency for one PC."""
        if self.l1i.access(pc):
            return self._params.l1i.latency
        if self.l2.access(pc):
            return self._params.l1i.latency + self._params.l2.latency
        return (
            self._params.l1i.latency
            + self._params.l2.latency
            + self._params.memory_latency(self._params.l1i.block_bytes)
        )

    def data_latency(self, address: int) -> int:
        """Data access latency for one word address (byte-scaled)."""
        byte_address = address * 8  # word-addressed memory, 8-byte words
        latency = 0
        if not self.dtlb.access(byte_address):
            latency += self._params.tlb_miss_latency
        if self.l1d.access(byte_address):
            return latency + self._params.l1d.latency
        if self.l2.access(byte_address):
            return latency + self._params.l1d.latency + self._params.l2.latency
        return (
            latency
            + self._params.l1d.latency
            + self._params.l2.latency
            + self._params.memory_latency(self._params.l1d.block_bytes)
        )
