"""Simulated processor parameters — the paper's Table 1.

Defaults reproduce the configuration the paper simulated with
SimpleScalar: 1 GHz, 8-wide superscalar, 128-entry RUU, 64-entry LSQ,
2-level branch predictor, 64K split L1s, 512K unified L2, 80+5-cycle
memory, 30-cycle TLB miss, and the IPDS on-chip buffers
(BSV 2K bits / BCV 1K bits / BAT 32K bits).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheParams:
    """One cache level."""

    size_bytes: int
    associativity: int
    block_bytes: int
    latency: int  # access latency in cycles

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.associativity * self.block_bytes)


@dataclass(frozen=True)
class ProcessorParams:
    """Table 1 of the paper."""

    clock_hz: int = 1_000_000_000
    fetch_queue: int = 32
    decode_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    ruu_size: int = 128
    lsq_size: int = 64

    l1i: CacheParams = field(
        default_factory=lambda: CacheParams(64 * 1024, 2, 32, 2)
    )
    l1d: CacheParams = field(
        default_factory=lambda: CacheParams(64 * 1024, 2, 32, 2)
    )
    l2: CacheParams = field(
        default_factory=lambda: CacheParams(512 * 1024, 4, 32, 10)
    )

    memory_first_chunk: int = 80
    memory_inter_chunk: int = 5
    memory_bus_bytes: int = 8
    tlb_miss_latency: int = 30
    page_bytes: int = 4096
    tlb_entries: int = 64

    # 2-level branch predictor.
    history_bits: int = 12
    branch_mispredict_penalty: int = 8

    # Functional-unit latencies.
    alu_latency: int = 1
    mul_latency: int = 3
    div_latency: int = 20

    def memory_latency(self, bytes_needed: int = 32) -> int:
        """Latency to fetch a block from DRAM (first + inter chunks)."""
        chunks = max(1, (bytes_needed + self.memory_bus_bytes - 1) // self.memory_bus_bytes)
        return self.memory_first_chunk + (chunks - 1) * self.memory_inter_chunk


@dataclass(frozen=True)
class IPDSHardwareParams:
    """The IPDS hardware configuration (§5.4 / Table 1)."""

    bsv_stack_bits: int = 2 * 1024
    bcv_stack_bits: int = 1 * 1024
    bat_stack_bits: int = 32 * 1024
    table_access_latency: int = 1  # one cycle per table access (§6)
    #: BAT link-list entries fetched per table access (the entries are
    #: ~20 bits; a 64-bit table port returns several per cycle).
    bat_entries_per_access: int = 4
    request_queue_size: int = 16
    #: Cycles to move one 64-bit word between on-chip buffers and the
    #: reserved memory region during spill/fill.
    spill_word_latency: int = 4
    #: Pipeline stage at which the check request is issued; the paper
    #: initiates checking at decode, so commit-time detection latency is
    #: what we report.
    enabled: bool = True
    #: Context-switch interval in cycles (0 disables switching).  At a
    #: switch the IPDS state must be saved and the incoming process's
    #: state restored (§5.4).
    context_switch_interval: int = 0
    #: §5.4 optimization: "swap the top of BSV and BAT stacks (around
    #: 1K bits) first and let the new process start.  Lower layers of
    #: stacks are context switched in parallel with the execution."
    #: When False, the whole table state is swapped eagerly (the naive
    #: scheme the paper improves on).
    lazy_context_switch: bool = True
    #: Bits swapped up-front under the lazy scheme (≈1K per the paper).
    context_switch_eager_bits: int = 1024


DEFAULT_PROCESSOR = ProcessorParams()
DEFAULT_IPDS_HW = IPDSHardwareParams()
