"""Trace-driven superscalar timing model (the SimpleScalar stand-in).

The model consumes the interpreter's committed instruction stream and
assigns each instruction fetch / issue / complete / commit cycles under
the Table 1 constraints:

* fetch bandwidth limited by the decode width and the I-cache, with
  redirect bubbles after branch mispredictions (2-level predictor);
* issue limited by register dependencies (true dependencies only —
  registers are single-assignment), the RUU window, and the LSQ for
  memory operations;
* loads/stores pay the memory-hierarchy latency (L1D → L2 → DRAM, plus
  TLB misses);
* in-order commit limited by the commit width; committed conditional
  branches are handed to the IPDS hardware model, whose only influence
  on the core is a commit stall when its request queue is full (§5.4).

It is *trace-driven*, so wrong-path instructions are modeled as a fixed
redirect penalty rather than simulated — the standard fidelity
trade-off for this class of model.  Figure 9 reports a ratio of two
such runs (IPDS / baseline), which this preserves.

Implementation notes (the fast path):

* The RUU window and the LSQ are preallocated ring buffers indexed by
  slot, not deques of per-op objects — commit cycles are monotonically
  nondecreasing, so ready entries always pop from the head.
* Register-ready tracking keys on the integer register index, not the
  ``Reg`` object.
* Everything static about an instruction (register indices, fetch PC,
  execution latency, operation class) is computed once and cached by
  object identity; the cache pins the instruction object so an id can
  never be recycled while the entry lives.
* ``on_instructions`` accounts a whole committed batch in one call
  with all model state held in locals — this is the target of the
  interpreter's flat event buffer.  ``on_instruction`` remains the
  per-instruction reference path and produces bit-identical cycles.

Opt-in approximation (``mode="segment"``): straight-line trace
segments (a batch is flushed at every control-flow event, so the
instructions that follow a batch's first are fully determined by it)
are timed exactly for a few warm visits, then replayed as a memoized
cycle delta.  Cache/predictor state stops evolving inside replayed
segments, so this is *not* cycle-exact — its per-workload error
against the exact model is pinned by ``tests/test_timing_segment_mode``
and documented in EXPERIMENTS.md.  Figure 9 numbers in the paper
reproduction always use the default exact mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.instructions import (
    BinOp,
    CondBranch,
    Instruction,
    Load,
    LoadIndirect,
    Store,
    StoreIndirect,
    defined_reg,
    used_regs,
)
from .caches import MemoryHierarchy
from .ipds_hw import IPDSHardwareModel
from .params import ProcessorParams
from .predictor import TwoLevelPredictor

#: Segment mode: memoize batches at least this long.  With a branchy
#: consumer mix the interpreter flushes at every control-flow event, so
#: most batches are short — memoizing them all is what makes the mode
#: pay off; accuracy is pinned by the tolerance matrix.
SEGMENT_MIN_LENGTH = 1
#: Segment mode: exact visits ignored before sampling starts.  Min
#: aggregation already filters cold-cache samples, so one warmup visit
#: (skipping the compulsory-miss pass) is enough; fewer exact visits
#: per segment is what the fast path's throughput comes from.
SEGMENT_WARMUP_VISITS = 1
#: Segment mode: exact visits sampled for the memoized cycle delta.
#: The *minimum* sample is kept — the steady-state cost of the segment
#: with warm caches and a trained predictor; mispredict-inflated visits
#: would otherwise bias every replay upward.
SEGMENT_TRAIN_SAMPLES = 3

# Field indices of a segment-memo record (a mutable list; see
# ``TimingModel._segments``).  _SEG_FIRST pins the batch's first
# instruction so its id can't be recycled while the key lives.  Two
# anchored deltas are memoized: commit-to-commit (the steady-state
# advance) and fetch-to-commit (binding right after a mispredict
# redirect raises the fetch frontier above the commit frontier, so the
# refill bubble still propagates through replays).  _SEG_LAG is how far
# fetch trailed commit when the segment ended.
_SEG_FIRST = 0
_SEG_VISITS = 1
_SEG_SAMPLES = 2
_SEG_DELTA_COMMIT = 3
_SEG_DELTA_FETCH = 4
_SEG_LAG = 5
_SEG_LOADS = 6
_SEG_STORES = 7
_SEG_BRANCHES = 8
_SEG_TRAINED = 9


@dataclass
class TimingStats:
    """Results of one timed execution."""

    instructions: int = 0
    cycles: int = 0
    branch_instructions: int = 0
    loads: int = 0
    stores: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class TimingModel:
    """Assigns cycles to a committed instruction stream."""

    def __init__(
        self,
        params: ProcessorParams = ProcessorParams(),
        ipds: Optional[IPDSHardwareModel] = None,
        mode: str = "exact",
    ):
        if mode not in ("exact", "segment"):
            raise ValueError(f"unknown timing mode {mode!r}")
        self._params = params
        self._ipds = ipds
        self.mode = mode
        self.memory = MemoryHierarchy(params)
        self.predictor = TwoLevelPredictor(params.history_bits)
        self.stats = TimingStats()

        #: reg index -> cycle its value is ready (int keys hash faster
        #: than frozen-dataclass Reg objects).
        self._reg_ready: Dict[int, int] = {}
        # RUU / LSQ occupancy as rings of commit cycles: values enter
        # in nondecreasing order, so freeing slots is a head scan.
        self._ruu_size = params.ruu_size
        self._rob: List[int] = [0] * params.ruu_size
        self._rob_head = 0
        self._rob_len = 0
        self._lsq_size = params.lsq_size
        self._lsq: List[int] = [0] * params.lsq_size
        self._lsq_head = 0
        self._lsq_len = 0
        self._fetch_free = 0
        self._fetched_this_cycle = 0
        self._fetch_cycle = -1
        self._last_fetch_block = -1
        self._last_commit = 0
        self._committed_this_cycle = 0
        self._commit_cycle = -1
        #: id(instruction) -> (used reg indices, dest index or -1,
        #: fetch pc, exec latency, memflag 0/1/2, is_branch,
        #: instruction ref).  The trailing ref keeps the id valid.
        self._info: Dict[int, tuple] = {}
        #: (id(first instruction), count) -> segment-memo record.
        self._segments: Dict[Tuple[int, int], list] = {}

    # -- static instruction description --------------------------------------

    def _describe(self, instruction: Instruction) -> tuple:
        """Compute and cache everything static about one instruction."""
        cls = instruction.__class__
        used = tuple(reg.index for reg in used_regs(instruction))
        dest = defined_reg(instruction)
        if cls is Load or cls is LoadIndirect:
            memflag = 1
        elif cls is Store or cls is StoreIndirect:
            memflag = 2
        else:
            memflag = 0
        if cls is BinOp and instruction.op == "*":
            latency = self._params.mul_latency
        elif cls is BinOp and instruction.op in ("/", "%"):
            latency = self._params.div_latency
        else:
            latency = self._params.alu_latency
        info = (
            used,
            dest.index if dest is not None else -1,
            max(instruction.address, 0),
            latency,
            memflag,
            cls is CondBranch,
            instruction,
        )
        self._info[id(instruction)] = info
        return info

    # -- the instruction hooks -------------------------------------------------

    def on_instruction(
        self, instruction: Instruction, touched: Optional[int]
    ) -> None:
        """Account one committed instruction (the reference path)."""
        self._account((instruction,), (touched,), 1)

    def on_instructions(
        self,
        instructions: Sequence[Instruction],
        touched: Sequence[Optional[int]],
        count: int,
    ) -> None:
        """Account one committed batch (the interpreter's flat buffer).

        Exact mode produces cycle counts bit-identical to ``count``
        calls of :meth:`on_instruction` — batching changes only the
        call granularity.  Segment mode may replay a memoized delta for
        a previously-trained segment instead of re-timing it.
        """
        if self.mode == "segment" and count >= SEGMENT_MIN_LENGTH:
            key = (id(instructions[0]), count)
            segment = self._segments.get(key)
            if segment is None:
                segment = [instructions[0], 0, 0, 0, 0, 0, 0, 0, 0, False]
                self._segments[key] = segment
            if segment[_SEG_TRAINED]:
                # Replay (inlined on purpose: this runs once per batch).
                last_commit = self._last_commit + segment[_SEG_DELTA_COMMIT]
                from_fetch = self._fetch_free + segment[_SEG_DELTA_FETCH]
                if from_fetch > last_commit:
                    last_commit = from_fetch
                self._last_commit = last_commit
                self._fetch_free = last_commit - segment[_SEG_LAG]
                self._fetch_cycle = -1
                self._commit_cycle = -1
                stats = self.stats
                stats.instructions += count
                stats.loads += segment[_SEG_LOADS]
                stats.stores += segment[_SEG_STORES]
                stats.branch_instructions += segment[_SEG_BRANCHES]
                if last_commit > stats.cycles:
                    stats.cycles = last_commit
                return
            segment[_SEG_VISITS] += 1
            commit_before = self._last_commit
            fetch_before = self._fetch_free
            loads, stores, branches = self._account(
                instructions, touched, count
            )
            if segment[_SEG_VISITS] > SEGMENT_WARMUP_VISITS:
                commit_after = self._last_commit
                d_commit = commit_after - commit_before
                d_fetch = commit_after - fetch_before
                if segment[_SEG_SAMPLES] == 0:
                    segment[_SEG_DELTA_COMMIT] = d_commit
                    segment[_SEG_DELTA_FETCH] = d_fetch
                    segment[_SEG_LAG] = commit_after - self._fetch_free
                else:
                    # Keep the minimum of each anchored delta — the
                    # segment's steady-state cost with warm caches.
                    if d_commit < segment[_SEG_DELTA_COMMIT]:
                        segment[_SEG_DELTA_COMMIT] = d_commit
                        segment[_SEG_LAG] = commit_after - self._fetch_free
                    if d_fetch < segment[_SEG_DELTA_FETCH]:
                        segment[_SEG_DELTA_FETCH] = d_fetch
                segment[_SEG_SAMPLES] += 1
                segment[_SEG_LOADS] = loads
                segment[_SEG_STORES] = stores
                segment[_SEG_BRANCHES] = branches
                if segment[_SEG_SAMPLES] >= SEGMENT_TRAIN_SAMPLES:
                    segment[_SEG_TRAINED] = True
            return
        self._account(instructions, touched, count)

    def _account(
        self,
        instructions: Sequence[Instruction],
        touched: Sequence[Optional[int]],
        count: int,
    ) -> Tuple[int, int, int]:
        """Exact cycle accounting for ``count`` committed instructions.

        All model state lives in locals for the duration of the batch
        and is written back once.  Returns the batch's (loads, stores,
        branches) so segment training can memoize them.
        """
        params = self._params
        decode_width = params.decode_width
        commit_width = params.commit_width
        iblock_bytes = params.l1i.block_bytes
        fetch_latency = self.memory.fetch_latency
        data_latency = self.memory.data_latency
        reg_ready = self._reg_ready
        reg_ready_get = reg_ready.get
        info_cache = self._info
        info_get = info_cache.get
        describe = self._describe
        ruu_size = self._ruu_size
        rob = self._rob
        rob_head = self._rob_head
        rob_len = self._rob_len
        lsq_size = self._lsq_size
        lsq = self._lsq
        lsq_head = self._lsq_head
        lsq_len = self._lsq_len
        fetch_free = self._fetch_free
        fetched = self._fetched_this_cycle
        fetch_cycle = self._fetch_cycle
        last_block = self._last_fetch_block
        last_commit = self._last_commit
        committed = self._committed_this_cycle
        commit_cycle = self._commit_cycle
        loads = 0
        stores = 0
        branches = 0

        for index in range(count):
            instruction = instructions[index]
            info = info_get(id(instruction))
            if info is None:
                info = describe(instruction)
            used, dest, pc, latency, memflag, is_branch, _ = info

            # Fetch: decode-width slotting plus I-cache latency on
            # block changes.
            cycle = fetch_free
            if cycle != fetch_cycle:
                fetch_cycle = cycle
                fetched = 0
            if fetched >= decode_width:
                cycle += 1
                fetch_cycle = cycle
                fetched = 0
                fetch_free = cycle
            fetched += 1
            block = pc // iblock_bytes
            if block != last_block:
                last_block = block
                cycle += fetch_latency(pc)

            # Issue: true register dependencies, then an RUU slot (the
            # oldest in-flight op must commit when the window is full).
            ready = cycle
            for reg in used:
                reg_cycle = reg_ready_get(reg, 0)
                if reg_cycle > ready:
                    ready = reg_cycle
            while rob_len and rob[rob_head] <= ready:
                rob_head += 1
                if rob_head == ruu_size:
                    rob_head = 0
                rob_len -= 1
            if rob_len >= ruu_size:
                ready = rob[rob_head]
                rob_head += 1
                if rob_head == ruu_size:
                    rob_head = 0
                rob_len -= 1

            if memflag:
                # Memory ops additionally wait for an LSQ slot and pay
                # the hierarchy latency.
                while lsq_len and lsq[lsq_head] <= ready:
                    lsq_head += 1
                    if lsq_head == lsq_size:
                        lsq_head = 0
                    lsq_len -= 1
                if lsq_len >= lsq_size:
                    ready = lsq[lsq_head]
                    lsq_head += 1
                    if lsq_head == lsq_size:
                        lsq_head = 0
                    lsq_len -= 1
                address = touched[index]
                latency = data_latency(address if address else 0)
                if memflag == 1:
                    loads += 1
                else:
                    stores += 1

            complete = ready + latency
            if dest >= 0:
                reg_ready[dest] = complete

            # In-order commit respecting the commit width.
            cycle = complete if complete > last_commit else last_commit
            if cycle != commit_cycle:
                commit_cycle = cycle
                committed = 0
            if committed >= commit_width:
                cycle += 1
                commit_cycle = cycle
                committed = 0
            committed += 1
            last_commit = cycle

            if memflag:
                tail = lsq_head + lsq_len
                if tail >= lsq_size:
                    tail -= lsq_size
                lsq[tail] = cycle
                lsq_len += 1
            tail = rob_head + rob_len
            if tail >= ruu_size:
                tail -= ruu_size
            rob[tail] = cycle
            rob_len += 1
            if is_branch:
                branches += 1

        self._rob_head = rob_head
        self._rob_len = rob_len
        self._lsq_head = lsq_head
        self._lsq_len = lsq_len
        self._fetch_free = fetch_free
        self._fetched_this_cycle = fetched
        self._fetch_cycle = fetch_cycle
        self._last_fetch_block = last_block
        self._last_commit = last_commit
        self._committed_this_cycle = committed
        self._commit_cycle = commit_cycle
        stats = self.stats
        stats.instructions += count
        stats.loads += loads
        stats.stores += stores
        stats.branch_instructions += branches
        # Commit cycles are nondecreasing, so the batch maximum is the
        # final commit; an earlier IPDS stall may still be ahead of it.
        if last_commit > stats.cycles:
            stats.cycles = last_commit
        return loads, stores, branches

    # -- control-flow hooks (event listener) -----------------------------------

    def on_branch_outcome(
        self, function_name: str, pc: int, taken: bool
    ) -> None:
        """Called when a conditional branch commits.

        The interpreter flushes the event buffer before dispatching the
        branch event, so the model's commit frontier is exact here even
        under batched delivery.
        """
        correct = self.predictor.update(pc, taken)
        if not correct:
            # Redirect: fetch resumes after resolution plus the
            # front-end refill penalty.
            self._fetch_free = max(
                self._fetch_free,
                self._last_commit + self._params.branch_mispredict_penalty,
            )
            self._last_fetch_block = -1
        if self._ipds is not None:
            stall = self._ipds.on_branch(
                function_name, pc, taken, self._last_commit
            )
            stall += self._ipds.maybe_context_switch(self._last_commit + stall)
            if stall:
                self._last_commit += stall
                self.stats.cycles = max(self.stats.cycles, self._last_commit)

    def on_call(self, function_name: str) -> None:
        if self._ipds is not None:
            self._ipds.on_call(function_name, self._last_commit)

    def on_return(self) -> None:
        if self._ipds is not None:
            self._ipds.on_return(self._last_commit)
