"""Trace-driven superscalar timing model (the SimpleScalar stand-in).

The model consumes the interpreter's committed instruction stream and
assigns each instruction fetch / issue / complete / commit cycles under
the Table 1 constraints:

* fetch bandwidth limited by the decode width and the I-cache, with
  redirect bubbles after branch mispredictions (2-level predictor);
* issue limited by register dependencies (true dependencies only —
  registers are single-assignment), the RUU window, and the LSQ for
  memory operations;
* loads/stores pay the memory-hierarchy latency (L1D → L2 → DRAM, plus
  TLB misses);
* in-order commit limited by the commit width; committed conditional
  branches are handed to the IPDS hardware model, whose only influence
  on the core is a commit stall when its request queue is full (§5.4).

It is *trace-driven*, so wrong-path instructions are modeled as a fixed
redirect penalty rather than simulated — the standard fidelity
trade-off for this class of model.  Figure 9 reports a ratio of two
such runs (IPDS / baseline), which this preserves.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from ..ir.instructions import BinOp, CondBranch, Instruction, Load, LoadIndirect, Reg, Store, StoreIndirect, defined_reg, used_regs
from .caches import MemoryHierarchy
from .ipds_hw import IPDSHardwareModel
from .params import ProcessorParams
from .predictor import TwoLevelPredictor


@dataclass
class TimingStats:
    """Results of one timed execution."""

    instructions: int = 0
    cycles: int = 0
    branch_instructions: int = 0
    loads: int = 0
    stores: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class TimingModel:
    """Assigns cycles to a committed instruction stream."""

    def __init__(
        self,
        params: ProcessorParams = ProcessorParams(),
        ipds: Optional[IPDSHardwareModel] = None,
    ):
        self._params = params
        self._ipds = ipds
        self.memory = MemoryHierarchy(params)
        self.predictor = TwoLevelPredictor(params.history_bits)
        self.stats = TimingStats()

        self._reg_ready: Dict[Reg, int] = {}
        self._rob: Deque[int] = deque()  # commit cycles of in-flight ops
        self._lsq: Deque[int] = deque()
        self._fetch_free = 0
        self._fetched_this_cycle = 0
        self._fetch_cycle = -1
        self._last_fetch_block = -1
        self._last_commit = 0
        self._committed_this_cycle = 0
        self._commit_cycle = -1

    # -- structural helpers --------------------------------------------------

    def _fetch(self, pc: int) -> int:
        """Cycle at which the instruction is available for issue."""
        cycle = self._fetch_free
        if cycle != self._fetch_cycle:
            self._fetch_cycle = cycle
            self._fetched_this_cycle = 0
        if self._fetched_this_cycle >= self._params.decode_width:
            cycle += 1
            self._fetch_cycle = cycle
            self._fetched_this_cycle = 0
            self._fetch_free = cycle
        self._fetched_this_cycle += 1
        block = pc // self._params.l1i.block_bytes
        if block != self._last_fetch_block:
            self._last_fetch_block = block
            cycle += self.memory.fetch_latency(pc)
        return cycle

    def _window_slot(self, at_cycle: int) -> int:
        """Wait for an RUU slot (the oldest in-flight op must commit)."""
        while self._rob and self._rob[0] <= at_cycle:
            self._rob.popleft()
        if len(self._rob) >= self._params.ruu_size:
            at_cycle = self._rob.popleft()
        return at_cycle

    def _lsq_slot(self, at_cycle: int) -> int:
        while self._lsq and self._lsq[0] <= at_cycle:
            self._lsq.popleft()
        if len(self._lsq) >= self._params.lsq_size:
            at_cycle = self._lsq.popleft()
        return at_cycle

    def _commit(self, complete: int) -> int:
        """In-order commit respecting the commit width."""
        cycle = max(complete, self._last_commit)
        if cycle != self._commit_cycle:
            self._commit_cycle = cycle
            self._committed_this_cycle = 0
        if self._committed_this_cycle >= self._params.commit_width:
            cycle += 1
            self._commit_cycle = cycle
            self._committed_this_cycle = 0
        self._committed_this_cycle += 1
        self._last_commit = cycle
        return cycle

    def _exec_latency(self, instruction: Instruction) -> int:
        if isinstance(instruction, BinOp):
            if instruction.op == "*":
                return self._params.mul_latency
            if instruction.op in ("/", "%"):
                return self._params.div_latency
        return self._params.alu_latency

    # -- the per-instruction hook ----------------------------------------------

    def on_instruction(
        self, instruction: Instruction, touched: Optional[int]
    ) -> None:
        """Account one committed instruction (interpreter listener)."""
        self.stats.instructions += 1
        ready = self._fetch(max(instruction.address, 0))
        for reg in used_regs(instruction):
            ready = max(ready, self._reg_ready.get(reg, 0))
        ready = self._window_slot(ready)

        is_memory = isinstance(
            instruction, (Load, Store, LoadIndirect, StoreIndirect)
        )
        if is_memory:
            ready = self._lsq_slot(ready)
            latency = self.memory.data_latency(touched if touched else 0)
            if isinstance(instruction, (Load, LoadIndirect)):
                self.stats.loads += 1
            else:
                self.stats.stores += 1
        else:
            latency = self._exec_latency(instruction)

        complete = ready + latency
        dest = defined_reg(instruction)
        if dest is not None:
            self._reg_ready[dest] = complete

        commit = self._commit(complete)
        if is_memory:
            self._lsq.append(commit)
        self._rob.append(commit)

        if isinstance(instruction, CondBranch):
            self.stats.branch_instructions += 1
        self.stats.cycles = max(self.stats.cycles, commit)

    # -- control-flow hooks (event listener) -----------------------------------

    def on_branch_outcome(
        self, function_name: str, pc: int, taken: bool
    ) -> None:
        """Called when a conditional branch commits (after its
        ``on_instruction``)."""
        correct = self.predictor.update(pc, taken)
        if not correct:
            # Redirect: fetch resumes after resolution plus the
            # front-end refill penalty.
            self._fetch_free = max(
                self._fetch_free,
                self._last_commit + self._params.branch_mispredict_penalty,
            )
            self._last_fetch_block = -1
        if self._ipds is not None:
            stall = self._ipds.on_branch(
                function_name, pc, taken, self._last_commit
            )
            stall += self._ipds.maybe_context_switch(self._last_commit + stall)
            if stall:
                self._last_commit += stall
                self.stats.cycles = max(self.stats.cycles, self._last_commit)

    def on_call(self, function_name: str) -> None:
        if self._ipds is not None:
            self._ipds.on_call(function_name, self._last_commit)

    def on_return(self) -> None:
        if self._ipds is not None:
            self._ipds.on_return(self._last_commit)
