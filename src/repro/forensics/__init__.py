"""Alarm forensics: explain runtime alarms in compile-time terms.

The paper's pitch is *actionable* anomaly detection — an alarm means a
specific committed branch contradicted a specific compiler-proved
correlation.  This package closes that loop: it joins the runtime
flight recorder (:mod:`repro.runtime.flight_recorder`) with the
compiler's provenance records (:mod:`repro.correlation.provenance`)
into typed :class:`AlarmReport` objects with a human-readable causal
chain, JSON rendering, and staticcheck diagnostics for SARIF export.
"""

from .engine import (
    DEFAULT_HISTORY,
    explain_alarms,
    explain_ipds,
    explain_trace,
)
from .observatory import (
    UNEXPLAINED,
    CampaignObservation,
    ObservatoryError,
    WorkloadObservation,
    observe_log,
    observe_outcomes,
    observe_records,
)
from .report import (
    CODE_DEGRADED,
    CODE_EXPLAINED,
    AlarmReport,
    render_reports_text,
    reports_to_json,
)

__all__ = [
    "AlarmReport",
    "CODE_DEGRADED",
    "CODE_EXPLAINED",
    "CampaignObservation",
    "DEFAULT_HISTORY",
    "ObservatoryError",
    "UNEXPLAINED",
    "WorkloadObservation",
    "explain_alarms",
    "explain_ipds",
    "explain_trace",
    "observe_log",
    "observe_outcomes",
    "observe_records",
    "render_reports_text",
    "reports_to_json",
]
