"""Typed alarm reports: what was violated, who set it, why it existed.

An :class:`AlarmReport` is the join of three sources:

* the :class:`~repro.runtime.ipds.Alarm` itself (the contradicting
  event — which checked branch went the impossible way);
* the flight-recorder record of the *setting event* — the earlier
  committed branch whose BAT action installed the expectation, found
  by scanning the ring backwards within the same activation;
* the compiler's :class:`~repro.correlation.provenance.ActionProvenance`
  for that exact (source, direction, target) BAT entry — the
  correlation that was proved at compile time and violated at runtime.

Reports render as text, JSON, and as staticcheck ``Diagnostic``s
(``FOR501`` fully explained / ``FOR502`` degraded), so they flow
through the existing text/JSON/SARIF emitters unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..correlation.provenance import ActionProvenance
from ..runtime.flight_recorder import BranchRecord, BSVTransition
from ..runtime.ipds import Alarm
from ..staticcheck.diagnostics import CODES, Diagnostic, Span

#: Diagnostic codes reports lower into.
CODE_EXPLAINED = "FOR501"
CODE_DEGRADED = "FOR502"


@dataclass(frozen=True)
class AlarmReport:
    """One explained (or degraded) alarm."""

    alarm: Alarm
    function: str
    #: The setting event, if still in the flight recorder.
    setter: Optional[BranchRecord] = None
    #: The specific BSV transition of the setter that wrote the slot.
    transition: Optional[BSVTransition] = None
    #: The compiler's reason the violated BAT entry exists.
    provenance: Optional[ActionProvenance] = None
    #: Candidate provenance records when the setter is unknown (all
    #: compile-time correlations that could have armed this slot).
    candidates: Tuple[ActionProvenance, ...] = ()
    #: Flight-recorder history leading up to the alarm (rendered lines).
    history: Tuple[str, ...] = ()
    notes: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def explained(self) -> bool:
        """Fully explained: setting event found and matched to a
        compile-time provenance record."""
        return self.setter is not None and self.provenance is not None

    @property
    def expected(self) -> str:
        return self.alarm.expected.value

    @property
    def actual(self) -> str:
        return "T" if self.alarm.actual_taken else "NT"

    # -- renderings ------------------------------------------------------

    def causal_chain(self) -> str:
        """One-sentence human-readable causal chain."""
        where = f"{self.function}@{self.alarm.pc:#x}"
        violation = (
            f"{where} went {self.actual} at event #{self.alarm.event_index} "
            f"while the BSV expected {self.expected}"
        )
        if not self.explained:
            if self.candidates:
                options = "; ".join(p.describe() for p in self.candidates)
                return (
                    f"{violation}; the setting event was not in the flight "
                    f"recorder, but compile-time candidates are: {options}"
                )
            return f"{violation}; no explanation available"
        setter = self.setter
        prov = self.provenance
        cause = (
            f"set by event #{setter.seq} "
            f"({setter.function}@{setter.pc:#x} went {setter.direction}, "
            f"firing {self.transition.action.value})"
        )
        if prov.reason == "subsumption":
            why = (
                f"because direction {prov.direction} of "
                f"{prov.source_block}@{prov.source_pc:#x} implies "
                f"{prov.var} in {prov.implied} (via {prov.link_kind}), "
                f"which forces check '{prov.check}' to {self.expected}"
            )
        else:
            why = f"because {prov.describe()}"
        return f"{violation}, {cause}, {why}"

    def render_text(self) -> str:
        lines = [f"ALARM {self.alarm}"]
        lines.append(f"  violated correlation: {self.describe_correlation()}")
        if self.setter is not None:
            lines.append(f"  setting event:       {self.setter.describe()}")
        if self.transition is not None:
            lines.append(f"  transition:          {self.transition.describe()}")
        lines.append(f"  causal chain:        {self.causal_chain()}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        if self.history:
            lines.append("  flight recorder (oldest first):")
            for entry in self.history:
                lines.append(f"    {entry}")
        return "\n".join(lines)

    def describe_correlation(self) -> str:
        if self.provenance is not None:
            return self.provenance.describe()
        if self.candidates:
            return (
                f"unresolved — {len(self.candidates)} compile-time "
                f"candidate(s) for slot {self.alarm.slot}"
            )
        return "unknown (no provenance record matches)"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "alarm": {
                "function": self.alarm.function_name,
                "pc": self.alarm.pc,
                "expected": self.expected,
                "actual": self.actual,
                "event_index": self.alarm.event_index,
                "slot": self.alarm.slot,
                "frame_id": self.alarm.frame_id,
            },
            "explained": self.explained,
            "provenance": (
                None if self.provenance is None else self.provenance.to_dict()
            ),
            "candidates": [p.to_dict() for p in self.candidates],
            "setter": None if self.setter is None else self.setter.to_dict(),
            "transition": (
                None if self.transition is None else self.transition.to_dict()
            ),
            "causal_chain": self.causal_chain(),
            "history": list(self.history),
            "notes": list(self.notes),
        }

    def to_diagnostic(self) -> Diagnostic:
        code = CODE_EXPLAINED if self.explained else CODE_DEGRADED
        return Diagnostic(
            code=code,
            severity=CODES[code].severity,
            message=self.causal_chain(),
            span=Span(function=self.function, pc=self.alarm.pc),
            pass_name="forensics",
        )


def reports_to_json(reports: List[AlarmReport]) -> str:
    """Deterministic JSON document for a list of reports."""
    payload = {
        "version": 1,
        "tool": "repro-forensics",
        "alarms": len(reports),
        "explained": sum(1 for r in reports if r.explained),
        "reports": [r.to_dict() for r in reports],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_reports_text(reports: List[AlarmReport]) -> str:
    if not reports:
        return "no alarms"
    blocks = [r.render_text() for r in reports]
    explained = sum(1 for r in reports if r.explained)
    blocks.append(f"{len(reports)} alarm(s), {explained} fully explained")
    return "\n".join(blocks)
