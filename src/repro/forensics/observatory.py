"""The campaign forensics observatory: which proofs catch attacks.

The campaign answers Figure 7's *how many* attacks are detected; this
module answers *why* — which compile-time correlation proofs
(subsumption / kill / conflict / interproc / feasible-path) actually
fired at detection time, aggregated across a whole campaign's outcome
log.  It consumes the per-outcome records that
``repro campaign --forensics --trace-out`` writes (one JSON object per
attack, carrying ``proof_reasons`` per alarm) and renders
explained-correlation histograms per provenance reason and per
workload, as text or JSON (the ``repro obs`` CLI verb).

Attribution rule: every *detected* attack is counted exactly once,
under its **primary reason** — the proof behind the first alarm the
IPDS raised (subsequent alarms of the same attack are cascade effects
of the first divergence).  Detected attacks whose forensics join
degraded (no provenance record matched, or the campaign ran without
``--forensics``) land in the ``unexplained`` bucket, so the per-reason
counts always sum exactly to the campaign's detected-attack total.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..correlation.provenance import VALID_REASONS

#: Bucket for detected attacks with no resolvable provenance reason.
UNEXPLAINED = "unexplained"

#: Fixed rendering order: the compiler's proof kinds, then the
#: degraded bucket (stable across campaigns for diffable reports).
REASON_ORDER: Tuple[str, ...] = (*VALID_REASONS, UNEXPLAINED)

#: Schema version of the JSON rendering.
OBS_VERSION = 1


class ObservatoryError(ValueError):
    """The outcome log is malformed (not campaign ``--trace-out`` JSONL)."""


@dataclass
class WorkloadObservation:
    """One workload's explained-correlation tallies."""

    workload: str
    attacks: int = 0
    detected: int = 0
    by_reason: Dict[str, int] = field(default_factory=dict)

    def record(self, record: Dict[str, Any]) -> None:
        self.attacks += 1
        if not record.get("detected"):
            return
        self.detected += 1
        reason = primary_reason(record)
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "attacks": self.attacks,
            "detected": self.detected,
            "by_reason": {
                reason: self.by_reason[reason]
                for reason in sorted(self.by_reason)
            },
        }


def primary_reason(record: Dict[str, Any]) -> str:
    """The attribution bucket of one detected outcome record.

    The first entry of ``proof_reasons`` (alarm raise order) when
    present and a known reason; ``unexplained`` otherwise.
    """
    reasons = record.get("proof_reasons") or ()
    if reasons and reasons[0] in VALID_REASONS:
        return reasons[0]
    return UNEXPLAINED


@dataclass
class CampaignObservation:
    """The whole campaign's observatory aggregate."""

    workloads: Dict[str, WorkloadObservation] = field(default_factory=dict)

    @property
    def attacks(self) -> int:
        return sum(w.attacks for w in self.workloads.values())

    @property
    def detected(self) -> int:
        return sum(w.detected for w in self.workloads.values())

    def reason_totals(self) -> Dict[str, int]:
        """Campaign-wide per-reason catch counts.

        Invariant (asserted by the test suite and the CI gate): the
        values sum exactly to :attr:`detected` — every detected attack
        is attributed to exactly one bucket.
        """
        totals: Dict[str, int] = {}
        for workload in self.workloads.values():
            for reason, count in workload.by_reason.items():
                totals[reason] = totals.get(reason, 0) + count
        return totals

    def record(self, record: Dict[str, Any]) -> None:
        if not isinstance(record, dict) or "workload" not in record:
            raise ObservatoryError(
                "outcome record needs a 'workload' field — is this a "
                "campaign --trace-out log?"
            )
        name = record["workload"]
        observation = self.workloads.get(name)
        if observation is None:
            observation = self.workloads[name] = WorkloadObservation(name)
        observation.record(record)

    # -- renderings -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        totals = self.reason_totals()
        return {
            "version": OBS_VERSION,
            "tool": "repro-obs",
            "attacks": self.attacks,
            "detected": self.detected,
            "by_reason": {
                reason: totals[reason] for reason in sorted(totals)
            },
            "workloads": [
                self.workloads[name].to_dict()
                for name in sorted(self.workloads)
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self, width: int = 40) -> str:
        """Figure-7-style text histogram: one bar per proof reason,
        scaled to the campaign's detected total, then the per-workload
        breakdown table."""
        totals = self.reason_totals()
        lines = [
            f"campaign observatory: {self.attacks} attacks, "
            f"{self.detected} detected"
        ]
        peak = max(totals.values(), default=0)
        for reason in REASON_ORDER:
            count = totals.get(reason, 0)
            if count == 0 and reason not in totals:
                continue
            bar = "#" * (
                round(width * count / peak) if peak else 0
            )
            share = 100.0 * count / self.detected if self.detected else 0.0
            lines.append(
                f"  {reason:<14} {count:>6}  {share:5.1f}%  {bar}"
            )
        lines.append("")
        lines.append(
            f"  {'workload':<14} {'attacks':>8} {'detected':>9}  by_reason"
        )
        for name in sorted(self.workloads):
            observation = self.workloads[name]
            breakdown = ", ".join(
                f"{reason}={observation.by_reason[reason]}"
                for reason in REASON_ORDER
                if reason in observation.by_reason
            )
            lines.append(
                f"  {name:<14} {observation.attacks:>8} "
                f"{observation.detected:>9}  {breakdown or '-'}"
            )
        return "\n".join(lines)


def observe_records(records: Iterable[Dict[str, Any]]) -> CampaignObservation:
    """Aggregate an iterable of outcome records."""
    observation = CampaignObservation()
    for record in records:
        observation.record(record)
    return observation


def observe_outcomes(
    results: Sequence[Any],
) -> CampaignObservation:
    """Aggregate live :class:`~repro.attacks.campaign.WorkloadResult`
    objects (the in-process path; ``repro obs`` uses the JSONL one)."""
    return observe_records(
        outcome.to_record(result.workload)
        for result in results
        for outcome in result.attacks
    )


def load_outcome_log(path: str) -> List[Dict[str, Any]]:
    """Parse a campaign ``--trace-out`` JSONL file into records.

    Skips blank lines; raises :class:`ObservatoryError` on lines that
    are not JSON objects (truncated writes, wrong file).
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ObservatoryError(
                    f"{path}:{number}: not JSON ({error})"
                ) from None
            if not isinstance(record, dict):
                raise ObservatoryError(
                    f"{path}:{number}: expected a JSON object, got "
                    f"{type(record).__name__}"
                )
            records.append(record)
    return records


def observe_log(path: str) -> CampaignObservation:
    """The ``repro obs`` entry point: aggregate one outcome log file."""
    return observe_records(load_outcome_log(path))
