"""The explanation engine: join alarms with recorder + provenance.

For each alarm the join is mechanical, which is the point — every step
is data the system already committed to:

1. the alarm names the violated BSV slot and its activation
   (``Alarm.slot`` / ``Alarm.frame_id``);
2. the flight recorder is scanned backwards for the latest committed
   branch in that activation whose BAT actions wrote that slot — the
   *setting event*;
3. the setter's ``(pc, direction)`` plus the alarm's ``pc`` key
   straight into the compile-time provenance table (the sidecar) —
   the proved correlation that was violated.

If the setter aged out of the bounded ring the report degrades
honestly: it lists every compile-time correlation that could have
armed the slot with the contradicted expectation instead of guessing.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..correlation.actions import BranchStatus
from ..correlation.tables import ProgramTables
from ..runtime.events import Event
from ..runtime.flight_recorder import DEFAULT_DEPTH, FlightRecorder
from ..runtime.ipds import IPDS, Alarm
from .report import AlarmReport

#: How many trailing flight-recorder entries a report quotes.
DEFAULT_HISTORY = 8

#: The action value that installs a given expectation.
_SETTING_ACTION = {
    BranchStatus.TAKEN: "SET_T",
    BranchStatus.NOT_TAKEN: "SET_NT",
}


def explain_alarms(
    tables: ProgramTables,
    recorder: Optional[FlightRecorder],
    alarms: Iterable[Alarm],
    history_limit: int = DEFAULT_HISTORY,
) -> List[AlarmReport]:
    """Build one :class:`AlarmReport` per alarm."""
    reports: List[AlarmReport] = []
    for alarm in alarms:
        reports.append(
            _explain_one(tables, recorder, alarm, history_limit)
        )
    return reports


def _explain_one(
    tables: ProgramTables,
    recorder: Optional[FlightRecorder],
    alarm: Alarm,
    history_limit: int,
) -> AlarmReport:
    fn_tables = tables.tables_for(alarm.function_name)
    slot = alarm.slot
    if slot < 0:  # legacy alarm without the join key: recover from pc
        recovered = fn_tables.slot_of(alarm.pc)
        slot = -1 if recovered is None else recovered
    notes: List[str] = []
    history: tuple = ()
    setter = transition = None
    if recorder is None:
        notes.append("no flight recorder attached — run with --forensics")
    else:
        found = recorder.find_setter(alarm.frame_id, slot, alarm.event_index)
        if found is not None:
            setter, transition = found
        history = tuple(
            entry.describe()
            for entry in recorder.history(alarm.event_index, history_limit)
        )

    provenance = None
    candidates: tuple = ()
    if setter is not None:
        provenance = fn_tables.provenance_for(
            setter.pc, setter.taken, alarm.pc
        )
        if provenance is None:
            notes.append(
                "setting event found but no provenance record matches its "
                "BAT entry — image may predate the provenance sidecar"
            )
    else:
        wanted = _SETTING_ACTION.get(alarm.expected)
        candidates = tuple(
            p
            for p in fn_tables.provenance_targeting(alarm.pc)
            if p.action == wanted
        )
        if recorder is not None:
            if recorder.evictions:
                notes.append(
                    f"setting event not in the flight recorder (depth "
                    f"{recorder.depth}, {recorder.evictions} evicted) — "
                    f"raise --flight-recorder-depth"
                )
            else:
                notes.append("no setting event recorded before the alarm")
    return AlarmReport(
        alarm=alarm,
        function=alarm.function_name,
        setter=setter,
        transition=transition,
        provenance=provenance,
        candidates=candidates,
        history=history,
        notes=tuple(notes),
    )


def explain_ipds(
    ipds: IPDS, history_limit: int = DEFAULT_HISTORY
) -> List[AlarmReport]:
    """Explain every alarm a (recorder-carrying) IPDS instance raised."""
    return explain_alarms(
        ipds.tables, ipds.flight_recorder, ipds.alarms, history_limit
    )


def explain_trace(
    tables: ProgramTables,
    events: Iterable[Event],
    depth: int = DEFAULT_DEPTH,
    allow_unprotected: bool = False,
    history_limit: int = DEFAULT_HISTORY,
) -> "tuple[IPDS, List[AlarmReport]]":
    """Replay a recorded event trace with a flight recorder attached and
    explain its alarms offline — the engine behind ``repro explain``."""
    recorder = FlightRecorder(depth)
    ipds = IPDS(
        tables,
        allow_unprotected=allow_unprotected,
        flight_recorder=recorder,
    )
    ipds.run(events)
    return ipds, explain_ipds(ipds, history_limit)
