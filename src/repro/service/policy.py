"""Pluggable per-session alarm policies.

What should a deployed detector *do* when the IPDS raises an alarm?
The paper leaves this open; a service cannot.  An :class:`AlarmPolicy`
is invoked synchronously with every alarm the session's IPDS raises
(through the ``alarm_sink`` hook, i.e. at the exact committed branch
that contradicted the BSV) and once more when the session ends:

* :class:`LogPolicy` — record and keep going (the campaign default:
  observing every alarm is what Figure 7 measures);
* :class:`KillSessionPolicy` — terminate *this session's* execution at
  the first alarm, the halt-on-alarm deployment.  Only the alarmed
  session dies; the daemon and its other sessions are untouched;
* :class:`QuarantinePolicy` — write the session's committed control-flow
  trace plus an alarm manifest to a quarantine directory.  The trace is
  the exact jsonl format ``repro replay`` consumes, so a quarantined
  incident replays offline with identical alarms.

Policies are configured per session (the wire protocol carries a policy
spec; :func:`make_policy` builds the object), and must never change
*what* is detected — they act strictly after each alarm is recorded.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.ipds import Alarm
    from .engine import DetectionSession


@dataclass(frozen=True)
class PolicyAction:
    """One action a policy took (streamed to the client, kept on the
    session result)."""

    policy: str
    action: str
    detail: str = ""
    path: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "policy": self.policy,
            "action": self.action,
            "detail": self.detail,
        }
        if self.path is not None:
            record["path"] = self.path
        return record


class AlarmPolicy:
    """Base policy: what to do when a session's IPDS raises an alarm.

    ``on_alarm`` runs synchronously inside the monitored execution
    (raising aborts it — that is how kill-session works); ``finish``
    runs after the session's execution ended, alarmed or not.  Both
    return an optional :class:`PolicyAction` for the audit stream.
    ``wants_trace`` asks the session to attach a trace recorder so the
    policy can persist a replayable trace at finish time.
    """

    name = "log"
    wants_trace = False

    def on_alarm(
        self, session: "DetectionSession", alarm: "Alarm"
    ) -> Optional[PolicyAction]:
        return None

    def finish(
        self, session: "DetectionSession"
    ) -> Optional[PolicyAction]:
        return None


class LogPolicy(AlarmPolicy):
    """Record every alarm and let the session run to completion."""

    name = "log"

    def on_alarm(
        self, session: "DetectionSession", alarm: "Alarm"
    ) -> Optional[PolicyAction]:
        return PolicyAction(
            policy=self.name, action="log", detail=str(alarm)
        )


class KillSessionPolicy(AlarmPolicy):
    """Terminate the alarmed session's execution at the first alarm."""

    name = "kill-session"

    def on_alarm(
        self, session: "DetectionSession", alarm: "Alarm"
    ) -> Optional[PolicyAction]:
        from .engine import SessionKilled

        session.record_policy_action(
            PolicyAction(
                policy=self.name,
                action="kill-session",
                detail=f"killed on first alarm: {alarm}",
            )
        )
        raise SessionKilled(f"policy {self.name}: {alarm}")


class QuarantinePolicy(AlarmPolicy):
    """Persist a replayable trace + alarm manifest for alarmed sessions.

    Writes ``<dir>/<session id>/trace.jsonl`` (the committed
    control-flow events of the monitored run, in the ``repro replay``
    format) and ``<dir>/<session id>/manifest.json`` (program identity,
    alarms, spec) — enough to reproduce the incident offline on another
    machine.  Clean sessions write nothing.
    """

    name = "quarantine"
    wants_trace = True

    def __init__(self, directory: str) -> None:
        if not directory:
            raise ValueError("quarantine policy needs a directory")
        self.directory = directory

    def on_alarm(
        self, session: "DetectionSession", alarm: "Alarm"
    ) -> Optional[PolicyAction]:
        return PolicyAction(
            policy=self.name, action="log", detail=str(alarm)
        )

    def finish(
        self, session: "DetectionSession"
    ) -> Optional[PolicyAction]:
        if not session.alarms:
            return None
        from ..observability import export_trace

        target = os.path.join(self.directory, session.session_id)
        os.makedirs(target, exist_ok=True)
        trace_path = os.path.join(target, "trace.jsonl")
        events = session.trace_events
        count = export_trace(events, trace_path)
        manifest_path = os.path.join(target, "manifest.json")
        manifest = {
            "session": session.session_id,
            "program": session.program_name,
            "workload": session.spec.workload,
            "opt": session.spec.opt_level,
            "alarms": list(session.alarms),
            "events": count,
            "state": session.state.value,
        }
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return PolicyAction(
            policy=self.name,
            action="quarantine",
            detail=f"{count} events quarantined",
            path=trace_path,
        )


def make_policy(spec: Optional[Any], quarantine_dir: Optional[str] = None) -> AlarmPolicy:
    """Build a policy from a wire-protocol spec.

    Accepts ``None`` (log), a bare kind string, or a dict like
    ``{"kind": "quarantine", "dir": "..."}``.  ``quarantine_dir`` is
    the daemon-level default directory when the spec names none.
    """
    if spec is None:
        return LogPolicy()
    if isinstance(spec, str):
        spec = {"kind": spec}
    if not isinstance(spec, dict):
        raise ValueError(f"bad policy spec {spec!r}")
    kind = spec.get("kind", "log")
    if kind == "log":
        return LogPolicy()
    if kind == "kill-session":
        return KillSessionPolicy()
    if kind == "quarantine":
        directory = spec.get("dir") or quarantine_dir
        if not directory:
            raise ValueError(
                "quarantine policy needs a 'dir' (or a daemon-level "
                "--quarantine-dir default)"
            )
        return QuarantinePolicy(directory)
    raise ValueError(
        f"unknown policy kind {kind!r} (known: log, kill-session, quarantine)"
    )
