"""The ``repro serve`` daemon: one process, many detection sessions.

An asyncio server (unix socket by default, TCP optional) multiplexes
any number of concurrent detection sessions over one process.  The
socket protocol is line-delimited JSON (:mod:`repro.service.protocol`);
sessions themselves are plain synchronous
:class:`~repro.service.engine.DetectionSession` objects executed on a
bounded thread pool, so the event loop only ever routes messages.

Threading model:

* the loop thread owns the server, the per-connection writer queues,
  the session registry bookkeeping and the daemon metrics;
* each session runs entirely on one worker thread; its streamed events
  (state / progress / alarm / policy / result) hop back to the loop via
  ``call_soon_threadsafe`` onto the submitting connection's queue;
* compiled tables are shared across sessions (and threads) through the
  content-addressed single-flight cache in :mod:`repro.parallel.cache`
  — N sessions on the same workload compile once, and the ``metrics``
  op reports the hit rate observed since daemon start.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Dict, Optional

from ..observability.metrics import MetricsRegistry
from ..observability.prometheus import render_prometheus
from ..observability.tracing import TraceContext, Tracer, write_spans
from ..parallel.cache import compile_cache_stats
from .engine import DetectionSession
from .policy import AlarmPolicy, make_policy
from .protocol import PROTOCOL_VERSION, ProtocolError, decode, encode, spec_from_payload
from .registry import SessionRegistry

#: Default cap on concurrently executing sessions (threads).
DEFAULT_MAX_WORKERS = 8


class DetectionDaemon:
    """The long-lived detection service.

    Listens on ``socket_path`` (unix domain socket) or ``host:port``
    (TCP, when ``socket_path`` is None).  :meth:`run` blocks serving
    until a client sends ``shutdown``; tests run it on a background
    thread and synchronize on :meth:`wait_ready`.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = DEFAULT_MAX_WORKERS,
        quarantine_dir: Optional[str] = None,
        default_policy: Optional[str] = None,
        trace_out: Optional[str] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.max_workers = max_workers
        self.quarantine_dir = quarantine_dir
        self.default_policy = default_policy
        self.trace_out = trace_out
        #: Daemon-lifetime tracer (None = tracing off).  Sessions record
        #: spans into per-session tracers parented under the daemon root
        #: span; finished session spans are adopted here on the loop
        #: thread and exported to ``trace_out`` at shutdown.
        self.tracer: Optional[Tracer] = (
            Tracer(service="repro-serve") if trace_out else None
        )
        self._trace_root: Optional[TraceContext] = None
        self.registry = SessionRegistry()
        self.metrics = MetricsRegistry()
        #: Optional callback invoked with the bound address once the
        #: server is listening (the CLI prints its startup line here —
        #: with TCP port 0 the real port is only known at bind time).
        self.on_ready: Optional[Any] = None
        self._ready = threading.Event()
        self._started = time.monotonic()
        self._cache_baseline = compile_cache_stats()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._executor = None  # created inside run()

    # -- lifecycle --------------------------------------------------------

    def wait_ready(self, timeout: float = 10.0) -> bool:
        """Block until the server is accepting connections."""
        return self._ready.wait(timeout)

    def run(self) -> int:
        """Serve until shutdown; returns 0 (the CLI exit code)."""
        try:
            asyncio.run(self._serve())
        finally:
            self._ready.set()
        return 0

    async def _serve(self) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix="repro-session",
        )
        self._started = time.monotonic()
        self._cache_baseline = compile_cache_stats()
        if self.socket_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_connection, path=self.socket_path
            )
        else:
            server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
            self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        if self.on_ready is not None:
            self.on_ready(self.socket_path or f"{self.host}:{self.port}")
        try:
            if self.tracer is not None:
                with self.tracer.span(
                    "serve",
                    address=self.socket_path or f"{self.host}:{self.port}",
                    max_workers=self.max_workers,
                ) as root:
                    self._trace_root = root.context
                    async with server:
                        await self._stop.wait()
            else:
                async with server:
                    await self._stop.wait()
            # One scheduling beat for connection handlers to flush
            # their final acks before the loop tears the tasks down.
            await asyncio.sleep(0.05)
        finally:
            self._executor.shutdown(wait=True)
            if self.tracer is not None and self.trace_out:
                write_spans(
                    self.tracer.finished, self.trace_out, service="repro-serve"
                )

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.increment("serve.connections")
        queue: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()
        sender = asyncio.ensure_future(self._drain(queue, writer))
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode(line)
                except ProtocolError as error:
                    queue.put_nowait(
                        encode({"event": "error", "error": str(error)})
                    )
                    continue
                stop = self._dispatch(message, queue)
                if stop:
                    break
        finally:
            # Shutdown races loop teardown: asyncio.run cancels this
            # task while it flushes the last ack, so treat cancellation
            # like a dropped connection rather than letting it surface
            # as an "exception in callback" on stderr.
            queue.put_nowait(None)
            try:
                await sender
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _drain(
        self, queue: "asyncio.Queue[Optional[bytes]]", writer: asyncio.StreamWriter
    ) -> None:
        while True:
            item = await queue.get()
            if item is None:
                return
            writer.write(item)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                return

    def _dispatch(
        self, message: Dict[str, Any], queue: "asyncio.Queue[Optional[bytes]]"
    ) -> bool:
        """Handle one request; True means close this connection (and,
        for shutdown, stop the daemon)."""
        op = message["op"]
        req_id = message.get("id")

        def reply(event: str, **payload: Any) -> None:
            body: Dict[str, Any] = {"event": event}
            if req_id is not None:
                body["id"] = req_id
            body.update(payload)
            queue.put_nowait(encode(body))

        try:
            if op == "hello":
                reply(
                    "hello",
                    protocol=PROTOCOL_VERSION,
                    max_workers=self.max_workers,
                )
            elif op == "submit":
                self._handle_submit(message, queue, reply)
            elif op == "sessions":
                reply("sessions", sessions=self._sessions_payload())
            elif op == "metrics":
                # "format" is a protocol-v1 additive field: absent or
                # "json" keeps the historical payload; "prometheus"
                # adds the text-exposition rendering alongside it.
                fmt = message.get("format", "json")
                if fmt == "prometheus":
                    reply(
                        "metrics",
                        metrics=self.metrics_payload(),
                        prometheus=render_prometheus(self.metrics),
                    )
                elif fmt == "json":
                    reply("metrics", metrics=self.metrics_payload())
                else:
                    raise ProtocolError(
                        f"unknown metrics format {fmt!r} "
                        "(expected 'json' or 'prometheus')"
                    )
            elif op == "kill":
                session_id = message.get("session", "")
                reply(
                    "killed",
                    session=session_id,
                    ok=self.registry.kill(session_id),
                )
            elif op == "reap":
                session_id = message.get("session", "")
                reply(
                    "reaped",
                    session=session_id,
                    ok=self.registry.reap(session_id),
                )
            elif op == "shutdown":
                reply("shutdown")
                assert self._stop is not None
                self._stop.set()
                return True
            else:
                raise ProtocolError(f"unknown op {op!r}")
        except (ProtocolError, ValueError) as error:
            self.metrics.increment("serve.errors")
            reply("error", error=str(error))
        return False

    # -- sessions ---------------------------------------------------------

    def _handle_submit(
        self,
        message: Dict[str, Any],
        queue: "asyncio.Queue[Optional[bytes]]",
        reply,
    ) -> None:
        spec = spec_from_payload(message.get("spec"))
        policy_spec = message.get("policy", self.default_policy)
        policy: AlarmPolicy = make_policy(policy_spec, self.quarantine_dir)
        session_id = self.registry.allocate_id()
        req_id = message.get("id")
        loop = self._loop
        assert loop is not None

        def emit(kind: str, payload: Dict[str, Any]) -> None:
            body: Dict[str, Any] = {"event": kind, "session": session_id}
            if req_id is not None:
                body["id"] = req_id
            body.update(payload)
            data = encode(body)
            try:
                loop.call_soon_threadsafe(queue.put_nowait, data)
            except RuntimeError:
                pass  # loop already closed (daemon shutting down)

        # Distributed-trace propagation (protocol v1 additive field): a
        # client may hand its own trace context in the submit message;
        # otherwise traced sessions hang under the daemon root span.
        session_tracer = None
        trace_parent = None
        client_trace = message.get("trace")
        if isinstance(client_trace, dict) and client_trace.get("trace_id"):
            trace_parent = TraceContext.from_dict(client_trace)
            session_tracer = Tracer(context=trace_parent)
        elif self.tracer is not None:
            trace_parent = self._trace_root
            session_tracer = Tracer(context=trace_parent)
        session = DetectionSession(
            spec,
            session_id=session_id,
            policy=policy,
            emit=emit,
            tracer=session_tracer,
            trace_parent=trace_parent,
        )
        self.registry.add(session)
        self.metrics.increment("serve.submitted")
        reply("accepted", session=session_id, mode=spec.mode)
        submitted = time.monotonic()

        def run_session():
            # Runs on the worker thread; the queue wait lands in the
            # session-local registry and is merged on the loop thread at
            # completion, so the daemon registry is never touched here.
            session.metrics.observe_histogram(
                "serve.queue_wait_seconds",
                max(time.monotonic() - submitted, 0.0),
            )
            return session.run()

        future = loop.run_in_executor(self._executor, run_session)
        future.add_done_callback(
            lambda _future: self._on_session_done(session)
        )

    def _on_session_done(self, session: DetectionSession) -> None:
        """Fold a finished session's telemetry into the daemon registry
        (runs on the loop thread)."""
        self.metrics.merge_snapshot(session.metrics.snapshot())
        self.metrics.increment(f"serve.sessions.{session.state.value}")
        if session.alarms:
            self.metrics.increment(
                f"serve.alarms.{session.program_name}", len(session.alarms)
            )
        if self.tracer is not None and session.tracer is not None:
            self.tracer.adopt(session.tracer.span_dicts())

    def _sessions_payload(self) -> list:
        return [
            {
                "session": session.session_id,
                "mode": session.spec.mode,
                "program": session.program_name,
                "state": session.state.value,
                "alarms": len(session.alarms),
                "policy": session.policy.name,
            }
            for session in self.registry.list()
        ]

    # -- observability ----------------------------------------------------

    def metrics_payload(self) -> Dict[str, Any]:
        """The ``metrics`` op body: daemon counters, session states,
        shared-cache effectiveness, and aggregate throughput.

        ``uptime_monotonic_seconds`` is the raw monotonic-clock reading
        (unrounded), so clients can rate-compute without re-deriving the
        clock; ``steps_per_second`` guards the zero-uptime window
        explicitly instead of dividing by a clamped epsilon (which
        reported absurd throughput on a freshly started daemon).
        """
        uptime = max(time.monotonic() - self._started, 0.0)
        active = self.registry.active()
        self.metrics.set_gauge("serve.sessions_active", active)
        self.metrics.set_gauge(
            "serve.uptime_seconds", round(uptime, 3)
        )
        steps = self.metrics.value("interp.steps")
        snapshot = self.metrics.snapshot()
        cache = compile_cache_stats().since(self._cache_baseline)
        payload = {
            "uptime_seconds": round(uptime, 3),
            "uptime_monotonic_seconds": uptime,
            "sessions": self.registry.counts(),
            "sessions_active": active,
            "steps_per_second": (
                round(steps / uptime, 1) if uptime > 0 else 0.0
            ),
            "compile_cache": cache.to_dict(),
            "counters": snapshot["counters"],
            "gauges": snapshot.get("gauges", {}),
        }
        if "histograms" in snapshot:
            payload["histograms"] = snapshot["histograms"]
        return payload
