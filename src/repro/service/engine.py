"""The session-scoped detection engine.

One :class:`DetectionSession` owns everything a single monitored
execution needs — compiled program (through the shared content-addressed
cache), IPDS instance, observer bus attachments (trace recorder,
progress hook), flight recorder, forensics, metrics, and the alarm
policy.  The CLI verbs (``run`` / ``attack`` / ``replay``) and the
``repro serve`` daemon both drive sessions through this one code path,
so a detection served over the socket is byte-identical to the same
detection run from the command line.

Three modes, mirroring the CLI verbs:

* ``run``    — one monitored execution of a program on given inputs;
* ``attack`` — either an *explicit* tampering (``spec.tamper`` set: the
  ``repro attack`` shape — unmonitored clean run, monitored tampered
  run, control-flow diff) or an *indexed* campaign attack
  (``spec.attack_index`` set: the full §6 recipe via
  :func:`repro.attacks.campaign.run_attack_detailed`, byte-identical to
  the serial campaign for the same seed prefix and index);
* ``replay`` — offline re-check of a recorded event trace.

The policy hook rides the IPDS ``alarm_sink``: it fires synchronously
at the committed branch that contradicted the BSV, *after* the alarm is
recorded, so policies can stream/kill/quarantine without ever changing
what is detected.
"""

from __future__ import annotations

import enum
import io
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..interp.interpreter import RunResult, TamperSpec
from ..lang.errors import ReproError
from ..observability.metrics import MetricsRegistry
from ..observability.tracing import (
    SpanRecord,
    TraceContext,
    Tracer,
    maybe_span,
)
from ..pipeline import (
    ProtectedProgram,
    compile_program_cached,
    observed_run,
    resolve_target,
    unmonitored_run,
)
from ..runtime.flight_recorder import DEFAULT_DEPTH, FlightRecorder
from ..runtime.ipds import IPDS, Alarm
from ..runtime.observer import ProgressObserver
from ..runtime.replay import TraceRecorder, load_trace
from .policy import AlarmPolicy, LogPolicy, PolicyAction

#: Step budget of a run/attack session (the interpreter default) and of
#: an indexed campaign attack (the campaign default) — kept distinct so
#: session-driven executions match their CLI counterparts exactly.
RUN_STEP_LIMIT = 2_000_000
ATTACK_STEP_LIMIT = 500_000

#: Control-flow events between progress emissions / kill-flag checks.
PROGRESS_EVERY = 10_000


class SessionState(enum.Enum):
    """Lifecycle of one detection session."""

    CREATED = "created"
    RUNNING = "running"
    COMPLETED = "completed"  # ran to the end, no alarms
    ALARMED = "alarmed"      # ran to the end, IPDS raised >= 1 alarm
    KILLED = "killed"        # terminated early (kill policy / operator)
    FAILED = "failed"        # session error (bad program, step limit, ...)
    REAPED = "reaped"        # terminal + removed from the registry

    @property
    def terminal(self) -> bool:
        return self in (
            SessionState.COMPLETED,
            SessionState.ALARMED,
            SessionState.KILLED,
            SessionState.FAILED,
        )


class SessionKilled(ReproError):
    """Raised inside a monitored execution to terminate this session.

    Thrown by :class:`~repro.service.policy.KillSessionPolicy` from the
    alarm sink, or by the progress hook when an operator requested a
    kill.  The interpreter does not catch observer exceptions, so the
    execution aborts at the current committed event; only this session
    is affected.
    """


@dataclass(frozen=True)
class SessionSpec:
    """Everything needed to run one detection session.

    ``workload`` is a registered workload name or (when ``read_files``)
    a path to a mini-C file; ``source`` carries inline program text
    instead (daemon submissions).  Exactly the same resolution rule as
    the CLI verbs (:func:`repro.pipeline.resolve_target`).
    """

    mode: str = "run"  # run | attack | replay
    workload: Optional[str] = None
    source: Optional[str] = None
    source_name: Optional[str] = None
    entry: str = "main"
    inputs: Tuple[int, ...] = ()
    opt_level: int = 0
    step_limit: Optional[int] = None
    allow_unprotected: bool = False
    forensics: bool = False
    flight_recorder_depth: int = DEFAULT_DEPTH
    record_trace: bool = False
    read_files: bool = True
    # -- explicit tampering (the ``repro attack`` shape) --
    tamper: Optional[TamperSpec] = None
    # -- indexed campaign attack (the §6 recipe) --
    attack_index: Optional[int] = None
    seed_prefix: str = ""
    attack_model: str = "input"
    timing_mode: Optional[str] = None
    # -- replay --
    trace_text: Optional[str] = None

    def validate(self) -> None:
        if self.mode not in ("run", "attack", "replay"):
            raise ValueError(f"unknown session mode {self.mode!r}")
        if self.source is None and not self.workload:
            raise ValueError("session needs a workload name or source text")
        if self.mode == "attack":
            if (self.tamper is None) == (self.attack_index is None):
                raise ValueError(
                    "attack session needs exactly one of an explicit "
                    "tamper spec or an attack index"
                )
            if self.attack_index is not None and self.source is not None:
                raise ValueError(
                    "indexed attacks need a registered workload "
                    "(its input generator), not inline source"
                )
        if self.mode == "replay" and self.trace_text is None:
            raise ValueError("replay session needs trace text")

    @property
    def effective_step_limit(self) -> int:
        if self.step_limit is not None:
            return self.step_limit
        if self.mode == "attack" and self.attack_index is not None:
            return ATTACK_STEP_LIMIT
        return RUN_STEP_LIMIT

    def resolve_program_source(self) -> Tuple[str, str]:
        """``(source text, name)`` for compilation."""
        if self.source is not None:
            return self.source, self.source_name or "<session>"
        assert self.workload is not None
        return resolve_target(self.workload, read_files=self.read_files)


@dataclass
class SessionResult:
    """The JSON-ready terminal record of one session."""

    session_id: str
    mode: str
    state: str
    detected: bool
    alarms: List[str] = field(default_factory=list)
    policy_actions: List[Dict[str, Any]] = field(default_factory=list)
    steps: int = 0
    status: Optional[str] = None
    outputs: List[int] = field(default_factory=list)
    tamper_fired: Optional[bool] = None
    control_flow_changed: Optional[bool] = None
    outcome: Optional[Dict[str, Any]] = None
    forensics: Optional[str] = None
    trace_event_count: int = 0
    error: Optional[str] = None
    #: Distributed-tracing linkage (trace_id / span_id of the session's
    #: root span) — present only when the session ran with a tracer
    #: attached, so untraced payloads keep their protocol-v1 shape.
    trace: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "session": self.session_id,
            "mode": self.mode,
            "state": self.state,
            "detected": self.detected,
            "alarms": list(self.alarms),
            "policy_actions": list(self.policy_actions),
            "steps": self.steps,
            "trace_event_count": self.trace_event_count,
        }
        if self.status is not None:
            record["status"] = self.status
            record["outputs"] = list(self.outputs)
        if self.tamper_fired is not None:
            record["tamper_fired"] = self.tamper_fired
        if self.control_flow_changed is not None:
            record["control_flow_changed"] = self.control_flow_changed
        if self.outcome is not None:
            record["outcome"] = self.outcome
        if self.forensics is not None:
            record["forensics"] = self.forensics
        if self.error is not None:
            record["error"] = self.error
        if self.trace is not None:
            record["trace"] = dict(self.trace)
        return record


#: Event callback: ``emit(kind, payload)``.  The daemon routes these to
#: the submitting connection; the CLI runs with the no-op default.
EmitFn = Callable[[str, Dict[str, Any]], None]


def record_ipds_metrics(metrics: MetricsRegistry, ipds: IPDS) -> None:
    """The standard per-run IPDS counter block (shared with the CLI)."""
    metrics.increment("ipds.events", ipds.stats.events)
    metrics.increment("ipds.checks", ipds.stats.checks)
    metrics.increment("ipds.alarms", len(ipds.alarms))
    if ipds.stats.unprotected_calls:
        metrics.increment(
            "ipds.unprotected_calls", ipds.stats.unprotected_calls
        )
    if ipds.stats.unprotected_branches:
        metrics.increment(
            "ipds.unprotected_branches", ipds.stats.unprotected_branches
        )


class DetectionSession:
    """One detection session: program + IPDS + policy + observers.

    :meth:`execute` runs the session and lets exceptions propagate (the
    CLI path: argparse-level error handling applies); :meth:`run`
    catches them into the FAILED state and always returns a
    :class:`SessionResult` (the daemon path: one bad session must never
    take the server down).
    """

    def __init__(
        self,
        spec: SessionSpec,
        session_id: str = "s0",
        policy: Optional[AlarmPolicy] = None,
        emit: Optional[EmitFn] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        trace_parent: Optional[TraceContext] = None,
    ) -> None:
        spec.validate()
        self.spec = spec
        self.session_id = session_id
        self.policy = policy if policy is not None else LogPolicy()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.trace_parent = trace_parent
        self.session_span: Optional[SpanRecord] = None
        self._emit_fn = emit
        self.state = SessionState.CREATED
        self.alarms: List[str] = []
        self.policy_actions: List[PolicyAction] = []
        self.trace_events: List[object] = []
        self.result: Optional[SessionResult] = None
        self.error: Optional[str] = None
        self.events_seen = 0
        self._kill_requested = False
        # Live artifacts (populated by execute; the CLI renders these).
        self.program: Optional[ProtectedProgram] = None
        self.program_name: str = spec.source_name or spec.workload or "<session>"
        self.ipds: Optional[IPDS] = None
        self.run_result: Optional[RunResult] = None
        self.clean_result: Optional[RunResult] = None
        self.reports: List[object] = []
        self.forensics_json: Optional[str] = None
        self.outcome_record: Optional[Dict[str, Any]] = None

    # -- plumbing ---------------------------------------------------------

    def emit(self, kind: str, payload: Dict[str, Any]) -> None:
        if self._emit_fn is not None:
            self._emit_fn(kind, payload)

    def request_kill(self) -> None:
        """Ask the session to stop at its next progress checkpoint."""
        self._kill_requested = True

    def record_policy_action(self, action: PolicyAction) -> None:
        self.policy_actions.append(action)
        self.metrics.increment("session.policy_actions")
        self.emit("policy", action.to_dict())

    def _set_state(self, state: SessionState) -> None:
        self.state = state
        self.emit("state", {"state": state.value})

    def _on_alarm(self, alarm: Alarm) -> None:
        rendered = str(alarm)
        self.alarms.append(rendered)
        self.metrics.increment("session.alarms")
        self.emit("alarm", {"alarm": rendered, "index": len(self.alarms)})
        action = self.policy.on_alarm(self, alarm)
        if action is not None:
            self.record_policy_action(action)

    def _on_progress(self, events_seen: int) -> None:
        self.events_seen = events_seen
        if self._kill_requested:
            raise SessionKilled("killed by operator request")
        self.emit("progress", {"events": events_seen})

    def _session_observers(self) -> Tuple[List[object], Optional[TraceRecorder]]:
        """The passive bus riders every mode attaches: optional trace
        recorder (requested or required by the policy) + progress hook."""
        observers: List[object] = []
        recorder: Optional[TraceRecorder] = None
        if self.spec.record_trace or self.policy.wants_trace:
            recorder = TraceRecorder()
            observers.append(recorder)
        observers.append(ProgressObserver(self._on_progress, PROGRESS_EVERY))
        return observers, recorder

    def _new_flight_recorder(self) -> Optional[FlightRecorder]:
        if not self.spec.forensics:
            return None
        return FlightRecorder(self.spec.flight_recorder_depth)

    def _compile(self) -> ProtectedProgram:
        source, name = self.spec.resolve_program_source()
        self.program_name = name
        started = time.perf_counter()
        with maybe_span(self.tracer, "session.compile", program=name):
            with self.metrics.span("compile"):
                program = compile_program_cached(
                    source, name, self.spec.opt_level
                )
        self.metrics.observe_histogram(
            "session.compile_seconds", time.perf_counter() - started
        )
        self.program = program
        return program

    def _explain(self) -> None:
        """Typed forensics for a recorder-carrying, alarmed IPDS."""
        ipds = self.ipds
        if ipds is None or ipds.flight_recorder is None or not ipds.detected:
            return
        from ..forensics import explain_ipds, reports_to_json

        self.reports = explain_ipds(ipds)
        self.forensics_json = reports_to_json(self.reports)

    # -- the three modes --------------------------------------------------

    def _execute_run(self) -> None:
        program = self._compile()
        ipds = program.new_ipds(
            allow_unprotected=self.spec.allow_unprotected,
            flight_recorder=self._new_flight_recorder(),
            alarm_sink=self._on_alarm,
        )
        self.ipds = ipds
        extra, recorder = self._session_observers()
        with maybe_span(self.tracer, "session.execute"), \
                self.metrics.span("execute"):
            result = observed_run(
                program,
                observers=[ipds, *extra],
                inputs=self.spec.inputs,
                entry=self.spec.entry,
                step_limit=self.spec.effective_step_limit,
            )
        self.run_result = result
        if recorder is not None:
            self.trace_events = recorder.events
        self.metrics.increment("interp.steps", result.steps)
        record_ipds_metrics(self.metrics, ipds)
        self._explain()

    def _execute_attack_explicit(self) -> None:
        program = self._compile()
        with self.metrics.span("clean"):
            clean = unmonitored_run(
                program,
                inputs=self.spec.inputs,
                entry=self.spec.entry,
                step_limit=self.spec.effective_step_limit,
            )
        self.clean_result = clean
        ipds = program.new_ipds(
            flight_recorder=self._new_flight_recorder(),
            alarm_sink=self._on_alarm,
        )
        self.ipds = ipds
        extra, recorder = self._session_observers()
        with maybe_span(self.tracer, "session.attack"), \
                self.metrics.span("attack"):
            attacked = observed_run(
                program,
                observers=[ipds, *extra],
                inputs=self.spec.inputs,
                entry=self.spec.entry,
                tamper=self.spec.tamper,
                step_limit=self.spec.effective_step_limit,
            )
        self.run_result = attacked
        if recorder is not None:
            self.trace_events = recorder.events
        changed = attacked.branch_trace != clean.branch_trace
        self.metrics.increment("interp.steps", clean.steps + attacked.steps)
        self.metrics.increment("attack.tamper_fired", int(attacked.tamper_fired))
        self.metrics.increment("attack.control_flow_changed", int(changed))
        self.metrics.increment("attack.detected", int(ipds.detected))
        record_ipds_metrics(self.metrics, ipds)
        self._explain()

    def _execute_attack_indexed(self) -> None:
        from ..attacks.campaign import run_attack_detailed
        from ..workloads.registry import get_workload

        workload = get_workload(self.spec.workload)
        program = self._compile()
        extra, recorder = self._session_observers()
        with maybe_span(
            self.tracer,
            "session.attack",
            workload=workload.name,
            attack_index=self.spec.attack_index,
        ), self.metrics.span("attack"):
            execution = run_attack_detailed(
                program,
                workload,
                self.spec.attack_index,
                seed_prefix=self.spec.seed_prefix,
                step_limit=self.spec.effective_step_limit,
                attack_model=self.spec.attack_model,
                metrics=self.metrics,
                forensics=self.spec.forensics,
                flight_recorder_depth=self.spec.flight_recorder_depth,
                timing_mode=self.spec.timing_mode,
                extra_observers=extra,
                alarm_sink=self._on_alarm,
            )
        self.ipds = execution.ipds
        self.run_result = execution.attacked
        self.clean_result = execution.clean
        self.reports = list(execution.reports)
        if recorder is not None:
            self.trace_events = recorder.events
        self.outcome_record = execution.outcome.to_record(workload.name)
        if self.reports:
            from ..forensics import reports_to_json

            self.forensics_json = reports_to_json(self.reports)

    def _execute_replay(self) -> None:
        program = self._compile()
        ipds = program.new_ipds(
            allow_unprotected=self.spec.allow_unprotected,
            flight_recorder=self._new_flight_recorder(),
            alarm_sink=self._on_alarm,
        )
        self.ipds = ipds
        events = list(load_trace(io.StringIO(self.spec.trace_text)))
        self.trace_events = events
        with self.metrics.span("replay"):
            ipds.run(events)
        record_ipds_metrics(self.metrics, ipds)
        self._explain()

    # -- driving ----------------------------------------------------------

    def execute(self) -> SessionResult:
        """Run to a terminal state; exceptions (other than a session
        kill) propagate to the caller."""
        self._set_state(SessionState.RUNNING)
        self.metrics.increment("session.started")
        killed = False
        started = time.perf_counter()
        try:
            with maybe_span(
                self.tracer,
                "session",
                parent=self.trace_parent,
                session=self.session_id,
                mode=self.spec.mode,
                program=self.program_name,
            ) as span:
                self.session_span = span
                if self.spec.mode == "run":
                    self._execute_run()
                elif self.spec.mode == "replay":
                    self._execute_replay()
                elif self.spec.tamper is not None:
                    self._execute_attack_explicit()
                else:
                    self._execute_attack_indexed()
        except SessionKilled as kill:
            killed = True
            self.error = str(kill)
        wall = time.perf_counter() - started
        self.metrics.observe_histogram("session.wall_seconds", wall)
        if self.run_result is not None and wall > 0:
            self.metrics.observe_histogram(
                "session.steps_per_sec", self.run_result.steps / wall
            )
        if killed:
            self._set_state(SessionState.KILLED)
        elif self.alarms:
            self._set_state(SessionState.ALARMED)
        else:
            self._set_state(SessionState.COMPLETED)
        self._finish_policy()
        self.result = self._build_result()
        self.emit("result", {"result": self.result.to_dict()})
        return self.result

    def run(self) -> SessionResult:
        """The daemon entry point: never raises."""
        try:
            return self.execute()
        except Exception as error:  # noqa: BLE001 - daemon isolation boundary
            self.error = f"{type(error).__name__}: {error}"
            self.metrics.increment("session.failed")
            self._set_state(SessionState.FAILED)
            self._finish_policy()
            self.result = self._build_result()
            self.emit("result", self.result.to_dict())
            return self.result

    def _finish_policy(self) -> None:
        try:
            action = self.policy.finish(self)
        except Exception as error:  # noqa: BLE001 - policy must not kill daemon
            self.emit(
                "error",
                {"error": f"policy finish failed: {error}"},
            )
            return
        if action is not None:
            self.record_policy_action(action)

    @property
    def detected(self) -> bool:
        return bool(self.alarms)

    def _build_result(self) -> SessionResult:
        result = SessionResult(
            session_id=self.session_id,
            mode=self.spec.mode,
            state=self.state.value,
            detected=self.detected,
            alarms=list(self.alarms),
            policy_actions=[a.to_dict() for a in self.policy_actions],
            trace_event_count=len(self.trace_events),
            error=self.error,
        )
        if self.run_result is not None:
            result.steps = self.run_result.steps
            result.status = self.run_result.status.value
            result.outputs = list(self.run_result.outputs)
            if self.spec.mode == "attack":
                result.tamper_fired = self.run_result.tamper_fired
        if (
            self.spec.tamper is not None
            and self.clean_result is not None
            and self.run_result is not None
        ):
            result.control_flow_changed = (
                self.run_result.branch_trace != self.clean_result.branch_trace
            )
        result.outcome = self.outcome_record
        result.forensics = self.forensics_json
        if self.session_span is not None:
            # Finished spans stay mutable until export; stamp the final
            # program name and terminal state onto the session span.
            self.session_span.set_attributes(
                program=self.program_name,
                state=self.state.value,
                detected=self.detected,
            )
            result.trace = {
                "trace_id": self.session_span.trace_id,
                "span_id": self.session_span.span_id,
            }
        return result
