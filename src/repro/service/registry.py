"""The daemon's thread-safe session registry.

Sessions execute on worker threads while the asyncio loop serves the
socket, so every registry operation takes one lock.  Ids are dense
(``s1``, ``s2``, ...) per daemon lifetime; a session stays listed until
a client reaps it (terminal states only), which is what lets clients
poll results for sessions submitted by other connections.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from .engine import DetectionSession, SessionState


class SessionRegistry:
    """Id allocation + lookup + lifecycle accounting for sessions."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sessions: Dict[str, DetectionSession] = {}
        self._next_id = 0
        self._reaped = 0

    def allocate_id(self) -> str:
        with self._lock:
            self._next_id += 1
            return f"s{self._next_id}"

    def add(self, session: DetectionSession) -> None:
        with self._lock:
            self._sessions[session.session_id] = session

    def get(self, session_id: str) -> Optional[DetectionSession]:
        with self._lock:
            return self._sessions.get(session_id)

    def list(self) -> List[DetectionSession]:
        with self._lock:
            return list(self._sessions.values())

    def counts(self) -> Dict[str, int]:
        """Sessions per lifecycle state (reaped = lifetime total)."""
        with self._lock:
            tally: Dict[str, int] = {}
            for session in self._sessions.values():
                key = session.state.value
                tally[key] = tally.get(key, 0) + 1
            if self._reaped:
                tally[SessionState.REAPED.value] = self._reaped
            return tally

    def active(self) -> int:
        with self._lock:
            return sum(
                1
                for session in self._sessions.values()
                if not session.state.terminal
            )

    def kill(self, session_id: str) -> bool:
        """Request an early stop; True if the session exists and was
        still running."""
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None or session.state.terminal:
            return False
        session.request_kill()
        return True

    def reap(self, session_id: str) -> bool:
        """Drop a terminal session from the registry; False when the
        session is unknown or still running."""
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None or not session.state.terminal:
                return False
            del self._sessions[session_id]
            self._reaped += 1
        session.state = SessionState.REAPED
        return True
