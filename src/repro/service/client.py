"""A small blocking client for the ``repro serve`` socket protocol.

For scripts, tests and CI — no asyncio required on the client side.
One connection can keep many sessions in flight; the client buffers
out-of-order daemon messages internally, so you can submit N sessions
and then collect their results in any order::

    with ServeClient(socket_path=path) as client:
        sid = client.submit({"mode": "attack", "workload": "echo_server",
                             "attack_index": 3, "forensics": True})
        result = client.result(sid)
        print(client.metrics()["compile_cache"]["hit_rate"])
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from .protocol import ProtocolError


class ServeClient:
    """Blocking NDJSON client for a running detection daemon.

    Connects to ``socket_path`` (unix) or ``host``/``port`` (TCP),
    retrying until ``connect_timeout`` elapses — so it can race a
    just-spawned daemon.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: float = 120.0,
        connect_timeout: float = 10.0,
    ) -> None:
        if socket_path is None and port is None:
            raise ValueError("need a socket_path or a port")
        self._sock = self._connect(
            socket_path, host, port, connect_timeout
        )
        self._sock.settimeout(timeout)
        self._reader = self._sock.makefile("rb")
        self._backlog: List[Dict[str, Any]] = []
        self._next_id = 0

    @staticmethod
    def _connect(
        socket_path: Optional[str],
        host: str,
        port: Optional[int],
        connect_timeout: float,
    ) -> socket.socket:
        deadline = time.monotonic() + connect_timeout
        while True:
            try:
                if socket_path is not None:
                    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    sock.connect(socket_path)
                else:
                    sock = socket.create_connection((host, port))
                return sock
            except (ConnectionRefusedError, FileNotFoundError, OSError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    # -- context manager --------------------------------------------------

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    # -- wire plumbing ----------------------------------------------------

    def _send(self, message: Dict[str, Any]) -> None:
        self._sock.sendall(
            (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")
        )

    def _read(self) -> Dict[str, Any]:
        line = self._reader.readline()
        if not line:
            raise ProtocolError("daemon closed the connection")
        try:
            message = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"bad daemon line: {error}") from None
        if not isinstance(message, dict):
            raise ProtocolError(f"bad daemon message: {message!r}")
        return message

    def wait_for(
        self, predicate: Callable[[Dict[str, Any]], bool]
    ) -> Dict[str, Any]:
        """The first message (buffered or fresh) matching ``predicate``;
        everything else read along the way stays buffered in order."""
        for position, message in enumerate(self._backlog):
            if predicate(message):
                return self._backlog.pop(position)
        while True:
            message = self._read()
            if predicate(message):
                return message
            self._backlog.append(message)

    def _request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one op and wait for its direct (id-echoed) response."""
        self._next_id += 1
        req_id = f"r{self._next_id}"
        self._send({"op": op, "id": req_id, **fields})
        message = self.wait_for(
            lambda m: m.get("id") == req_id
            and m.get("event") not in ("state", "progress", "alarm", "policy")
        )
        if message.get("event") == "error":
            raise ProtocolError(message.get("error", "daemon error"))
        return message

    # -- the protocol ops -------------------------------------------------

    def hello(self) -> Dict[str, Any]:
        return self._request("hello")

    def submit(
        self,
        spec: Dict[str, Any],
        policy: Optional[Any] = None,
        trace: Optional[Dict[str, str]] = None,
    ) -> str:
        """Submit one session; returns its assigned session id.

        ``trace`` is an optional :class:`TraceContext` dict
        (``trace_id`` / ``span_id``): the daemon parents the session's
        spans under the *client's* trace instead of its own root.
        """
        fields: Dict[str, Any] = {"spec": spec}
        if policy is not None:
            fields["policy"] = policy
        if trace is not None:
            fields["trace"] = trace
        message = self._request("submit", **fields)
        if message.get("event") != "accepted":
            raise ProtocolError(f"unexpected submit response: {message}")
        return message["session"]

    def result(self, session_id: str) -> Dict[str, Any]:
        """Block until ``session_id``'s terminal result event arrives."""
        message = self.wait_for(
            lambda m: m.get("event") == "result"
            and m.get("session") == session_id
        )
        return message["result"] if "result" in message else message

    def results(
        self, session_ids: Sequence[str]
    ) -> Dict[str, Dict[str, Any]]:
        """Results for many in-flight sessions, keyed by session id."""
        return {sid: self.result(sid) for sid in session_ids}

    def events(self, session_id: str) -> List[Dict[str, Any]]:
        """Buffered stream events (state/progress/alarm/policy) seen so
        far for one session; drains them from the backlog."""
        mine = [
            message
            for message in self._backlog
            if message.get("session") == session_id
        ]
        self._backlog = [
            message
            for message in self._backlog
            if message.get("session") != session_id
        ]
        return mine

    def metrics(self) -> Dict[str, Any]:
        return self._request("metrics")["metrics"]

    def metrics_prometheus(self) -> str:
        """The daemon's registry as Prometheus text exposition
        (``metrics`` op with ``format: "prometheus"``)."""
        return self._request("metrics", format="prometheus")["prometheus"]

    def sessions(self) -> List[Dict[str, Any]]:
        return self._request("sessions")["sessions"]

    def kill(self, session_id: str) -> bool:
        return bool(self._request("kill", session=session_id).get("ok"))

    def reap(self, session_id: str) -> bool:
        return bool(self._request("reap", session=session_id).get("ok"))

    def shutdown(self) -> None:
        self._request("shutdown")
