"""IPDS as a service: the long-lived asynchronous detection daemon.

The paper's deployment story is a detector that runs *continuously*
alongside the program it protects; this package turns the batch
reproduction into that shape.  ``repro serve`` starts one process that
multiplexes many concurrent detection sessions:

* :mod:`engine`   — :class:`DetectionSession`, the session-scoped core
  shared by the CLI verbs and the daemon (observer bus, IPDS, flight
  recorder, forensics, policy hook);
* :mod:`registry` — the session registry with lifecycle states
  (created → running → alarmed/completed/killed/failed → reaped);
* :mod:`policy`   — pluggable per-session alarm policies
  (log / kill-session / quarantine-trace-to-disk);
* :mod:`protocol` — the line-delimited-JSON wire protocol;
* :mod:`daemon`   — the asyncio server multiplexing sessions over one
  socket, with live metrics export;
* :mod:`client`   — a small blocking client for scripts, tests and CI.

Compiled tables are shared across sessions through the content-addressed
cache in :mod:`repro.parallel.cache` — N sessions on the same workload
compile once (single-flight), and the daemon exports the hit rate.
"""

from .daemon import DetectionDaemon
from .engine import (
    DetectionSession,
    SessionKilled,
    SessionResult,
    SessionSpec,
    SessionState,
)
from .client import ServeClient
from .policy import (
    AlarmPolicy,
    KillSessionPolicy,
    LogPolicy,
    PolicyAction,
    QuarantinePolicy,
    make_policy,
)
from .protocol import PROTOCOL_VERSION, ProtocolError
from .registry import SessionRegistry

__all__ = [
    "AlarmPolicy",
    "DetectionDaemon",
    "DetectionSession",
    "KillSessionPolicy",
    "LogPolicy",
    "PROTOCOL_VERSION",
    "PolicyAction",
    "ProtocolError",
    "QuarantinePolicy",
    "ServeClient",
    "SessionKilled",
    "SessionRegistry",
    "SessionResult",
    "SessionSpec",
    "SessionState",
    "make_policy",
]
