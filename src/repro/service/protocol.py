"""The ``repro serve`` wire protocol: line-delimited JSON.

One JSON object per ``\\n``-terminated line, both directions.  Client
requests carry an ``op`` and an optional client-chosen ``id`` that the
daemon echoes on every message the request produces, so one connection
can interleave many in-flight sessions.

Requests::

    {"op": "hello", "id": ...}
    {"op": "submit", "id": ..., "spec": {...}, "policy": "log" | {...}}
    {"op": "sessions", "id": ...}
    {"op": "metrics", "id": ...}
    {"op": "kill", "id": ..., "session": "s3"}
    {"op": "reap", "id": ..., "session": "s3"}
    {"op": "shutdown", "id": ...}

Daemon messages are tagged by ``event``: ``hello``, ``accepted`` (the
session id a submit was assigned), ``state`` / ``progress`` / ``alarm``
/ ``policy`` (streamed while a session runs), ``result`` (terminal
:class:`~repro.service.engine.SessionResult`), ``sessions``,
``metrics``, ``killed``, ``reaped``, ``shutdown`` and ``error``.

The submit ``spec`` mirrors :class:`~repro.service.engine.SessionSpec`
(mode / workload / source / inputs / opt / forensics / tamper /
attack_index / ...); :func:`spec_from_payload` validates it.  Daemon
submissions resolve workload *names only* — the daemon never reads
program files on a client's behalf.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..interp.interpreter import TamperSpec
from ..lang.errors import ReproError
from .engine import SessionSpec

PROTOCOL_VERSION = 1

#: Fields a submit spec may carry, mapped onto SessionSpec (tamper is
#: handled separately — it arrives as a nested object).
_SPEC_FIELDS = (
    "mode",
    "workload",
    "source",
    "source_name",
    "entry",
    "opt_level",
    "step_limit",
    "allow_unprotected",
    "forensics",
    "flight_recorder_depth",
    "record_trace",
    "attack_index",
    "seed_prefix",
    "attack_model",
    "timing_mode",
    "trace_text",
)


class ProtocolError(ReproError):
    """Malformed request (bad JSON, unknown op, invalid spec)."""


def encode(message: Dict[str, Any]) -> bytes:
    """One message as a compact, newline-terminated JSON line."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one request line; raises :class:`ProtocolError`."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"bad request line: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"request must be a JSON object, got {message!r}")
    if not isinstance(message.get("op"), str):
        raise ProtocolError("request needs a string 'op'")
    return message


def tamper_from_payload(payload: Optional[Dict[str, Any]]) -> Optional[TamperSpec]:
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise ProtocolError(f"tamper must be an object, got {payload!r}")
    try:
        address = payload["address"]
        if isinstance(address, str):
            address = int(address, 0)
        return TamperSpec(
            trigger_kind=payload.get("trigger_kind", "read"),
            trigger_value=int(payload["trigger"]),
            address=int(address),
            value=int(payload["value"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"bad tamper spec: {error}") from None


def spec_from_payload(payload: Any) -> SessionSpec:
    """Build and validate a :class:`SessionSpec` from a submit payload.

    ``read_files`` is forced off: the daemon resolves registered
    workload names and inline source only, never paths.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(f"spec must be an object, got {payload!r}")
    unknown = set(payload) - set(_SPEC_FIELDS) - {"inputs", "tamper"}
    if unknown:
        raise ProtocolError(f"unknown spec fields: {sorted(unknown)}")
    kwargs: Dict[str, Any] = {
        key: payload[key] for key in _SPEC_FIELDS if key in payload
    }
    inputs = payload.get("inputs", ())
    if not isinstance(inputs, (list, tuple)) or not all(
        isinstance(value, int) for value in inputs
    ):
        raise ProtocolError(f"inputs must be a list of ints, got {inputs!r}")
    kwargs["inputs"] = tuple(inputs)
    kwargs["tamper"] = tamper_from_payload(payload.get("tamper"))
    kwargs["read_files"] = False
    try:
        spec = SessionSpec(**kwargs)
        spec.validate()
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"bad session spec: {error}") from None
    return spec
