"""IPDS: Infeasible Path Detection System.

A full reproduction of Zhuang, Zhang & Pande, "Using Branch Correlation
to Identify Infeasible Paths for Anomaly Detection" (MICRO 2006):
compiler-side branch-correlation analysis (BSV/BCV/BAT construction),
the hardware runtime checker, a tampering execution substrate, an
attack-campaign framework, and a SimpleScalar-style timing model.

Quick start::

    from repro import compile_program, monitored_run, TamperSpec

    program = compile_program(SOURCE)
    result, ipds = monitored_run(program, inputs=[...])
    print(ipds.alarms)
"""

from .interp.interpreter import RunResult, RunStatus, TamperSpec
from .pipeline import (
    ProtectedProgram,
    compile_program,
    compile_program_cached,
    monitored_run,
    observed_run,
    unmonitored_run,
)
from .runtime.ipds import IPDS, Alarm
from .runtime.observer import ExecutionObserver, ObserverBus

#: Fallback when neither pyproject.toml nor installed metadata is
#: reachable (e.g. a vendored source tree).  Keep in sync with
#: pyproject.toml — :func:`_resolve_version` prefers that file.
_FALLBACK_VERSION = "1.4.0"


def _resolve_version() -> str:
    """The package version, from the single source of truth.

    Checkout layouts (``PYTHONPATH=src``) read pyproject.toml two
    levels up from this file; installed layouts fall back to importlib
    metadata; the pinned constant covers everything else.
    """
    import re
    from pathlib import Path

    pyproject = Path(__file__).resolve().parent.parent.parent / "pyproject.toml"
    try:
        match = re.search(
            r'^version\s*=\s*"([^"]+)"',
            pyproject.read_text(encoding="utf-8"),
            re.MULTILINE,
        )
        if match:
            return match.group(1)
    except OSError:
        pass
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        return _FALLBACK_VERSION


__version__ = _resolve_version()

__all__ = [
    "Alarm",
    "ExecutionObserver",
    "IPDS",
    "ObserverBus",
    "ProtectedProgram",
    "RunResult",
    "RunStatus",
    "TamperSpec",
    "compile_program",
    "compile_program_cached",
    "monitored_run",
    "observed_run",
    "unmonitored_run",
    "__version__",
]
