"""IPDS: Infeasible Path Detection System.

A full reproduction of Zhuang, Zhang & Pande, "Using Branch Correlation
to Identify Infeasible Paths for Anomaly Detection" (MICRO 2006):
compiler-side branch-correlation analysis (BSV/BCV/BAT construction),
the hardware runtime checker, a tampering execution substrate, an
attack-campaign framework, and a SimpleScalar-style timing model.

Quick start::

    from repro import compile_program, monitored_run, TamperSpec

    program = compile_program(SOURCE)
    result, ipds = monitored_run(program, inputs=[...])
    print(ipds.alarms)
"""

from .interp.interpreter import RunResult, RunStatus, TamperSpec
from .pipeline import (
    ProtectedProgram,
    compile_program,
    compile_program_cached,
    monitored_run,
    observed_run,
    unmonitored_run,
)
from .runtime.ipds import IPDS, Alarm
from .runtime.observer import ExecutionObserver, ObserverBus

__version__ = "1.2.0"

__all__ = [
    "Alarm",
    "ExecutionObserver",
    "IPDS",
    "ObserverBus",
    "ProtectedProgram",
    "RunResult",
    "RunStatus",
    "TamperSpec",
    "compile_program",
    "compile_program_cached",
    "monitored_run",
    "observed_run",
    "unmonitored_run",
    "__version__",
]
