"""Human-readable IR dumps, for debugging and for doc examples."""

from __future__ import annotations

from typing import List

from .function import IRFunction, IRModule


def format_function(fn: IRFunction, show_addresses: bool = False) -> str:
    """Render one function as text."""
    lines: List[str] = []
    params = ", ".join(str(p) for p in fn.params)
    lines.append(f"func {fn.name}({params}):")
    for block in fn.blocks:
        preds = ", ".join(p.label for p in block.preds)
        lines.append(f"  {block.label}:" + (f"    ; preds: {preds}" if preds else ""))
        for instruction in block.instructions:
            prefix = (
                f"    {instruction.address:#010x}  "
                if show_addresses and instruction.address >= 0
                else "    "
            )
            lines.append(prefix + str(instruction))
    return "\n".join(lines)


def format_module(module: IRModule, show_addresses: bool = False) -> str:
    """Render a whole module as text."""
    parts: List[str] = []
    for var in module.globals:
        init = module.global_inits.get(var)
        suffix = f" = {init}" if init is not None else ""
        parts.append(f"global {var} [{var.size} word(s)]{suffix}")
    for fn in module.functions:
        parts.append(format_function(fn, show_addresses))
    return "\n\n".join(parts)
