"""CFG utilities: edges, reachability, and branch-free regions.

The *branch-free region* of a conditional edge ``e`` is the set of
blocks reachable from the edge's target without crossing another
conditional-branch edge.  It is the key geometric object behind kill
placement in the BAT construction (see DESIGN.md §4): any dynamic
execution of a block ``B`` is immediately preceded, in the stream of
committed conditional branches, either by an edge whose region contains
``B`` or by function entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from .function import BasicBlock, IRFunction
from .instructions import CondBranch


@dataclass(frozen=True)
class CondEdge:
    """One outcome of a conditional branch: (branch block, direction)."""

    block_label: str
    taken: bool

    def __str__(self) -> str:
        return f"({self.block_label}, {'T' if self.taken else 'NT'})"


def cond_edges(fn: IRFunction) -> List[CondEdge]:
    """All conditional edges of a function, in block order, taken first."""
    edges: List[CondEdge] = []
    for block in fn.blocks:
        if block.ends_in_cond_branch():
            edges.append(CondEdge(block.label, True))
            edges.append(CondEdge(block.label, False))
    return edges


def edge_target(fn: IRFunction, edge: CondEdge) -> BasicBlock:
    """The block an edge transfers control to."""
    branch = fn.block(edge.block_label).terminator
    assert isinstance(branch, CondBranch)
    return fn.block(branch.taken if edge.taken else branch.fallthrough)


def branch_free_region(fn: IRFunction, edge: CondEdge) -> FrozenSet[str]:
    """Blocks reachable from ``edge``'s target without crossing another
    conditional edge.

    The search includes blocks that *end* in a conditional branch (their
    straight-line body runs before the branch decides) but does not
    continue through them.
    """
    start = edge_target(fn, edge)
    region: Set[str] = set()
    stack = [start]
    while stack:
        block = stack.pop()
        if block.label in region:
            continue
        region.add(block.label)
        if block.ends_in_cond_branch():
            continue
        stack.extend(block.succs)
    return frozenset(region)


def entry_region(fn: IRFunction) -> FrozenSet[str]:
    """Blocks reachable from function entry without crossing any
    conditional edge — executed before the first branch event."""
    region: Set[str] = set()
    stack = [fn.entry]
    while stack:
        block = stack.pop()
        if block.label in region:
            continue
        region.add(block.label)
        if block.ends_in_cond_branch():
            continue
        stack.extend(block.succs)
    return frozenset(region)


def regions_by_edge(fn: IRFunction) -> Dict[CondEdge, FrozenSet[str]]:
    """Branch-free region of every conditional edge."""
    return {edge: branch_free_region(fn, edge) for edge in cond_edges(fn)}


def edges_covering_block(fn: IRFunction, label: str) -> List[CondEdge]:
    """All conditional edges whose branch-free region contains ``label``."""
    return [e for e, region in regions_by_edge(fn).items() if label in region]


def reachable_blocks(fn: IRFunction, start: BasicBlock) -> Set[str]:
    """Labels of blocks reachable from ``start`` (inclusive)."""
    seen: Set[str] = set()
    stack = [start]
    while stack:
        block = stack.pop()
        if block.label in seen:
            continue
        seen.add(block.label)
        stack.extend(block.succs)
    return seen


def block_pairs_on_path(
    fn: IRFunction, source: BasicBlock, target: BasicBlock
) -> bool:
    """True if ``target`` is reachable from ``source`` (inclusive of a
    loop back to source itself via its successors)."""
    if source is target:
        return True
    return target.label in reachable_blocks(fn, source)


def iter_rpo(fn: IRFunction) -> Iterator[BasicBlock]:
    """Blocks in reverse post-order from entry (a good dataflow order)."""
    seen: Set[str] = set()
    order: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack: List[Tuple[BasicBlock, int]] = [(block, 0)]
        seen.add(block.label)
        while stack:
            current, index = stack[-1]
            if index < len(current.succs):
                stack[-1] = (current, index + 1)
                succ = current.succs[index]
                if succ.label not in seen:
                    seen.add(succ.label)
                    stack.append((succ, 0))
            else:
                order.append(current)
                stack.pop()

    visit(fn.entry)
    for block in fn.blocks:  # unreachable blocks last, stable
        if block.label not in seen:
            visit(block)
    return iter(reversed(order))
