"""Three-address IR instruction set.

The IR makes every access to a named variable an explicit ``Load`` or
``Store``: named variables are *memory-resident* (they live in the
simulated data memory and are the targets of tampering attacks), while
``Reg`` temporaries model processor registers, which the paper's attack
model treats as safe.  Conditional branches carry their comparison
(``lhs RELOP rhs``) directly so the correlation analysis can map a
branch direction to a value range without a separate compare
instruction.

Registers are written exactly once by construction of the lowering pass
(single-assignment temporaries), which is what lets the branch-range
inference walk a register's defining chain unambiguously.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass(frozen=True)
class Reg:
    """A virtual register (single-assignment temporary)."""

    index: int

    def __str__(self) -> str:
        return f"t{self.index}"


class VarKind(enum.Enum):
    """Storage classes for memory-resident variables."""

    GLOBAL = "global"
    LOCAL = "local"
    PARAM = "param"


@dataclass(frozen=True)
class Variable:
    """A memory-resident variable: a global, local, or parameter.

    ``size`` is in words (scalars and pointers take one word; arrays
    take their element count).  ``uid`` disambiguates shadowed names.
    """

    name: str
    kind: VarKind
    size: int
    uid: int
    is_pointer: bool = False
    is_array: bool = False

    def __str__(self) -> str:
        prefix = {"global": "@", "local": "%", "param": "%"}[self.kind.value]
        return f"{prefix}{self.name}.{self.uid}"


#: An instruction operand: a register or an immediate integer.
Operand = Union[Reg, int]


class RelOp(enum.Enum):
    """Relational operators usable in conditional branches."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="

    def negate(self) -> "RelOp":
        """The operator describing the branch's not-taken outcome."""
        return _NEGATIONS[self]

    def swap(self) -> "RelOp":
        """The operator with operands exchanged (``a < b`` ⇔ ``b > a``)."""
        return _SWAPS[self]

    def evaluate(self, lhs: int, rhs: int) -> bool:
        return _EVALS[self](lhs, rhs)


_NEGATIONS = {
    RelOp.LT: RelOp.GE,
    RelOp.LE: RelOp.GT,
    RelOp.GT: RelOp.LE,
    RelOp.GE: RelOp.LT,
    RelOp.EQ: RelOp.NE,
    RelOp.NE: RelOp.EQ,
}

_SWAPS = {
    RelOp.LT: RelOp.GT,
    RelOp.LE: RelOp.GE,
    RelOp.GT: RelOp.LT,
    RelOp.GE: RelOp.LE,
    RelOp.EQ: RelOp.EQ,
    RelOp.NE: RelOp.NE,
}

_EVALS = {
    RelOp.LT: lambda a, b: a < b,
    RelOp.LE: lambda a, b: a <= b,
    RelOp.GT: lambda a, b: a > b,
    RelOp.GE: lambda a, b: a >= b,
    RelOp.EQ: lambda a, b: a == b,
    RelOp.NE: lambda a, b: a != b,
}


# ----------------------------------------------------------------------
# Instructions
# ----------------------------------------------------------------------


@dataclass
class Instruction:
    """Base class.  ``address`` is the code address (PC) assigned when a
    module is finalized; branches are identified by PC at runtime."""

    address: int = field(default=-1, init=False, compare=False)


@dataclass
class Const(Instruction):
    """``dest = value``"""

    dest: Reg
    value: int

    def __str__(self) -> str:
        return f"{self.dest} = {self.value}"


@dataclass
class BinOp(Instruction):
    """``dest = lhs op rhs`` for ``+ - * / %``.

    Division and modulo follow C semantics (truncation toward zero).
    """

    dest: Reg
    op: str
    lhs: Operand
    rhs: Operand

    def __str__(self) -> str:
        return f"{self.dest} = {self.lhs} {self.op} {self.rhs}"


@dataclass
class UnOp(Instruction):
    """``dest = op src`` for ``-`` (negate) and ``!`` (logical not)."""

    dest: Reg
    op: str
    src: Operand

    def __str__(self) -> str:
        return f"{self.dest} = {self.op}{self.src}"


@dataclass
class Cmp(Instruction):
    """``dest = (lhs relop rhs)`` materialized as 0/1."""

    dest: Reg
    op: RelOp
    lhs: Operand
    rhs: Operand

    def __str__(self) -> str:
        return f"{self.dest} = {self.lhs} {self.op.value} {self.rhs}"


@dataclass
class Load(Instruction):
    """``dest = M[var]`` — direct load of a scalar variable."""

    dest: Reg
    var: Variable

    def __str__(self) -> str:
        return f"{self.dest} = load {self.var}"


@dataclass
class Store(Instruction):
    """``M[var] = src`` — direct store to a scalar variable."""

    var: Variable
    src: Operand

    def __str__(self) -> str:
        return f"store {self.var}, {self.src}"


@dataclass
class AddrOf(Instruction):
    """``dest = &var`` — materialize a variable's data address."""

    dest: Reg
    var: Variable

    def __str__(self) -> str:
        return f"{self.dest} = addr {self.var}"


@dataclass
class LoadIndirect(Instruction):
    """``dest = M[addr]`` — load through a computed address.

    ``may_alias`` is filled in by alias analysis with the variables this
    access might touch (empty means "unknown / anything").
    """

    dest: Reg
    addr: Reg
    may_alias: Tuple[Variable, ...] = ()

    def __str__(self) -> str:
        return f"{self.dest} = load [{self.addr}]"


@dataclass
class StoreIndirect(Instruction):
    """``M[addr] = src`` — store through a computed address."""

    addr: Reg
    src: Operand
    may_alias: Tuple[Variable, ...] = ()

    def __str__(self) -> str:
        return f"store [{self.addr}], {self.src}"


@dataclass
class Call(Instruction):
    """``dest = callee(args...)`` — user function or builtin."""

    dest: Optional[Reg]
    callee: str
    args: List[Operand]

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        prefix = f"{self.dest} = " if self.dest is not None else ""
        return f"{prefix}call {self.callee}({args})"


# -- terminators -------------------------------------------------------


@dataclass
class Terminator(Instruction):
    """Base class for block-ending instructions."""


@dataclass
class Jump(Terminator):
    """Unconditional transfer to ``target`` (a block label)."""

    target: str

    def __str__(self) -> str:
        return f"jump {self.target}"


@dataclass
class CondBranch(Terminator):
    """``if (lhs relop rhs) goto taken else goto fallthrough``.

    This is the instruction the IPDS monitors.  The *taken* direction is
    the condition-true direction.
    """

    lhs: Reg
    op: RelOp
    rhs: Operand
    taken: str
    fallthrough: str

    def __str__(self) -> str:
        return (
            f"br {self.lhs} {self.op.value} {self.rhs}"
            f" ? {self.taken} : {self.fallthrough}"
        )


@dataclass
class Return(Terminator):
    """Return to caller, optionally with a value."""

    value: Optional[Operand] = None

    def __str__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"


def defined_reg(instruction: Instruction) -> Optional[Reg]:
    """The register an instruction writes, or None."""
    dest = getattr(instruction, "dest", None)
    return dest if isinstance(dest, Reg) else None


def used_regs(instruction: Instruction) -> List[Reg]:
    """All registers an instruction reads."""
    regs: List[Reg] = []
    for attr in ("lhs", "rhs", "src", "addr", "value"):
        value = getattr(instruction, attr, None)
        if isinstance(value, Reg):
            regs.append(value)
    if isinstance(instruction, Call):
        regs.extend(a for a in instruction.args if isinstance(a, Reg))
    return regs
