"""IR structural verifier.

Checks the invariants the analyses and interpreter rely on:

* every block ends in exactly one terminator, and only at the end;
* branch/jump targets exist;
* registers are single-assignment and defined before use along every
  path (checked via dominance);
* variables referenced by instructions belong to the function frame or
  the module globals;
* a finalized module has strictly increasing instruction addresses.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from .dominators import DominatorTree, instruction_dominates
from .function import BasicBlock, IRFunction, IRModule, IRError
from .instructions import (
    CondBranch,
    Jump,
    Reg,
    Return,
    Terminator,
    Variable,
    defined_reg,
    used_regs,
)


def verify_module(module: IRModule) -> None:
    """Raise :class:`IRError` on the first broken invariant."""
    global_set = set(module.globals)
    for fn in module.functions:
        _verify_function(fn, global_set)
    if module.finalized:
        addresses = [
            i.address for fn in module.functions for i in fn.instructions()
        ]
        if any(a < 0 for a in addresses):
            raise IRError("finalized module has unassigned addresses")
        if sorted(addresses) != addresses or len(set(addresses)) != len(addresses):
            raise IRError("instruction addresses are not strictly increasing")


def _verify_function(fn: IRFunction, global_vars: Set[Variable]) -> None:
    if not fn.blocks:
        raise IRError(f"{fn.name}: function has no blocks")
    labels = {block.label for block in fn.blocks}
    frame = set(fn.frame_variables)
    definitions: Dict[Reg, Tuple[BasicBlock, int]] = {}

    for block in fn.blocks:
        if not block.instructions:
            raise IRError(f"{fn.name}/{block.label}: empty block")
        for index, instruction in enumerate(block.instructions):
            is_last = index == len(block.instructions) - 1
            if isinstance(instruction, Terminator) != is_last:
                raise IRError(
                    f"{fn.name}/{block.label}: terminator misplaced at {index}"
                )
            reg = defined_reg(instruction)
            if reg is not None:
                if reg in definitions:
                    raise IRError(
                        f"{fn.name}/{block.label}: register {reg} redefined"
                    )
                definitions[reg] = (block, index)
            var = getattr(instruction, "var", None)
            if isinstance(var, Variable):
                if var not in frame and var not in global_vars:
                    raise IRError(
                        f"{fn.name}/{block.label}: foreign variable {var}"
                    )
        terminator = block.terminator
        if isinstance(terminator, Jump):
            targets = [terminator.target]
        elif isinstance(terminator, CondBranch):
            targets = [terminator.taken, terminator.fallthrough]
        elif isinstance(terminator, Return):
            targets = []
            if terminator.value is not None and not fn.returns_value:
                raise IRError(f"{fn.name}: void function returns a value")
        else:  # pragma: no cover - defensive
            raise IRError(f"{fn.name}: unknown terminator {terminator!r}")
        for target in targets:
            if target not in labels:
                raise IRError(
                    f"{fn.name}/{block.label}: jump to unknown block {target!r}"
                )

    _verify_defs_dominate_uses(fn, definitions)


def _verify_defs_dominate_uses(
    fn: IRFunction, definitions: Dict[Reg, Tuple[BasicBlock, int]]
) -> None:
    tree = DominatorTree(fn)
    for block in fn.blocks:
        for index, instruction in enumerate(block.instructions):
            for reg in used_regs(instruction):
                if reg not in definitions:
                    raise IRError(
                        f"{fn.name}/{block.label}: use of undefined register {reg}"
                    )
                def_block, def_index = definitions[reg]
                if def_block is block and def_index >= index:
                    raise IRError(
                        f"{fn.name}/{block.label}: {reg} used before definition"
                    )
                if not instruction_dominates(
                    fn, tree, def_block, def_index, block, index
                ):
                    raise IRError(
                        f"{fn.name}/{block.label}: definition of {reg} "
                        f"does not dominate its use"
                    )


def verify_function(fn: IRFunction) -> None:
    """Verify a single function with no module context."""
    _verify_function(fn, set())
