"""IR structural verifier — compatibility shim.

The checks that used to live here (terminator placement, register SSA,
defs-dominate-uses, frame membership, jump targets, address
monotonicity) moved into the diagnostics framework at
:mod:`repro.staticcheck.irverify`, which also extends them (call-graph
consistency, CFG edge agreement, unreachable-block warnings) and
reports *all* violations instead of the first.

This module keeps the historical raise-on-first-error entry points:
:func:`verify_module` / :func:`verify_function` raise :class:`IRError`
on the first error-severity diagnostic.  Warnings (e.g. unreachable
blocks) never raise.
"""

from __future__ import annotations

from .function import IRError, IRFunction, IRModule


def _raise_first_error(diagnostics) -> None:
    from ..staticcheck.diagnostics import Severity

    for diag in diagnostics:
        if diag.severity is Severity.ERROR:
            raise IRError(f"{diag.span}: {diag.message}")


def verify_module(module: IRModule) -> None:
    """Raise :class:`IRError` on the first broken invariant."""
    from ..staticcheck.irverify import verify_module_diagnostics

    _raise_first_error(verify_module_diagnostics(module))


def verify_function(fn: IRFunction) -> None:
    """Verify a single function with no module context."""
    from ..staticcheck.irverify import verify_function_diagnostics

    _raise_first_error(verify_function_diagnostics(fn))
