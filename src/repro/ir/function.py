"""IR containers: basic blocks, functions, and modules.

A module is *finalized* before use: finalization assigns every
instruction a code address (4 bytes apart, functions laid out in
definition order), computes CFG edges, and freezes block order.  The
address of a ``CondBranch`` is the PC the IPDS hash tables are keyed by.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..lang.errors import ReproError
from .instructions import (
    CondBranch,
    Instruction,
    Jump,
    Return,
    Terminator,
    Variable,
)

#: Size of one encoded instruction in bytes (for PC assignment).
INSTRUCTION_BYTES = 4

#: Address where the code segment starts.
CODE_BASE = 0x0040_0000


class IRError(ReproError):
    """Structural error in the IR (verifier failure, bad lookup, ...)."""


@dataclass
class BasicBlock:
    """A straight-line instruction sequence ending in one terminator."""

    label: str
    instructions: List[Instruction] = field(default_factory=list)
    preds: List["BasicBlock"] = field(default_factory=list, repr=False)
    succs: List["BasicBlock"] = field(default_factory=list, repr=False)

    @property
    def terminator(self) -> Terminator:
        if not self.instructions or not isinstance(self.instructions[-1], Terminator):
            raise IRError(f"block {self.label} has no terminator")
        return self.instructions[-1]

    @property
    def body(self) -> List[Instruction]:
        """Instructions excluding the terminator."""
        if self.instructions and isinstance(self.instructions[-1], Terminator):
            return self.instructions[:-1]
        return list(self.instructions)

    def ends_in_cond_branch(self) -> bool:
        return bool(self.instructions) and isinstance(
            self.instructions[-1], CondBranch
        )

    def __str__(self) -> str:
        return self.label


@dataclass
class IRFunction:
    """One function: parameters, frame variables, and its CFG."""

    name: str
    params: List[Variable]
    blocks: List[BasicBlock] = field(default_factory=list)
    locals: List[Variable] = field(default_factory=list)
    returns_value: bool = True

    def __post_init__(self) -> None:
        self._blocks_by_label: Dict[str, BasicBlock] = {}

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def block(self, label: str) -> BasicBlock:
        try:
            return self._blocks_by_label[label]
        except KeyError:
            raise IRError(f"function {self.name}: no block {label!r}") from None

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.label in self._blocks_by_label:
            raise IRError(f"duplicate block label {block.label!r}")
        self.blocks.append(block)
        self._blocks_by_label[block.label] = block
        return block

    @property
    def frame_variables(self) -> List[Variable]:
        """All memory-resident variables in this function's frame."""
        return self.params + self.locals

    def instructions(self) -> Iterator[Instruction]:
        """All instructions in block order."""
        for block in self.blocks:
            yield from block.instructions

    def cond_branches(self) -> List[CondBranch]:
        """All conditional branches, in block order."""
        return [
            block.terminator
            for block in self.blocks
            if block.ends_in_cond_branch()
        ]

    def compute_edges(self) -> None:
        """(Re)compute predecessor/successor lists from terminators."""
        for block in self.blocks:
            block.preds = []
            block.succs = []
        for block in self.blocks:
            terminator = block.terminator
            if isinstance(terminator, Jump):
                targets = [terminator.target]
            elif isinstance(terminator, CondBranch):
                # Taken edge first, by convention.
                targets = [terminator.taken, terminator.fallthrough]
            elif isinstance(terminator, Return):
                targets = []
            else:  # pragma: no cover - defensive
                raise IRError(f"unknown terminator {terminator!r}")
            for label in targets:
                succ = self.block(label)
                block.succs.append(succ)
                succ.preds.append(block)

    def drop_empty_blocks(self) -> int:
        """Remove empty blocks left over from lowering.

        Lowering only leaves a block empty when nothing ever targets it
        (e.g. the join block of a constant-folded condition), so this is
        safe to run before edges are computed.
        """
        empty = [b for b in self.blocks if not b.instructions]
        if empty:
            self.blocks = [b for b in self.blocks if b.instructions]
            self._blocks_by_label = {b.label: b for b in self.blocks}
        return len(empty)

    def remove_unreachable_blocks(self) -> int:
        """Drop blocks not reachable from entry; returns removal count."""
        reachable = set()
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if block.label in reachable:
                continue
            reachable.add(block.label)
            stack.extend(succ for succ in block.succs)
        removed = [b for b in self.blocks if b.label not in reachable]
        if removed:
            self.blocks = [b for b in self.blocks if b.label in reachable]
            self._blocks_by_label = {b.label: b for b in self.blocks}
            self.compute_edges()
        return len(removed)

    def block_of(self, instruction: Instruction) -> BasicBlock:
        """The block containing ``instruction`` (identity comparison)."""
        for block in self.blocks:
            for candidate in block.instructions:
                if candidate is instruction:
                    return block
        raise IRError(f"instruction {instruction} not in function {self.name}")


@dataclass
class IRModule:
    """A whole program: globals plus functions, with assigned addresses."""

    functions: List[IRFunction] = field(default_factory=list)
    globals: List[Variable] = field(default_factory=list)
    global_inits: Dict[Variable, int] = field(default_factory=dict)
    finalized: bool = False

    def function(self, name: str) -> IRFunction:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise IRError(f"no function named {name!r}")

    def has_function(self, name: str) -> bool:
        return any(fn.name == name for fn in self.functions)

    def finalize(self) -> None:
        """Assign PCs, compute CFG edges, and prune unreachable blocks."""
        address = CODE_BASE
        for fn in self.functions:
            fn.drop_empty_blocks()
            fn.compute_edges()
            fn.remove_unreachable_blocks()
            for instruction in fn.instructions():
                instruction.address = address
                address += INSTRUCTION_BYTES
        self.finalized = True

    def function_extent(self, name: str) -> Tuple[int, int]:
        """(first, last) instruction addresses of a finalized function."""
        fn = self.function(name)
        addresses = [i.address for i in fn.instructions()]
        if not addresses or min(addresses) < 0:
            raise IRError(f"function {name!r} is not finalized")
        return min(addresses), max(addresses)

    def instruction_at(self, address: int) -> Optional[Instruction]:
        """Look up an instruction by PC (linear scan; test helper)."""
        for fn in self.functions:
            for instruction in fn.instructions():
                if instruction.address == address:
                    return instruction
        return None
