"""Dominator computation (iterative Cooper–Harvey–Kennedy algorithm).

Dominance answers "has this instruction certainly executed before that
one?", which the correlation analysis uses when deciding whether a
store/load has already run when the branch that constrains it commits.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .cfg import iter_rpo
from .function import BasicBlock, IRFunction


class DominatorTree:
    """Immediate-dominator tree for one function."""

    def __init__(self, fn: IRFunction):
        self._fn = fn
        self._idom: Dict[str, Optional[str]] = {}
        self._compute()

    def _compute(self) -> None:
        rpo = list(iter_rpo(self._fn))
        order_index = {block.label: i for i, block in enumerate(rpo)}
        entry = self._fn.entry
        idom: Dict[str, Optional[str]] = {block.label: None for block in rpo}
        idom[entry.label] = entry.label
        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block is entry:
                    continue
                processed = [
                    p for p in block.preds if idom.get(p.label) is not None
                ]
                if not processed:
                    continue
                new_idom = processed[0].label
                for pred in processed[1:]:
                    new_idom = self._intersect(
                        new_idom, pred.label, idom, order_index
                    )
                if idom[block.label] != new_idom:
                    idom[block.label] = new_idom
                    changed = True
        idom[entry.label] = None  # the entry has no immediate dominator
        self._idom = idom

    @staticmethod
    def _intersect(
        a: str,
        b: str,
        idom: Dict[str, Optional[str]],
        order_index: Dict[str, int],
    ) -> str:
        while a != b:
            while order_index[a] > order_index[b]:
                a = idom[a]  # type: ignore[assignment]
            while order_index[b] > order_index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    def idom(self, label: str) -> Optional[str]:
        """Immediate dominator of a block label (None for entry or
        unreachable blocks)."""
        return self._idom.get(label)

    def dominates(self, a: str, b: str) -> bool:
        """True if block ``a`` dominates block ``b`` (reflexive)."""
        current: Optional[str] = b
        while current is not None:
            if current == a:
                return True
            current = self._idom.get(current)
        return False

    def dominators_of(self, label: str) -> List[str]:
        """All dominators of ``label``, from itself up to the entry."""
        chain: List[str] = []
        current: Optional[str] = label
        while current is not None:
            chain.append(current)
            current = self._idom.get(current)
        return chain


def instruction_dominates(
    fn: IRFunction,
    tree: DominatorTree,
    block_a: BasicBlock,
    index_a: int,
    block_b: BasicBlock,
    index_b: int,
) -> bool:
    """True if instruction ``block_a[index_a]`` dominates
    ``block_b[index_b]`` (executes on every path before it)."""
    if block_a is block_b:
        return index_a <= index_b
    return tree.dominates(block_a.label, block_b.label)
