"""AST → IR lowering.

Every named variable becomes a memory-resident :class:`Variable`; every
read of a scalar becomes a ``Load`` and every write a ``Store``.  This
mirrors the paper's machine model: attacks tamper external memory, so
the analysis must see each round-trip through memory explicitly.

Design points that matter to the correlation analysis downstream:

* Condition expressions lower to a ``CondBranch`` *in the same basic
  block* as the loads feeding it, connected only through arithmetic —
  this is the "inference window" the BAT construction relies on.
* Registers are single-assignment temporaries, so a branch operand has
  exactly one defining instruction.
* ``&&`` / ``||`` in condition position lower to short-circuit control
  flow; in value position they lower to arithmetic over the 0/1
  results (both operands are always evaluated there).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..lang import ast_nodes as ast
from ..lang.errors import LoweringError, SourceLocation
from .function import BasicBlock, IRFunction, IRModule
from .instructions import (
    AddrOf,
    BinOp,
    Call,
    Cmp,
    CondBranch,
    Const,
    Instruction,
    Jump,
    Load,
    LoadIndirect,
    Operand,
    Reg,
    RelOp,
    Return,
    Store,
    StoreIndirect,
    Terminator,
    UnOp,
    Variable,
    VarKind,
)

_REL_OPS = {
    "<": RelOp.LT,
    "<=": RelOp.LE,
    ">": RelOp.GT,
    ">=": RelOp.GE,
    "==": RelOp.EQ,
    "!=": RelOp.NE,
}

#: Built-in functions: name -> (arg count, returns a value).
BUILTINS: Dict[str, Tuple[int, bool]] = {
    "read_int": (0, True),
    "emit": (1, False),
}


class _Scope:
    """A lexical scope mapping names to variables."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.names: Dict[str, Variable] = {}

    def declare(self, var: Variable, location: SourceLocation) -> None:
        if var.name in self.names:
            raise LoweringError(f"redeclaration of {var.name!r}", location)
        self.names[var.name] = var

    def lookup(self, name: str) -> Optional[Variable]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class _FunctionLowering:
    """Lowers one function body into an :class:`IRFunction`."""

    def __init__(self, module_scope: _Scope, program: ast.Program, fn: ast.FunctionDef):
        self._program = program
        self._ast_fn = fn
        self._reg_count = 0
        self._block_count = 0
        self._uid_count = 0
        self._loop_stack: List[Tuple[str, str]] = []  # (continue, break) labels
        params = [
            Variable(
                p.name,
                VarKind.PARAM,
                size=1,
                uid=self._next_uid(),
                is_pointer=p.param_type.kind is ast.TypeKind.POINTER,
            )
            for p in fn.params
        ]
        self.ir = IRFunction(
            fn.name,
            params,
            returns_value=fn.return_type.kind is not ast.TypeKind.VOID,
        )
        self._scope = _Scope(module_scope)
        for param, ast_param in zip(params, fn.params):
            self._scope.declare(param, ast_param.location)
        self._current = self._new_block()

    # -- small helpers ---------------------------------------------------

    def _next_uid(self) -> int:
        self._uid_count += 1
        return self._uid_count

    def _new_reg(self) -> Reg:
        reg = Reg(self._reg_count)
        self._reg_count += 1
        return reg

    def _new_block(self) -> BasicBlock:
        block = BasicBlock(f"bb{self._block_count}")
        self._block_count += 1
        self.ir.add_block(block)
        return block

    def _emit(self, instruction: Instruction) -> Instruction:
        if self._current.instructions and isinstance(
            self._current.instructions[-1], Terminator
        ):
            raise LoweringError(
                "internal: emitting past a terminator", self._ast_fn.location
            )
        self._current.instructions.append(instruction)
        return instruction

    def _terminate(self, terminator: Terminator) -> None:
        if not (
            self._current.instructions
            and isinstance(self._current.instructions[-1], Terminator)
        ):
            self._current.instructions.append(terminator)

    def _switch_to(self, block: BasicBlock) -> None:
        self._current = block

    def _as_reg(self, operand: Operand) -> Reg:
        """Materialize a constant into a register if needed."""
        if isinstance(operand, Reg):
            return operand
        reg = self._new_reg()
        self._emit(Const(reg, operand))
        return reg

    # -- top level ---------------------------------------------------------

    def lower(self) -> IRFunction:
        self._lower_block(self._ast_fn.body, _Scope(self._scope))
        # Fall-off-the-end: void functions return, int functions return 0.
        self._terminate(Return(0 if self.ir.returns_value else None))
        return self.ir

    # -- statements --------------------------------------------------------

    def _lower_block(self, block: ast.Block, scope: _Scope) -> None:
        saved = self._scope
        self._scope = scope
        try:
            for stmt in block.statements:
                self._lower_stmt(stmt)
        finally:
            self._scope = saved

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            self._lower_var_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr, want_value=False)
        elif isinstance(stmt, ast.Block):
            self._lower_block(stmt, _Scope(self._scope))
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self._loop_stack:
                raise LoweringError("'break' outside a loop", stmt.location)
            self._terminate(Jump(self._loop_stack[-1][1]))
            self._switch_to(self._new_block())
        elif isinstance(stmt, ast.Continue):
            if not self._loop_stack:
                raise LoweringError("'continue' outside a loop", stmt.location)
            self._terminate(Jump(self._loop_stack[-1][0]))
            self._switch_to(self._new_block())
        else:  # pragma: no cover - defensive
            raise LoweringError(f"unknown statement {type(stmt).__name__}", stmt.location)

    def _lower_var_decl(self, decl: ast.VarDecl) -> None:
        kind = decl.var_type.kind
        var = Variable(
            decl.name,
            VarKind.LOCAL,
            size=decl.var_type.array_size if kind is ast.TypeKind.ARRAY else 1,
            uid=self._next_uid(),
            is_pointer=kind is ast.TypeKind.POINTER,
            is_array=kind is ast.TypeKind.ARRAY,
        )
        self._scope.declare(var, decl.location)
        self.ir.locals.append(var)
        if decl.init is not None:
            value = self._lower_expr(decl.init, want_value=True)
            self._emit(Store(var, value))

    def _lower_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.VarRef):
            var = self._resolve(target.name, target.location)
            if var.is_array:
                raise LoweringError(
                    f"cannot assign to array {var.name!r}", target.location
                )
            value = self._lower_expr(stmt.value, want_value=True)
            self._emit(Store(var, value))
            return
        # Indirect targets: *p = v or a[i] = v.
        address = self._lower_lvalue_address(target)
        value = self._lower_expr(stmt.value, want_value=True)
        self._emit(StoreIndirect(address, value))

    def _lower_if(self, stmt: ast.If) -> None:
        then_block = self._new_block()
        else_block = self._new_block() if stmt.else_body else None
        join_block = self._new_block()
        self._lower_condition(
            stmt.condition,
            then_block.label,
            (else_block or join_block).label,
        )
        self._switch_to(then_block)
        self._lower_block(stmt.then_body, _Scope(self._scope))
        self._terminate(Jump(join_block.label))
        if else_block is not None:
            self._switch_to(else_block)
            self._lower_block(stmt.else_body, _Scope(self._scope))
            self._terminate(Jump(join_block.label))
        self._switch_to(join_block)

    def _lower_while(self, stmt: ast.While) -> None:
        header = self._new_block()
        body = self._new_block()
        exit_block = self._new_block()
        self._terminate(Jump(header.label))
        self._switch_to(header)
        self._lower_condition(stmt.condition, body.label, exit_block.label)
        self._loop_stack.append((header.label, exit_block.label))
        self._switch_to(body)
        self._lower_block(stmt.body, _Scope(self._scope))
        self._terminate(Jump(header.label))
        self._loop_stack.pop()
        self._switch_to(exit_block)

    def _lower_for(self, stmt: ast.For) -> None:
        scope = _Scope(self._scope)
        saved = self._scope
        self._scope = scope
        try:
            if stmt.init is not None:
                self._lower_stmt(stmt.init)
            header = self._new_block()
            body = self._new_block()
            step_block = self._new_block()
            exit_block = self._new_block()
            self._terminate(Jump(header.label))
            self._switch_to(header)
            if stmt.condition is not None:
                self._lower_condition(stmt.condition, body.label, exit_block.label)
            else:
                self._terminate(Jump(body.label))
            self._loop_stack.append((step_block.label, exit_block.label))
            self._switch_to(body)
            self._lower_block(stmt.body, _Scope(self._scope))
            self._terminate(Jump(step_block.label))
            self._loop_stack.pop()
            self._switch_to(step_block)
            if stmt.step is not None:
                self._lower_stmt(stmt.step)
            self._terminate(Jump(header.label))
            self._switch_to(exit_block)
        finally:
            self._scope = saved

    def _lower_return(self, stmt: ast.Return) -> None:
        if self.ir.returns_value:
            value = (
                self._lower_expr(stmt.value, want_value=True)
                if stmt.value is not None
                else 0
            )
            self._terminate(Return(value))
        else:
            if stmt.value is not None:
                raise LoweringError(
                    "void function cannot return a value", stmt.location
                )
            self._terminate(Return(None))
        self._switch_to(self._new_block())

    # -- conditions ----------------------------------------------------------

    def _lower_condition(
        self, expr: ast.Expr, true_label: str, false_label: str
    ) -> None:
        """Lower ``expr`` as a short-circuit branch condition."""
        if isinstance(expr, ast.BinaryOp) and expr.op in _REL_OPS:
            lhs = self._lower_expr(expr.left, want_value=True)
            rhs = self._lower_expr(expr.right, want_value=True)
            op = _REL_OPS[expr.op]
            if not isinstance(lhs, Reg):
                if isinstance(rhs, Reg):
                    lhs, rhs, op = rhs, lhs, op.swap()
                else:  # constant condition: fold
                    target = true_label if op.evaluate(lhs, rhs) else false_label
                    self._terminate(Jump(target))
                    return
            self._terminate(CondBranch(lhs, op, rhs, true_label, false_label))
            return
        if isinstance(expr, ast.BinaryOp) and expr.op == "&&":
            mid = self._new_block()
            self._lower_condition(expr.left, mid.label, false_label)
            self._switch_to(mid)
            self._lower_condition(expr.right, true_label, false_label)
            return
        if isinstance(expr, ast.BinaryOp) and expr.op == "||":
            mid = self._new_block()
            self._lower_condition(expr.left, true_label, mid.label)
            self._switch_to(mid)
            self._lower_condition(expr.right, true_label, false_label)
            return
        if isinstance(expr, ast.UnaryOp) and expr.op == "!":
            self._lower_condition(expr.operand, false_label, true_label)
            return
        if isinstance(expr, ast.IntLiteral):
            target = true_label if expr.value != 0 else false_label
            self._terminate(Jump(target))
            return
        # Any other expression: compare against zero.
        value = self._as_reg(self._lower_expr(expr, want_value=True))
        self._terminate(CondBranch(value, RelOp.NE, 0, true_label, false_label))

    # -- expressions -----------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr, want_value: bool) -> Operand:
        """Lower an expression; returns its value operand.

        With ``want_value=False`` (expression statements) the value is
        computed for side effects and the returned operand is unused.
        """
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.VarRef):
            return self._lower_var_read(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._lower_unary(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._lower_binary(expr)
        if isinstance(expr, ast.IndexExpr):
            address = self._lower_lvalue_address(expr)
            dest = self._new_reg()
            self._emit(LoadIndirect(dest, address))
            return dest
        if isinstance(expr, ast.CallExpr):
            return self._lower_call(expr, want_value)
        raise LoweringError(  # pragma: no cover - defensive
            f"unknown expression {type(expr).__name__}", expr.location
        )

    def _lower_var_read(self, expr: ast.VarRef) -> Operand:
        var = self._resolve(expr.name, expr.location)
        dest = self._new_reg()
        if var.is_array:
            # An array name used as a value decays to its address.
            self._emit(AddrOf(dest, var))
        else:
            self._emit(Load(dest, var))
        return dest

    def _lower_unary(self, expr: ast.UnaryOp) -> Operand:
        if expr.op == "&":
            return self._lower_lvalue_address(expr.operand)
        if expr.op == "*":
            address = self._as_reg(self._lower_expr(expr.operand, want_value=True))
            dest = self._new_reg()
            self._emit(LoadIndirect(dest, address))
            return dest
        operand = self._lower_expr(expr.operand, want_value=True)
        if isinstance(operand, int):  # constant fold
            return -operand if expr.op == "-" else int(operand == 0)
        dest = self._new_reg()
        self._emit(UnOp(dest, expr.op, operand))
        return dest

    def _lower_binary(self, expr: ast.BinaryOp) -> Operand:
        if expr.op in _REL_OPS:
            lhs = self._lower_expr(expr.left, want_value=True)
            rhs = self._lower_expr(expr.right, want_value=True)
            op = _REL_OPS[expr.op]
            if isinstance(lhs, int) and isinstance(rhs, int):
                return int(op.evaluate(lhs, rhs))
            dest = self._new_reg()
            self._emit(Cmp(dest, op, lhs, rhs))
            return dest
        if expr.op in ("&&", "||"):
            # Value position: evaluate both sides to 0/1 and combine.
            left = self._bool_value(expr.left)
            right = self._bool_value(expr.right)
            total = self._new_reg()
            self._emit(BinOp(total, "+", left, right))
            dest = self._new_reg()
            threshold = RelOp.EQ if expr.op == "&&" else RelOp.GE
            self._emit(Cmp(dest, threshold, total, 2 if expr.op == "&&" else 1))
            return dest
        lhs = self._lower_expr(expr.left, want_value=True)
        rhs = self._lower_expr(expr.right, want_value=True)
        if isinstance(lhs, int) and isinstance(rhs, int):
            return self._fold_arith(expr.op, lhs, rhs, expr.location)
        dest = self._new_reg()
        self._emit(BinOp(dest, expr.op, lhs, rhs))
        return dest

    def _bool_value(self, expr: ast.Expr) -> Operand:
        value = self._lower_expr(expr, want_value=True)
        if isinstance(value, int):
            return int(value != 0)
        dest = self._new_reg()
        self._emit(Cmp(dest, RelOp.NE, value, 0))
        return dest

    @staticmethod
    def _fold_arith(op: str, lhs: int, rhs: int, location: SourceLocation) -> int:
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if rhs == 0:
            raise LoweringError("constant division by zero", location)
        quotient = abs(lhs) // abs(rhs)
        if (lhs < 0) != (rhs < 0):
            quotient = -quotient
        return quotient if op == "/" else lhs - quotient * rhs

    def _lower_call(self, expr: ast.CallExpr, want_value: bool) -> Operand:
        name = expr.callee
        if name in BUILTINS:
            arity, returns = BUILTINS[name]
        elif self._has_user_function(name):
            ast_fn = self._program.function(name)
            arity = len(ast_fn.params)
            returns = ast_fn.return_type.kind is not ast.TypeKind.VOID
        else:
            raise LoweringError(f"call to undefined function {name!r}", expr.location)
        if len(expr.args) != arity:
            raise LoweringError(
                f"{name!r} expects {arity} argument(s), got {len(expr.args)}",
                expr.location,
            )
        args = [self._lower_expr(a, want_value=True) for a in expr.args]
        if want_value and not returns:
            raise LoweringError(
                f"void function {name!r} used as a value", expr.location
            )
        dest = self._new_reg() if returns else None
        self._emit(Call(dest, name, args))
        return dest if dest is not None else 0

    def _has_user_function(self, name: str) -> bool:
        return any(fn.name == name for fn in self._program.functions)

    # -- lvalues ----------------------------------------------------------------

    def _lower_lvalue_address(self, expr: ast.Expr) -> Reg:
        """Compute the data address of an lvalue into a register."""
        if isinstance(expr, ast.VarRef):
            var = self._resolve(expr.name, expr.location)
            dest = self._new_reg()
            self._emit(AddrOf(dest, var))
            return dest
        if isinstance(expr, ast.UnaryOp) and expr.op == "*":
            return self._as_reg(self._lower_expr(expr.operand, want_value=True))
        if isinstance(expr, ast.IndexExpr):
            base = self._lower_base_address(expr.base)
            index = self._lower_expr(expr.index, want_value=True)
            if isinstance(index, int) and index == 0:
                return base
            dest = self._new_reg()
            self._emit(BinOp(dest, "+", base, index))
            return dest
        raise LoweringError("expression is not an lvalue", expr.location)

    def _lower_base_address(self, expr: ast.Expr) -> Reg:
        """Address of the sequence an index applies to (array or pointer)."""
        if isinstance(expr, ast.VarRef):
            var = self._resolve(expr.name, expr.location)
            dest = self._new_reg()
            if var.is_array:
                self._emit(AddrOf(dest, var))
            else:
                # Pointer variable: its *value* is the base address.
                self._emit(Load(dest, var))
            return dest
        return self._as_reg(self._lower_expr(expr, want_value=True))

    def _resolve(self, name: str, location: SourceLocation) -> Variable:
        var = self._scope.lookup(name)
        if var is None:
            raise LoweringError(f"undefined variable {name!r}", location)
        return var


def lower_program(program: ast.Program) -> IRModule:
    """Lower a parsed program into a finalized :class:`IRModule`."""
    module = IRModule()
    module_scope = _Scope()
    uid = 0
    for decl in program.globals:
        uid += 1
        kind = decl.var_type.kind
        var = Variable(
            decl.name,
            VarKind.GLOBAL,
            size=decl.var_type.array_size if kind is ast.TypeKind.ARRAY else 1,
            uid=uid,
            is_pointer=kind is ast.TypeKind.POINTER,
            is_array=kind is ast.TypeKind.ARRAY,
        )
        module_scope.declare(var, decl.location)
        module.globals.append(var)
        if decl.init is not None:
            module.global_inits[var] = decl.init
    seen = set()
    for fn in program.functions:
        if fn.name in seen:
            raise LoweringError(f"duplicate function {fn.name!r}", fn.location)
        if fn.name in BUILTINS:
            raise LoweringError(
                f"function {fn.name!r} shadows a builtin", fn.location
            )
        seen.add(fn.name)
    for fn in program.functions:
        lowering = _FunctionLowering(module_scope, program, fn)
        module.functions.append(lowering.lower())
    module.finalize()
    return module
