"""Feasible-path value-range analysis — the ``--opt 3`` layer.

The Figure-5 construction correlates branches pairwise: one inference
access in the source block, one checked load in the target block.  That
misses everything the *paths between them* prove — a constant store on
the way, a clamp that pins a range, a re-check whose one direction the
dominating condition already decided.  This module recovers those facts
with the feasible-path MFP construction (Pathade & Khedker): for every
conditional edge ``E`` it seeds a forward range propagation with the
constraints ``E``'s direction implies, pushes abstract environments
through block bodies, and — the feasible-path part — **drops every
conditional edge whose direction contradicts the propagated ranges**
instead of merging over it.  Each dropped edge is recorded; the sorted
list is the *pruned-edge witness* that rides the resulting action's
provenance and is independently re-proved by the ``FP7xx`` audit pass
(:mod:`repro.staticcheck.feasaudit`).

At the fixpoint, any later branch whose checked load is confined to one
outcome set yields a forced outcome: a new ``SET_T``/``SET_NT`` BAT
action for ``E``, or a proof that an existing action survives its
region's stores (the MFP pushed every store on every feasible path, so
no separate kill is needed — the claim holds at *every* execution of
the target after ``E`` commits, not just the first).

The claim deliberately proves more than the auditor's COR205 obligation
demands: no liveness cuts at overwriting edges, and no interprocedural
call images (calls clobber to top).  The auditor — with cuts and call
summaries, i.e. strictly more precision against a strictly weaker
obligation — therefore re-proves every action emitted here.

Builder/auditor separation: this is builder-side code.  It reasons from
:mod:`repro.analysis.branch_info` facts (the backward chain walk) and
its own forward block interpretation below; the auditor re-derives
everything from :mod:`repro.staticcheck.facts` (the forward symbolic
walk).  The shared trust base stays the may-write model
(:class:`~repro.analysis.defs.DefinitionMap`), as everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..ir.function import BasicBlock, IRFunction
from ..ir.instructions import (
    BinOp,
    Cmp,
    CondBranch,
    Const,
    Jump,
    Load,
    Reg,
    Return,
    Store,
    UnOp,
    Variable,
)
from .branch_info import BranchFacts, OutcomeSet
from .defs import DefinitionMap
from .ranges import Interval

#: Joins into one block before widening kicks in (matches the auditor's
#: MFP so honest witnesses re-prove under the same loop treatment).
WIDEN_AFTER = 8


# ----------------------------------------------------------------------
# The builder's range lattice: an interval minus at most one interior
# point.  Semantically the twin of the auditor's ValueSet
# (:mod:`repro.staticcheck.domain`), implemented independently so the
# two sides share no reasoning code.
# ----------------------------------------------------------------------


def _canonical(interval: Interval, hole: Optional[int]) -> "FeasRange":
    """Drop holes outside the interval; fold endpoint holes inward."""
    if interval.is_empty or hole is None or not interval.contains(hole):
        return FeasRange(interval, None)
    if interval.lo == interval.hi:
        return FeasRange(Interval.empty(), None)
    if hole == interval.lo:
        return FeasRange(Interval(interval.lo + 1, interval.hi), None)
    if hole == interval.hi:
        return FeasRange(Interval(interval.lo, interval.hi - 1), None)
    return FeasRange(interval, hole)


@dataclass(frozen=True)
class FeasRange:
    """``[lo, hi] \\ {hole}`` — all operations over-approximate."""

    interval: Interval
    hole: Optional[int] = None

    @staticmethod
    def top() -> "FeasRange":
        return FeasRange(Interval.top(), None)

    @staticmethod
    def point(value: int) -> "FeasRange":
        return FeasRange(Interval.point(value), None)

    @staticmethod
    def from_outcome(outcome: OutcomeSet) -> "FeasRange":
        if outcome.interval is not None:
            return FeasRange(outcome.interval, None)
        return _canonical(Interval.top(), outcome.hole)

    @property
    def is_empty(self) -> bool:
        return self.interval.is_empty

    @property
    def is_top(self) -> bool:
        return self.interval.is_top and self.hole is None

    def within_outcome(self, outcome: OutcomeSet) -> bool:
        """Every value of this set satisfies ``outcome`` — the forced-
        outcome test at a checked branch."""
        if self.is_empty:
            return True
        if outcome.interval is not None:
            return self.interval.subsumes(outcome.interval)
        return not self.interval.contains(outcome.hole) or self.hole == outcome.hole

    def intersect_outcome(self, outcome: OutcomeSet) -> "FeasRange":
        other = FeasRange.from_outcome(outcome)
        interval = self.interval.intersect(other.interval)
        hole = self.hole if self.hole is not None else other.hole
        return _canonical(interval, hole)

    def join(self, other: "FeasRange") -> "FeasRange":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        interval = self.interval.union_hull(other.interval)
        for candidate in (self.hole, other.hole):
            if candidate is None:
                continue
            if not self.contains(candidate) and not other.contains(candidate):
                return _canonical(interval, candidate)
        return FeasRange(interval, None)

    def widen(self, newer: "FeasRange") -> "FeasRange":
        interval = self.interval.widen_against(newer.interval)
        hole = self.hole if self.hole == newer.hole else None
        return _canonical(interval, hole)

    def affine_image(self, sign: int, offset: int) -> "FeasRange":
        interval = self.interval
        if sign == -1:
            interval = interval.negate()
        interval = interval.shift(offset)
        hole = None if self.hole is None else sign * self.hole + offset
        return _canonical(interval, hole)

    def contains(self, value: int) -> bool:
        return self.interval.contains(value) and value != self.hole

    def __str__(self) -> str:
        if self.hole is None:
            return str(self.interval)
        return f"{self.interval}\\{{{self.hole}}}"


#: Abstract environment: variable -> range; missing means top.
FeasEnv = Dict[Variable, FeasRange]


def _env_set(env: FeasEnv, var: Variable, value: FeasRange) -> None:
    if value.is_top:
        env.pop(var, None)
    else:
        env[var] = value


def _env_join(a: FeasEnv, b: FeasEnv) -> FeasEnv:
    joined: FeasEnv = {}
    for var in a.keys() & b.keys():
        _env_set(joined, var, a[var].join(b[var]))
    return joined


def _env_widen(old: FeasEnv, new: FeasEnv) -> FeasEnv:
    widened: FeasEnv = {}
    for var in old.keys() & new.keys():
        _env_set(widened, var, old[var].widen(new[var]))
    return widened


# ----------------------------------------------------------------------
# Per-block interval-transfer programs
# ----------------------------------------------------------------------

#: Steps: ("load", var, index) | ("store", var, spec) | ("clobber", vars)
#: with store specs ("const", c) | ("affine", load_index, sign, offset) |
#: ("top",).  Calls and indirect stores become plain clobbers — opt 3
#: deliberately claims *less* per transfer than the auditor can prove,
#: so every claim survives re-proof.
_Step = Tuple


@dataclass
class BlockProgram:
    """One block reduced to its effect on variable ranges."""

    label: str
    steps: List[_Step]
    branch_pc: Optional[int] = None
    taken_target: Optional[str] = None
    fallthrough_target: Optional[str] = None
    jump_target: Optional[str] = None
    is_return: bool = False


def _resolve(env: Dict[Reg, Tuple], operand) -> Optional[Tuple]:
    """A tracked value: ("const", c) or ("affine", load_index, sign, off)."""
    if isinstance(operand, int):
        return ("const", operand)
    return env.get(operand)


def _fold(op: str, lhs: Optional[Tuple], rhs: Optional[Tuple]) -> Optional[Tuple]:
    if lhs is None or rhs is None:
        return None
    if lhs[0] == "const" and rhs[0] == "const":
        a, b = lhs[1], rhs[1]
        try:
            if op == "+":
                return ("const", a + b)
            if op == "-":
                return ("const", a - b)
            if op == "*":
                return ("const", a * b)
            if op == "/":
                return ("const", int(a / b)) if b else None
            if op == "%":
                return ("const", a - int(a / b) * b) if b else None
        except (OverflowError, ValueError):  # pragma: no cover - defensive
            return None
        return None
    if op not in ("+", "-"):
        return None
    if lhs[0] == "affine" and rhs[0] == "const":
        _, index, sign, offset = lhs
        delta = rhs[1] if op == "+" else -rhs[1]
        return ("affine", index, sign, offset + delta)
    if lhs[0] == "const" and rhs[0] == "affine":
        _, index, sign, offset = rhs
        if op == "-":
            sign, offset = -sign, -offset
        return ("affine", index, sign, offset + lhs[1])
    return None


def summarize_blocks(
    fn: IRFunction, def_map: DefinitionMap
) -> Dict[str, BlockProgram]:
    """Reduce every block to a :class:`BlockProgram`."""
    return {
        block.label: _block_program(block, def_map) for block in fn.blocks
    }


def _block_program(block: BasicBlock, def_map: DefinitionMap) -> BlockProgram:
    program = BlockProgram(label=block.label, steps=[])
    env: Dict[Reg, Tuple] = {}
    for index, instruction in enumerate(block.instructions):
        if isinstance(instruction, Const):
            env[instruction.dest] = ("const", instruction.value)
        elif isinstance(instruction, BinOp):
            folded = _fold(
                instruction.op,
                _resolve(env, instruction.lhs),
                _resolve(env, instruction.rhs),
            )
            if folded is not None:
                env[instruction.dest] = folded
            else:
                env.pop(instruction.dest, None)
        elif isinstance(instruction, UnOp):
            src = _resolve(env, instruction.src)
            result: Optional[Tuple] = None
            if src is not None and instruction.op == "-":
                if src[0] == "const":
                    result = ("const", -src[1])
                else:
                    _, idx, sign, offset = src
                    result = ("affine", idx, -sign, -offset)
            elif instruction.op == "!" and src is not None and src[0] == "const":
                result = ("const", int(src[1] == 0))
            if result is not None:
                env[instruction.dest] = result
            else:
                env.pop(instruction.dest, None)
        elif isinstance(instruction, Cmp):
            # Materialized comparisons are untracked here (the auditor
            # tracks them; claiming less keeps claims re-provable).
            env.pop(instruction.dest, None)
        elif isinstance(instruction, Load):
            program.steps.append(("load", instruction.var, index))
            env[instruction.dest] = ("affine", index, 1, 0)
        elif isinstance(instruction, Store):
            value = _resolve(env, instruction.src)
            if value is None:
                spec: Tuple = ("top",)
            elif value[0] == "const":
                spec = ("const", value[1])
            else:
                _, idx, sign, offset = value
                spec = ("affine", idx, sign, offset)
            program.steps.append(("store", instruction.var, spec))
            continue  # the store step covers the def site exactly
        elif isinstance(instruction, Jump):
            program.jump_target = instruction.target
        elif isinstance(instruction, Return):
            program.is_return = True
        elif isinstance(instruction, CondBranch):
            program.branch_pc = instruction.address
            program.taken_target = instruction.taken
            program.fallthrough_target = instruction.fallthrough
        else:
            dest = getattr(instruction, "dest", None)
            if isinstance(dest, Reg):
                env.pop(dest, None)
        sites = def_map.at(block.label, index)
        if sites:
            affected = tuple(
                sorted({s.var for s in sites}, key=lambda v: (v.name, v.uid))
            )
            program.steps.append(("clobber", affected))
    return program


def _transfer(
    program: BlockProgram, env_in: FeasEnv
) -> Tuple[FeasEnv, Dict[int, FeasRange]]:
    """Exit environment + per-load snapshots (keyed by load index)."""
    env: FeasEnv = dict(env_in)
    snapshots: Dict[int, FeasRange] = {}
    for step in program.steps:
        kind = step[0]
        if kind == "load":
            snapshots[step[2]] = env.get(step[1], FeasRange.top())
        elif kind == "store":
            _, var, spec = step
            if spec[0] == "const":
                _env_set(env, var, FeasRange.point(spec[1]))
            elif spec[0] == "affine":
                _, idx, sign, offset = spec
                base = snapshots.get(idx, FeasRange.top())
                _env_set(env, var, base.affine_image(sign, offset))
            else:
                _env_set(env, var, FeasRange.top())
        else:  # clobber
            for var in step[1]:
                env.pop(var, None)
    return env, snapshots


def _edge_env(
    facts: Optional[BranchFacts],
    env_out: FeasEnv,
    snapshots: Dict[int, FeasRange],
    taken: bool,
) -> Optional[FeasEnv]:
    """The environment flowing along one conditional edge, refined by
    the direction's implications — ``None`` when the direction is
    infeasible from this abstract state (a pruned edge)."""
    if facts is None:
        return dict(env_out)
    check = facts.check
    if check is not None:
        tested = snapshots.get(check.load_index, FeasRange.top())
        if tested.intersect_outcome(check.outcome_set(taken)).is_empty:
            return None
    env = dict(env_out)
    for inference in facts.inferences:
        implied = inference.implied_set(taken)
        if implied.is_trivial:
            continue
        refined = env.get(inference.var, FeasRange.top()).intersect_outcome(
            implied
        )
        if refined.is_empty:
            return None
        _env_set(env, inference.var, refined)
    return env


# ----------------------------------------------------------------------
# The per-edge feasible-path MFP
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FeasibleFinding:
    """One forced branch outcome proved from one conditional edge.

    ``forced`` is the direction the target branch must take on every
    feasible path after the source edge commits; ``implied`` renders the
    propagated value set at the checked load; ``witness`` lists the
    conditional edges (``"label:T"`` / ``"label:NT"``) pruned as
    infeasible at the fixpoint — the feasibility facts the ``FP7xx``
    audit re-proves."""

    source_pc: int
    taken: bool
    target_pc: int
    forced: bool
    implied: str
    witness: Tuple[str, ...]


@dataclass
class FeasibleAnalysis:
    """All findings of one function, keyed for the BAT construction."""

    #: (source_pc, direction) -> target_pc -> finding
    findings: Dict[Tuple[int, bool], Dict[int, FeasibleFinding]]

    def for_edge(self, source_pc: int, taken: bool) -> Dict[int, FeasibleFinding]:
        return self.findings.get((source_pc, taken), {})


def render_edge(label: str, taken: bool) -> str:
    """Canonical pruned-edge witness rendering (shared with the audit
    only as a *format*, not as reasoning)."""
    return f"{label}:{'T' if taken else 'NT'}"


def propagate_from_edge(
    programs: Dict[str, BlockProgram],
    facts_of_label: Dict[str, BranchFacts],
    source_label: str,
    taken: bool,
    prune: bool = True,
) -> Optional[Tuple[Dict[str, FeasEnv], Set[Tuple[str, bool]]]]:
    """Feasible-path MFP seeded at one conditional edge.

    Returns ``(states, pruned)`` — block-entry environments for every
    reached block and the conditional edges found infeasible at the
    fixpoint — or ``None`` when the source direction itself is
    statically infeasible.  ``prune=False`` propagates infeasible edges
    *unrefined* instead of dropping them (the plain-MFP comparison the
    property tests exercise)."""
    source = programs[source_label]
    env_out, snapshots = _transfer(source, {})
    seed = _edge_env(facts_of_label.get(source_label), env_out, snapshots, taken)
    if seed is None:
        return None
    start = source.taken_target if taken else source.fallthrough_target
    states: Dict[str, FeasEnv] = {start: seed}
    _iterate_states(programs, facts_of_label, states, [start], prune)
    return states, _fixpoint_pruned(programs, facts_of_label, states, prune)


def _iterate_states(
    programs: Dict[str, BlockProgram],
    facts_of_label: Dict[str, BranchFacts],
    states: Dict[str, FeasEnv],
    worklist: List[str],
    prune: bool,
) -> None:
    """Run the forward range worklist to a fixpoint, in place."""
    join_counts: Dict[str, int] = {}
    while worklist:
        label = worklist.pop()
        program = programs[label]
        env_out, snapshots = _transfer(program, states[label])
        if program.is_return:
            continue
        edges: List[Tuple[str, FeasEnv]] = []
        if program.jump_target is not None:
            edges.append((program.jump_target, env_out))
        else:
            facts = facts_of_label.get(label)
            for direction in (True, False):
                edge_env = _edge_env(facts, env_out, snapshots, direction)
                if edge_env is None:
                    if prune:
                        continue
                    edge_env = dict(env_out)
                target = (
                    program.taken_target
                    if direction
                    else program.fallthrough_target
                )
                edges.append((target, edge_env))
        for next_label, env in edges:
            if next_label not in states:
                states[next_label] = env
                worklist.append(next_label)
                continue
            joined = _env_join(states[next_label], env)
            if joined == states[next_label]:
                continue
            count = join_counts.get(next_label, 0) + 1
            join_counts[next_label] = count
            if count > WIDEN_AFTER:
                joined = _env_widen(states[next_label], joined)
            if joined != states[next_label]:
                states[next_label] = joined
                worklist.append(next_label)


def _fixpoint_pruned(
    programs: Dict[str, BlockProgram],
    facts_of_label: Dict[str, BranchFacts],
    states: Dict[str, FeasEnv],
    prune: bool,
) -> Set[Tuple[str, bool]]:
    """Conditional edges infeasible at the fixpoint.

    Pruned edges are decided at the *fixpoint*: an edge skipped early
    in the iteration may have become feasible once more state joined
    in, and only fixpoint-infeasible edges are honest witnesses.
    """
    pruned: Set[Tuple[str, bool]] = set()
    if prune:
        for label, env_in in states.items():
            program = programs[label]
            if program.branch_pc is None or program.is_return:
                continue
            env_out, snapshots = _transfer(program, env_in)
            facts = facts_of_label.get(label)
            for direction in (True, False):
                if _edge_env(facts, env_out, snapshots, direction) is None:
                    pruned.add((label, direction))
    return pruned


def entry_reachability(
    fn: IRFunction,
    def_map: DefinitionMap,
    facts_by_pc: Dict[int, BranchFacts],
) -> Tuple[Set[str], Set[Tuple[str, bool]]]:
    """Entry-seeded feasible propagation: which blocks any feasible
    execution can reach, and which conditional edges are pruned.

    Same machinery as :func:`propagate_from_edge`, but seeded at the
    function entry with everything unknown — the whole-function view.
    Returns ``(reached block labels, pruned conditional edges)``.
    Consumers: the opt-3 dead-branch lint (``DEAD405`` — blocks only
    reachable along pruned edges) and the detectability prover's
    clean-prefix BSV refinement (the must-state at a tamper point only
    needs to hold over *feasible* clean prefixes).
    """
    programs = summarize_blocks(fn, def_map)
    facts_of_label = {
        facts.block_label: facts for facts in facts_by_pc.values()
    }
    entry = fn.entry.label
    states: Dict[str, FeasEnv] = {entry: {}}
    _iterate_states(programs, facts_of_label, states, [entry], prune=True)
    pruned = _fixpoint_pruned(programs, facts_of_label, states, prune=True)
    return set(states), pruned


def analyze_feasible(
    fn: IRFunction,
    def_map: DefinitionMap,
    facts_by_pc: Dict[int, BranchFacts],
) -> FeasibleAnalysis:
    """Run the feasible-path MFP from every conditional edge."""
    programs = summarize_blocks(fn, def_map)
    facts_of_label = {
        facts.block_label: facts for facts in facts_by_pc.values()
    }
    pc_of_label = {
        program.label: program.branch_pc for program in programs.values()
    }
    findings: Dict[Tuple[int, bool], Dict[int, FeasibleFinding]] = {}
    for block in fn.blocks:
        if not block.ends_in_cond_branch():
            continue
        source_pc = block.terminator.address
        for taken in (True, False):
            result = propagate_from_edge(
                programs, facts_of_label, block.label, taken
            )
            if result is None:
                continue
            states, pruned = result
            witness = tuple(
                sorted(render_edge(label, d) for label, d in pruned)
            )
            per_target: Dict[int, FeasibleFinding] = {}
            for label, env_in in states.items():
                facts = facts_of_label.get(label)
                if facts is None or facts.check is None:
                    continue
                program = programs[label]
                env_out, snapshots = _transfer(program, env_in)
                tested = snapshots.get(
                    facts.check.load_index, FeasRange.top()
                )
                if tested.is_empty:
                    continue
                if tested.within_outcome(facts.check.taken_set):
                    forced = True
                elif tested.within_outcome(facts.check.nottaken_set):
                    forced = False
                else:
                    continue
                target_pc = pc_of_label[label]
                per_target[target_pc] = FeasibleFinding(
                    source_pc=source_pc,
                    taken=taken,
                    target_pc=target_pc,
                    forced=forced,
                    implied=str(tested),
                    witness=witness,
                )
            if per_target:
                findings[(source_pc, taken)] = per_target
    return FeasibleAnalysis(findings=findings)
