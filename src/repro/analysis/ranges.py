"""Integer interval domain used for branch range reasoning.

The paper's correlation test is *subsumption*: "if a variable is in one
range, then it must be in the other range, e.g., range [0, 5] subsumes
range [0, 10]" (§4).  Intervals over ℤ ∪ {±∞} are exactly expressive
enough for the single-variable relational branch conditions the
analysis extracts (``v + k RELOP c``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..ir.instructions import RelOp

#: Sentinels for unbounded interval ends.
NEG_INF = float("-inf")
POS_INF = float("inf")


@dataclass(frozen=True)
class Interval:
    """A closed integer interval [lo, hi]; either end may be infinite.

    An empty interval (lo > hi) means "no value possible" — a branch
    outcome that can never occur.
    """

    lo: float
    hi: float

    # -- constructors ---------------------------------------------------

    @staticmethod
    def top() -> "Interval":
        """All integers (no information)."""
        return Interval(NEG_INF, POS_INF)

    @staticmethod
    def empty() -> "Interval":
        return Interval(1, 0)

    @staticmethod
    def point(value: int) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def at_most(value: int) -> "Interval":
        return Interval(NEG_INF, value)

    @staticmethod
    def at_least(value: int) -> "Interval":
        return Interval(value, POS_INF)

    @staticmethod
    def from_relop(op: RelOp, bound: int, taken: bool) -> Optional["Interval"]:
        """The set of values for which ``value op bound`` has outcome
        ``taken``.

        Returns ``None`` only for the one non-interval case:
        the *not-taken* side of ``==`` and the *taken* side of ``!=``
        (a punctured line is not an interval).
        """
        effective = op if taken else op.negate()
        if effective is RelOp.LT:
            return Interval.at_most(bound - 1)
        if effective is RelOp.LE:
            return Interval.at_most(bound)
        if effective is RelOp.GT:
            return Interval.at_least(bound + 1)
        if effective is RelOp.GE:
            return Interval.at_least(bound)
        if effective is RelOp.EQ:
            return Interval.point(bound)
        return None  # RelOp.NE: complement of a point is not an interval

    # -- queries ----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.lo > self.hi

    @property
    def is_top(self) -> bool:
        return self.lo == NEG_INF and self.hi == POS_INF

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def subsumes(self, other: "Interval") -> bool:
        """True if every value in ``self`` is also in ``other``.

        Matches the paper's wording: "range [0, 5] subsumes range
        [0, 10]" — i.e. *self ⊆ other*.  An empty self subsumes
        anything.
        """
        if self.is_empty:
            return True
        if other.is_empty:
            return False
        return other.lo <= self.lo and self.hi <= other.hi

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def union_hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (convex hull)."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    # -- arithmetic --------------------------------------------------------

    def shift(self, delta: int) -> "Interval":
        """The interval of ``v + delta`` for ``v`` in self."""
        if self.is_empty:
            return self
        return Interval(self.lo + delta, self.hi + delta)

    def negate(self) -> "Interval":
        if self.is_empty:
            return self
        return Interval(-self.hi, -self.lo)

    def widen_against(self, newer: "Interval") -> "Interval":
        """Standard interval widening: any bound that moved outward in
        ``newer`` jumps straight to infinity.

        Used by fixpoint range propagation (the static soundness
        auditor's MFP) to guarantee termination on loops that keep
        growing a value — e.g. an incremented counter — without losing
        the bounds that stayed stable.
        """
        if self.is_empty:
            return newer
        if newer.is_empty:
            return self
        lo = self.lo if newer.lo >= self.lo else NEG_INF
        hi = self.hi if newer.hi <= self.hi else POS_INF
        return Interval(lo, hi)

    def __str__(self) -> str:
        if self.is_empty:
            return "[empty]"
        lo = "-inf" if self.lo == NEG_INF else str(int(self.lo))
        hi = "+inf" if self.hi == POS_INF else str(int(self.hi))
        return f"[{lo}, {hi}]"


def taken_partition(op: RelOp, bound: int) -> Tuple[Optional[Interval], Optional[Interval]]:
    """The (taken, not-taken) value sets of ``value op bound``.

    Each side is an :class:`Interval` or ``None`` when that side is not
    an interval (the punctured-line side of ``==``/``!=``).  The two
    sides always partition ℤ.
    """
    return (
        Interval.from_relop(op, bound, taken=True),
        Interval.from_relop(op, bound, taken=False),
    )
