"""Andersen-style, flow-insensitive, whole-module points-to analysis.

Stand-in for the Wilson–Lam pointer analysis pass the paper used with
SUIF [27].  The analysis computes, for every register and for the
memory contents of every variable, the set of variables it may point
to, then annotates each indirect access with the variables it may
touch.

Inclusion constraints (solved to a fixpoint):

=====================  ============================================
``t = addr v``          pts(t) ⊇ {v}
``t = load v``          pts(t) ⊇ mem(v)
``store v, t``          mem(v) ⊇ pts(t)
``t = load [a]``        pts(t) ⊇ mem(v) for every v ∈ pts(a)
``store [a], t``        mem(v) ⊇ pts(t) for every v ∈ pts(a)
``t = a (+|-) b``       pts(t) ⊇ pts(a) ∪ pts(b)   (stay-in-object)
``t = call f(args)``    param_i(f) ⊇ pts(arg_i); pts(t) ⊇ returns(f)
=====================  ============================================

Pointer arithmetic is assumed to stay within the pointed-to object
(standard C assumption); tampering that violates it is a *runtime*
phenomenon the interpreter models, not something the compiler must
predict.

An indirect access whose address register has an *empty* points-to set
derives its address from data the analysis cannot see (e.g. an input
value).  Such accesses are flagged :attr:`AliasResult.UNKNOWN` and
treated as touching anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..ir.function import IRModule
from ..ir.instructions import (
    AddrOf,
    BinOp,
    Call,
    Load,
    LoadIndirect,
    Reg,
    Return,
    Store,
    StoreIndirect,
    UnOp,
    Variable,
)


@dataclass
class AliasResult:
    """Points-to facts for one module."""

    #: pts of each (function name, register).
    reg_points_to: Dict[Tuple[str, Reg], FrozenSet[Variable]] = field(
        default_factory=dict
    )
    #: pts of the memory contents of each variable.
    mem_points_to: Dict[Variable, FrozenSet[Variable]] = field(default_factory=dict)
    #: Every variable whose address is ever taken (may be accessed
    #: indirectly from anywhere).
    address_taken: FrozenSet[Variable] = frozenset()

    def targets_of(
        self, fn_name: str, addr: Reg
    ) -> Optional[FrozenSet[Variable]]:
        """Variables an indirect access through ``addr`` may touch.

        ``None`` means unknown (could touch anything).
        """
        pts = self.reg_points_to.get((fn_name, addr), frozenset())
        return pts if pts else None


def analyze_aliases(module: IRModule) -> AliasResult:
    """Run the points-to fixpoint and annotate indirect accesses.

    Mutates the ``may_alias`` field of every ``LoadIndirect`` /
    ``StoreIndirect`` in the module (a deliberately explicit side
    effect: later analyses read the annotation off the instruction).
    """
    reg_pts: Dict[Tuple[str, Reg], Set[Variable]] = {}
    mem_pts: Dict[Variable, Set[Variable]] = {}
    param_regs: Dict[str, List[Variable]] = {
        fn.name: fn.params for fn in module.functions
    }
    return_sources: Dict[str, Set[Tuple[str, Reg]]] = {
        fn.name: set() for fn in module.functions
    }
    for fn in module.functions:
        for block in fn.blocks:
            terminator = block.instructions[-1] if block.instructions else None
            if isinstance(terminator, Return) and isinstance(terminator.value, Reg):
                return_sources[fn.name].add((fn.name, terminator.value))

    def reg_set(fn_name: str, reg: Reg) -> Set[Variable]:
        return reg_pts.setdefault((fn_name, reg), set())

    def mem_set(var: Variable) -> Set[Variable]:
        return mem_pts.setdefault(var, set())

    changed = True
    while changed:
        changed = False

        def absorb(target: Set[Variable], source: Set[Variable]) -> None:
            nonlocal changed
            before = len(target)
            target |= source
            if len(target) != before:
                changed = True

        for fn in module.functions:
            for instruction in fn.instructions():
                if isinstance(instruction, AddrOf):
                    absorb(reg_set(fn.name, instruction.dest), {instruction.var})
                elif isinstance(instruction, Load):
                    absorb(
                        reg_set(fn.name, instruction.dest),
                        mem_set(instruction.var),
                    )
                elif isinstance(instruction, Store):
                    if isinstance(instruction.src, Reg):
                        absorb(
                            mem_set(instruction.var),
                            reg_set(fn.name, instruction.src),
                        )
                elif isinstance(instruction, LoadIndirect):
                    dest = reg_set(fn.name, instruction.dest)
                    for var in list(reg_set(fn.name, instruction.addr)):
                        absorb(dest, mem_set(var))
                elif isinstance(instruction, StoreIndirect):
                    if isinstance(instruction.src, Reg):
                        src = reg_set(fn.name, instruction.src)
                        for var in list(reg_set(fn.name, instruction.addr)):
                            absorb(mem_set(var), src)
                elif isinstance(instruction, BinOp):
                    if instruction.op in ("+", "-"):
                        dest = reg_set(fn.name, instruction.dest)
                        for operand in (instruction.lhs, instruction.rhs):
                            if isinstance(operand, Reg):
                                absorb(dest, reg_set(fn.name, operand))
                elif isinstance(instruction, UnOp):
                    if isinstance(instruction.src, Reg):
                        absorb(
                            reg_set(fn.name, instruction.dest),
                            reg_set(fn.name, instruction.src),
                        )
                elif isinstance(instruction, Call):
                    callee_params = param_regs.get(instruction.callee)
                    if callee_params is not None:
                        for param, arg in zip(callee_params, instruction.args):
                            if isinstance(arg, Reg):
                                absorb(
                                    mem_set(param), reg_set(fn.name, arg)
                                )
                        if instruction.dest is not None:
                            dest = reg_set(fn.name, instruction.dest)
                            for source_key in return_sources[instruction.callee]:
                                absorb(dest, reg_pts.get(source_key, set()))
                    # Builtins neither take nor return pointers.

    address_taken: Set[Variable] = set()
    for fn in module.functions:
        for instruction in fn.instructions():
            if isinstance(instruction, AddrOf):
                address_taken.add(instruction.var)
    # Parameters that received pointers also make their targets reachable.
    for targets in list(mem_pts.values()):
        address_taken |= targets

    result = AliasResult(
        reg_points_to={k: frozenset(v) for k, v in reg_pts.items()},
        mem_points_to={k: frozenset(v) for k, v in mem_pts.items()},
        address_taken=frozenset(address_taken),
    )

    # Annotate indirect accesses in place.
    for fn in module.functions:
        for instruction in fn.instructions():
            if isinstance(instruction, (LoadIndirect, StoreIndirect)):
                pts = result.reg_points_to.get(
                    (fn.name, instruction.addr), frozenset()
                )
                instruction.may_alias = tuple(
                    sorted(pts, key=lambda v: (v.name, v.uid))
                )
    return result
