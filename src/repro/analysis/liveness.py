"""Backward liveness analysis over memory-resident variables.

A variable is *live* at a program point if some path from there reaches
a read of it with no intervening certain overwrite.  Reads include
direct loads, indirect loads through their alias sets (or everything
when the alias set is unknown), and calls to user functions (which may
read globals and any address-taken variable); returns keep globals
live, since callers and later calls observe them.

Used by dead-store elimination (:mod:`repro.opt.dse`): a store to a
non-escaping local that is dead immediately afterwards can be removed.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from ..ir.builder import BUILTINS
from ..ir.cfg import iter_rpo
from ..ir.function import BasicBlock, IRFunction, IRModule
from ..ir.instructions import (
    AddrOf,
    Call,
    Instruction,
    Load,
    LoadIndirect,
    Return,
    Store,
    StoreIndirect,
    Variable,
)


class VariableLiveness:
    """Solves liveness for one function and answers point queries."""

    def __init__(self, fn: IRFunction, module: IRModule):
        self._fn = fn
        self._globals = frozenset(module.globals)
        self._everything = frozenset(fn.frame_variables) | self._globals
        address_taken: Set[Variable] = set()
        for other in module.functions:
            for instruction in other.instructions():
                if isinstance(instruction, AddrOf):
                    address_taken.add(instruction.var)
        self._address_taken = frozenset(address_taken)
        self._live_out: Dict[str, FrozenSet[Variable]] = {}
        self._solve()

    # -- transfer -----------------------------------------------------------

    def _gen(self, instruction: Instruction) -> FrozenSet[Variable]:
        if isinstance(instruction, Load):
            return frozenset({instruction.var})
        if isinstance(instruction, LoadIndirect):
            if instruction.may_alias:
                return frozenset(instruction.may_alias)
            return self._everything
        if isinstance(instruction, Call):
            if instruction.callee in BUILTINS:
                return frozenset()
            return self._globals | (self._address_taken & self._everything)
        if isinstance(instruction, Return):
            return self._globals
        return frozenset()

    @staticmethod
    def _kills(instruction: Instruction) -> FrozenSet[Variable]:
        if isinstance(instruction, Store):
            return frozenset({instruction.var})
        if isinstance(instruction, StoreIndirect):
            aliases = instruction.may_alias
            if len(aliases) == 1 and not aliases[0].is_array:
                return frozenset(aliases)
        return frozenset()

    def _transfer(
        self, block: BasicBlock, live: FrozenSet[Variable]
    ) -> FrozenSet[Variable]:
        current = set(live)
        for instruction in reversed(block.instructions):
            current -= self._kills(instruction)
            current |= self._gen(instruction)
        return frozenset(current)

    # -- fixpoint --------------------------------------------------------------

    def _solve(self) -> None:
        order = list(iter_rpo(self._fn))
        for block in order:
            self._live_out[block.label] = frozenset()
        changed = True
        while changed:
            changed = False
            for block in reversed(order):
                live_out: Set[Variable] = set()
                for succ in block.succs:
                    live_out |= self._transfer(
                        succ, self._live_out[succ.label]
                    )
                frozen = frozenset(live_out)
                if frozen != self._live_out[block.label]:
                    self._live_out[block.label] = frozen
                    changed = True

    # -- queries -----------------------------------------------------------------

    def live_out_of_block(self, label: str) -> FrozenSet[Variable]:
        return self._live_out[label]

    def live_after(self, block_label: str, index: int) -> FrozenSet[Variable]:
        """Variables live immediately *after* ``block[index]``."""
        block = self._fn.block(block_label)
        current = set(self._live_out[block_label])
        for position in range(len(block.instructions) - 1, index, -1):
            instruction = block.instructions[position]
            current -= self._kills(instruction)
            current |= self._gen(instruction)
        return frozenset(current)

    def live_before(self, block_label: str, index: int) -> FrozenSet[Variable]:
        """Variables live immediately *before* ``block[index]``."""
        block = self._fn.block(block_label)
        after = set(self.live_after(block_label, index))
        instruction = block.instructions[index]
        after -= self._kills(instruction)
        after |= self._gen(instruction)
        return frozenset(after)
