"""Call graph construction over the IR module."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..ir.function import IRModule
from ..ir.instructions import Call


@dataclass
class CallGraph:
    """Direct-call graph: our language has no function pointers, so the
    graph is exact."""

    callees: Dict[str, Set[str]] = field(default_factory=dict)
    callers: Dict[str, Set[str]] = field(default_factory=dict)
    builtin_calls: Dict[str, Set[str]] = field(default_factory=dict)

    def callees_of(self, name: str) -> Set[str]:
        return self.callees.get(name, set())

    def callers_of(self, name: str) -> Set[str]:
        return self.callers.get(name, set())

    def transitive_callees(self, name: str) -> Set[str]:
        """All user functions reachable from ``name`` (exclusive)."""
        seen: Set[str] = set()
        stack = list(self.callees_of(name))
        while stack:
            callee = stack.pop()
            if callee in seen:
                continue
            seen.add(callee)
            stack.extend(self.callees_of(callee))
        return seen

    def topological_order(self) -> List[str]:
        """Callees-before-callers order; cycles (recursion) broken
        arbitrarily but deterministically."""
        order: List[str] = []
        visited: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(name: str) -> None:
            state = visited.get(name)
            if state is not None:
                return
            visited[name] = 0
            for callee in sorted(self.callees_of(name)):
                if visited.get(callee) != 0:
                    visit(callee)
            visited[name] = 1
            order.append(name)

        for name in sorted(self.callees):
            visit(name)
        return order


def build_call_graph(module: IRModule) -> CallGraph:
    """Construct the call graph of a module."""
    graph = CallGraph()
    user_functions = {fn.name for fn in module.functions}
    for fn in module.functions:
        graph.callees.setdefault(fn.name, set())
        graph.callers.setdefault(fn.name, set())
        graph.builtin_calls.setdefault(fn.name, set())
    for fn in module.functions:
        for instruction in fn.instructions():
            if isinstance(instruction, Call):
                if instruction.callee in user_functions:
                    graph.callees[fn.name].add(instruction.callee)
                    graph.callers[instruction.callee].add(fn.name)
                else:
                    graph.builtin_calls[fn.name].add(instruction.callee)
    return graph
