"""Definition sites and reaching-definitions analysis.

A *definition site* is anything that may write a variable the current
function can observe: a direct store, an indirect store (through its
alias set), or a call (through the callee's pseudo-store effect, §5.3).
Reaching definitions is the classic forward may-analysis over those
sites; the BAT construction uses it to connect a constraining store to
the load whose branch it predicts (Fig. 5, lines 6–9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..ir.cfg import iter_rpo
from ..ir.function import BasicBlock, IRFunction, IRModule
from ..ir.instructions import Call, Instruction, Store, StoreIndirect, Variable
from .purity import PurityResult


@dataclass(frozen=True)
class DefSite:
    """One potential write of ``var``.

    ``strong`` means the write certainly happens and certainly targets
    exactly this variable (only direct scalar stores qualify); strong
    definitions kill earlier definitions of the variable.
    """

    block_label: str
    index: int  # position within the block's instruction list
    var: Variable
    strong: bool
    kind: str  # "store" | "indirect" | "call"

    def __str__(self) -> str:
        tag = "!" if self.strong else "?"
        return f"{self.kind}{tag} {self.var} @{self.block_label}[{self.index}]"


class DefinitionMap:
    """All definition sites of one function, indexed for the analyses."""

    def __init__(
        self,
        fn: IRFunction,
        module: IRModule,
        purity: PurityResult,
    ):
        self._fn = fn
        self.sites: List[DefSite] = []
        self._by_position: Dict[Tuple[str, int], List[DefSite]] = {}
        self._by_var: Dict[Variable, List[DefSite]] = {}
        global_vars = frozenset(module.globals)
        observable = frozenset(fn.frame_variables) | global_vars

        for block in fn.blocks:
            for index, instruction in enumerate(block.instructions):
                for site in self._sites_for(
                    instruction, block, index, observable, purity, global_vars
                ):
                    self.sites.append(site)
                    self._by_position.setdefault(
                        (block.label, index), []
                    ).append(site)
                    self._by_var.setdefault(site.var, []).append(site)

    def _sites_for(
        self,
        instruction: Instruction,
        block: BasicBlock,
        index: int,
        observable: FrozenSet[Variable],
        purity: PurityResult,
        global_vars: FrozenSet[Variable],
    ) -> Iterable[DefSite]:
        if isinstance(instruction, Store):
            yield DefSite(block.label, index, instruction.var, True, "store")
        elif isinstance(instruction, StoreIndirect):
            if instruction.may_alias:
                targets: Iterable[Variable] = (
                    v for v in instruction.may_alias if v in observable
                )
                sole = len(instruction.may_alias) == 1
                for var in targets:
                    strong = sole and not var.is_array
                    yield DefSite(block.label, index, var, strong, "indirect")
            else:
                # Unknown target: may write any observable variable.
                for var in sorted(observable, key=lambda v: (v.name, v.uid)):
                    yield DefSite(block.label, index, var, False, "indirect")
        elif isinstance(instruction, Call):
            clobbers, targets = purity.call_targets(
                self._fn, instruction, global_vars
            )
            for var in sorted(targets, key=lambda v: (v.name, v.uid)):
                yield DefSite(block.label, index, var, False, "call")

    def at(self, block_label: str, index: int) -> List[DefSite]:
        """Definition sites produced by the instruction at a position."""
        return self._by_position.get((block_label, index), [])

    def of_var(self, var: Variable) -> List[DefSite]:
        """All definition sites of a variable."""
        return self._by_var.get(var, [])

    def defs_between(
        self, block_label: str, start: int, end: int, var: Variable
    ) -> List[DefSite]:
        """Definition sites of ``var`` in ``block[start:end]``."""
        return [
            site
            for site in self._by_var.get(var, [])
            if site.block_label == block_label and start <= site.index < end
        ]


class ReachingDefinitions:
    """Forward may-analysis: which definition sites reach each point."""

    def __init__(self, fn: IRFunction, def_map: DefinitionMap):
        self._fn = fn
        self._defs = def_map
        self._block_in: Dict[str, FrozenSet[DefSite]] = {}
        self._block_out: Dict[str, FrozenSet[DefSite]] = {}
        self._solve()

    def _transfer(
        self, block: BasicBlock, live: Set[DefSite]
    ) -> Set[DefSite]:
        for index in range(len(block.instructions)):
            for site in self._defs.at(block.label, index):
                if site.strong:
                    live = {
                        s for s in live if s.var != site.var
                    }
                live = set(live)
                live.add(site)
        return live

    def _solve(self) -> None:
        order = list(iter_rpo(self._fn))
        for block in order:
            self._block_in[block.label] = frozenset()
            self._block_out[block.label] = frozenset()
        changed = True
        while changed:
            changed = False
            for block in order:
                incoming: Set[DefSite] = set()
                for pred in block.preds:
                    incoming |= self._block_out[pred.label]
                frozen_in = frozenset(incoming)
                if frozen_in != self._block_in[block.label]:
                    self._block_in[block.label] = frozen_in
                outgoing = frozenset(self._transfer(block, set(incoming)))
                if outgoing != self._block_out[block.label]:
                    self._block_out[block.label] = outgoing
                    changed = True

    def reaching(self, block_label: str, index: int) -> FrozenSet[DefSite]:
        """Definitions live immediately *before* ``block[index]``."""
        self._fn.block(block_label)  # validate the label before trusting the index
        live: Set[DefSite] = set(self._block_in[block_label])
        for i in range(index):
            for site in self._defs.at(block_label, i):
                if site.strong:
                    live = {s for s in live if s.var != site.var}
                live.add(site)
        return frozenset(live)

    def reaches_load(self, site: DefSite, block_label: str, index: int) -> bool:
        """True if ``site`` reaches the instruction at the position
        (typically a :class:`Load` of ``site.var``)."""
        return site in self.reaching(block_label, index)


def analyze_definitions(
    fn: IRFunction, module: IRModule, purity: PurityResult
) -> Tuple[DefinitionMap, ReachingDefinitions]:
    """Convenience: build the definition map and solve reaching defs."""
    def_map = DefinitionMap(fn, module, purity)
    return def_map, ReachingDefinitions(fn, def_map)
