"""Function side-effect analysis (§5.3 of the paper).

For the BAT construction, a call site must be treated as a set of
*pseudo stores* to whatever non-local memory the callee might modify.
The paper proves a simple property per function ("only modifies
non-local state through pointer parameters"), treats C library calls by
known semantics, and falls back to "may modify anything".

We compute, for every function, the set of variables it may store to —
directly, through pointers (using the whole-module points-to facts), or
transitively through calls — plus a *clobbers-everything* flag for
stores whose target the analysis cannot bound.  Builtins (``read_int``,
``emit``) are known not to touch program memory, mirroring the paper's
special handling of libc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set, Tuple

from ..ir.builder import BUILTINS
from ..ir.function import IRFunction, IRModule
from ..ir.instructions import Call, Store, StoreIndirect, Variable
from .callgraph import CallGraph, build_call_graph


@dataclass(frozen=True)
class StoreEffect:
    """What a function may write, from any caller's point of view."""

    clobbers_all: bool
    variables: FrozenSet[Variable]

    def visible_targets(
        self, frame: FrozenSet[Variable], global_vars: FrozenSet[Variable]
    ) -> FrozenSet[Variable]:
        """The effect restricted to what a caller with ``frame`` sees."""
        visible = frame | global_vars
        if self.clobbers_all:
            return visible
        return self.variables & visible


@dataclass
class PurityResult:
    """Per-function store effects for a module."""

    effects: Dict[str, StoreEffect]
    call_graph: CallGraph

    def effect_of(self, name: str) -> StoreEffect:
        if name in BUILTINS:
            return StoreEffect(clobbers_all=False, variables=frozenset())
        return self.effects[name]

    def call_targets(
        self, caller: IRFunction, call: Call, global_vars: FrozenSet[Variable]
    ) -> Tuple[bool, FrozenSet[Variable]]:
        """Pseudo-store targets of a call site inside ``caller``.

        Returns ``(clobbers_all, variables)`` where variables are
        restricted to the caller's frame and the globals (the only
        memory the caller's own loads can observe).
        """
        effect = self.effect_of(call.callee)
        frame = frozenset(caller.frame_variables)
        if effect.clobbers_all:
            return True, frame | global_vars
        return False, effect.visible_targets(frame, global_vars)


def analyze_purity(module: IRModule) -> PurityResult:
    """Compute transitive store effects for every function.

    Requires alias annotations (``may_alias``) to be present — run
    :func:`repro.analysis.alias.analyze_aliases` first.  An indirect
    store with no alias information clobbers everything, which is the
    paper's conservative fallback for unanalyzable callees.
    """
    graph = build_call_graph(module)
    clobbers: Dict[str, bool] = {fn.name: False for fn in module.functions}
    stored: Dict[str, Set[Variable]] = {fn.name: set() for fn in module.functions}

    # Local (non-transitive) effects.
    for fn in module.functions:
        for instruction in fn.instructions():
            if isinstance(instruction, Store):
                stored[fn.name].add(instruction.var)
            elif isinstance(instruction, StoreIndirect):
                if instruction.may_alias:
                    stored[fn.name].update(instruction.may_alias)
                else:
                    clobbers[fn.name] = True

    # Transitive closure over the call graph (fixpoint handles recursion).
    changed = True
    while changed:
        changed = False
        for fn in module.functions:
            for callee in graph.callees_of(fn.name):
                if clobbers[callee] and not clobbers[fn.name]:
                    clobbers[fn.name] = True
                    changed = True
                missing = stored[callee] - stored[fn.name]
                if missing:
                    stored[fn.name] |= missing
                    changed = True

    effects = {
        name: StoreEffect(
            clobbers_all=clobbers[name], variables=frozenset(stored[name])
        )
        for name in stored
    }
    return PurityResult(effects=effects, call_graph=graph)
