"""Compiler analyses feeding the branch-correlation pass.

* :mod:`alias` — Andersen-style points-to (stand-in for SUIF's [27]);
* :mod:`callgraph` / :mod:`purity` — call effects (§5.3 pseudo-stores);
* :mod:`defs` — definition sites and reaching definitions;
* :mod:`ranges` — the interval domain for subsumption tests;
* :mod:`branch_info` — per-branch check/inference predicates.
"""

from .alias import AliasResult, analyze_aliases
from .branch_info import (
    BranchFacts,
    CheckInfo,
    InferenceInfo,
    OutcomeSet,
    analyze_branch,
    analyze_branches,
)
from .callgraph import CallGraph, build_call_graph
from .defs import (
    DefinitionMap,
    DefSite,
    ReachingDefinitions,
    analyze_definitions,
)
from .liveness import VariableLiveness
from .purity import PurityResult, StoreEffect, analyze_purity
from .ranges import Interval, NEG_INF, POS_INF, taken_partition

__all__ = [
    "AliasResult",
    "BranchFacts",
    "CallGraph",
    "CheckInfo",
    "DefSite",
    "DefinitionMap",
    "InferenceInfo",
    "Interval",
    "NEG_INF",
    "OutcomeSet",
    "POS_INF",
    "PurityResult",
    "ReachingDefinitions",
    "StoreEffect",
    "VariableLiveness",
    "analyze_aliases",
    "analyze_branch",
    "analyze_branches",
    "analyze_definitions",
    "analyze_purity",
    "build_call_graph",
    "taken_partition",
]
