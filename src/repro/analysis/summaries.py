"""Bottom-up interprocedural transfer summaries for globals (opt 2).

Purity analysis (:mod:`repro.analysis.purity`) answers *whether* a call
may store to a variable; at ``--opt 2`` the builder also wants to know
*what* the callee can write, so that a prediction proved before a call
can be kept alive across it.  This module computes, per function and
per global variable, a **transfer summary**: the convex hull of the
values the function (or anything it transitively calls) may store.

Each direct store contributes one *atom*:

* ``CONST c``  — a store of a resolvable constant (``g = 5``);
* ``AFFINE d`` — a store of ``load(g) + d`` for the *same* global
  (``g = g + 1``), the self-increment idiom;
* ``TOP``      — anything else (unresolvable value, cross-variable
  copy, aliased indirect store).

Atoms are resolved **per basic block** with a forward walk, exactly
mirroring the precision of the independent re-derivation in
:mod:`repro.staticcheck.ipsummaries` — the auditor must be able to
re-prove every suppression from scratch, so neither side may out-reason
the other.  An affine atom's delta is relative to the value *at load
time*; that is all the preservation argument needs (see
:meth:`VarTransfer.preserves`).

Summaries propagate bottom-up over the call graph as a union fixpoint
(the atom sets are finite, so it terminates); a standard interval
widening kicks in after :data:`WIDEN_AFTER` rounds as the sound
recursion backstop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple

from ..ir.builder import BUILTINS
from ..ir.function import IRFunction, IRModule
from ..ir.instructions import (
    BinOp,
    Call,
    Cmp,
    Const,
    Load,
    Reg,
    Store,
    StoreIndirect,
    UnOp,
    VarKind,
    Variable,
)
from .branch_info import OutcomeSet
from .callgraph import build_call_graph
from .ranges import NEG_INF, POS_INF, Interval

#: Fixpoint rounds before interval widening (recursion backstop).
WIDEN_AFTER = 8


@dataclass(frozen=True)
class VarTransfer:
    """Hull of what one function may write to one global.

    ``const_hull`` is the hull of directly-stored constants,
    ``delta_hull`` the hull of self-relative deltas (``g = g + d``),
    and ``top`` means some write is unbounded.  A transfer with neither
    hull and ``top=False`` writes nothing (identity).
    """

    const_hull: Optional[Interval] = None
    delta_hull: Optional[Interval] = None
    top: bool = False

    @staticmethod
    def top_transfer() -> "VarTransfer":
        return VarTransfer(top=True)

    @property
    def is_identity(self) -> bool:
        return not self.top and self.const_hull is None and self.delta_hull is None

    def join(self, other: "VarTransfer") -> "VarTransfer":
        if self.top or other.top:
            return VarTransfer.top_transfer()
        return VarTransfer(
            const_hull=_hull_join(self.const_hull, other.const_hull),
            delta_hull=_hull_join(self.delta_hull, other.delta_hull),
        )

    def widen_against(self, newer: "VarTransfer") -> "VarTransfer":
        if self.top or newer.top:
            return VarTransfer.top_transfer()
        return VarTransfer(
            const_hull=_hull_widen(self.const_hull, newer.const_hull),
            delta_hull=_hull_widen(self.delta_hull, newer.delta_hull),
        )

    def preserves(self, outcome: OutcomeSet) -> bool:
        """Can any sequence of this transfer's writes move the variable
        out of ``outcome``?

        The argument is inductive over write sites: assume the variable
        has stayed in ``outcome`` so far, and show each write lands back
        inside it.

        * A constant write lands in ``const_hull``; it stays inside iff
          ``outcome ⊇ const_hull``.
        * An affine write stores *some earlier value* plus ``d`` for
          ``d ∈ delta_hull`` (the delta is load-time relative, and by
          induction every earlier value was in ``outcome``).  A
          lower-bounded set survives iff no delta is negative, an
          upper-bounded set iff no delta is positive, and a punctured
          line ``Z \\ {q}`` only under the exact identity delta 0 —
          a nonzero delta can step from ``q - d`` onto the hole.
        """
        if self.top:
            return False
        if self.const_hull is not None and not self.const_hull.is_empty:
            if not outcome.superset_of(self.const_hull):
                return False
        delta = self.delta_hull
        if delta is not None and not delta.is_empty:
            if outcome.interval is None:
                return delta.lo == 0 and delta.hi == 0
            interval = outcome.interval
            if interval.is_empty:
                return False
            if interval.lo != NEG_INF and delta.lo < 0:
                return False
            if interval.hi != POS_INF and delta.hi > 0:
                return False
        return True

    def describe(self, var_name: str) -> str:
        """The documented summary grammar — re-rendered independently
        by the interproc audit, so keep both sides in sync:
        ``var' in [lo, hi]`` (const) / ``var' = var + [lo, hi]``
        (affine), both joined with ``" or "``."""
        if self.top:
            return f"{var_name}' unbounded"
        parts = []
        if self.const_hull is not None and not self.const_hull.is_empty:
            parts.append(f"{var_name}' in {self.const_hull}")
        if self.delta_hull is not None and not self.delta_hull.is_empty:
            parts.append(f"{var_name}' = {var_name} + {self.delta_hull}")
        if not parts:
            return f"{var_name}' unchanged"
        return " or ".join(parts)


def _hull_join(a: Optional[Interval], b: Optional[Interval]) -> Optional[Interval]:
    if a is None:
        return b
    if b is None:
        return a
    return a.union_hull(b)


def _hull_widen(old: Optional[Interval], new: Optional[Interval]) -> Optional[Interval]:
    if old is None or new is None:
        return _hull_join(old, new)
    return old.widen_against(new)


@dataclass
class FunctionSummary:
    """Mod/ref + transfer facts for one function (transitive)."""

    name: str
    transfers: Dict[Variable, VarTransfer] = field(default_factory=dict)
    reads: Set[Variable] = field(default_factory=set)
    clobbers_all: bool = False

    def writes(self) -> FrozenSet[Variable]:
        return frozenset(self.transfers)

    def merge_var(self, var: Variable, transfer: VarTransfer) -> None:
        current = self.transfers.get(var)
        self.transfers[var] = transfer if current is None else current.join(transfer)

    def equivalent(self, other: "FunctionSummary") -> bool:
        return (
            self.clobbers_all == other.clobbers_all
            and self.reads == other.reads
            and self.transfers == other.transfers
        )


@dataclass
class ProgramSummaries:
    """All function summaries; the ``--opt 2`` whole-program fact base."""

    by_function: Dict[str, FunctionSummary]

    def transfer_for(self, callee: str, var: Variable) -> VarTransfer:
        """The callee's transfer for ``var``, conservatively ``TOP``
        when the callee is unknown or clobbers everything.  Builtins
        never touch program memory (identity)."""
        if callee in BUILTINS:
            return VarTransfer()
        summary = self.by_function.get(callee)
        if summary is None or summary.clobbers_all:
            return VarTransfer.top_transfer()
        return summary.transfers.get(var, VarTransfer())


def _is_summarized_global(var: Variable) -> bool:
    return var.kind is VarKind.GLOBAL and not var.is_pointer and not var.is_array


def _local_summary(fn: IRFunction) -> FunctionSummary:
    """Atoms from this function's own stores (no call propagation)."""
    summary = FunctionSummary(name=fn.name)
    for block in fn.blocks:
        # Forward per-block walk; register exprs never cross blocks, to
        # match the auditor's per-block derivation exactly.
        exprs: Dict[Reg, Tuple] = {}
        for instruction in block.instructions:
            if isinstance(instruction, Const):
                exprs[instruction.dest] = ("const", instruction.value)
            elif isinstance(instruction, Load):
                var = instruction.var
                if _is_summarized_global(var):
                    summary.reads.add(var)
                    exprs[instruction.dest] = ("gload", var, 1, 0)
            elif isinstance(instruction, BinOp):
                folded = _fold_binop(exprs, instruction)
                if folded is not None:
                    exprs[instruction.dest] = folded
            elif isinstance(instruction, UnOp):
                folded = _fold_unop(exprs, instruction)
                if folded is not None:
                    exprs[instruction.dest] = folded
            elif isinstance(instruction, Cmp):
                lhs = _resolve(exprs, instruction.lhs)
                rhs = _resolve(exprs, instruction.rhs)
                if (
                    lhs is not None
                    and rhs is not None
                    and lhs[0] == "const"
                    and rhs[0] == "const"
                ):
                    exprs[instruction.dest] = (
                        "const",
                        int(instruction.op.evaluate(lhs[1], rhs[1])),
                    )
            elif isinstance(instruction, Store):
                var = instruction.var
                if not _is_summarized_global(var):
                    continue
                summary.merge_var(var, _store_atom(exprs, var, instruction.src))
            elif isinstance(instruction, StoreIndirect):
                if instruction.may_alias:
                    for var in instruction.may_alias:
                        if _is_summarized_global(var):
                            summary.merge_var(var, VarTransfer.top_transfer())
                else:
                    summary.clobbers_all = True
    return summary


def _resolve(exprs: Dict[Reg, Tuple], operand) -> Optional[Tuple]:
    if isinstance(operand, int):
        return ("const", operand)
    if isinstance(operand, Reg):
        return exprs.get(operand)
    return None


def _fold_binop(exprs: Dict[Reg, Tuple], instruction: BinOp) -> Optional[Tuple]:
    lhs = _resolve(exprs, instruction.lhs)
    rhs = _resolve(exprs, instruction.rhs)
    if lhs is None or rhs is None:
        return None
    if instruction.op in ("+", "-"):
        if instruction.op == "-":
            rhs = _negate_expr(rhs)
            if rhs is None:
                return None
        if lhs[0] == "const" and rhs[0] == "const":
            return ("const", lhs[1] + rhs[1])
        if lhs[0] == "gload" and rhs[0] == "const":
            return ("gload", lhs[1], lhs[2], lhs[3] + rhs[1])
        if lhs[0] == "const" and rhs[0] == "gload":
            return ("gload", rhs[1], rhs[2], rhs[3] + lhs[1])
        return None  # gload + gload: two terms, not affine in one
    if lhs[0] == "const" and rhs[0] == "const":
        a, b = lhs[1], rhs[1]
        # Same folding semantics as the auditor's forward walk
        # (truncating division), so both derivations agree exactly.
        if instruction.op == "*":
            return ("const", a * b)
        if instruction.op == "/":
            return ("const", int(a / b)) if b else None
        if instruction.op == "%":
            return ("const", a - int(a / b) * b) if b else None
    return None


def _negate_expr(expr: Tuple) -> Optional[Tuple]:
    if expr[0] == "const":
        return ("const", -expr[1])
    if expr[0] == "gload":
        return ("gload", expr[1], -expr[2], -expr[3])
    return None


def _fold_unop(exprs: Dict[Reg, Tuple], instruction: UnOp) -> Optional[Tuple]:
    src = _resolve(exprs, instruction.src)
    if src is None:
        return None
    if instruction.op == "-":
        return _negate_expr(src)
    if instruction.op == "!" and src[0] == "const":
        return ("const", int(src[1] == 0))
    return None


def _store_atom(exprs: Dict[Reg, Tuple], var: Variable, src) -> VarTransfer:
    expr = _resolve(exprs, src)
    if expr is None:
        return VarTransfer.top_transfer()
    if expr[0] == "const":
        return VarTransfer(const_hull=Interval.point(expr[1]))
    if expr[0] == "gload" and expr[1] == var and expr[2] == 1:
        return VarTransfer(delta_hull=Interval.point(expr[3]))
    return VarTransfer.top_transfer()  # negated or cross-variable copy


def analyze_summaries(module: IRModule) -> ProgramSummaries:
    """Bottom-up union fixpoint of local atoms over the call graph.

    Processing callees before callers (deterministic topological order)
    converges in one round for call DAGs; recursion iterates, with
    interval widening after :data:`WIDEN_AFTER` rounds guaranteeing
    termination regardless of the atom structure.
    """
    graph = build_call_graph(module)
    local = {fn.name: _local_summary(fn) for fn in module.functions}
    summaries: Dict[str, FunctionSummary] = {
        name: FunctionSummary(
            name=name,
            transfers=dict(s.transfers),
            reads=set(s.reads),
            clobbers_all=s.clobbers_all,
        )
        for name, s in local.items()
    }
    order = graph.topological_order()
    rounds = 0
    changed = True
    while changed:
        changed = False
        rounds += 1
        for name in order:
            base = local[name]
            merged = FunctionSummary(
                name=name,
                transfers=dict(base.transfers),
                reads=set(base.reads),
                clobbers_all=base.clobbers_all,
            )
            for callee in graph.callees_of(name):
                callee_summary = summaries.get(callee)
                if callee_summary is None:  # builtin: no memory effects
                    continue
                merged.clobbers_all = merged.clobbers_all or callee_summary.clobbers_all
                merged.reads |= callee_summary.reads
                for var, transfer in callee_summary.transfers.items():
                    merged.merge_var(var, transfer)
            current = summaries[name]
            if not current.equivalent(merged):
                if rounds > WIDEN_AFTER:
                    for var, transfer in merged.transfers.items():
                        old = current.transfers.get(var)
                        if old is not None:
                            merged.transfers[var] = old.widen_against(transfer)
                summaries[name] = merged
                changed = True
    return ProgramSummaries(by_function=summaries)


def render_region_summary(
    summaries: ProgramSummaries,
    callees: Tuple[str, ...],
    var_name: str,
    var: Variable,
) -> str:
    """Canonical provenance text for one suppressed kill: every callee
    in the region with its transfer, sorted, ``"; "``-joined."""
    parts = []
    for callee in sorted(set(callees)):
        transfer = summaries.transfer_for(callee, var)
        parts.append(f"{callee}: {transfer.describe(var_name)}")
    return "; ".join(parts)
