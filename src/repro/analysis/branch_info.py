"""Branch condition analysis: connecting branches to memory values.

For each conditional branch, walk the defining chain of its operand
backwards *within the branch's basic block* through affine arithmetic
(``r ± const``, ``-r``, ``c - r``, and 0/1 comparisons materialized by
``Cmp``).  Every register on the chain relates to the branch operand by
``operand = sign·r + offset``, so a relational condition on the operand
solves to a relational condition on ``r``.

This yields the paper's two roles:

* **Check side** ("branch whose outcome is inferable from l's range",
  Fig. 5 line 5): if the chain terminates at a direct ``Load`` of a
  scalar variable ``v``, the branch outcome is a deterministic function
  of the value ``l`` loads — the branch is *checkable*.
* **Inference side** ("branch whose outcome can infer the range",
  Fig. 5 lines 7/12): once the branch commits, its direction reveals a
  range for the memory copy of a variable — through the terminal load,
  or through a ``Store`` of any chain register (Fig. 3.b: store, then
  branch on the stored value).  Inference is only sound if memory still
  mirrors the register when the branch commits, so each inference
  access requires a *clean gap*: no potential store to the variable
  between the access and the end of the block.

Keeping the whole chain inside one basic block is a conservative
simplification (DESIGN.md §4): a register then has exactly one static
defining chain, eliminating the paper's "other definitions to the
register" case (Fig. 5 lines 19–21), because registers here are
single-assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.function import BasicBlock, IRFunction
from ..ir.instructions import (
    BinOp,
    Cmp,
    CondBranch,
    Load,
    Reg,
    RelOp,
    Store,
    UnOp,
    Variable,
    defined_reg,
)
from .defs import DefinitionMap
from .ranges import Interval


@dataclass(frozen=True)
class OutcomeSet:
    """The set of variable values producing one branch outcome.

    Either a closed interval, or the complement of a single point (the
    non-interval side of an equality test).
    """

    interval: Optional[Interval] = None
    hole: Optional[int] = None

    @staticmethod
    def from_relop(op: RelOp, bound: int, taken: bool) -> "OutcomeSet":
        interval = Interval.from_relop(op, bound, taken)
        if interval is not None:
            return OutcomeSet(interval=interval)
        return OutcomeSet(hole=bound)

    def contains_value(self, value: int) -> bool:
        if self.interval is not None:
            return self.interval.contains(value)
        return value != self.hole

    def superset_of(self, values: Interval) -> bool:
        """True if every value in ``values`` lies in this outcome set."""
        if values.is_empty:
            return True
        if self.interval is not None:
            return values.subsumes(self.interval)
        return not values.contains(self.hole)

    def superset_of_outcome(self, other: "OutcomeSet") -> bool:
        """True if ``other`` ⊆ ``self`` (the paper's subsumption test,
        lifted to punctured-line sets so equality branches correlate
        in both directions)."""
        if other.interval is not None:
            return self.superset_of(other.interval)
        # other = Z \ {q}: contained in an interval only if the interval
        # is all of Z; contained in Z \ {p} iff p == q.
        if self.interval is not None:
            return self.interval.is_top
        return self.hole == other.hole

    @property
    def is_trivial(self) -> bool:
        """True when the set carries no information (all of Z)."""
        return self.interval is not None and self.interval.is_top

    def __str__(self) -> str:
        if self.interval is not None:
            return str(self.interval)
        return f"Z\\{{{self.hole}}}"


@dataclass(frozen=True)
class CheckInfo:
    """How a branch's outcome follows from its terminal load."""

    var: Variable
    op: RelOp
    bound: int
    taken_set: OutcomeSet
    nottaken_set: OutcomeSet
    load_index: int  # index of the terminal load within the block

    def outcome_for_value(self, value: int) -> bool:
        return self.op.evaluate(value, self.bound)

    def outcome_set(self, taken: bool) -> OutcomeSet:
        return self.taken_set if taken else self.nottaken_set


@dataclass(frozen=True)
class InferenceInfo:
    """A range fact one branch direction implies about one variable."""

    var: Variable
    kind: str  # "load" | "store"
    index: int  # instruction index within the block
    op: RelOp
    bound: int

    def implied_interval(self, taken: bool) -> Optional[Interval]:
        """Interval of mem[var] when the branch goes ``taken``
        (None when that side is not an interval)."""
        return Interval.from_relop(self.op, self.bound, taken)

    def implied_set(self, taken: bool) -> "OutcomeSet":
        """Full outcome-set form (handles the non-interval sides)."""
        return OutcomeSet.from_relop(self.op, self.bound, taken)


@dataclass
class BranchFacts:
    """Everything the correlation pass needs about one branch."""

    branch: CondBranch
    block_label: str
    check: Optional[CheckInfo]
    inferences: List[InferenceInfo]

    @property
    def pc(self) -> int:
        return self.branch.address


def _solve(op: RelOp, bound: int, sign: int, offset: int) -> Tuple[RelOp, int]:
    """Solve ``sign·r + offset OP bound`` for ``r``."""
    if sign == 1:
        return op, bound - offset
    return op.swap(), offset - bound


def _walk_chain(
    block: BasicBlock, branch: CondBranch
) -> Optional[Tuple[List[Tuple[Reg, int, int]], Optional[Tuple[Load, int, int, int]], RelOp, int]]:
    """Walk the affine defining chain of the branch operand.

    Returns ``(chain_points, terminal, op, bound)``:

    * ``chain_points`` — every register on the chain as
      ``(reg, sign, offset)`` with ``operand = sign·reg + offset``;
    * ``terminal`` — ``(load, index, sign, offset)`` when the chain ends
      at a direct load, else ``None``;
    * ``op, bound`` — the (possibly Cmp-rewritten) branch condition on
      the operand.

    ``None`` when the branch compares two registers (no constant bound).
    """
    if not isinstance(branch.rhs, int):
        return None
    defs_by_reg: Dict[Reg, Tuple[int, object]] = {}
    for index, instruction in enumerate(block.instructions):
        reg = defined_reg(instruction)
        if reg is not None:
            defs_by_reg[reg] = (index, instruction)

    op = branch.op
    bound = branch.rhs
    reg = branch.lhs
    sign, offset = 1, 0
    chain_points: List[Tuple[Reg, int, int]] = []
    for _ in range(len(block.instructions) + 1):
        chain_points.append((reg, sign, offset))
        entry = defs_by_reg.get(reg)
        if entry is None:
            return chain_points, None, op, bound  # chain leaves the block
        index, instruction = entry
        if isinstance(instruction, Load):
            return chain_points, (instruction, index, sign, offset), op, bound
        if isinstance(instruction, BinOp) and instruction.op in ("+", "-"):
            lhs, rhs = instruction.lhs, instruction.rhs
            if isinstance(lhs, Reg) and isinstance(rhs, int):
                offset += sign * (rhs if instruction.op == "+" else -rhs)
                reg = lhs
                continue
            if isinstance(lhs, int) and isinstance(rhs, Reg):
                offset += sign * lhs
                if instruction.op == "-":
                    sign = -sign
                reg = rhs
                continue
            return chain_points, None, op, bound
        if isinstance(instruction, UnOp) and instruction.op == "-":
            if isinstance(instruction.src, Reg):
                sign = -sign
                reg = instruction.src
                continue
            return chain_points, None, op, bound
        if isinstance(instruction, Cmp):
            # Branch over a materialized 0/1 comparison.  Only the exact
            # "cmp != 0" / "cmp == 0" forms are rewritable.
            if sign != 1 or offset != 0:
                return chain_points, None, op, bound
            if not (
                isinstance(instruction.lhs, Reg)
                and isinstance(instruction.rhs, int)
            ):
                return chain_points, None, op, bound
            if op is RelOp.NE and bound == 0:
                op = instruction.op
            elif op is RelOp.EQ and bound == 0:
                op = instruction.op.negate()
            else:
                return chain_points, None, op, bound
            bound = instruction.rhs
            reg = instruction.lhs
            continue
        return chain_points, None, op, bound
    return chain_points, None, op, bound  # pragma: no cover - defensive


def analyze_branch(
    fn: IRFunction, block: BasicBlock, def_map: DefinitionMap
) -> Optional[BranchFacts]:
    """Produce :class:`BranchFacts` for a block's conditional branch,
    or ``None`` when nothing about it is analyzable."""
    if not block.ends_in_cond_branch():
        return None
    branch = block.terminator
    assert isinstance(branch, CondBranch)
    walk = _walk_chain(block, branch)
    if walk is None:
        return None
    chain_points, terminal, op, bound = walk
    terminator_index = len(block.instructions) - 1

    def clean_gap(var: Variable, access_index: int) -> bool:
        return not def_map.defs_between(
            block.label, access_index + 1, terminator_index, var
        )

    check: Optional[CheckInfo] = None
    inferences: List[InferenceInfo] = []

    if terminal is not None:
        load, load_index, sign, offset = terminal
        eff_op, eff_bound = _solve(op, bound, sign, offset)
        check = CheckInfo(
            var=load.var,
            op=eff_op,
            bound=eff_bound,
            taken_set=OutcomeSet.from_relop(eff_op, eff_bound, True),
            nottaken_set=OutcomeSet.from_relop(eff_op, eff_bound, False),
            load_index=load_index,
        )
        if clean_gap(load.var, load_index):
            inferences.append(
                InferenceInfo(load.var, "load", load_index, eff_op, eff_bound)
            )

    # Store-based inference: a store of any chain register reveals the
    # range of the stored variable's memory copy.
    solutions = {
        reg: _solve(op, bound, sign, offset)
        for reg, sign, offset in chain_points
    }
    for index, instruction in enumerate(block.instructions[:terminator_index]):
        if (
            isinstance(instruction, Store)
            and isinstance(instruction.src, Reg)
            and instruction.src in solutions
        ):
            if clean_gap(instruction.var, index):
                store_op, store_bound = solutions[instruction.src]
                inferences.append(
                    InferenceInfo(
                        instruction.var, "store", index, store_op, store_bound
                    )
                )

    if check is None and not inferences:
        return None
    return BranchFacts(
        branch=branch,
        block_label=block.label,
        check=check,
        inferences=inferences,
    )


def analyze_branches(
    fn: IRFunction, def_map: DefinitionMap
) -> Dict[int, BranchFacts]:
    """Facts for every analyzable conditional branch, keyed by PC."""
    facts: Dict[int, BranchFacts] = {}
    for block in fn.blocks:
        result = analyze_branch(fn, block, def_map)
        if result is not None:
            facts[result.pc] = result
    return facts
