"""Simulated attack campaigns — the Figure 7 methodology.

Per the paper (§6): each server program is attacked 100 times,
independently.  Every attack tampers one randomly selected memory word
at the program's vulnerability point — a live *stack* slot for buffer
overflows, an arbitrary data address (globals included) for format
strings.  For each attack we record whether the tampering changed the
program's control flow at all, and whether the IPDS detected it.

Attack recipe (three deterministic runs per attack):

1. **clean run** — capture the reference branch trace and how many
   inputs the session consumes;
2. **probe run** — same inputs, recording the live attack surface at
   the chosen trigger moment (the attacker casing the binary on their
   own machine, as the paper assumes);
3. **attack run** — same inputs plus the tampering, monitored by the
   IPDS.

Zero false positives is *asserted*, not just measured: the clean run is
also monitored, and any alarm there fails the campaign loudly.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..interp.interpreter import Interpreter, RunStatus, TamperSpec
from ..lang.errors import ReproError
from ..observability.metrics import MetricsRegistry
from ..pipeline import ProtectedProgram, monitored_run
from ..runtime.flight_recorder import DEFAULT_DEPTH, FlightRecorder
from ..workloads.registry import Workload, resolve_workloads

#: Values an attacker plausibly writes: flag flips, sign flips, and the
#: large garbage real overflow payloads leave behind (0x41414141 is the
#: classic "AAAA" fill) — single-word memory-corruption payloads.
TAMPER_VALUES = (0, 1, -1, 2, 7, 4242, -999, 65536, 0x41414141)


def attack_seed(seed_prefix: str, workload_name: str, index: int) -> str:
    """The seed string of attack ``index`` against one workload.

    Every random choice an attack makes (inputs, trigger, target word,
    payload) flows from this one string, which depends only on the
    campaign's ``seed_prefix``, the workload, and the attack index —
    never on execution order, process identity, or module-level RNG
    state.  That purity is what lets the sharded engine in
    :mod:`repro.parallel.engine` split a campaign across processes and
    still merge outcomes identical to the serial run.
    """
    return f"{seed_prefix}{workload_name}:{index}"


def attack_rng(
    seed_prefix: str, workload_name: str, index: int
) -> random.Random:
    """An explicit, reproducible RNG for one attack."""
    return random.Random(attack_seed(seed_prefix, workload_name, index))


class CampaignError(ReproError):
    """A campaign-level invariant broke (e.g. a false positive)."""


@dataclass(frozen=True)
class AttackOutcome:
    """One attack's classification."""

    index: int
    trigger_read: int
    address: int
    target_label: str  # "<fn>.<var>" or "<global>.<var>"
    value: int
    fired: bool
    control_flow_changed: bool
    detected: bool
    clean_status: RunStatus
    attack_status: RunStatus
    #: Forensic causal chains for the detected alarms — populated only
    #: when the campaign runs with ``forensics=True``; empty otherwise,
    #: so forensics-off campaigns stay byte-identical to before.
    explanations: Tuple[str, ...] = ()
    #: Rendered alarm strings from the attack run's IPDS, in raise
    #: order.  Purely observational (derived from state the run already
    #: produced), so recording them never perturbs an outcome — the
    #: timing-equivalence goldens pin these byte-for-byte.
    alarms: Tuple[str, ...] = ()
    #: Modeled cycle count of the monitored attack run — populated only
    #: when the campaign runs with a ``timing_mode``; None otherwise, so
    #: timing-off campaigns stay byte-identical to before.
    cycles: Optional[int] = None
    #: Per-alarm compile-time proof reasons ("subsumption", "kill",
    #: "interproc", "feasible-path", ... or "unexplained" when the
    #: forensics join degraded) — one entry per alarm report, in raise
    #: order.  Populated only on forensics campaigns; the observatory
    #: (``repro obs``) aggregates these into Figure-7-style
    #: explained-correlation histograms.
    proof_reasons: Tuple[str, ...] = ()
    #: Frame stack at the tamper moment, outer→inner ``(function,
    #: block, resume index, frame base)`` — the static detectability
    #: prover's program points.  ``None`` when the tamper never fired.
    #: Carried on the dataclass (so sharded merges keep it) but not
    #: serialized by default: see ``to_record``.
    tamper_site: Optional[Tuple[Tuple[str, str, int, int], ...]] = None

    def to_record(self, workload: str, include_site: bool = False) -> dict:
        """The outcome as a plain JSON-ready record.

        The one shape every sink shares — campaign ``--trace-out``
        JSONL logs and the daemon's per-session result events — so
        outcome logs are byte-comparable across front ends.
        """
        record = {
            "workload": workload,
            "index": self.index,
            "trigger_read": self.trigger_read,
            "address": self.address,
            "target": self.target_label,
            "value": self.value,
            "fired": self.fired,
            "control_flow_changed": self.control_flow_changed,
            "detected": self.detected,
            "clean_status": self.clean_status.value,
            "attack_status": self.attack_status.value,
        }
        # Keys appear only on forensics / timed campaigns, so logs
        # from campaigns without them stay byte-identical to before.
        if self.explanations:
            record["explanations"] = list(self.explanations)
        if self.proof_reasons:
            record["proof_reasons"] = list(self.proof_reasons)
        if self.cycles is not None:
            record["cycles"] = self.cycles
        # Opt-in for the same reason: the detectability validator asks
        # for the site explicitly; every other sink's logs stay
        # byte-identical with the field present on the dataclass.
        if include_site and self.tamper_site is not None:
            record["tamper_site"] = [list(frame) for frame in self.tamper_site]
        return record


@dataclass
class WorkloadResult:
    """Aggregated Figure-7 numbers for one workload."""

    workload: str
    vuln_kind: str
    attacks: List[AttackOutcome] = field(default_factory=list)
    #: Timing mode the campaign ran its attack runs under (None = no
    #: timing model attached).  Shard merges refuse to mix modes: a
    #: cycle column whose rows came from different approximations would
    #: be silently meaningless.
    timing_mode: Optional[str] = None

    @property
    def total(self) -> int:
        return len(self.attacks)

    @property
    def changed(self) -> int:
        return sum(1 for a in self.attacks if a.control_flow_changed)

    @property
    def detected(self) -> int:
        return sum(1 for a in self.attacks if a.detected)

    @property
    def pct_changed(self) -> float:
        """Share of tamperings that changed control flow (Fig. 7, left bar)."""
        return 100.0 * self.changed / self.total if self.total else 0.0

    @property
    def pct_detected(self) -> float:
        """Share of all tamperings detected (Fig. 7, right bar)."""
        return 100.0 * self.detected / self.total if self.total else 0.0

    @property
    def pct_detected_of_changed(self) -> float:
        """Detection rate among control-flow-changing tamperings."""
        return 100.0 * self.detected / self.changed if self.changed else 0.0


@dataclass
class CampaignSummary:
    """All workloads' results plus the paper's headline averages."""

    results: List[WorkloadResult]

    @property
    def avg_pct_changed(self) -> float:
        values = [r.pct_changed for r in self.results]
        return sum(values) / len(values) if values else 0.0

    @property
    def avg_pct_detected(self) -> float:
        values = [r.pct_detected for r in self.results]
        return sum(values) / len(values) if values else 0.0

    @property
    def avg_pct_detected_of_changed(self) -> float:
        if not self.avg_pct_changed:
            return 0.0
        return 100.0 * self.avg_pct_detected / self.avg_pct_changed


@dataclass
class AttackExecution:
    """Every artifact of one attack-recipe execution.

    :func:`run_attack` keeps returning the bare :class:`AttackOutcome`;
    session-scoped callers (the detection daemon's
    :class:`~repro.service.engine.DetectionSession`) need the live
    objects too — the monitored IPDS, the flight recorder, the typed
    forensics reports — so the daemon can stream alarms and quarantine
    traces without re-running anything.
    """

    outcome: AttackOutcome
    clean: "RunResult"
    attacked: "RunResult"
    ipds: "IPDS"
    flight_recorder: Optional[FlightRecorder] = None
    #: Typed forensics reports (populated when ``forensics`` was on and
    #: the attack was detected; the outcome's ``explanations`` are the
    #: rendered causal chains of exactly these reports).
    reports: List[object] = field(default_factory=list)


def run_attack(
    program: ProtectedProgram,
    workload: Workload,
    index: int,
    seed_prefix: str = "",
    step_limit: int = 500_000,
    attack_model: str = "input",
    rng: Optional[random.Random] = None,
    metrics: Optional[MetricsRegistry] = None,
    forensics: bool = False,
    flight_recorder_depth: int = DEFAULT_DEPTH,
    timing_mode: Optional[str] = None,
) -> AttackOutcome:
    """Run one independent attack (clean + probe + attack runs).

    ``attack_model`` selects the paper's §3 threat models:

    * ``"input"`` (model 1, the Figure 7 default) — tampering fires
      when a malicious *input* is consumed, and targets what that
      vulnerability class reaches (live stack for overflows, any data
      address for format strings);
    * ``"process"`` (model 2) — a malicious co-resident process snoops
      and tampers the victim's memory at an *arbitrary moment*
      (step-count trigger) and an arbitrary data address.

    ``rng`` defaults to :func:`attack_rng` — an explicit per-attack
    generator, so results never depend on shared RNG state.

    ``metrics`` (optional) accumulates telemetry counters — event and
    step volumes, outcome tallies — without touching the outcome
    itself, so metrics-on and metrics-off campaigns stay bit-identical.

    ``timing_mode`` (optional, ``"exact"`` or ``"segment"``) attaches a
    timing model to the monitored attack run and records its cycle
    count on the outcome.  The timing model is a passive bus consumer:
    detection results are identical with it on or off.
    """
    return run_attack_detailed(
        program,
        workload,
        index,
        seed_prefix=seed_prefix,
        step_limit=step_limit,
        attack_model=attack_model,
        rng=rng,
        metrics=metrics,
        forensics=forensics,
        flight_recorder_depth=flight_recorder_depth,
        timing_mode=timing_mode,
    ).outcome


def run_attack_detailed(
    program: ProtectedProgram,
    workload: Workload,
    index: int,
    *,
    seed_prefix: str = "",
    step_limit: int = 500_000,
    attack_model: str = "input",
    rng: Optional[random.Random] = None,
    metrics: Optional[MetricsRegistry] = None,
    forensics: bool = False,
    flight_recorder_depth: int = DEFAULT_DEPTH,
    timing_mode: Optional[str] = None,
    extra_observers: Sequence[object] = (),
    alarm_sink=None,
) -> AttackExecution:
    """The attack recipe, returning every artifact (see
    :class:`AttackExecution`).

    :func:`run_attack` is a thin wrapper over this function; the two
    extra knobs exist for session-scoped callers and never perturb the
    outcome:

    * ``extra_observers`` ride the monitored attack run's bus behind
      the IPDS and any timing model (trace recorders, progress hooks);
    * ``alarm_sink`` is invoked with each alarm as the IPDS raises it —
      the online policy hook.  A sink that raises aborts the attack run
      (the kill-session policy); the exception propagates to the
      caller.
    """
    if attack_model not in ("input", "process"):
        raise ValueError(f"unknown attack model {attack_model!r}")
    if timing_mode not in (None, "exact", "segment"):
        raise ValueError(f"unknown timing mode {timing_mode!r}")
    if rng is None:
        rng = attack_rng(seed_prefix, workload.name, index)
    inputs = workload.make_inputs(rng)

    # 1. Clean monitored run: reference trace + zero-FP assertion.
    clean, clean_ipds = monitored_run(
        program, inputs=inputs, step_limit=step_limit
    )
    if clean_ipds.detected:
        raise CampaignError(
            f"false positive on clean run of {workload.name}: "
            f"{clean_ipds.alarms[0]}"
        )

    # 2. Choose the trigger and probe the attack surface there.
    if attack_model == "process":
        trigger_kind = "step"
        trigger = rng.randint(1, max(2, clean.steps - 1))
        probe_spec = ("step", trigger)
    else:
        trigger_kind = "read"
        max_trigger = max(clean.reads_consumed, workload.min_trigger_read)
        trigger = rng.randint(
            workload.min_trigger_read,
            max(workload.min_trigger_read, max_trigger),
        )
        probe_spec = ("read", trigger)
    probe_interp = Interpreter(
        program.module,
        inputs=inputs,
        probe=probe_spec,
        step_limit=step_limit,
    )
    probe_interp.run()
    candidates: List[Tuple[int, str, str]] = list(probe_interp.probe_slots)
    if attack_model == "process" or workload.vuln_kind == "fmt":
        candidates.extend(probe_interp.memory.global_slots())
    if not candidates:
        candidates = probe_interp.memory.global_slots()

    address, owner, var_name = rng.choice(candidates)
    value = rng.choice(TAMPER_VALUES)

    # 3. The attack run (flight-recorded when forensics is on, timed
    # when a timing mode is selected).
    tamper = TamperSpec(trigger_kind, trigger, address, value)
    recorder = FlightRecorder(flight_recorder_depth) if forensics else None
    timing_model = None
    if timing_mode is not None:
        from ..cpu.ipds_hw import IPDSHardwareModel
        from ..cpu.pipeline import TimingModel
        from ..cpu.simulator import TimingObserver

        timing_model = TimingModel(
            ipds=IPDSHardwareModel(program.tables), mode=timing_mode
        )
        observers = (TimingObserver(timing_model), *extra_observers)
    else:
        observers = tuple(extra_observers)
    attack_started = time.perf_counter()
    attacked, ipds = monitored_run(
        program,
        inputs=inputs,
        tamper=tamper,
        step_limit=step_limit,
        flight_recorder=recorder,
        observers=observers,
        alarm_sink=alarm_sink,
    )
    attack_seconds = time.perf_counter() - attack_started
    reports: List[object] = []
    explanations: Tuple[str, ...] = ()
    proof_reasons: Tuple[str, ...] = ()
    if forensics and ipds.detected:
        from ..forensics import explain_ipds

        reports = explain_ipds(ipds)
        explanations = tuple(report.causal_chain() for report in reports)
        proof_reasons = tuple(
            report.provenance.reason
            if report.provenance is not None
            else "unexplained"
            for report in reports
        )

    changed = (
        attacked.branch_trace != clean.branch_trace
        or attacked.status is not clean.status
    )
    if metrics is not None:
        metrics.increment("campaign.attacks")
        metrics.increment("campaign.executions", 3)  # clean + probe + attack
        metrics.increment("interp.steps", clean.steps + attacked.steps)
        metrics.increment(
            "ipds.events", clean_ipds.stats.events + ipds.stats.events
        )
        metrics.increment(
            "ipds.checks", clean_ipds.stats.checks + ipds.stats.checks
        )
        metrics.increment("campaign.tamper_fired", int(attacked.tamper_fired))
        metrics.increment("campaign.control_flow_changed", int(changed))
        metrics.increment("campaign.detected", int(ipds.detected))
        metrics.observe_histogram("attack.wall_seconds", attack_seconds)
        if attack_seconds > 0:
            metrics.observe_histogram(
                "attack.steps_per_sec", attacked.steps / attack_seconds
            )
    outcome = AttackOutcome(
        index=index,
        trigger_read=trigger,
        address=address,
        target_label=f"{owner}.{var_name}",
        value=value,
        fired=attacked.tamper_fired,
        control_flow_changed=changed,
        detected=ipds.detected,
        clean_status=clean.status,
        attack_status=attacked.status,
        explanations=explanations,
        alarms=tuple(str(alarm) for alarm in ipds.alarms),
        cycles=timing_model.stats.cycles if timing_model is not None else None,
        proof_reasons=proof_reasons,
        tamper_site=attacked.tamper_site,
    )
    return AttackExecution(
        outcome=outcome,
        clean=clean,
        attacked=attacked,
        ipds=ipds,
        flight_recorder=recorder,
        reports=reports,
    )


def run_workload_campaign(
    workload: Workload,
    attacks: int = 100,
    seed_prefix: str = "",
    step_limit: int = 500_000,
    program: Optional[ProtectedProgram] = None,
    attack_model: str = "input",
    opt_level: int = 0,
    jobs: int = 1,
    metrics: Optional[MetricsRegistry] = None,
    forensics: bool = False,
    flight_recorder_depth: int = DEFAULT_DEPTH,
    timing_mode: Optional[str] = None,
    tracer=None,
) -> WorkloadResult:
    """Attack one workload ``attacks`` times independently.

    ``jobs > 1`` shards the attack indices across a process pool via
    :mod:`repro.parallel.engine`; the merged result is identical to the
    serial one for the same ``seed_prefix``.  The sharded path ignores
    a pre-compiled ``program`` — workers recompile through the
    content-addressed cache instead (same program, built once per
    process).  ``metrics`` accumulates campaign telemetry (merged back
    across shards when sharded).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs > 1:
        from ..parallel.engine import run_workload_sharded

        return run_workload_sharded(
            workload,
            attacks,
            seed_prefix=seed_prefix,
            step_limit=step_limit,
            attack_model=attack_model,
            opt_level=opt_level,
            jobs=jobs,
            metrics=metrics,
            forensics=forensics,
            flight_recorder_depth=flight_recorder_depth,
            timing_mode=timing_mode,
            tracer=tracer,
        )
    from ..observability.tracing import maybe_span

    with maybe_span(
        tracer, "workload", workload=workload.name, attacks=attacks
    ):
        if program is None:
            from ..pipeline import compile_program_cached

            with maybe_span(tracer, "compile", workload=workload.name):
                program = compile_program_cached(
                    workload.source, workload.name, opt_level
                )
        if metrics is not None:
            metrics.increment("campaign.workloads")
            metrics.increment("campaign.jobs")
        result = WorkloadResult(
            workload=workload.name,
            vuln_kind=workload.vuln_kind,
            timing_mode=timing_mode,
        )
        for index in range(attacks):
            result.attacks.append(
                run_attack(
                    program, workload, index,
                    seed_prefix=seed_prefix, step_limit=step_limit,
                    attack_model=attack_model, metrics=metrics,
                    forensics=forensics,
                    flight_recorder_depth=flight_recorder_depth,
                    timing_mode=timing_mode,
                )
            )
    return result


def run_campaign(
    workloads: Optional[Sequence[Workload]] = None,
    attacks: int = 100,
    *,
    seed_prefix: str = "",
    step_limit: int = 500_000,
    attack_model: str = "input",
    opt_level: int = 0,
    jobs: int = 1,
    metrics: Optional[MetricsRegistry] = None,
    forensics: bool = False,
    flight_recorder_depth: int = DEFAULT_DEPTH,
    timing_mode: Optional[str] = None,
    tracer=None,
) -> CampaignSummary:
    """The Figure-7 experiment, optionally sharded across processes.

    The canonical campaign entry point: ``jobs=1`` runs inline,
    ``jobs=N`` fans shards out over a ``ProcessPoolExecutor`` and
    merges outcomes back into index order.  Either way the zero-FP
    invariant is asserted globally (any clean-run alarm raises
    :class:`CampaignError`), and outcomes — hence rendered reports —
    are byte-identical at any job count.  ``metrics`` accumulates
    telemetry (per-workload spans, event/step counters); sharded runs
    merge worker-side counters back into it at the join point.
    """
    from ..parallel.engine import run_campaign as _engine_run_campaign

    return _engine_run_campaign(
        workloads,
        attacks,
        seed_prefix=seed_prefix,
        step_limit=step_limit,
        attack_model=attack_model,
        opt_level=opt_level,
        jobs=jobs,
        metrics=metrics,
        forensics=forensics,
        flight_recorder_depth=flight_recorder_depth,
        timing_mode=timing_mode,
        tracer=tracer,
    )


def run_full_campaign(
    attacks: int = 100,
    seed_prefix: str = "",
    workloads: Optional[Sequence[Workload]] = None,
    jobs: int = 1,
) -> CampaignSummary:
    """The whole Figure-7 experiment: every workload × N attacks."""
    chosen = resolve_workloads(workloads)
    return run_campaign(
        chosen, attacks, seed_prefix=seed_prefix, jobs=jobs
    )
