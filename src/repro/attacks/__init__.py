"""Attack campaign framework: the Figure 7 experiment."""

from .campaign import (
    AttackOutcome,
    CampaignError,
    CampaignSummary,
    TAMPER_VALUES,
    WorkloadResult,
    attack_rng,
    attack_seed,
    run_attack,
    run_campaign,
    run_full_campaign,
    run_workload_campaign,
)

__all__ = [
    "AttackOutcome",
    "CampaignError",
    "CampaignSummary",
    "TAMPER_VALUES",
    "WorkloadResult",
    "attack_rng",
    "attack_seed",
    "run_attack",
    "run_campaign",
    "run_full_campaign",
    "run_workload_campaign",
]
