"""Observability layer: metrics, run manifests, JSONL telemetry.

The production-deployment counterpart of the paper's measurement
sections: every CLI command and campaign can account what it did
(counters), how long each stage took (wall-clock spans), and emit a
structured, machine-readable :class:`RunManifest` for dashboards and
audit trails — without perturbing the deterministic experiment results
themselves (metrics ride alongside, never inside, campaign outcomes).
"""

from .benchdiff import (
    DEFAULT_RULES,
    MetricDelta,
    MetricRule,
    compare_dirs,
    render_table,
)
from .manifest import RunManifest
from .metrics import Counter, MetricsRegistry, Span, Timer
from .telemetry import (
    JsonlWriter,
    export_trace,
    write_manifest,
    write_metrics_jsonl,
)

__all__ = [
    "Counter",
    "DEFAULT_RULES",
    "JsonlWriter",
    "MetricDelta",
    "MetricRule",
    "MetricsRegistry",
    "RunManifest",
    "Span",
    "Timer",
    "compare_dirs",
    "export_trace",
    "render_table",
    "write_manifest",
    "write_metrics_jsonl",
]
