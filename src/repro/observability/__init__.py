"""Observability layer: metrics, run manifests, JSONL telemetry.

The production-deployment counterpart of the paper's measurement
sections: every CLI command and campaign can account what it did
(counters), how long each stage took (wall-clock spans), and emit a
structured, machine-readable :class:`RunManifest` for dashboards and
audit trails — without perturbing the deterministic experiment results
themselves (metrics ride alongside, never inside, campaign outcomes).
"""

from .benchdiff import (
    DEFAULT_RULES,
    MetricDelta,
    MetricRule,
    compare_dirs,
    render_table,
)
from .manifest import RunManifest
from .metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    Span,
    Timer,
    exponential_bounds,
)
from .prometheus import (
    render_prometheus,
    validate_exposition,
    write_prometheus,
)
from .telemetry import (
    JsonlWriter,
    export_trace,
    write_manifest,
    write_metrics_jsonl,
)
from .tracing import (
    SpanRecord,
    TraceContext,
    Tracer,
    chrome_trace,
    maybe_span,
    validate_chrome_trace,
    write_spans,
)

__all__ = [
    "Counter",
    "DEFAULT_RULES",
    "Histogram",
    "JsonlWriter",
    "MetricDelta",
    "MetricRule",
    "MetricsRegistry",
    "RunManifest",
    "Span",
    "SpanRecord",
    "Timer",
    "TraceContext",
    "Tracer",
    "chrome_trace",
    "compare_dirs",
    "exponential_bounds",
    "export_trace",
    "maybe_span",
    "render_prometheus",
    "render_table",
    "validate_chrome_trace",
    "validate_exposition",
    "write_manifest",
    "write_metrics_jsonl",
    "write_prometheus",
    "write_spans",
]
